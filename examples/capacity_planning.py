#!/usr/bin/env python3
"""Capacity planning: how small a cluster can serve a workload's SLOs?

A downstream use of the simulator beyond the paper's figures: given a
workload and a latency SLO for short jobs (p90 under N seconds), find the
smallest cluster for which each scheduler meets it.  This is the question
an operator choosing between Sparrow and Hawk actually asks — Hawk's
better short-job behaviour at high utilization translates into fewer
machines for the same SLO.

Run:  python examples/capacity_planning.py
"""

from repro import JobClass, google_like_trace, percentile
from repro.experiments import RunSpec, run_cached
from repro.workloads import GOOGLE_CUTOFF_S
from repro.workloads.google import GoogleTraceConfig

#: Short jobs must finish within this many seconds at the 90th percentile.
SHORT_P90_SLO = 2500.0


def p90_short(scheduler: str, n_workers: int, trace) -> float:
    spec = RunSpec(
        scheduler=scheduler,
        n_workers=n_workers,
        cutoff=GOOGLE_CUTOFF_S,
    )
    result = run_cached(spec, trace)
    return percentile(result.runtimes(JobClass.SHORT), 90)


def smallest_cluster_meeting_slo(scheduler: str, trace, sizes) -> int | None:
    for n in sizes:
        if p90_short(scheduler, n, trace) <= SHORT_P90_SLO:
            return n
    return None


def main() -> None:
    trace = google_like_trace(GoogleTraceConfig(n_jobs=400), seed=2)
    full = trace.nodes_for_full_utilization()
    sizes = [int(full * f) for f in (0.8, 0.9, 1.0, 1.15, 1.3, 1.5, 1.8, 2.2)]
    print(f"workload: {len(trace)} jobs; ~{full:.0f} nodes saturate it")
    print(f"SLO: short-job p90 <= {SHORT_P90_SLO:.0f}s\n")
    print(f"{'nodes':>7s} {'sparrow p90':>12s} {'hawk p90':>12s}")
    for n in sizes:
        s = p90_short("sparrow", n, trace)
        h = p90_short("hawk", n, trace)
        marks = ("ok" if s <= SHORT_P90_SLO else "  ",
                 "ok" if h <= SHORT_P90_SLO else "  ")
        print(f"{n:7d} {s:10.0f} {marks[0]} {h:10.0f} {marks[1]}")
    for scheduler in ("sparrow", "hawk"):
        n = smallest_cluster_meeting_slo(scheduler, trace, sizes)
        verdict = f"{n} nodes" if n else "not met in the tested range"
        print(f"\nsmallest cluster meeting the SLO with {scheduler}: {verdict}")


if __name__ == "__main__":
    main()
