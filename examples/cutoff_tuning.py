#!/usr/bin/env python3
"""Cutoff tuning: where should a cluster draw the long/short line?

Replays the Figures 12-13 experiment as an operator workflow: sweep the
classification cutoff on your own workload and inspect how both job
classes respond, relative to the Sparrow baseline.  The paper's finding —
Hawk's benefits hold across a wide cutoff range — means the operator does
not need the threshold to be precise.

Run:  python examples/cutoff_tuning.py
"""

from repro import JobClass, google_like_trace
from repro.experiments import RunSpec, run_cached
from repro.metrics.comparison import normalized_percentile
from repro.workloads.google import (
    GOOGLE_SHORT_PARTITION_FRACTION,
    GoogleTraceConfig,
)

CUTOFFS = (600.0, 900.0, 1129.0, 1400.0, 1800.0, 2400.0)


def main() -> None:
    trace = google_like_trace(GoogleTraceConfig(n_jobs=350), seed=4)
    n_workers = int(round(trace.nodes_for_full_utilization()))
    print(f"{len(trace)} jobs on {n_workers} workers (high load)\n")
    header = (
        f"{'cutoff':>8s} {'%long':>6s} {'short p50':>10s} {'short p90':>10s} "
        f"{'long p50':>9s} {'long p90':>9s}"
    )
    print(header)
    for cutoff in CUTOFFS:
        hawk = run_cached(
            RunSpec(
                scheduler="hawk",
                n_workers=n_workers,
                cutoff=cutoff,
                short_partition_fraction=GOOGLE_SHORT_PARTITION_FRACTION,
            ),
            trace,
        )
        sparrow = run_cached(
            RunSpec(scheduler="sparrow", n_workers=n_workers, cutoff=cutoff),
            trace,
        )
        pct_long = 100 * sum(1 for j in trace if j.is_long(cutoff)) / len(trace)
        ratios = [
            normalized_percentile(hawk, sparrow, cls, p)
            for cls in (JobClass.SHORT, JobClass.LONG)
            for p in (50, 90)
        ]
        print(
            f"{cutoff:8.0f} {pct_long:6.1f} {ratios[0]:10.2f} "
            f"{ratios[1]:10.2f} {ratios[2]:9.2f} {ratios[3]:9.2f}"
        )
    print(
        "\nratios are Hawk normalized to Sparrow (lower is better); the "
        "benefit for short jobs should persist across the whole range"
    )


if __name__ == "__main__":
    main()
