#!/usr/bin/env python3
"""Workload explorer: inspect and export the synthetic traces.

Generates the four workloads (Google-like, Cloudera-C, Facebook, Yahoo),
prints their Table 1 statistics and Figure 4 style CDF percentiles, and
writes each to disk in the simulator's trace format so external tools (or
a later run) can replay the exact same workload.

Run:  python examples/workload_explorer.py [output_dir]
"""

import sys
from pathlib import Path

from repro.experiments.traces import (
    ALL_WORKLOAD_SPECS,
    google_cutoff,
    google_trace,
    kmeans_workload_trace,
)
from repro.metrics import percentile
from repro.workloads import read_trace, workload_summary, write_trace


def describe(trace, cutoff: float) -> None:
    summary = workload_summary(trace, cutoff)
    print(f"== {summary.name} ==")
    print(
        f"  jobs={summary.total_jobs}  long={100 * summary.long_fraction:.2f}%  "
        f"task-seconds(long)={100 * summary.task_seconds_share:.2f}%  "
        f"duration ratio={summary.duration_ratio:.2f}x"
    )
    for label, jobs in (
        ("long ", trace.long_jobs(cutoff)),
        ("short", trace.short_jobs(cutoff)),
    ):
        if not jobs:
            continue
        durations = [j.mean_task_duration for j in jobs]
        tasks = [float(j.num_tasks) for j in jobs]
        print(
            f"  {label}: duration p50={percentile(durations, 50):8.0f}s "
            f"p90={percentile(durations, 90):8.0f}s | tasks "
            f"p50={percentile(tasks, 50):6.0f} p90={percentile(tasks, 90):6.0f}"
        )


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("traces-out")
    out_dir.mkdir(exist_ok=True)

    workloads = [(google_trace("quick"), google_cutoff())]
    workloads += [
        (kmeans_workload_trace(spec, "quick"), spec.cutoff)
        for spec in ALL_WORKLOAD_SPECS
    ]
    for trace, cutoff in workloads:
        describe(trace, cutoff)
        path = out_dir / f"{trace.name}.tsv.gz"
        write_trace(trace, path)
        reread = read_trace(path)
        assert len(reread) == len(trace), "round-trip failed"
        print(f"  wrote {path} ({len(trace)} jobs)\n")


if __name__ == "__main__":
    main()
