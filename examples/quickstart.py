#!/usr/bin/env python3
"""Quickstart: run Hawk and Sparrow on a synthetic Google-like trace.

This is the 60-second tour of the library:

1. generate a workload calibrated to the paper's Google-trace statistics,
2. size a cluster for high load,
3. run the Sparrow baseline and Hawk on the identical trace,
4. compare percentile runtimes per job class, the way the paper does.

Run:  python examples/quickstart.py
"""

from repro import (
    Cluster,
    ClusterEngine,
    EngineConfig,
    HawkScheduler,
    JobClass,
    SparrowScheduler,
    WorkStealing,
    compare_runs,
    google_like_trace,
    percentile,
)
from repro.workloads import GOOGLE_CUTOFF_S
from repro.workloads.google import GOOGLE_SHORT_PARTITION_FRACTION, GoogleTraceConfig


def main() -> None:
    # 1. A 400-job trace: 10% long jobs holding ~84% of the task-seconds.
    trace = google_like_trace(GoogleTraceConfig(n_jobs=400), seed=1)
    print(f"trace: {len(trace)} jobs, {trace.total_tasks} tasks")

    # 2. Cluster sized so offered load is ~100% of capacity (high load).
    n_workers = int(round(trace.nodes_for_full_utilization()))
    print(f"cluster: {n_workers} single-slot workers\n")

    # 3a. Sparrow: fully distributed batch probing, 2 probes per task.
    sparrow_engine = ClusterEngine(
        Cluster(n_workers),
        SparrowScheduler(),
        EngineConfig(cutoff=GOOGLE_CUTOFF_S, seed=0),
    )
    sparrow = sparrow_engine.run(trace)

    # 3b. Hawk: centralized long jobs on the general partition,
    #     distributed short jobs everywhere, randomized work stealing.
    hawk_engine = ClusterEngine(
        Cluster(
            n_workers,
            short_partition_fraction=GOOGLE_SHORT_PARTITION_FRACTION,
        ),
        HawkScheduler(),
        EngineConfig(cutoff=GOOGLE_CUTOFF_S, seed=0),
        stealing=WorkStealing(cap=10),
    )
    hawk = hawk_engine.run(trace)

    # 4. The paper's metrics.
    print(f"{'':16s}{'Sparrow':>12s}{'Hawk':>12s}")
    for cls in (JobClass.SHORT, JobClass.LONG):
        for p in (50, 90):
            s = percentile(sparrow.runtimes(cls), p)
            h = percentile(hawk.runtimes(cls), p)
            print(f"{cls.value:8s} p{p:<6d}{s:12.0f}{h:12.0f}")
    print()
    for cls in (JobClass.SHORT, JobClass.LONG):
        comp = compare_runs(hawk, sparrow, cls)
        print(
            f"{cls.value} jobs: Hawk/Sparrow p50={comp.p50_ratio:.2f} "
            f"p90={comp.p90_ratio:.2f}, Hawk improves-or-matches "
            f"{100 * comp.fraction_improved:.0f}% of jobs"
        )
    print(
        f"\nwork stealing: {hawk.stealing.entries_stolen} entries stolen in "
        f"{hawk.stealing.successful_rounds} successful rounds "
        f"({100 * hawk.stealing.success_rate:.0f}% success rate)"
    )


if __name__ == "__main__":
    main()
