#!/usr/bin/env python3
"""Run the threaded prototype cluster: real threads, real sleeps.

Mirrors the paper's Spark deployment (Section 3.8) in miniature: node
monitors are OS threads executing sleep tasks, task requests and steal
messages pay real latency, and the coordinator runs behind a mutex.  The
same trace is also run through the discrete-event simulator so you can
see how well the two agree — the Figures 16-17 experiment in example
form.

Run:  python examples/prototype_cluster.py   (takes ~15 s of wall time)
"""

from repro import Cluster, ClusterEngine, EngineConfig, JobClass, percentile
from repro.experiments.fig16_17_prototype import _scheduled_runtimes
from repro.runtime import PrototypeCluster, PrototypeConfig
from repro.workloads import GOOGLE_CUTOFF_S, google_like_trace
from repro.workloads.google import GoogleTraceConfig
from repro.workloads.scaling import scale_trace_for_prototype, with_interarrival

N_MONITORS = 50


def main() -> None:
    base = google_like_trace(GoogleTraceConfig(n_jobs=60), seed=7)
    scaled = scale_trace_for_prototype(
        base,
        cluster_size=N_MONITORS,
        cutoff=GOOGLE_CUTOFF_S,
        target_mean_task_runtime=0.05,
    )
    # Offered load ~ 1.0: inter-arrival = total work / (jobs x capacity).
    gap = scaled.trace.total_task_seconds / (len(scaled.trace) * N_MONITORS)
    trace = with_interarrival(scaled.trace, gap, seed=7)
    print(
        f"{len(trace)} jobs, {trace.total_tasks} sleep tasks, "
        f"{len(scaled.long_job_ids)} long jobs, horizon {trace.horizon:.1f}s"
    )

    for scheduler in ("sparrow", "hawk"):
        config = PrototypeConfig(
            scheduler=scheduler,
            n_monitors=N_MONITORS,
            n_frontends=5,
            cutoff=scaled.cutoff,
            timeout=120.0,
        )
        result = PrototypeCluster(config).run(
            trace, long_job_ids=scaled.long_job_ids
        )
        shorts = _scheduled_runtimes(result, JobClass.SHORT)
        longs = _scheduled_runtimes(result, JobClass.LONG)
        print(
            f"prototype {scheduler:8s}: short p50={percentile(shorts, 50):.3f}s "
            f"p90={percentile(shorts, 90):.3f}s  long p50="
            f"{percentile(longs, 50):.3f}s  stolen={result.stealing.entries_stolen}"
        )

    # The same trace through the simulator, for comparison.
    for scheduler in ("sparrow", "hawk"):
        from repro.schedulers import HawkScheduler, SparrowScheduler, WorkStealing

        if scheduler == "hawk":
            engine = ClusterEngine(
                Cluster(N_MONITORS, short_partition_fraction=0.17),
                HawkScheduler(),
                EngineConfig(cutoff=scaled.cutoff, seed=7),
                stealing=WorkStealing(),
                estimate=lambda spec: (
                    max(spec.mean_task_duration, scaled.cutoff)
                    if spec.job_id in scaled.long_job_ids
                    else min(spec.mean_task_duration, 0.99 * scaled.cutoff)
                ),
            )
        else:
            engine = ClusterEngine(
                Cluster(N_MONITORS),
                SparrowScheduler(),
                EngineConfig(cutoff=scaled.cutoff, seed=7),
            )
        result = engine.run(trace)
        shorts = _scheduled_runtimes(result, JobClass.SHORT)
        print(
            f"simulator {scheduler:8s}: short p50={percentile(shorts, 50):.3f}s "
            f"p90={percentile(shorts, 90):.3f}s"
        )


if __name__ == "__main__":
    main()
