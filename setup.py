"""Setuptools shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="hawk-repro",
    version="0.8.0",
    description=(
        "Reproduction of Hawk: hybrid datacenter scheduling "
        "(USENIX ATC 2015) — simulator, prototype runtime and "
        "scheduler service"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-serve = repro.service.__main__:main",
        ],
    },
)
