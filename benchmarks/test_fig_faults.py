"""Failure sweep: graceful degradation of Hawk vs the baselines.

Committed at quick scale (like the scenario figure): the file is the
acceptance proof for fault injection end to end — FaultPlan -> engine
chaos hooks -> policy degradation -> figure — and quick scale keeps
whole-zoo regeneration cheap.
"""

from benchmarks.conftest import run_figure
from repro.experiments import fig_faults


def test_fig_faults(benchmark):
    result = run_figure(
        benchmark, fig_faults.run, "fig_faults.txt", scale="quick"
    )
    rows = {(row[0], row[1]): row for row in result.rows}
    levels = sorted({row[0] for row in result.rows})
    worst = levels[-1]
    assert levels[0] == 0.0 and worst > 0.0

    # Fault-free rows are genuinely fault-free: no task ran twice.
    for policy in fig_faults.POLICIES:
        assert rows[(0.0, policy)][5] == 0.0

    # The Hawk-specific payoff: short-job p50 under the worst failure
    # level degrades strictly less than the centralized-only baseline's.
    def degradation(policy):
        return rows[(worst, policy)][2] / rows[(0.0, policy)][2]

    assert degradation("hawk") < degradation("centralized")
    # And not by a technicality: the centralized outage visibly stalls
    # short jobs while hawk's distributed short path stays near-flat.
    assert degradation("centralized") > 1.5
    assert degradation("hawk") < 1.25

    # Crashes happened and were recovered from at every faulted level.
    for level in levels[1:]:
        for policy in fig_faults.POLICIES:
            assert rows[(level, policy)][5] > 0, (level, policy)
