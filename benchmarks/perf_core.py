"""Core-throughput perf harness, pytest-collected (see pytest.ini).

Runs the canonical mixed workload through ``repro.bench`` at quick scale
and checks the *deterministic* half of the committed ``BENCH_core.json``
baseline: the logical event counts.  Event counts are workload-invariant
(transport batching keeps them stable by construction), so any drift
means engine semantics changed and the baseline — plus ``CACHE_VERSION``
— needs a deliberate regeneration.

Wall-clock regression gating lives in CI's ``perf-smoke`` job
(``python -m repro.bench --quick --check``), not here: tier-1 must stay
green on arbitrarily slow machines.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import bench_events, bench_stealing

BASELINE = Path(__file__).resolve().parents[1] / "BENCH_core.json"


def test_quick_bench_matches_committed_event_counts():
    fresh = bench_events("quick", repeats=1)
    committed = json.loads(BASELINE.read_text())["quick"]["events"]
    assert fresh["trace"] == committed["trace"]
    for policy, numbers in committed["policies"].items():
        assert fresh["policies"][policy]["events"] == numbers["events"], policy
        assert (
            fresh["policies"][policy]["n_workers"] == numbers["n_workers"]
        ), policy
    assert fresh["events"] == committed["events"]
    assert fresh["events_per_sec"] > 0
    print(
        f"\nquick-scale core throughput: {fresh['events_per_sec']:,} events/sec "
        f"(committed baseline {committed['events_per_sec']:,})"
    )


def test_quick_stealing_bench_matches_committed_counters():
    """The stealing-heavy point's deterministic half: rounds and events.

    Steal rounds and entries stolen are pure functions of (spec, trace),
    so drift means the stealing mechanism's semantics changed and the
    baseline — plus ``CACHE_VERSION`` — needs a deliberate regeneration.
    """
    fresh = bench_stealing("quick", repeats=1)
    committed = json.loads(BASELINE.read_text())["quick"]["stealing"]
    assert fresh["workload"] == committed["workload"]
    assert fresh["n_workers"] == committed["n_workers"]
    assert fresh["events"] == committed["events"]
    assert fresh["steal_rounds"] == committed["steal_rounds"]
    assert fresh["successful_rounds"] == committed["successful_rounds"]
    assert fresh["entries_stolen"] == committed["entries_stolen"]
    print(
        f"\nquick-scale stealing throughput: {fresh['events_per_sec']:,} "
        f"events/sec over {fresh['steal_rounds']:,} steal rounds "
        f"(committed baseline {committed['events_per_sec']:,})"
    )


def test_bench_baseline_shows_fast_path_speedup():
    """The committed baseline must retain the measured pre-PR reference
    and the >=2x events/sec headline of the fast-path core."""
    data = json.loads(BASELINE.read_text())
    pre = data["pre_pr"]["full_events_per_sec"]
    post = data["full"]["events"]["events_per_sec"]
    assert post >= 2 * pre, (pre, post)


def test_sweep_stream_tier_structure_and_speedup():
    """The committed streaming-vs-barrier record stays internally consistent.

    Live timing belongs to CI's perf-smoke job (``--quick --check`` runs
    :func:`repro.bench.bench_sweep_stream` fresh and gates on the
    absolute :data:`~repro.bench.STREAM_SPEEDUP_FLOOR`); tier-1 checks
    the committed record instead: both scale tiers carry the section,
    the speedup field equals the ratio of its committed walls, the
    executor really streamed (bounded in-flight window, every grid point
    executed exactly once, no cache hits, no pool rebuilds), and the
    headline clears the CI floor.
    """
    from repro.bench import STREAM_SPEEDUP_FLOOR

    data = json.loads(BASELINE.read_text())
    for tier in ("quick", "full"):
        record = data[tier]["sweep_stream"]
        grid = record["grid"]
        assert grid["total_points"] == grid["batches"] * grid["points_per_batch"]
        assert record["speedup"] == round(
            record["barrier_s"] / record["stream_s"], 3
        ), tier
        counters = record["executor"]
        assert counters["executions"] == grid["total_points"], tier
        assert counters["memo_hits"] == 0 and counters["disk_hits"] == 0, tier
        assert counters["pool_rebuilds"] == 0, tier
        assert 0 < counters["max_inflight"] <= 2 * record["workers"], tier
        assert record["speedup"] >= STREAM_SPEEDUP_FLOOR, (tier, record)


def test_scale_tier_structure_and_speedups():
    """The committed 10k-worker scale tier stays internally consistent.

    The tier records the measured flat-array numbers next to the two
    reference cores (pre-flat-array tip and pre-fast-path core).  The
    10k point itself is far too slow for tier-1, so this checks the
    committed record: the references share the new core's logical event
    counts (byte-identity evidence), and every committed speedup field
    equals the ratio of its committed walls.
    """
    scale = json.loads(BASELINE.read_text())["scale"]
    assert scale["n_workers"] == 10_000
    assert scale["workload"]["name"] == "google-scale10k"
    for ref_key in ("pre_pr", "pre_fast_path"):
        ref = scale[ref_key]
        assert ref["commit"], ref_key
        for policy in ("hawk", "sparrow"):
            assert (
                ref["policies"][policy]["events"]
                == scale["policies"][policy]["events"]
            ), (ref_key, policy)
        assert ref["total_wall_s"] > scale["total_wall_s"], ref_key
    speedup = scale["speedup"]
    for field, pre, post in (
        ("total_wall_vs_pre_pr", scale["pre_pr"]["total_wall_s"],
         scale["total_wall_s"]),
        ("total_wall_vs_pre_fast_path",
         scale["pre_fast_path"]["total_wall_s"], scale["total_wall_s"]),
        ("steal_round_vs_pre_pr",
         scale["pre_pr"]["steal_round"]["us_per_round"],
         scale["steal_round"]["us_per_round"]),
        ("steal_round_vs_pre_fast_path",
         scale["pre_fast_path"]["steal_round"]["us_per_round"],
         scale["steal_round"]["us_per_round"]),
    ):
        assert speedup[field] == round(pre / post, 2), field
    # the victim-selection rewrite is the tentpole: it must clear 1.5x
    # against the immediately preceding core and 3x against the
    # pre-fast-path one (measured 1.8x / 4.0x back-to-back)
    assert speedup["steal_round_vs_pre_pr"] >= 1.5
    assert speedup["steal_round_vs_pre_fast_path"] >= 3.0
