"""Figure 14: robustness to task-runtime mis-estimation."""

from benchmarks.conftest import run_figure
from repro.experiments import fig14_misestimation


def test_fig14_misestimation(benchmark):
    result = run_figure(
        benchmark,
        fig14_misestimation.run,
        "fig14.txt",
        n_seeds=3,
    )
    assert len(result.rows) == 7
    long_p50 = result.column_means("long p50")
    short_p50 = result.column_means("short p50")
    # Hawk is robust: even the widest mis-estimation (0.1-1.9) keeps the
    # long-job ratios within a moderate band of the narrowest (0.7-1.3).
    assert max(long_p50) / min(long_p50) < 1.8
    # Short jobs never consult estimates; they move only through indirect
    # long-placement effects (and per-repetition seeds), so the band is
    # wider than the long-job one but still bounded.
    assert max(short_p50) / min(short_p50) < 2.5
    assert all(r < 1.0 for r in short_p50)  # Hawk still beats Sparrow
