"""Figure 15: sensitivity to the number of stealing attempts."""

from benchmarks.conftest import run_figure
from repro.experiments import fig15_stealing_cap


def test_fig15_stealing_cap(benchmark):
    result = run_figure(benchmark, fig15_stealing_cap.run, "fig15.txt")
    rows = {r[0]: r for r in result.rows}
    # Normalized to cap=1 by definition.
    assert abs(rows[1][1] - 1.0) < 1e-9
    # A cap of 10 already captures most of the benefit (Section 4.9):
    # larger caps must not dramatically improve on it.
    p50_at_10 = rows[10][1]
    p50_at_250 = rows[250][1]
    assert p50_at_10 <= 1.05
    assert p50_at_250 <= p50_at_10 * 1.1 + 0.1
