"""Figure 5 scale points: Hawk vs Sparrow on 10k- and 100k-worker clusters."""

from benchmarks.conftest import run_figure
from repro.experiments import fig05_scale


def test_fig05_scale_10k_workers(benchmark):
    result = run_figure(benchmark, fig05_scale.run, "fig05_scale10k.txt")
    (nodes,) = result.column("nodes")
    assert nodes == 10_000
    (short_p50,) = result.column("short p50")
    (short_p90,) = result.column("short p90")
    # High-but-not-overloaded: Hawk's short-job benefit must show at scale.
    assert short_p50 < 1.0
    assert short_p90 < 1.0
    (load,) = result.column("offered load")
    assert 0.8 <= load <= 1.5  # the trace is sized to keep 10k nodes busy


def test_fig05_scale_100k_workers(benchmark):
    result = run_figure(benchmark, fig05_scale.run_100k, "fig05_scale100k.txt")
    (nodes,) = result.column("nodes")
    assert nodes == 100_000
    (short_p50,) = result.column("short p50")
    (short_p90,) = result.column("short p90")
    assert short_p50 < 1.0
    assert short_p90 < 1.0
    (load,) = result.column("offered load")
    assert 0.8 <= load <= 1.5  # same offered load as the 10k point
