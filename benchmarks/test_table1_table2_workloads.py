"""Tables 1 and 2: workload heterogeneity statistics, ours vs paper."""

from benchmarks.conftest import run_figure
from repro.experiments import tables


def test_table1_workload_stats(benchmark):
    result = run_figure(benchmark, tables.run_table1, "table1.txt")
    ours = dict(zip(result.column("workload"), result.column("% task-sec (ours)")))
    # Long jobs dominate task-seconds in every workload.
    assert all(share > 60.0 for share in ours.values())
    # Google calibration is exact by construction.
    assert abs(ours["google-like"] - 83.65) < 2.0


def test_table2_trace_sizes(benchmark):
    result = run_figure(benchmark, tables.run_table2, "table2.txt")
    long_fraction = dict(
        zip(result.column("workload"), result.column("% long (ours)"))
    )
    assert all(0.5 <= f <= 15.0 for f in long_fraction.values())
