"""Figure 1: short jobs under Sparrow in a loaded cluster (Section 2.3)."""

from benchmarks.conftest import run_figure
from repro.experiments import fig01_motivation


def test_fig01_motivation_cdf(benchmark):
    result = run_figure(
        benchmark, fig01_motivation.run, "fig01.txt", scale=0.1
    )
    multiples = result.column("x task duration")
    # The paper's point: a large fraction of short jobs run orders of
    # magnitude longer than their 100 s of work.
    assert multiples[2] > 10.0  # p50
    assert multiples[4] > 50.0  # p90
