"""Batch-size sensitivity of the sparrow-batch scenario policy."""

from benchmarks.conftest import run_figure
from repro.experiments import fig_batch_size


def test_fig_batch_size(benchmark):
    result = run_figure(benchmark, fig_batch_size.run, "fig_batch_size.txt")
    rows = {r[0]: r for r in result.rows}
    # A generous budget stops binding: sparrow-batch converges to Sparrow.
    assert abs(rows[256][1] - 1.0) < 0.1
    # The tightest budget (one probe per task, no sampling choice) must
    # hurt short jobs relative to unconstrained Sparrow.
    assert rows[1][1] > 1.0
    # The knee: a mid-size budget already performs about like Sparrow.
    assert rows[32][1] < rows[1][1]
