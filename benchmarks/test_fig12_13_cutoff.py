"""Figures 12-13: sensitivity to the long/short cutoff threshold."""

from benchmarks.conftest import run_figure
from repro.experiments import fig12_13_cutoff


def test_fig12_13_cutoff(benchmark):
    result = run_figure(benchmark, fig12_13_cutoff.run, "fig12_13.txt")
    assert len(result.rows) == 6
    short_p50 = result.column("short p50")
    # Hawk's short-job benefits hold across the whole cutoff range.
    assert max(short_p50) < 1.0
    # The long-job population shrinks as the cutoff rises.
    fractions = result.column("% jobs long")
    assert fractions[0] >= fractions[-1]
