"""Figure 5: Hawk vs Sparrow on the Google trace across cluster sizes."""

from benchmarks.conftest import run_figure
from repro.experiments import fig05_google


def test_fig05_google_vs_sparrow(benchmark):
    result = run_figure(benchmark, fig05_google.run, "fig05.txt")
    short_p50 = result.column("short p50")
    long_p50 = result.column("long p50")
    utils = result.column("util(sparrow)")
    # High load comes first in the sweep; Hawk's short-job benefit must be
    # largest there and fade as the cluster empties (Section 4.2).
    assert utils[0] > utils[-1]
    assert min(short_p50[:3]) < 0.6
    assert short_p50[-1] > min(short_p50[:3])
    # Long jobs stay competitive: somewhere Hawk matches or beats Sparrow.
    assert min(long_p50) <= 1.05
