"""Micro-benchmark: serial vs parallel vs warm-cache figure regeneration.

Times Figure 5 (quick scale, two load points) end to end through three
executor configurations:

* ``cold serial``  — empty caches, ``max_workers=1``: the historical path;
* ``cold parallel``— empty caches, a 2-worker pool;
* ``warm disk``    — a fresh executor (empty memo) over the disk cache the
  cold run populated: the repeated-figure / repeated-pytest-session case.

The acceptance bar is the cache tier: a warm repeat must be at least 5x
faster than the cold serial run.  Parallel timings are reported but not
asserted — on a single-core runner the pool cannot win.
"""

from __future__ import annotations

import shutil
import time

from repro.experiments import fig05_google
from repro.experiments.parallel import DiskCache, SweepExecutor, set_executor
from repro.experiments.traces import google_trace

TARGETS = (1.0, 0.5)


def _timed_run(executor):
    previous = set_executor(executor)
    try:
        start = time.perf_counter()
        result = fig05_google.run("quick", utilization_targets=TARGETS)
        return result, time.perf_counter() - start
    finally:
        set_executor(previous)
        executor.close()


def test_warm_cache_beats_cold_serial(tmp_path):
    google_trace("quick", 0)  # trace generation excluded from all timings
    cache_dir = tmp_path / "runcache"

    cold_result, cold_s = _timed_run(
        SweepExecutor(max_workers=1, disk_cache=DiskCache(cache_dir))
    )

    parallel_dir = tmp_path / "runcache-parallel"
    parallel_result, parallel_s = _timed_run(
        SweepExecutor(max_workers=2, disk_cache=DiskCache(parallel_dir))
    )

    warm_executor = SweepExecutor(max_workers=1, disk_cache=DiskCache(cache_dir))
    warm_result, warm_s = _timed_run(warm_executor)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print()
    print(
        f"fig05(quick): cold serial {cold_s:.2f}s | cold parallel(2) "
        f"{parallel_s:.2f}s | warm disk cache {warm_s:.3f}s "
        f"({speedup:.0f}x vs cold serial)"
    )

    # Execution modes must agree bit-for-bit.
    assert parallel_result.rows == cold_result.rows
    assert warm_result.rows == cold_result.rows
    # Every run was served from disk, none recomputed...
    assert warm_executor.executions == 0
    assert warm_executor.disk_hits > 0
    # ...making the repeated figure run at least 5x faster.
    assert speedup >= 5.0, f"warm cache only {speedup:.1f}x faster"

    shutil.rmtree(tmp_path, ignore_errors=True)
