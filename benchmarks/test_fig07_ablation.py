"""Figure 7: ablating Hawk's three mechanisms, normalized to full Hawk."""

from benchmarks.conftest import run_figure
from repro.experiments import fig07_ablation


def test_fig07_ablation(benchmark):
    result = run_figure(benchmark, fig07_ablation.run, "fig07.txt")
    rows = {r[0]: r for r in result.rows}
    # Without stealing, short jobs take the biggest hit (Section 4.4).
    assert rows["hawk-no-stealing"][1] > 1.1  # short p50
    # Without centralized scheduling, long jobs suffer.
    assert rows["hawk-no-centralized"][3] > 1.0  # long p50
    # Without the partition, short jobs get worse (stuck behind longs).
    no_partition = rows["hawk-no-partition"]
    assert no_partition[1] > 0.95 or no_partition[2] > 0.95
