"""Figures 16-17: prototype implementation vs simulation.

The implementation rows time the real prototype runtime, so the rendered
cells carry wall-clock noise.  The committed ``fig16_17.txt`` is left at
its committed values by policy: regeneration is opt-in via
``REPRO_REGEN_PROTOTYPE=1`` and excluded from bulk-regen runs.
"""

import os

from benchmarks.conftest import run_figure
from repro.experiments import fig16_17_prototype


def test_fig16_17_prototype(benchmark):
    result = run_figure(
        benchmark,
        fig16_17_prototype.run,
        "fig16_17.txt",
        persist=os.environ.get("REPRO_REGEN_PROTOTYPE") == "1",
    )
    impl_rows = [r for r in result.rows if r[1] == "implementation"]
    sim_rows = [r for r in result.rows if r[1] == "simulation"]
    assert len(impl_rows) == len(sim_rows) >= 3
    # Both systems agree on the headline direction: Hawk does not lose
    # badly on short jobs at any load point, and helps at the p90 tail
    # under the highest load.
    assert impl_rows[0][3] < 1.2  # short p90, highest load, implementation
    assert sim_rows[0][3] < 1.2  # short p90, highest load, simulation
    assert all(r[2] < 1.5 for r in impl_rows)  # short p50 everywhere


def test_fig16_17_from_events(benchmark):
    """The figure folded from the committed service event log.

    Unlike the live prototype rows, this is fully deterministic — the
    wall-clock work happened once when the fixture was recorded
    (``--make-events``) — so the rendered file persists on every run.
    """
    result = run_figure(
        benchmark,
        fig16_17_prototype.run_from_events,
        "fig16_17_from_events.txt",
    )
    assert len(result.rows) >= 2
    assert all(r[1] == "service-replay" for r in result.rows)
    # same headline direction as the live comparison: served Hawk does
    # not lose on short jobs at any recorded load point
    assert all(r[2] < 1.2 for r in result.rows)  # short p50
    assert all(r[3] < 1.2 for r in result.rows)  # short p90
