"""Figure 6: Hawk vs Sparrow on the Cloudera, Facebook and Yahoo traces."""

from benchmarks.conftest import run_figure
from repro.experiments import fig06_other_traces

#: Four load points keep the 3-trace sweep affordable.
TARGETS = (1.25, 1.0, 0.65, 0.4)


def test_fig06_other_traces(benchmark):
    result = run_figure(
        benchmark,
        fig06_other_traces.run,
        "fig06.txt",
        utilization_targets=TARGETS,
    )
    assert len(result.rows) == 3 * len(TARGETS)
    # Per workload, the high-load short-job p90 must favor Hawk.
    for workload in ("cloudera-c", "facebook-2010", "yahoo-2011"):
        rows = [r for r in result.rows if r[0] == workload]
        high_load_short_p90 = rows[0][3]
        assert high_load_short_p90 < 1.0, workload
