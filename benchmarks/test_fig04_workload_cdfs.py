"""Figure 4: CDFs of task durations and task counts per workload/class."""

from benchmarks.conftest import run_figure
from repro.experiments import fig04_workload_cdfs


def test_fig04_workload_cdfs(benchmark):
    result = run_figure(benchmark, fig04_workload_cdfs.run, "fig04.txt")
    assert len(result.rows) == 16  # 4 workloads x 2 classes x 2 metrics
    # Long jobs have larger medians than short jobs on both axes.
    by_key = {(r[0], r[1], r[2]): r for r in result.rows}
    for workload in ("google-like", "cloudera-c", "facebook-2010", "yahoo-2011"):
        long_dur = by_key[(workload, "long", "task duration (s)")]
        short_dur = by_key[(workload, "short", "task duration (s)")]
        assert long_dur[6] > short_dur[6]  # p50 column
