"""Figures 8-9: Hawk vs a fully centralized scheduler."""

from benchmarks.conftest import run_figure
from repro.experiments import fig08_09_centralized


def test_fig08_09_vs_centralized(benchmark):
    result = run_figure(
        benchmark, fig08_09_centralized.run, "fig08_09.txt"
    )
    short_p90 = result.column("short p90")
    long_p50 = result.column("long p50")
    # Figure 8: at heavy load the centralized baseline penalizes short
    # jobs (Hawk's ratio < 1 at the tail somewhere early in the sweep).
    assert min(short_p90[:3]) < 1.0
    # Figure 9: the centralized baseline is at least competitive for long
    # jobs (it uses the whole cluster), so Hawk's ratios hover near 1.
    assert all(r < 1.8 for r in long_p50)
