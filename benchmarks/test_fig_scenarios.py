"""Registry-only scenario workloads through the Hawk-vs-Sparrow point.

Committed at quick scale on purpose: the file is the acceptance proof
that a workload registered outside the experiment layer flows end to end
(registry -> WorkloadSpec -> sweep -> figure), and quick scale keeps the
whole-zoo regeneration cheap.
"""

from benchmarks.conftest import run_figure
from repro.experiments import fig_scenarios


def test_fig_scenarios(benchmark):
    result = run_figure(
        benchmark, fig_scenarios.run, "fig_scenarios.txt", scale="quick"
    )
    workloads = {r[0] for r in result.rows}
    assert workloads == {"pareto-heavy", "bursty-diurnal"}
    for row in result.rows:
        # every ratio cell finite and positive
        assert all(v > 0 for v in row[2:7]), row
