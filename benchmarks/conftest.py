"""Benchmark harness support.

Every benchmark regenerates one of the paper's tables or figures at the
default ("full") experiment scale, prints the rendered rows and saves them
under ``benchmarks/results/`` so EXPERIMENTS.md can be checked against a
fresh run.  Simulations are deterministic, so each benchmark runs exactly
once (``pedantic(rounds=1)``): the interesting number is the wall time of
regenerating the figure, not a statistical distribution over reruns.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def run_figure(benchmark, driver, filename: str, persist: bool = True, **kwargs):
    """Run a figure driver once under pytest-benchmark and persist it.

    ``persist=False`` runs and checks the figure without rewriting its
    committed results file — for figures whose cells embed wall-clock
    measurements (the prototype comparison), where every regeneration
    would churn the file with run-to-run noise.
    """
    result = benchmark.pedantic(
        lambda: driver(**kwargs), rounds=1, iterations=1
    )
    rendered = result.render()
    if persist:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / filename).write_text(rendered + "\n")
    print()
    print(rendered)
    return result
