"""Benchmark harness support.

Every benchmark regenerates one of the paper's tables or figures at the
default ("full") experiment scale, prints the rendered rows and saves them
under ``benchmarks/results/`` so EXPERIMENTS.md can be checked against a
fresh run.  Simulations are deterministic, so each benchmark runs exactly
once (``pedantic(rounds=1)``): the interesting number is the wall time of
regenerating the figure, not a statistical distribution over reruns.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def run_figure(benchmark, driver, filename: str, **kwargs):
    """Run a figure driver once under pytest-benchmark and persist it."""
    result = benchmark.pedantic(
        lambda: driver(**kwargs), rounds=1, iterations=1
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    rendered = result.render()
    (RESULTS_DIR / filename).write_text(rendered + "\n")
    print()
    print(rendered)
    return result
