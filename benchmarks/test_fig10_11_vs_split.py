"""Figures 10-11: Hawk vs a split cluster (disjoint partitions)."""

from benchmarks.conftest import run_figure
from repro.experiments import fig10_11_split


def test_fig10_11_vs_split(benchmark):
    result = run_figure(benchmark, fig10_11_split.run, "fig10_11.txt")
    short_p50 = result.column("short p50")
    long_p50 = result.column("long p50")
    # Figure 10: in the mid-range, Hawk is far better for short jobs
    # because they can leverage the general partition.
    assert min(short_p50) < 0.9
    # Figure 11: the split cluster is slightly better for long jobs, so
    # Hawk's long ratios sit modestly above/near 1, never catastrophic.
    assert all(r < 1.8 for r in long_p50)
