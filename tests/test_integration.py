"""Cross-module integration tests: paper-level claims at small scale."""

import pytest

from repro import (
    Cluster,
    ClusterEngine,
    EngineConfig,
    HawkScheduler,
    JobClass,
    SparrowScheduler,
    WorkStealing,
    compare_runs,
    google_like_trace,
    percentile,
)
from repro.experiments import RunSpec, execute
from repro.workloads import GOOGLE_CUTOFF_S
from repro.workloads.google import GoogleTraceConfig
from repro.workloads.motivation import MotivationConfig, motivation_trace


@pytest.fixture(scope="module")
def small_google():
    return google_like_trace(GoogleTraceConfig(n_jobs=150), seed=1)


@pytest.fixture(scope="module")
def high_load_runs(small_google):
    """Hawk and Sparrow at an over-committed cluster size."""
    n = max(3, int(round(small_google.nodes_for_full_utilization() / 1.0)))
    hawk = execute(
        RunSpec(scheduler="hawk", n_workers=n, cutoff=GOOGLE_CUTOFF_S), small_google
    )
    sparrow = execute(
        RunSpec(scheduler="sparrow", n_workers=n, cutoff=GOOGLE_CUTOFF_S),
        small_google,
    )
    return hawk, sparrow


def test_hawk_improves_short_jobs_at_high_load(high_load_runs):
    hawk, sparrow = high_load_runs
    comp = compare_runs(hawk, sparrow, JobClass.SHORT)
    assert comp.p50_ratio < 1.0
    assert comp.fraction_improved > 0.5


def test_hawk_keeps_long_jobs_competitive(high_load_runs):
    hawk, sparrow = high_load_runs
    comp = compare_runs(hawk, sparrow, JobClass.LONG)
    assert comp.p50_ratio < 1.6


def test_hawk_steals_under_load(high_load_runs):
    hawk, _ = high_load_runs
    assert hawk.stealing.entries_stolen > 0


def test_motivation_scenario_reproduces_figure1_queueing():
    """Section 2.3: under Sparrow most short jobs run far beyond 100 s."""
    cfg = MotivationConfig().scaled(0.02)
    trace = motivation_trace(cfg, seed=0)
    engine = ClusterEngine(
        Cluster(cfg.n_servers),
        SparrowScheduler(),
        EngineConfig(cutoff=cfg.cutoff, seed=0),
    )
    res = engine.run(trace)
    p50 = percentile(res.runtimes(JobClass.SHORT), 50)
    assert p50 > 10 * cfg.short_duration  # massive head-of-line blocking


def test_motivation_scenario_hawk_rescues_shorts():
    cfg = MotivationConfig().scaled(0.02)
    trace = motivation_trace(cfg, seed=0)
    engine = ClusterEngine(
        Cluster(cfg.n_servers, short_partition_fraction=0.17),
        HawkScheduler(),
        EngineConfig(cutoff=cfg.cutoff, seed=0),
        stealing=WorkStealing(),
    )
    res = engine.run(trace)
    p50 = percentile(res.runtimes(JobClass.SHORT), 50)
    assert p50 < 10 * cfg.short_duration


def test_low_load_hawk_and_sparrow_converge(small_google):
    """At a mostly idle cluster any scheduler does well (Section 4.2)."""
    n = int(round(small_google.nodes_for_full_utilization() / 0.25))
    hawk = execute(
        RunSpec(scheduler="hawk", n_workers=n, cutoff=GOOGLE_CUTOFF_S),
        small_google,
    )
    sparrow = execute(
        RunSpec(scheduler="sparrow", n_workers=n, cutoff=GOOGLE_CUTOFF_S),
        small_google,
    )
    comp = compare_runs(hawk, sparrow, JobClass.SHORT)
    assert 0.5 <= comp.p50_ratio <= 1.2


def test_simulator_and_prototype_agree_on_direction():
    """The paper's Figure 16 claim in miniature: both the simulator and
    the threaded prototype should show Hawk at least matching Sparrow for
    short jobs under load."""
    from repro.runtime import PrototypeCluster, PrototypeConfig
    from repro.workloads.scaling import (
        scale_trace_for_prototype,
        with_interarrival,
    )

    base = google_like_trace(GoogleTraceConfig(n_jobs=40), seed=2)
    scaled = scale_trace_for_prototype(
        base, cluster_size=20, cutoff=GOOGLE_CUTOFF_S,
        target_mean_task_runtime=0.02,
    )
    gap = scaled.trace.total_task_seconds / (len(scaled.trace) * 20)
    trace = with_interarrival(scaled.trace, gap, seed=2)

    ratios = {}
    for system in ("sim", "proto"):
        runs = {}
        for scheduler in ("hawk", "sparrow"):
            if system == "sim":
                spec = RunSpec(
                    scheduler=scheduler, n_workers=20, cutoff=scaled.cutoff
                )
                runs[scheduler] = execute(spec, trace)
            else:
                cluster = PrototypeCluster(
                    PrototypeConfig(
                        scheduler=scheduler,
                        n_monitors=20,
                        n_frontends=2,
                        cutoff=scaled.cutoff,
                        timeout=60.0,
                    )
                )
                runs[scheduler] = cluster.run(
                    trace, long_job_ids=scaled.long_job_ids
                )
        short_hawk = [
            r.runtime for r in runs["hawk"].jobs
            if r.scheduled_class is JobClass.SHORT
        ]
        short_sparrow = [
            r.runtime for r in runs["sparrow"].jobs
            if r.scheduled_class is JobClass.SHORT
        ]
        ratios[system] = percentile(short_hawk, 90) / percentile(short_sparrow, 90)
    # direction agreement: neither system shows Hawk badly losing
    assert ratios["sim"] < 1.3
    assert ratios["proto"] < 1.3
