"""Tests for replica statistics (means, t-intervals, matched pairing)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.metrics.stats import (
    SummaryStats,
    mean,
    median_of_replicas,
    paired_cell,
    paired_summary,
    paired_values,
    percentile_of_replicas,
    stdev,
    summarize,
    t_cdf,
    t_confidence_interval,
    t_ppf,
)

#: Two-sided 97.5% t quantiles from standard tables.
T_TABLE_975 = {1: 12.7062, 2: 4.30265, 4: 2.77645, 10: 2.22814, 30: 2.04227}


def test_mean_and_stdev_basics():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert stdev([1.0, 2.0, 3.0]) == pytest.approx(1.0)
    assert stdev([5.0]) == 0.0


def test_mean_of_single_value_is_bit_identical():
    for x in (0.1, 1.0 / 3.0, 123.456e-7, 9876.5432):
        assert mean([x]) == x  # exact: sum([x]) / 1


def test_percentile_and_median_of_replicas():
    values = [4.0, 1.0, 3.0, 2.0]
    assert percentile_of_replicas(values, 0) == 1.0
    assert percentile_of_replicas(values, 100) == 4.0
    assert median_of_replicas(values) == 2.5


@pytest.mark.parametrize("dof,expected", sorted(T_TABLE_975.items()))
def test_t_ppf_matches_standard_tables(dof, expected):
    assert t_ppf(0.975, dof) == pytest.approx(expected, abs=5e-4)


def test_t_cdf_symmetry_and_ppf_round_trip():
    for dof in (1, 3, 7):
        assert t_cdf(0.0, dof) == 0.5
        for t in (0.5, 1.7, 4.2):
            assert t_cdf(t, dof) + t_cdf(-t, dof) == pytest.approx(1.0)
            assert t_ppf(t_cdf(t, dof), dof) == pytest.approx(t, abs=1e-6)


def test_confidence_interval_known_case():
    # mean 2, stdev 1, n=3: half-width = t(0.975, 2) / sqrt(3)
    lo, hi = t_confidence_interval([1.0, 2.0, 3.0])
    half = T_TABLE_975[2] / (3**0.5)
    assert lo == pytest.approx(2.0 - half, abs=1e-4)
    assert hi == pytest.approx(2.0 + half, abs=1e-4)


def test_confidence_interval_degenerates_for_single_sample():
    assert t_confidence_interval([0.7]) == (0.7, 0.7)


def test_higher_confidence_widens_interval():
    values = [1.0, 1.5, 2.5, 3.0, 2.0]
    lo90, hi90 = t_confidence_interval(values, 0.90)
    lo99, hi99 = t_confidence_interval(values, 0.99)
    assert lo99 < lo90 < hi90 < hi99


def test_summarize_bundle():
    s = summarize([1.0, 2.0, 3.0])
    assert isinstance(s, SummaryStats)
    assert (s.n, s.mean, s.median) == (3, 2.0, 2.0)
    assert s.ci_lo < s.mean < s.ci_hi
    assert s.ci_half == pytest.approx((s.ci_hi - s.ci_lo) / 2)


def test_paired_values_matches_by_index():
    ratios = paired_values(lambda c, b: c / b, [1.0, 4.0], [2.0, 2.0])
    assert ratios == [0.5, 2.0]


def test_paired_values_rejects_mismatched_replicas():
    with pytest.raises(ConfigurationError):
        paired_values(lambda c, b: c / b, [1.0, 2.0], [1.0])
    with pytest.raises(ConfigurationError):
        paired_values(lambda c, b: c / b, [], [])


def test_paired_summary_aggregates_within_pairs():
    # Candidate is exactly 10% better in every matched pair even though
    # the raw values vary wildly between pairs: pairing must cancel the
    # between-pair variance completely.
    baselines = [10.0, 1000.0, 0.5]
    candidates = [9.0, 900.0, 0.45]
    s = paired_summary(lambda c, b: c / b, candidates, baselines)
    assert s.mean == pytest.approx(0.9)
    assert s.stdev == pytest.approx(0.0, abs=1e-12)


def test_paired_cell_scalar_for_single_pair_stats_otherwise():
    ratio = lambda c, b: c / b
    single = paired_cell(ratio, [3.0], [4.0])
    assert isinstance(single, float) and single == 0.75  # bit-identical
    many = paired_cell(ratio, [1.0, 4.0], [2.0, 2.0])
    assert isinstance(many, SummaryStats)
    assert many.n == 2 and many.mean == pytest.approx(1.25)


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        mean([])
    with pytest.raises(ConfigurationError):
        stdev([])
    with pytest.raises(ConfigurationError):
        t_confidence_interval([1.0, 2.0], confidence=1.5)
    with pytest.raises(ConfigurationError):
        t_ppf(0.0, 3)
    with pytest.raises(ConfigurationError):
        t_cdf(1.0, 0)
