"""Tests for percentiles and run comparisons."""

import pytest

from repro.cluster.job import JobClass
from repro.cluster.records import JobRecord, RunResult
from repro.core.errors import ConfigurationError
from repro.metrics import compare_runs, percentile
from repro.metrics.comparison import (
    average_runtime_ratio,
    fraction_improved,
    normalized_percentile,
)


# -- percentile -------------------------------------------------------------
def test_percentile_median_odd():
    assert percentile([1, 2, 3], 50) == 2


def test_percentile_median_even_interpolates():
    assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)


def test_percentile_extremes():
    values = [5, 1, 9]
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 9


def test_percentile_p90():
    values = list(range(1, 11))
    assert percentile(values, 90) == pytest.approx(9.1)


def test_percentile_single_value():
    assert percentile([7.0], 90) == 7.0


def test_percentile_unsorted_input():
    assert percentile([9, 1, 5], 50) == 5


def test_percentile_empty_rejected():
    with pytest.raises(ConfigurationError):
        percentile([], 50)


def test_percentile_out_of_range_rejected():
    with pytest.raises(ConfigurationError):
        percentile([1], 101)


def test_percentile_matches_numpy():
    import numpy as np

    values = [3.1, 0.2, 9.9, 4.4, 7.3, 1.8]
    for p in (10, 25, 50, 75, 90, 99):
        assert percentile(values, p) == pytest.approx(
            float(np.percentile(values, p))
        )


# -- comparisons --------------------------------------------------------------
def make_result(runtimes_by_id, job_class=JobClass.SHORT, name="x"):
    records = tuple(
        JobRecord(
            job_id=jid,
            submit_time=0.0,
            completion_time=rt,
            num_tasks=1,
            true_mean_task_duration=1.0,
            estimated_task_duration=1.0,
            task_seconds=1.0,
            scheduled_class=job_class,
            true_class=job_class,
            stolen_tasks=0,
        )
        for jid, rt in runtimes_by_id.items()
    )
    return RunResult(scheduler_name=name, n_workers=1, jobs=records, utilization=())


def test_normalized_percentile_basic():
    cand = make_result({0: 10.0, 1: 20.0, 2: 30.0})
    base = make_result({0: 20.0, 1: 40.0, 2: 60.0})
    assert normalized_percentile(cand, base, JobClass.SHORT, 50) == 0.5


def test_normalized_percentile_missing_class_raises():
    cand = make_result({0: 10.0})
    base = make_result({0: 10.0})
    with pytest.raises(ConfigurationError):
        normalized_percentile(cand, base, JobClass.LONG, 50)


def test_average_runtime_ratio():
    cand = make_result({0: 10.0, 1: 30.0})
    base = make_result({0: 40.0, 1: 40.0})
    assert average_runtime_ratio(cand, base, JobClass.SHORT) == 0.5


def test_fraction_improved_pairs_by_job_id():
    cand = make_result({0: 5.0, 1: 50.0, 2: 10.0})
    base = make_result({0: 10.0, 1: 10.0, 2: 10.0})
    assert fraction_improved(cand, base, JobClass.SHORT) == pytest.approx(2 / 3)


def test_fraction_improved_counts_ties_as_improved():
    cand = make_result({0: 10.0})
    base = make_result({0: 10.0})
    assert fraction_improved(cand, base, JobClass.SHORT) == 1.0


def test_fraction_improved_no_shared_ids_raises():
    cand = make_result({0: 5.0})
    base = make_result({9: 10.0})
    with pytest.raises(ConfigurationError):
        fraction_improved(cand, base, JobClass.SHORT)


def test_compare_runs_bundles_metrics():
    cand = make_result({i: 10.0 for i in range(10)})
    base = make_result({i: 20.0 for i in range(10)})
    comp = compare_runs(cand, base, JobClass.SHORT)
    assert comp.p50_ratio == 0.5
    assert comp.p90_ratio == 0.5
    assert comp.avg_ratio == 0.5
    assert comp.fraction_improved == 1.0


def test_compare_runs_none_class_uses_all_jobs():
    cand = make_result({0: 10.0}, JobClass.SHORT)
    base = make_result({0: 20.0}, JobClass.SHORT)
    comp = compare_runs(cand, base, None)
    assert comp.p50_ratio == 0.5


def test_run_result_median_utilization_empty():
    res = make_result({0: 1.0})
    assert res.median_utilization() == 0.0
    assert res.max_utilization() == 0.0
