"""Regression tests pinning the paper's qualitative claims.

Each test encodes one sentence of the paper's evaluation as an executable
assertion at quick scale, so a future change that silently breaks a
reproduced result fails CI with the claim spelled out.
"""

import pytest

from repro.cluster.job import JobClass
from repro.experiments.config import RunSpec, high_load_size
from repro.experiments.runner import run_cached
from repro.experiments.traces import google_cutoff, google_short_fraction, google_trace
from repro.metrics.comparison import normalized_percentile


@pytest.fixture(scope="module")
def trace():
    return google_trace("quick", seed=0)


@pytest.fixture(scope="module")
def n_high(trace):
    return high_load_size(trace)


def run(trace, scheduler, n, **kw):
    return run_cached(
        RunSpec(
            scheduler=scheduler,
            n_workers=n,
            cutoff=google_cutoff(),
            short_partition_fraction=google_short_fraction(),
            **kw,
        ),
        trace,
    )


def test_claim_hawk_improves_short_p50_under_high_load(trace, n_high):
    """Section 4.2: 'Hawk improves the 50th percentile runtimes for
    short jobs' under high load."""
    hawk = run(trace, "hawk", n_high)
    sparrow = run(trace, "sparrow", n_high)
    assert normalized_percentile(hawk, sparrow, JobClass.SHORT, 50) < 0.8


def test_claim_hawk_improves_short_p90_under_high_load(trace, n_high):
    hawk = run(trace, "hawk", n_high)
    sparrow = run(trace, "sparrow", n_high)
    assert normalized_percentile(hawk, sparrow, JobClass.SHORT, 90) < 0.9


def test_claim_benefits_fade_in_idle_clusters(trace):
    """Section 4.2: 'the benefits of Hawk decrease as the cluster
    becomes mostly idle. Any scheduler is likely to do well.'"""
    n_idle = 4 * high_load_size(trace)
    hawk = run(trace, "hawk", n_idle)
    sparrow = run(trace, "sparrow", n_idle)
    ratio = normalized_percentile(hawk, sparrow, JobClass.SHORT, 50)
    assert 0.6 <= ratio <= 1.15


def test_claim_stealing_contributes_most_for_short_jobs(trace, n_high):
    """Section 4.4: 'work stealing contributing the most to the overall
    improvement' for short jobs."""
    hawk = run(trace, "hawk", n_high)
    no_steal = run(trace, "hawk-no-stealing", n_high)
    no_partition = run(trace, "hawk-no-partition", n_high)
    hit_no_steal = normalized_percentile(no_steal, hawk, JobClass.SHORT, 90)
    hit_no_partition = normalized_percentile(
        no_partition, hawk, JobClass.SHORT, 90
    )
    assert hit_no_steal > 1.0
    assert hit_no_steal >= hit_no_partition * 0.8


def test_claim_centralized_key_for_long_jobs(trace, n_high):
    """Section 4.4: 'The centralized scheduler is a key component for
    obtaining good performance for the long jobs.'"""
    hawk = run(trace, "hawk", n_high)
    no_central = run(trace, "hawk-no-centralized", n_high)
    assert normalized_percentile(no_central, hawk, JobClass.LONG, 50) > 1.0


def test_claim_split_cluster_hurts_short_jobs(trace, n_high):
    """Section 4.6: the split cluster 'comes at the cost of greatly
    increasing runtime for short jobs.'"""
    hawk = run(trace, "hawk", n_high)
    split = run(trace, "split", n_high)
    assert normalized_percentile(hawk, split, JobClass.SHORT, 50) < 1.0


def test_claim_centralized_penalizes_short_tail_under_load(trace, n_high):
    """Section 4.5: 'The centralized scheduler penalizes short jobs when
    the cluster is heavily loaded.'"""
    hawk = run(trace, "hawk", n_high)
    central = run(trace, "centralized", n_high)
    assert normalized_percentile(hawk, central, JobClass.SHORT, 90) <= 1.05


def test_claim_robust_to_misestimation(trace, n_high):
    """Section 4.8: 'Hawk is robust to mis-estimations.'"""
    from repro.schedulers.estimator import UniformMisestimation

    sparrow = run(trace, "sparrow", n_high)
    exact = run(trace, "hawk", n_high)
    noisy = run(
        trace,
        "hawk",
        n_high,
        estimate=UniformMisestimation(0.1, 1.9, seed=0),
        estimate_tag="claim-mis",
    )
    exact_ratio = normalized_percentile(exact, sparrow, JobClass.LONG, 50)
    noisy_ratio = normalized_percentile(noisy, sparrow, JobClass.LONG, 50)
    assert noisy_ratio < max(2.0 * exact_ratio, exact_ratio + 0.5)
