"""Regression tests pinning the paper's qualitative claims.

Each test encodes one sentence of the paper's evaluation as an executable
assertion at quick scale.  Claims are asserted against *multi-seed*
statistics: every scheduler runs ``N_SEEDS`` matched replicas (replica
``r`` of every system shares seed ``base + r`` and the same trace draw),
the comparison ratio is computed within each matched replica, and the
claim is tested on the replica median with its t-based confidence band —
not on a single sample.  Seed 1 alone, for example, shows
no-centralized *beating* full Hawk on long-job p50; the median across
replicas restores the paper's ordering.
"""

import pytest

from repro.cluster.job import JobClass
from repro.experiments.config import RunSpec, high_load_size
from repro.experiments.runner import run_replicated
from repro.experiments.traces import (
    google_cutoff,
    google_short_fraction,
    google_trace,
    google_trace_factory,
)
from repro.metrics.comparison import normalized_percentile
from repro.metrics.stats import SummaryStats, paired_values, summarize

pytestmark = pytest.mark.replicated

#: Matched replicas per system (small: quick scale keeps CI fast).
N_SEEDS = 3


@pytest.fixture(scope="module")
def trace():
    return google_trace("quick", seed=0)


@pytest.fixture(scope="module")
def n_high(trace):
    return high_load_size(trace)


def replicas(trace, scheduler, n, **kw):
    """N_SEEDS matched replicas of one scheduler configuration."""
    return run_replicated(
        RunSpec(
            scheduler=scheduler,
            n_workers=n,
            cutoff=google_cutoff(),
            short_partition_fraction=google_short_fraction(),
            **kw,
        ),
        trace,
        N_SEEDS,
        google_trace_factory("quick"),
    )


def ratio_stats(candidates, baselines, job_class, p) -> SummaryStats:
    """Matched-seed per-replica ratios, summarized (median + CI band)."""
    values = paired_values(
        lambda c, b: normalized_percentile(c, b, job_class, p),
        candidates,
        baselines,
    )
    return summarize(values)


def assert_band_sane(stats: SummaryStats) -> None:
    """The CI band must bracket the point statistics it aggregates."""
    assert stats.n == N_SEEDS
    assert stats.ci_lo <= stats.mean <= stats.ci_hi


def test_claim_hawk_improves_short_p50_under_high_load(trace, n_high):
    """Section 4.2: 'Hawk improves the 50th percentile runtimes for
    short jobs' under high load."""
    hawk = replicas(trace, "hawk", n_high)
    sparrow = replicas(trace, "sparrow", n_high)
    stats = ratio_stats(hawk, sparrow, JobClass.SHORT, 50)
    assert_band_sane(stats)
    assert stats.median < 0.85
    # the improvement holds in every matched replica, not just on average
    assert stats.ci_lo < 1.0
    assert max(
        paired_values(
            lambda c, b: normalized_percentile(c, b, JobClass.SHORT, 50),
            hawk,
            sparrow,
        )
    ) < 1.0


def test_claim_hawk_improves_short_p90_under_high_load(trace, n_high):
    hawk = replicas(trace, "hawk", n_high)
    sparrow = replicas(trace, "sparrow", n_high)
    stats = ratio_stats(hawk, sparrow, JobClass.SHORT, 90)
    assert_band_sane(stats)
    assert stats.median < 0.9
    assert stats.ci_lo < 1.0


def test_claim_benefits_fade_in_idle_clusters(trace):
    """Section 4.2: 'the benefits of Hawk decrease as the cluster
    becomes mostly idle. Any scheduler is likely to do well.'"""
    n_idle = 4 * high_load_size(trace)
    hawk = replicas(trace, "hawk", n_idle)
    sparrow = replicas(trace, "sparrow", n_idle)
    stats = ratio_stats(hawk, sparrow, JobClass.SHORT, 50)
    assert_band_sane(stats)
    # near-parity, with the whole band inside a narrow window
    assert 0.85 <= stats.median <= 1.1
    assert stats.ci_lo > 0.6 and stats.ci_hi < 1.4


def test_claim_stealing_contributes_most_for_short_jobs(trace, n_high):
    """Section 4.4: 'work stealing contributing the most to the overall
    improvement' for short jobs."""
    hawk = replicas(trace, "hawk", n_high)
    no_steal = replicas(trace, "hawk-no-stealing", n_high)
    no_partition = replicas(trace, "hawk-no-partition", n_high)
    hit_no_steal = ratio_stats(no_steal, hawk, JobClass.SHORT, 90)
    hit_no_partition = ratio_stats(no_partition, hawk, JobClass.SHORT, 90)
    assert_band_sane(hit_no_steal)
    # removing stealing hurts in every replica (min over replicas > 1)
    assert hit_no_steal.median > 1.05
    assert min(
        paired_values(
            lambda c, b: normalized_percentile(c, b, JobClass.SHORT, 90),
            no_steal,
            hawk,
        )
    ) > 1.0
    assert hit_no_steal.median >= hit_no_partition.median * 0.8


def test_claim_centralized_key_for_long_jobs(trace, n_high):
    """Section 4.4: 'The centralized scheduler is a key component for
    obtaining good performance for the long jobs.'

    The textbook case for replication: on seed 1 alone the
    no-centralized variant *wins* (ratio ≈ 0.96) and a single-seed
    assertion would pin noise; the replica median restores the claim.
    """
    hawk = replicas(trace, "hawk", n_high)
    no_central = replicas(trace, "hawk-no-centralized", n_high)
    stats = ratio_stats(no_central, hawk, JobClass.LONG, 50)
    assert_band_sane(stats)
    assert stats.median > 1.0


def test_claim_split_cluster_hurts_short_jobs(trace, n_high):
    """Section 4.6: the split cluster 'comes at the cost of greatly
    increasing runtime for short jobs.'"""
    hawk = replicas(trace, "hawk", n_high)
    split = replicas(trace, "split", n_high)
    stats = ratio_stats(hawk, split, JobClass.SHORT, 50)
    assert_band_sane(stats)
    assert stats.median < 0.8
    assert stats.ci_lo < 1.0


def test_claim_centralized_penalizes_short_tail_under_load(trace, n_high):
    """Section 4.5: 'The centralized scheduler penalizes short jobs when
    the cluster is heavily loaded.'"""
    hawk = replicas(trace, "hawk", n_high)
    central = replicas(trace, "centralized", n_high)
    stats = ratio_stats(hawk, central, JobClass.SHORT, 90)
    assert_band_sane(stats)
    assert stats.median <= 1.05


def test_claim_robust_to_misestimation(trace, n_high):
    """Section 4.8: 'Hawk is robust to mis-estimations.'"""
    from repro.schedulers.estimator import UniformMisestimation

    sparrow = replicas(trace, "sparrow", n_high)
    exact = replicas(trace, "hawk", n_high)
    noisy = replicas(
        trace,
        "hawk",
        n_high,
        estimate=UniformMisestimation(0.1, 1.9, seed=0),
        estimate_tag="claim-mis",
    )
    exact_stats = ratio_stats(exact, sparrow, JobClass.LONG, 50)
    noisy_stats = ratio_stats(noisy, sparrow, JobClass.LONG, 50)
    assert_band_sane(noisy_stats)
    assert noisy_stats.median < max(
        2.0 * exact_stats.median, exact_stats.median + 0.5
    )
