"""Tests for the threaded prototype runtime (small, fast clusters)."""

import pytest

from repro.cluster.job import JobClass
from repro.core.errors import ConfigurationError
from repro.runtime import PrototypeCluster, PrototypeConfig
from repro.runtime.coordinator import Coordinator
from repro.runtime.entries import ProtoJob, ProtoProbe, ProtoTask
from repro.runtime.frontend import DistributedFrontend
from repro.workloads.spec import JobSpec, Trace


def proto_job(job_id=0, durations=(0.01, 0.01), is_long=False):
    return ProtoJob(
        job_id=job_id,
        submit_time=0.0,
        durations=tuple(durations),
        is_long=is_long,
        mean_duration=sum(durations) / len(durations),
    )


# -- frontend (no threads needed) -------------------------------------------
class FakeMonitor:
    def __init__(self):
        self.delivered = []

    def deliver(self, item):
        self.delivered.append(item)


def test_frontend_sends_two_probes_per_task():
    monitors = [FakeMonitor() for _ in range(10)]
    frontend = DistributedFrontend(0, monitors, probe_ratio=2, seed=0)
    frontend.submit(proto_job(durations=(0.01,) * 3))
    total = sum(len(m.delivered) for m in monitors)
    assert total == 6


def test_frontend_scope_restricts_targets():
    monitors = [FakeMonitor() for _ in range(10)]
    frontend = DistributedFrontend(0, monitors, seed=0)
    frontend.submit(proto_job(durations=(0.01,) * 2), scope=range(8, 10))
    for i in range(8):
        assert not monitors[i].delivered
    assert sum(len(m.delivered) for m in monitors[8:]) == 4


def test_frontend_late_binding_hands_each_task_once():
    monitors = [FakeMonitor() for _ in range(4)]
    frontend = DistributedFrontend(0, monitors, seed=0)
    job = proto_job(durations=(0.01, 0.02))
    frontend.submit(job)
    tasks = [frontend.request_task(job) for _ in range(4)]
    real = [t for t in tasks if t is not None]
    assert len(real) == 2
    assert {t.index for t in real} == {0, 1}
    assert frontend.cancels_sent == 2


# -- coordinator ---------------------------------------------------------------
def test_coordinator_balances_tasks():
    monitors = [FakeMonitor() for _ in range(3)]
    coord = Coordinator(monitors, scope=range(3))
    coord.submit(proto_job(durations=(0.05,) * 6, is_long=True))
    counts = [len(m.delivered) for m in monitors]
    assert counts == [2, 2, 2]


def test_coordinator_scope_restriction():
    monitors = [FakeMonitor() for _ in range(4)]
    coord = Coordinator(monitors, scope=range(2))
    coord.submit(proto_job(durations=(0.05,) * 4, is_long=True))
    assert not monitors[2].delivered and not monitors[3].delivered


def test_coordinator_completion_feedback_lowers_waiting():
    monitors = [FakeMonitor() for _ in range(2)]
    coord = Coordinator(monitors, scope=range(2))
    job = proto_job(durations=(0.05, 0.05), is_long=True)
    coord.submit(job)
    before = coord.waiting_time(0)
    coord.report_finished(0, job)
    assert coord.waiting_time(0) < before


def test_coordinator_ignores_reports_outside_scope():
    monitors = [FakeMonitor() for _ in range(3)]
    coord = Coordinator(monitors, scope=range(2))
    coord.report_finished(2, proto_job(is_long=True))  # must not raise


# -- full prototype runs ----------------------------------------------------------
def small_trace():
    jobs = [
        JobSpec(0, 0.0, (0.08,) * 4),  # long-ish job
        JobSpec(1, 0.01, (0.005, 0.005)),
        JobSpec(2, 0.02, (0.005, 0.005)),
        JobSpec(3, 0.03, (0.005,)),
    ]
    return Trace(jobs, name="proto-small")


def run_proto(scheduler, **overrides):
    config = PrototypeConfig(
        scheduler=scheduler,
        n_monitors=8,
        n_frontends=2,
        cutoff=0.05,
        timeout=30.0,
        **overrides,
    )
    cluster = PrototypeCluster(config)
    return cluster.run(small_trace())


@pytest.mark.parametrize("scheduler", ["sparrow", "hawk", "split"])
def test_prototype_completes_all_jobs(scheduler):
    res = run_proto(scheduler)
    assert len(res.jobs) == 4
    assert all(r.completion_time > 0 for r in res.jobs)


def test_prototype_classifies_by_cutoff():
    res = run_proto("hawk")
    by_id = {r.job_id: r for r in res.jobs}
    assert by_id[0].true_class is JobClass.LONG
    assert by_id[1].true_class is JobClass.SHORT


def test_prototype_long_job_ids_override():
    config = PrototypeConfig(
        scheduler="hawk", n_monitors=8, n_frontends=2, cutoff=0.05, timeout=30.0
    )
    cluster = PrototypeCluster(config)
    res = cluster.run(small_trace(), long_job_ids=frozenset({1}))
    by_id = {r.job_id: r for r in res.jobs}
    assert by_id[1].true_class is JobClass.LONG
    assert by_id[0].true_class is JobClass.SHORT


def test_prototype_runtimes_positive_and_ordered():
    res = run_proto("sparrow")
    for r in res.jobs:
        assert r.runtime > 0
        assert r.completion_time >= r.submit_time


def test_prototype_config_validation():
    with pytest.raises(ConfigurationError):
        PrototypeConfig(scheduler="nope")
    with pytest.raises(ConfigurationError):
        PrototypeConfig(n_monitors=1)


def test_prototype_sparrow_has_no_stealing():
    res = run_proto("sparrow")
    assert res.stealing.entries_stolen == 0


# -- shutdown hardening -----------------------------------------------------
class StuckMonitor:
    """Stands in for a NodeMonitor thread that ignores shutdown."""

    def __init__(self, monitor_id, stuck):
        self.monitor_id = monitor_id
        self.stuck = stuck
        self.shutdown_calls = 0
        self.join_timeouts = []

    def shutdown(self):
        self.shutdown_calls += 1

    def join(self, timeout=None):
        self.join_timeouts.append(timeout)

    def is_alive(self):
        return self.stuck


def cluster_with_stubs(stuck_ids, n=4, join_timeout=0.01):
    config = PrototypeConfig(
        scheduler="sparrow", n_monitors=n, join_timeout=join_timeout
    )
    cluster = PrototypeCluster(config)
    cluster.monitors = [StuckMonitor(i, i in stuck_ids) for i in range(n)]
    return cluster


def test_shutdown_and_join_reports_leaked_monitors(caplog):
    cluster = cluster_with_stubs(stuck_ids={1, 3})
    with caplog.at_level("WARNING", logger="repro.runtime.engine"):
        leaked = cluster.shutdown_and_join()
    assert leaked == (1, 3)
    assert cluster.leaked_monitors == (1, 3)
    assert any("did not exit within" in r.message for r in caplog.records)
    # every monitor was asked to stop and joined with the configured budget
    for monitor in cluster.monitors:
        assert monitor.shutdown_calls == 1
        assert monitor.join_timeouts == [0.01]


def test_shutdown_and_join_clean_exit_logs_nothing(caplog):
    cluster = cluster_with_stubs(stuck_ids=set())
    with caplog.at_level("WARNING", logger="repro.runtime.engine"):
        assert cluster.shutdown_and_join() == ()
    assert cluster.leaked_monitors == ()
    assert not caplog.records


def test_join_timeout_must_be_positive():
    with pytest.raises(ConfigurationError):
        PrototypeConfig(join_timeout=0.0)


def test_run_leaves_no_leaked_monitors():
    config = PrototypeConfig(
        scheduler="hawk", n_monitors=8, n_frontends=2, cutoff=0.05, timeout=30.0
    )
    cluster = PrototypeCluster(config)
    cluster.run(small_trace())
    assert cluster.leaked_monitors == ()
    assert all(not m.is_alive() for m in cluster.monitors)


def test_prototype_task_conservation():
    config = PrototypeConfig(
        scheduler="hawk", n_monitors=8, n_frontends=2, cutoff=0.05, timeout=30.0
    )
    cluster = PrototypeCluster(config)
    trace = small_trace()
    cluster.run(trace)
    executed = sum(m.tasks_executed for m in cluster.monitors)
    assert executed == trace.total_tasks
