"""Tests for the streaming executor core, fold, crash recovery and index."""

import os
import pickle
import signal
import time

import pytest

from repro.experiments.config import RunSpec
from repro.experiments.parallel import (
    DiskCache,
    SweepExecutor,
    cache_key,
)
from repro.experiments.report import progress_line
from repro.experiments.result_index import ResultIndex
from repro.experiments.sweeps import (
    ReplicatedPoint,
    SweepJob,
    _SweepFold,
    multi_sweep,
    sweep,
)
from repro.workloads.replication import replica_seeds
from repro.workloads.spec import JobSpec, Trace
from tests.conftest import TEST_CUTOFF, long_job, short_job

SPEC = RunSpec(scheduler="sparrow", n_workers=4, cutoff=TEST_CUTOFF)


def small_trace(name="stream-small"):
    jobs = [long_job(0, 0.0, 3)] + [short_job(i, float(i)) for i in range(1, 5)]
    return Trace(jobs, name=name)


def _point_pairs(n, duration=0.001):
    """n content-distinct single-task pairs (distinct job ids)."""
    return [
        (SPEC, Trace([JobSpec(i, 0.0, (duration,))], name=f"pt-{i}"))
        for i in range(n)
    ]


# -- synthetic pool-side run functions (module-level: must pickle) ------------
def _echo_run(spec, trace):
    """Instant synthetic run returning a deterministic payload."""
    return ("ran", trace.name)


def _encoded_sleep_run(spec, trace):
    """Sleep for the trace's encoded duration, then echo it."""
    duration = next(iter(trace)).task_durations[0]
    time.sleep(duration)
    return ("slept", trace.name)


def _crash_once_run(spec, trace):
    """SIGKILL the hosting process the first time a crash trace is seen.

    The crash point's trace name carries a marker-file path; O_EXCL makes
    the kill fire exactly once, so the serial re-run after pool recovery
    completes normally.
    """
    name = trace.name
    if name.startswith("crash:"):
        marker = name.split(":", 1)[1]
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os.kill(os.getpid(), signal.SIGKILL)
    return ("ran", name)


# -- streamed vs batch byte-identity ------------------------------------------
def test_stream_results_byte_identical_to_serial_path():
    """Out-of-order pool completion must not change a single result byte."""
    trace = small_trace()
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=TEST_CUTOFF,
        short_partition_fraction=0.25,
    )
    sparrow = RunSpec(scheduler="sparrow", n_workers=1, cutoff=TEST_CUTOFF)
    serial = SweepExecutor(max_workers=1, disk_cache=None)
    streamed = SweepExecutor(max_workers=2, disk_cache=None)
    try:
        reference = sweep(trace, (4, 6), hawk, sparrow, executor=serial)
        points = sweep(trace, (4, 6), hawk, sparrow, executor=streamed)
    finally:
        streamed.close()
    assert streamed.executions == 4
    assert points == reference
    # Every underlying RunResult round-trips to the exact same bytes
    # whether it ran in-process or crossed a pool boundary.
    for streamed_point, serial_point in zip(points, reference):
        for ours, theirs in zip(streamed_point.replicas, serial_point.replicas):
            assert pickle.dumps(ours.candidate) == pickle.dumps(theirs.candidate)
            assert pickle.dumps(ours.baseline) == pickle.dumps(theirs.baseline)
    # ...and the rendered figure text is identical too.
    from repro.experiments.report import ascii_table

    def render(pts):
        return ascii_table(
            ("nodes", "short p90", "long p90"),
            [
                (p.n_workers, p.cell("short_p90_ratio"), p.cell("long_p90_ratio"))
                for p in pts
            ],
        )

    assert render(points) == render(reference)


def test_run_many_reorders_shuffled_completions_to_submission_order():
    """Completions arrive reversed; run_many still returns submission order."""
    n = 4
    # Earlier submissions sleep longer, so completion order is reversed.
    pairs = [
        (SPEC, Trace([JobSpec(i, 0.0, ((n - i) * 0.15,))], name=f"rev-{i}"))
        for i in range(n)
    ]
    completion_order = []
    executor = SweepExecutor(
        max_workers=n,
        disk_cache=None,
        trace_shm=False,
        inflight=n,
        run_fn=_encoded_sleep_run,
    )
    try:
        collected = [None] * n
        for index, _key, result in executor.run_stream(
            pairs, on_result=lambda i, k, r: completion_order.append(i)
        ):
            collected[index] = result
    finally:
        executor.close()
    assert completion_order == list(reversed(range(n)))  # genuinely shuffled
    assert collected == [("slept", f"rev-{i}") for i in range(n)]
    assert executor.summary()["executions"] == n


# -- backpressure -------------------------------------------------------------
def test_inflight_never_exceeds_window_on_lazy_generator():
    window = 4
    n = 1000
    pulled = 0
    emitted = 0

    def lazy_pairs():
        nonlocal pulled
        for spec, trace in _point_pairs(n):
            # Backpressure invariant, observed from the producer side: at
            # most `window` pulled points may be unfinished when the
            # stream comes back for more.
            assert pulled - emitted <= window
            pulled += 1
            yield spec, trace

    executor = SweepExecutor(
        max_workers=2,
        disk_cache=None,
        trace_shm=False,
        inflight=window,
        run_fn=_echo_run,
    )

    def on_result(index, key, result):
        nonlocal emitted
        emitted += 1

    try:
        results = list(executor.run_stream(lazy_pairs(), on_result=on_result))
    finally:
        executor.close()
    assert len(results) == n
    assert pulled == n and emitted == n
    assert executor.max_inflight <= window
    assert executor.summary()["executions"] == n


def test_inflight_env_knob(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR_INFLIGHT", "7")
    assert SweepExecutor(max_workers=2, disk_cache=None).inflight == 7
    monkeypatch.delenv("REPRO_EXECUTOR_INFLIGHT")
    assert SweepExecutor(max_workers=3, disk_cache=None).inflight == 6
    monkeypatch.setenv("REPRO_EXECUTOR_INFLIGHT", "nope")
    from repro.core.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        SweepExecutor(max_workers=2, disk_cache=None)


def test_duplicate_keys_in_stream_emit_every_index():
    trace = small_trace()
    executor = SweepExecutor(max_workers=1, disk_cache=None)
    pairs = [(SPEC, trace), (SPEC, trace), (SPEC, trace)]
    emissions = list(executor.run_stream(pairs))
    assert executor.executions == 1
    assert [index for index, _, _ in emissions] == [0, 1, 2]
    assert emissions[0][2] is emissions[1][2] is emissions[2][2]


# -- incremental fold ---------------------------------------------------------
def test_incremental_fold_matches_batch_construction():
    """Folding completions in scrambled order equals the batch build."""
    trace = small_trace()
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=TEST_CUTOFF,
        short_partition_fraction=0.25,
        seed=5,
    )
    sparrow = RunSpec(scheduler="sparrow", n_workers=1, cutoff=TEST_CUTOFF, seed=5)
    sizes, n_seeds = (4, 6), 2
    executor = SweepExecutor(max_workers=1, disk_cache=None)
    reference = sweep(
        trace, sizes, hawk, sparrow, executor=executor, n_seeds=n_seeds
    )

    # Rebuild the same pair list the sweep used, in its layout.
    seeds = replica_seeds(hawk.seed, n_seeds)
    candidates, baselines = hawk.replicas(n_seeds), sparrow.replicas(n_seeds)
    pairs = []
    for n in sizes:
        for r in range(n_seeds):
            pairs.append((candidates[r].with_(n_workers=n), trace))
            pairs.append((baselines[r].with_(n_workers=n), trace))
    results = executor.run_many(pairs)

    seen = []
    fold = _SweepFold(sizes, seeds, on_point=lambda p: seen.append(p.n_workers))
    scrambled = [5, 0, 7, 2, 6, 1, 4, 3]  # all of size 6 before size 4 closes
    for index in scrambled:
        fold.add(index, results[index])
    assert fold.points == reference
    assert all(isinstance(p, ReplicatedPoint) for p in fold.points)
    assert seen == [6, 4]  # on_point fires in completion order, not size order


def test_sweep_on_point_observes_each_point_once():
    trace = small_trace()
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=TEST_CUTOFF,
        short_partition_fraction=0.25,
    )
    sparrow = RunSpec(scheduler="sparrow", n_workers=1, cutoff=TEST_CUTOFF)
    executor = SweepExecutor(max_workers=1, disk_cache=None)
    seen = []
    points = sweep(
        trace,
        (4, 6),
        hawk,
        sparrow,
        executor=executor,
        on_point=lambda p: seen.append(p),
    )
    assert seen == points  # serial path completes points in size order


def test_multi_sweep_equals_independent_sweeps():
    trace_a, trace_b = small_trace("wl-a"), small_trace("wl-b")
    # Distinct content so the two jobs cannot share cache keys.
    trace_b = Trace(list(trace_b) + [short_job(99, 30.0)], name="wl-b")
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=TEST_CUTOFF,
        short_partition_fraction=0.25,
    )
    sparrow = RunSpec(scheduler="sparrow", n_workers=1, cutoff=TEST_CUTOFF)
    independent_executor = SweepExecutor(max_workers=1, disk_cache=None)
    expected = [
        sweep(trace_a, (4, 6), hawk, sparrow, executor=independent_executor),
        sweep(trace_b, (5,), hawk, sparrow, executor=independent_executor),
    ]
    chained_executor = SweepExecutor(max_workers=1, disk_cache=None)
    seen = []
    chained = multi_sweep(
        [
            SweepJob(trace_a, (4, 6), hawk, sparrow),
            SweepJob(trace_b, (5,), hawk, sparrow),
        ],
        executor=chained_executor,
        on_point=lambda j, p: seen.append((j, p.n_workers)),
    )
    assert pickle.dumps(chained) == pickle.dumps(expected)
    assert chained_executor.executions == 6  # 2 sizes*2 + 1 size*2, no overlap
    assert seen == [(0, 4), (0, 6), (1, 5)]


# -- pool crash recovery ------------------------------------------------------
def test_worker_crash_mid_sweep_recovers_serially(tmp_path):
    marker = tmp_path / "crash-once"
    pairs = _point_pairs(6)
    # Point 2 kills its pool worker on first execution.
    crash_trace = Trace(
        [JobSpec(2, 0.0, (0.001,))], name=f"crash:{marker}"
    )
    pairs[2] = (SPEC, crash_trace)
    executor = SweepExecutor(
        max_workers=2,
        disk_cache=None,
        trace_shm=False,
        inflight=6,
        run_fn=_crash_once_run,
    )
    try:
        results = executor.run_many(pairs)
    finally:
        executor.close()
    assert marker.exists()  # the worker really died once
    assert executor.pool_rebuilds == 1
    assert executor.executions == 6  # every key ran exactly once overall
    assert results[2] == ("ran", f"crash:{marker}")
    assert [r for i, r in enumerate(results) if i != 2] == [
        ("ran", f"pt-{i}") for i in range(6) if i != 2
    ]


def test_pool_rebuilds_after_crash_for_later_misses(tmp_path):
    """The pool is rebuilt lazily and keeps serving after a recovery."""
    marker = tmp_path / "crash-once"
    first = _point_pairs(4)
    first[1] = (
        SPEC,
        Trace([JobSpec(1, 0.0, (0.001,))], name=f"crash:{marker}"),
    )
    executor = SweepExecutor(
        max_workers=2,
        disk_cache=None,
        trace_shm=False,
        run_fn=_crash_once_run,
    )
    try:
        executor.run_many(first)
        assert executor.pool_rebuilds == 1
        # A second wave of fresh keys goes through a new healthy pool.
        second = [
            (SPEC, Trace([JobSpec(100 + i, 0.0, (0.001,))], name=f"w2-{i}"))
            for i in range(4)
        ]
        results = executor.run_many(second)
    finally:
        executor.close()
    assert results == [("ran", f"w2-{i}") for i in range(4)]
    assert executor.pool_rebuilds == 1  # no further crashes
    assert executor.executions == 8  # 4 + 4, crash point re-run not double


# -- close() semantics --------------------------------------------------------
def test_close_cancels_queued_work_and_drains_inflight():
    pairs = [
        (SPEC, Trace([JobSpec(i, 0.0, (0.2,))], name=f"close-{i}"))
        for i in range(8)
    ]
    executor = SweepExecutor(
        max_workers=2,
        disk_cache=None,
        trace_shm=True,
        inflight=6,
        run_fn=_encoded_sleep_run,
    )
    stream = executor.run_stream(pairs)
    next(stream)  # first completion; several more are in flight
    assert executor._transport is not None  # traces went via shm
    executor.close()  # cancel queued, drain running, then unlink segments
    assert executor._pool is None
    assert executor._transport is None  # unlinked only after the drain
    stream.close()


# -- observability ------------------------------------------------------------
def test_progress_lines_behind_env_knob(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SWEEP_PROGRESS", "1")
    executor = SweepExecutor(max_workers=1, disk_cache=None)
    executor.run_many([(SPEC, small_trace("progress"))])
    err = capsys.readouterr().err
    assert "[sweep] point 1/1 done" in err
    assert "exec 1" in err
    monkeypatch.delenv("REPRO_SWEEP_PROGRESS")
    executor.run_many([(SPEC, small_trace("quiet"))])
    assert "[sweep]" not in capsys.readouterr().err


def test_progress_line_formatting():
    line = progress_line(3, 120, 4, memo_hits=1, disk_hits=2, executions=3)
    assert line == "[sweep] point 3/120 done, in-flight 4, memo 1, disk 2, exec 3"
    assert "point 7/? done" in progress_line(7, None, 2)


def test_summary_counters():
    executor = SweepExecutor(max_workers=1, disk_cache=None)
    trace = small_trace("summary")
    executor.run_many([(SPEC, trace)])
    executor.run_many([(SPEC, trace)])
    summary = executor.summary()
    assert summary["executions"] == 1
    assert summary["memo_hits"] == 1
    assert summary["disk_hits"] == 0
    assert summary["pool_rebuilds"] == 0
    assert summary["max_inflight"] == 0  # serial path never enters the pool


# -- the persistent result index ---------------------------------------------
def test_index_records_and_orders_entries(tmp_path):
    index = ResultIndex(tmp_path)
    index.record("v3/aaa.pkl", 100, 10.0, {"policy": "hawk", "seed": 3})
    index.record("v3/bbb.pkl", 200, 5.0)
    assert index.count() == 2
    assert index.total_bytes() == 300
    assert index.lookup("v3/aaa.pkl") == (100, 10.0)
    # LRU order: oldest mtime first.
    assert [rel for _, rel, _ in index.lru_entries()] == [
        "v3/bbb.pkl",
        "v3/aaa.pkl",
    ]
    index.touch("v3/bbb.pkl", 20.0)
    assert [rel for _, rel, _ in index.lru_entries()] == [
        "v3/aaa.pkl",
        "v3/bbb.pkl",
    ]
    index.remove(["v3/aaa.pkl"])
    assert index.count() == 1


def test_index_provenance_recorded_at_store_time(tmp_path):
    cache = DiskCache(tmp_path)
    executor = SweepExecutor(max_workers=1, disk_cache=cache)
    trace = small_trace("prov")
    executor.run_one(SPEC, trace)
    rel = f"v3/{cache_key(SPEC, trace)}.pkl"
    policy, seed, spec_dig, trace_dig = cache.index.provenance(rel)
    assert policy == "sparrow"
    assert seed == SPEC.seed
    assert "scheduler='sparrow'" in spec_dig
    assert trace_dig == trace.content_digest()


def test_index_reads_never_create_the_database(tmp_path):
    index = ResultIndex(tmp_path)
    assert index.lookup("v3/x.pkl") is None
    assert index.total_bytes() is None
    assert index.lru_entries() is None
    assert index.count() == 0
    assert not (tmp_path / "index.db").exists()


def test_rebuild_from_blobs_migrates_preindex_cache(tmp_path):
    """A cache written before the index existed indexes itself on demand."""
    cache = DiskCache(tmp_path)
    executor = SweepExecutor(max_workers=1, disk_cache=cache)
    trace = small_trace("migrate")
    executor.run_one(SPEC, trace)
    (tmp_path / "index.db").unlink()  # simulate a pre-index cache

    adopted = DiskCache(tmp_path)
    assert adopted.rebuild_index() == 1
    rel = f"v3/{cache_key(SPEC, trace)}.pkl"
    size, _ = adopted.index.lookup(rel)
    assert size == cache.path(cache_key(SPEC, trace)).stat().st_size
    # Provenance is unrecoverable from a blob (the key is a one-way hash).
    assert adopted.index.provenance(rel) == (None, None, None, None)
    assert adopted.total_bytes() == size


def test_reconcile_drops_rows_for_deleted_blobs(tmp_path):
    cache = DiskCache(tmp_path)
    executor = SweepExecutor(max_workers=1, disk_cache=cache)
    trace = small_trace("dropped")
    executor.run_one(SPEC, trace)
    cache.path(cache_key(SPEC, trace)).unlink()  # delete behind the index

    fresh = DiskCache(tmp_path)
    assert fresh.total_bytes() == 0  # reconciled: stale row dropped
    assert fresh.index.count() == 0


def test_cache_degrades_gracefully_without_sqlite(tmp_path):
    """A broken index must never break the cache — scans take over."""
    (tmp_path / "index.db").mkdir()  # a directory: sqlite cannot open it
    cache = DiskCache(tmp_path, max_bytes=10_000_000)
    executor = SweepExecutor(max_workers=1, disk_cache=cache)
    trace = small_trace("no-sqlite")
    res = executor.run_one(SPEC, trace)
    assert not cache.index.available
    assert cache.total_bytes() > 0  # directory-scan fallback
    assert cache.enforce_cap() == 0
    reader = SweepExecutor(
        max_workers=1, disk_cache=DiskCache(tmp_path)
    )
    assert reader.run_one(SPEC, trace) == res
    assert reader.disk_hits == 1


def test_eviction_removes_index_rows(tmp_path):
    cache = DiskCache(tmp_path)
    executor = SweepExecutor(max_workers=1, disk_cache=cache)
    traces = [
        Trace([short_job(80 + i, float(i))], name=f"evict{i}") for i in range(3)
    ]
    keys = []
    for i, trace in enumerate(traces):
        executor.run_one(SPEC, trace)
        keys.append(cache_key(SPEC, trace))
        os.utime(cache.path(keys[-1]), (2000.0 + i, 2000.0 + i))
    entry_size = cache.path(keys[0]).stat().st_size

    capped = DiskCache(tmp_path, max_bytes=entry_size + entry_size // 2)
    removed = capped.enforce_cap()
    assert removed == 2
    assert capped.index.count() == 1
    assert [rel for _, rel, _ in capped.index.lru_entries()] == [
        f"v3/{keys[2]}.pkl"
    ]
