"""Smoke tests: every figure/table driver runs at quick scale and its
output has the structure the benchmarks rely on."""

import pytest

from repro.metrics.stats import SummaryStats
from repro.experiments import (
    fig01_motivation,
    fig04_workload_cdfs,
    fig05_google,
    fig06_other_traces,
    fig07_ablation,
    fig08_09_centralized,
    fig10_11_split,
    fig12_13_cutoff,
    fig14_misestimation,
    fig15_stealing_cap,
    tables,
)

QUICK_TARGETS = (1.0, 0.5)


def test_table1_rows_cover_all_workloads():
    result = tables.run_table1("quick")
    assert len(result.rows) == 4
    ours = result.column("% task-sec (ours)")
    assert all(50.0 < v <= 100.0 for v in ours)


def test_table2_reports_job_counts():
    result = tables.run_table2("quick")
    counts = result.column("jobs (ours)")
    assert all(c > 0 for c in counts)


def test_fig01_shows_head_of_line_blocking():
    result = fig01_motivation.run(scale=0.02)
    multiples = result.column("x task duration")
    # the p90 short job must run far longer than its 100 s of work
    assert multiples[-2] > 10.0
    assert result.render()


def test_fig04_has_both_classes_for_every_workload():
    result = fig04_workload_cdfs.run("quick")
    workloads = set(result.column("workload"))
    assert workloads == {
        "google-like",
        "cloudera-c",
        "facebook-2010",
        "yahoo-2011",
    }
    classes = set(result.column("class"))
    assert classes == {"long", "short"}


def test_fig05_hawk_beats_sparrow_for_shorts_at_high_load():
    result = fig05_google.run("quick", utilization_targets=QUICK_TARGETS)
    short_p50 = result.column("short p50")
    assert short_p50[0] < 0.9  # high-load point: Hawk clearly better
    long_p50 = result.column("long p50")
    assert all(v < 1.6 for v in long_p50)  # long jobs competitive


def test_fig06_rows_per_workload():
    result = fig06_other_traces.run("quick", utilization_targets=(1.0,))
    assert len(result.rows) == 3
    assert all(v <= 1.3 for v in result.column("short p90"))


def test_fig07_without_stealing_hurts_shorts():
    result = fig07_ablation.run("quick")
    rows = {row[0]: row for row in result.rows}
    no_steal = rows["hawk-no-stealing"]
    assert no_steal[1] > 1.0 or no_steal[2] > 1.0  # short p50/p90 worse


def test_fig08_09_has_all_sizes():
    result = fig08_09_centralized.run("quick", utilization_targets=QUICK_TARGETS)
    assert len(result.rows) == 2


def test_fig10_11_split_hurts_shorts_somewhere():
    result = fig10_11_split.run("quick", utilization_targets=QUICK_TARGETS)
    assert min(result.column("short p50")) < 1.0


def test_fig12_13_long_fraction_decreases_with_cutoff():
    result = fig12_13_cutoff.run("quick", cutoffs=(750.0, 2000.0))
    fractions = result.column("% jobs long")
    assert fractions[0] >= fractions[1]


def test_fig14_short_jobs_barely_affected():
    result = fig14_misestimation.run(
        "quick", ranges=((0.5, 1.5),), n_seeds=2
    )
    assert len(result.rows) == 1
    # short jobs do not use estimates; ratios stay in a sane band
    assert 0.0 < result.column_means("short p50")[0] < 1.5
    # replicated cells carry the paired-t p-value against ratio 1
    cell = result.column("long p50")[0]
    assert isinstance(cell, SummaryStats)
    assert cell.p_value is not None and 0.0 <= cell.p_value <= 1.0


def test_fig15_cap10_not_worse_than_cap1():
    result = fig15_stealing_cap.run("quick", caps=(1, 10))
    rows = {row[0]: row for row in result.rows}
    assert rows[1][1] == pytest.approx(1.0)  # normalized to itself
    assert rows[10][1] <= 1.1


# -- seed-replicated driver output --------------------------------------


@pytest.mark.replicated
def test_fig05_replicated_cells_carry_ci_bands():
    result = fig05_google.run(
        "quick", utilization_targets=(1.0,), n_seeds=2
    )
    cell = result.column("short p50")[0]
    assert isinstance(cell, SummaryStats)
    assert cell.n == 2
    assert cell.ci_lo <= cell.mean <= cell.ci_hi
    assert "±" in result.render()
    assert any("2 matched seed replicas" in note for note in result.notes)
    # column_means collapses aggregated cells for trend assertions
    assert result.column_means("short p50")[0] == cell.mean


@pytest.mark.replicated
def test_fig07_replicated_keeps_stealing_claim():
    result = fig07_ablation.run("quick", n_seeds=2)
    rows = {row[0]: row for row in result.rows}
    no_steal_p90 = rows["hawk-no-stealing"][2]
    assert isinstance(no_steal_p90, SummaryStats)
    assert no_steal_p90.mean > 1.0  # stealing still matters on average


@pytest.mark.replicated
def test_fig15_replicated_normalizes_within_replicas():
    result = fig15_stealing_cap.run("quick", caps=(1, 10), n_seeds=2)
    rows = {row[0]: row for row in result.rows}
    cap1 = rows[1][1]
    # every replica normalizes to its own cap=1 run: exactly 1, zero CI
    assert cap1.mean == pytest.approx(1.0)
    assert cap1.ci_half == pytest.approx(0.0, abs=1e-12)
    assert isinstance(rows[1][3], float)  # steal success rate stays a mean


@pytest.mark.replicated
def test_fig12_13_replicated_long_fraction_is_mean_over_draws():
    result = fig12_13_cutoff.run("quick", cutoffs=(750.0,), n_seeds=2)
    fraction = result.column("% jobs long")[0]
    assert isinstance(fraction, float) and 0.0 < fraction < 100.0
    assert isinstance(result.column("long p50")[0], SummaryStats)


@pytest.mark.replicated
def test_tables_replicated_report_ci_over_trace_draws():
    result = tables.run_table1("quick", n_seeds=2)
    ours = result.column("% task-sec (ours)")
    assert all(isinstance(v, SummaryStats) for v in ours)
    assert all(50.0 < v.mean <= 100.0 for v in ours)
    jobs = tables.run_table2("quick", n_seeds=2).column("jobs (ours)")
    assert all(isinstance(c, int) for c in jobs)  # fixed by the generator
