"""Tests for the sweep executor and the two-tier run cache."""

import os
import pickle
import time

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.config import RunSpec
from repro.experiments.parallel import (
    CACHE_VERSION,
    DISK_CACHE_MAX_MB_ENV,
    DiskCache,
    SweepExecutor,
    _max_bytes_from_env,
    cache_key,
    replica_pairs,
    set_executor,
)
from repro.experiments.runner import run_cached, run_replicated
from repro.experiments.sweeps import sweep
from repro.workloads.spec import JobSpec, Trace
from tests.conftest import TEST_CUTOFF, long_job, short_job

SPEC = RunSpec(scheduler="sparrow", n_workers=4, cutoff=TEST_CUTOFF)


def small_trace(name="cache-small"):
    jobs = [long_job(0, 0.0, 3)] + [short_job(i, float(i)) for i in range(1, 5)]
    return Trace(jobs, name=name)


@pytest.fixture
def executor(tmp_path):
    """A serial executor with an isolated on-disk cache."""
    return SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))


# -- cache keying ------------------------------------------------------------
def test_same_shape_different_durations_get_distinct_results(executor):
    """Regression: the old (name, len, rounded totals) trace key collided.

    Both traces have the same name, job count, total task-seconds,
    horizon and first submit time; only the per-job durations differ.
    """
    a = Trace(
        [JobSpec(0, 0.0, (10.0, 30.0)), JobSpec(1, 5.0, (20.0,))], name="twin"
    )
    b = Trace(
        [JobSpec(0, 0.0, (20.0, 20.0)), JobSpec(1, 5.0, (20.0,))], name="twin"
    )
    assert a.total_task_seconds == b.total_task_seconds
    assert a.horizon == b.horizon and len(a) == len(b)
    assert cache_key(SPEC, a) != cache_key(SPEC, b)
    res_a = executor.run_one(SPEC, a)
    res_b = executor.run_one(SPEC, b)
    assert executor.executions == 2  # no silent sharing
    assert res_a != res_b


def test_trace_digest_ignores_name_but_not_content():
    a = small_trace("one")
    b = small_trace("two")
    assert a.content_digest() == b.content_digest()
    c = Trace(list(a) + [short_job(99, 50.0)], name="one")
    assert c.content_digest() != a.content_digest()


def test_cache_key_distinguishes_specs_and_estimate_tags():
    trace = small_trace()
    assert cache_key(SPEC, trace) != cache_key(SPEC.with_(n_workers=5), trace)
    assert cache_key(SPEC, trace) != cache_key(
        SPEC.with_(estimate=lambda s: 1.0, estimate_tag="other"), trace
    )


# -- executor behaviour ------------------------------------------------------
def test_duplicate_submissions_execute_once(executor):
    trace = small_trace()
    results = executor.run_many([(SPEC, trace), (SPEC, trace)])
    assert executor.executions == 1
    assert results[0] is results[1]


def test_parallel_and_serial_results_identical(tmp_path):
    """parallel=N must be bit-identical to the serial path."""
    trace = small_trace()
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=TEST_CUTOFF,
        short_partition_fraction=0.25,
    )
    sparrow = RunSpec(scheduler="sparrow", n_workers=1, cutoff=TEST_CUTOFF)
    serial = SweepExecutor(max_workers=1, disk_cache=None)
    parallel = SweepExecutor(max_workers=2, disk_cache=None)
    try:
        points_serial = sweep(trace, (4, 6), hawk, sparrow, executor=serial)
        points_parallel = sweep(trace, (4, 6), hawk, sparrow, executor=parallel)
    finally:
        parallel.close()
    assert parallel.executions == 4
    assert points_serial == points_parallel  # full RunResult equality


def test_unpicklable_estimate_falls_back_to_in_process(tmp_path):
    """Closure estimators cannot cross the pool; they still execute."""
    trace = small_trace()
    specs = [
        SPEC.with_(estimate=lambda s, k=k: 10.0 * (k + 1), estimate_tag=f"c{k}")
        for k in range(2)
    ]
    executor = SweepExecutor(max_workers=2, disk_cache=None)
    try:
        results = executor.run_many([(s, trace) for s in specs])
    finally:
        executor.close()
    assert executor.executions == 2
    assert all(len(r.jobs) == len(trace) for r in results)


# -- the persistent tier -----------------------------------------------------
def test_disk_cache_survives_new_executor(tmp_path):
    trace = small_trace()
    first = SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))
    res = first.run_one(SPEC, trace)
    assert (first.executions, first.disk_hits) == (1, 0)

    second = SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))
    loaded = second.run_one(SPEC, trace)
    assert (second.executions, second.disk_hits) == (0, 1)
    assert loaded == res  # value-identical across "sessions"
    # and memoized for identity within the new session
    assert second.run_one(SPEC, trace) is loaded


def test_disk_cache_version_partitioning(tmp_path):
    cache = DiskCache(tmp_path)
    assert cache.root.name == f"v{CACHE_VERSION}"


def test_corrupt_disk_entry_is_recomputed(tmp_path):
    trace = small_trace()
    cache = DiskCache(tmp_path)
    first = SweepExecutor(max_workers=1, disk_cache=cache)
    res = first.run_one(SPEC, trace)
    path = cache.path(cache_key(SPEC, trace))
    assert path.is_file()
    path.write_bytes(b"not a pickle")

    second = SweepExecutor(max_workers=1, disk_cache=cache)
    recomputed = second.run_one(SPEC, trace)
    assert (second.executions, second.disk_hits) == (1, 0)
    assert recomputed == res


def test_disk_cache_clear(tmp_path):
    cache = DiskCache(tmp_path)
    executor = SweepExecutor(max_workers=1, disk_cache=cache)
    executor.run_one(SPEC, small_trace())
    assert cache.clear() == 1
    assert cache.load(cache_key(SPEC, small_trace())) is None


def test_run_results_pickle_round_trip(executor):
    """Cluster records must be picklable for the pool and the disk tier."""
    res = executor.run_one(
        RunSpec(
            scheduler="hawk",
            n_workers=4,
            cutoff=TEST_CUTOFF,
            short_partition_fraction=0.25,
        ),
        small_trace(),
    )
    clone = pickle.loads(pickle.dumps(res))
    assert clone == res
    assert clone.stealing == res.stealing
    assert clone.median_utilization() == res.median_utilization()


# -- seed replication --------------------------------------------------------
def test_replica_pairs_degenerate_single_seed():
    """n_seeds=1 expands to exactly the historical (spec, trace) pair."""
    trace = small_trace()
    pairs = replica_pairs(SPEC, trace, 1)
    assert pairs == [(SPEC, trace)]
    assert pairs[0][0] is SPEC and pairs[0][1] is trace


def test_replica_pairs_offset_seeds_and_factory_traces():
    base = SPEC.with_(seed=7)
    trace = small_trace()
    drawn = []

    def factory(seed):
        drawn.append(seed)
        return Trace([short_job(seed, 0.0)], name=f"draw-{seed}")

    pairs = replica_pairs(base, trace, 3, factory)
    assert [s.seed for s, _ in pairs] == [7, 8, 9]
    assert pairs[0][1] is trace  # replica 0 keeps the given trace
    assert drawn == [8, 9]
    digests = {t.content_digest() for _, t in pairs}
    assert len(digests) == 3  # independent draws


def test_run_replicated_distinct_cache_keys_and_results(executor):
    trace = small_trace()
    results = run_replicated_via(executor, SPEC, trace, 3)
    assert executor.executions == 3  # one run per replica, no dedupe
    keys = {
        cache_key(s, t) for s, t in replica_pairs(SPEC, trace, 3)
    }
    assert len(keys) == 3
    # replica 0 is the plain single-seed run, served from the memo now
    assert executor.run_one(SPEC, trace) is results[0]
    assert executor.executions == 3


def run_replicated_via(executor, spec, trace, n_seeds, trace_factory=None):
    return executor.run_replicated(spec, trace, n_seeds, trace_factory)


def test_run_replicated_module_helper_uses_default_executor(tmp_path):
    injected = SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))
    previous = set_executor(injected)
    try:
        trace = small_trace()
        results = run_replicated(SPEC, trace, 2)
        assert len(results) == 2
        assert injected.executions == 2
        assert run_cached(SPEC, trace) is results[0]
    finally:
        set_executor(previous)


# -- determinism: serial vs pool vs cache round-trip --------------------------
def _determinism_spec():
    return RunSpec(
        scheduler="hawk",
        n_workers=5,
        cutoff=TEST_CUTOFF,
        short_partition_fraction=0.25,
        seed=3,
    )


def test_same_seed_bit_identical_serial_pool_and_cache_round_trip(tmp_path):
    """Same seed ⇒ the same RunResult bytes on every execution path."""
    spec, trace = _determinism_spec(), small_trace()
    serial = SweepExecutor(max_workers=1, disk_cache=None)
    rerun = SweepExecutor(max_workers=1, disk_cache=None)
    pool = SweepExecutor(max_workers=2, disk_cache=None)
    disk = DiskCache(tmp_path)
    writer = SweepExecutor(max_workers=1, disk_cache=disk)
    try:
        reference = serial.run_one(spec, trace)
        repeated = rerun.run_one(spec, trace)
        # two submissions so the pool path actually fans out
        pooled = pool.run_many([(spec, trace), (SPEC, trace)])[0]
        writer.run_one(spec, trace)
    finally:
        pool.close()
    reader = SweepExecutor(max_workers=1, disk_cache=disk)
    from_disk = reader.run_one(spec, trace)
    assert (reader.executions, reader.disk_hits) == (0, 1)

    blob = pickle.dumps(reference)
    assert pickle.dumps(repeated) == blob
    assert pickle.dumps(pooled) == blob
    assert pickle.dumps(from_disk) == blob


def test_replicas_are_deterministic_but_distinct(executor):
    # Hawk with stealing: seeds drive victim sampling, so replicas must
    # actually differ (Sparrow on this tiny trace happens not to).
    spec, trace = _determinism_spec(), small_trace()
    first = run_replicated_via(executor, spec, trace, 3)
    again = run_replicated_via(
        SweepExecutor(max_workers=1, disk_cache=None), spec, trace, 3
    )
    for a, b in zip(first, again):
        assert pickle.dumps(a) == pickle.dumps(b)
    # different seeds are independent draws: at least one replica differs
    assert any(r != first[0] for r in first[1:])


# -- disk-cache size cap ------------------------------------------------------
def _fill(cache, executor, traces):
    keys = []
    for i, trace in enumerate(traces):
        executor.run_one(SPEC, trace)
        key = cache_key(SPEC, trace)
        keys.append(key)
        # strictly increasing mtimes so LRU order is unambiguous
        os.utime(cache.path(key), (1000.0 + i, 1000.0 + i))
    return keys


def test_cap_evicts_least_recently_used_first(tmp_path):
    traces = [small_trace() for _ in range(3)]
    traces = [
        Trace(list(t) + [short_job(50 + i, 40.0)], name=f"t{i}")
        for i, t in enumerate(traces)
    ]
    probe_cache = DiskCache(tmp_path)
    executor = SweepExecutor(max_workers=1, disk_cache=probe_cache)
    keys = _fill(probe_cache, executor, traces)
    entry_size = probe_cache.path(keys[0]).stat().st_size

    capped = DiskCache(tmp_path, max_bytes=2 * entry_size + entry_size // 2)
    removed = capped.enforce_cap()
    assert removed == 1
    assert not capped.path(keys[0]).exists()  # oldest mtime evicted
    assert capped.path(keys[1]).exists() and capped.path(keys[2]).exists()
    assert capped.total_bytes() <= capped.max_bytes
    assert capped.evictions == 1


def test_hit_refreshes_recency_so_lru_survives(tmp_path):
    traces = [
        Trace([short_job(60 + i, float(i))], name=f"lru{i}") for i in range(3)
    ]
    cache = DiskCache(tmp_path)
    executor = SweepExecutor(max_workers=1, disk_cache=cache)
    keys = _fill(cache, executor, traces)
    entry_size = cache.path(keys[0]).stat().st_size

    # touch entry 0 via a cache hit: it becomes the most recent
    assert cache.load(keys[0]) is not None
    assert cache.path(keys[0]).stat().st_mtime >= time.time() - 60

    capped = DiskCache(tmp_path, max_bytes=entry_size + entry_size // 2)
    capped.enforce_cap()
    assert capped.path(keys[0]).exists()  # hit saved it
    assert not capped.path(keys[1]).exists()
    assert not capped.path(keys[2]).exists()


def test_store_enforces_cap_but_keeps_fresh_entry(tmp_path):
    trace_a, trace_b = (
        Trace([short_job(70, 0.0)], name="cap-a"),
        Trace([short_job(71, 0.0)], name="cap-b"),
    )
    unbounded = SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))
    unbounded.run_one(SPEC, trace_a)
    entry_size = DiskCache(tmp_path).path(cache_key(SPEC, trace_a)).stat().st_size

    capped = DiskCache(tmp_path, max_bytes=entry_size + entry_size // 2)
    executor = SweepExecutor(max_workers=1, disk_cache=capped)
    executor.run_one(SPEC, trace_b)  # store triggers eviction of a
    assert capped.path(cache_key(SPEC, trace_b)).exists()
    assert not capped.path(cache_key(SPEC, trace_a)).exists()
    assert capped.total_bytes() <= capped.max_bytes


def test_cap_covers_stale_version_directories(tmp_path):
    cache = DiskCache(tmp_path)
    executor = SweepExecutor(max_workers=1, disk_cache=cache)
    executor.run_one(SPEC, small_trace())
    key = cache_key(SPEC, small_trace())
    entry_size = cache.path(key).stat().st_size
    stale_dir = tmp_path / "v0"
    stale_dir.mkdir()
    stale = stale_dir / "old.pkl"
    stale.write_bytes(b"x" * entry_size)
    os.utime(stale, (1.0, 1.0))  # much older than the live entry

    capped = DiskCache(tmp_path, max_bytes=entry_size + entry_size // 2)
    assert capped.total_bytes() == entry_size + cache.path(key).stat().st_size
    capped.enforce_cap()
    assert not stale.exists()  # stale-version entries evicted first
    assert cache.path(key).exists()


def test_max_bytes_env_parsing(monkeypatch):
    monkeypatch.delenv(DISK_CACHE_MAX_MB_ENV, raising=False)
    assert _max_bytes_from_env() is None
    monkeypatch.setenv(DISK_CACHE_MAX_MB_ENV, "1.5")
    assert _max_bytes_from_env() == int(1.5 * 1024 * 1024)
    monkeypatch.setenv(DISK_CACHE_MAX_MB_ENV, "nope")
    with pytest.raises(ConfigurationError):
        _max_bytes_from_env()
    monkeypatch.setenv(DISK_CACHE_MAX_MB_ENV, "0")
    with pytest.raises(ConfigurationError):
        _max_bytes_from_env()


def test_negative_max_bytes_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        DiskCache(tmp_path, max_bytes=-1)


# -- default-executor plumbing ----------------------------------------------
def test_run_cached_uses_default_executor(tmp_path):
    injected = SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))
    previous = set_executor(injected)
    try:
        trace = small_trace()
        a = run_cached(SPEC, trace)
        b = run_cached(SPEC, trace)
        assert a is b
        assert injected.executions == 1
    finally:
        set_executor(previous)


# -- shared-memory trace transport -------------------------------------------
def _distinct_specs(n):
    return [SPEC.with_(seed=i + 1) for i in range(n)]


def test_shm_transport_publishes_each_trace_once(tmp_path):
    """A pool batch over one trace serializes it into one shm segment."""
    executor = SweepExecutor(
        max_workers=2, disk_cache=DiskCache(tmp_path), trace_shm=True
    )
    trace = small_trace()
    try:
        results = executor.run_many([(s, trace) for s in _distinct_specs(4)])
        assert executor.executions == 4
        assert executor._transport is not None
        assert len(executor._transport) == 1  # one distinct trace
        assert len({r.events_fired for r in results}) >= 1
    finally:
        executor.close()
    assert executor._transport is None  # segments unlinked on close


def test_shm_and_inline_transport_results_identical(tmp_path):
    trace = small_trace()
    pairs = [(s, trace) for s in _distinct_specs(3)]
    via_shm = SweepExecutor(
        max_workers=2, disk_cache=None, trace_shm=True
    )
    via_pickle = SweepExecutor(
        max_workers=2, disk_cache=None, trace_shm=False
    )
    try:
        a = via_shm.run_many(pairs)
        b = via_pickle.run_many(pairs)
        assert pickle.dumps(a) == pickle.dumps(b)
        assert via_shm._transport is not None
        assert via_pickle._transport is None
    finally:
        via_shm.close()
        via_pickle.close()


def test_trace_transport_round_trip_and_worker_cache():
    from repro.experiments.parallel import (
        TraceTransport,
        _trace_from_shm,
        _worker_trace_cache,
    )

    transport = TraceTransport()
    trace = small_trace()
    try:
        digest, name, length = transport.publish(trace)
        assert digest == trace.content_digest()
        # Publishing again reuses the segment.
        assert transport.publish(trace) == (digest, name, length)
        assert len(transport) == 1
        _worker_trace_cache.clear()
        loaded = _trace_from_shm(digest, name, length)
        assert [j.task_durations for j in loaded] == [
            j.task_durations for j in trace
        ]
        # Second load is served from the worker-side cache (same object).
        assert _trace_from_shm(digest, name, length) is loaded
    finally:
        transport.close()
        _worker_trace_cache.clear()
    assert len(transport) == 0


def test_trace_shm_env_knob(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_SHM", "0")
    executor = SweepExecutor(max_workers=2, disk_cache=None)
    assert executor.trace_shm is False
    monkeypatch.delenv("REPRO_TRACE_SHM")
    assert SweepExecutor(max_workers=1, disk_cache=None).trace_shm is True


def test_content_digest_memoized_per_instance(monkeypatch):
    """Repeated cache-key computations must not rehash task durations."""
    import repro.workloads.spec as spec_module

    calls = 0
    real = spec_module.blake2b

    def counting(*args, **kwargs):
        nonlocal calls
        calls += 1
        return real(*args, **kwargs)

    monkeypatch.setattr(spec_module, "blake2b", counting)
    trace = small_trace()
    first = trace.content_digest()
    for _ in range(5):
        assert trace.content_digest() == first
        cache_key(SPEC, trace)
    assert calls == 1
