"""Tests for the sweep executor and the two-tier run cache."""

import pickle

import pytest

from repro.experiments.config import RunSpec
from repro.experiments.parallel import (
    CACHE_VERSION,
    DiskCache,
    SweepExecutor,
    cache_key,
    set_executor,
)
from repro.experiments.runner import run_cached
from repro.experiments.sweeps import sweep
from repro.workloads.spec import JobSpec, Trace
from tests.conftest import TEST_CUTOFF, long_job, short_job

SPEC = RunSpec(scheduler="sparrow", n_workers=4, cutoff=TEST_CUTOFF)


def small_trace(name="cache-small"):
    jobs = [long_job(0, 0.0, 3)] + [short_job(i, float(i)) for i in range(1, 5)]
    return Trace(jobs, name=name)


@pytest.fixture
def executor(tmp_path):
    """A serial executor with an isolated on-disk cache."""
    return SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))


# -- cache keying ------------------------------------------------------------
def test_same_shape_different_durations_get_distinct_results(executor):
    """Regression: the old (name, len, rounded totals) trace key collided.

    Both traces have the same name, job count, total task-seconds,
    horizon and first submit time; only the per-job durations differ.
    """
    a = Trace(
        [JobSpec(0, 0.0, (10.0, 30.0)), JobSpec(1, 5.0, (20.0,))], name="twin"
    )
    b = Trace(
        [JobSpec(0, 0.0, (20.0, 20.0)), JobSpec(1, 5.0, (20.0,))], name="twin"
    )
    assert a.total_task_seconds == b.total_task_seconds
    assert a.horizon == b.horizon and len(a) == len(b)
    assert cache_key(SPEC, a) != cache_key(SPEC, b)
    res_a = executor.run_one(SPEC, a)
    res_b = executor.run_one(SPEC, b)
    assert executor.executions == 2  # no silent sharing
    assert res_a != res_b


def test_trace_digest_ignores_name_but_not_content():
    a = small_trace("one")
    b = small_trace("two")
    assert a.content_digest() == b.content_digest()
    c = Trace(list(a) + [short_job(99, 50.0)], name="one")
    assert c.content_digest() != a.content_digest()


def test_cache_key_distinguishes_specs_and_estimate_tags():
    trace = small_trace()
    assert cache_key(SPEC, trace) != cache_key(SPEC.with_(n_workers=5), trace)
    assert cache_key(SPEC, trace) != cache_key(
        SPEC.with_(estimate=lambda s: 1.0, estimate_tag="other"), trace
    )


# -- executor behaviour ------------------------------------------------------
def test_duplicate_submissions_execute_once(executor):
    trace = small_trace()
    results = executor.run_many([(SPEC, trace), (SPEC, trace)])
    assert executor.executions == 1
    assert results[0] is results[1]


def test_parallel_and_serial_results_identical(tmp_path):
    """parallel=N must be bit-identical to the serial path."""
    trace = small_trace()
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=TEST_CUTOFF,
        short_partition_fraction=0.25,
    )
    sparrow = RunSpec(scheduler="sparrow", n_workers=1, cutoff=TEST_CUTOFF)
    serial = SweepExecutor(max_workers=1, disk_cache=None)
    parallel = SweepExecutor(max_workers=2, disk_cache=None)
    try:
        points_serial = sweep(trace, (4, 6), hawk, sparrow, executor=serial)
        points_parallel = sweep(trace, (4, 6), hawk, sparrow, executor=parallel)
    finally:
        parallel.close()
    assert parallel.executions == 4
    assert points_serial == points_parallel  # full RunResult equality


def test_unpicklable_estimate_falls_back_to_in_process(tmp_path):
    """Closure estimators cannot cross the pool; they still execute."""
    trace = small_trace()
    specs = [
        SPEC.with_(estimate=lambda s, k=k: 10.0 * (k + 1), estimate_tag=f"c{k}")
        for k in range(2)
    ]
    executor = SweepExecutor(max_workers=2, disk_cache=None)
    try:
        results = executor.run_many([(s, trace) for s in specs])
    finally:
        executor.close()
    assert executor.executions == 2
    assert all(len(r.jobs) == len(trace) for r in results)


# -- the persistent tier -----------------------------------------------------
def test_disk_cache_survives_new_executor(tmp_path):
    trace = small_trace()
    first = SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))
    res = first.run_one(SPEC, trace)
    assert (first.executions, first.disk_hits) == (1, 0)

    second = SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))
    loaded = second.run_one(SPEC, trace)
    assert (second.executions, second.disk_hits) == (0, 1)
    assert loaded == res  # value-identical across "sessions"
    # and memoized for identity within the new session
    assert second.run_one(SPEC, trace) is loaded


def test_disk_cache_version_partitioning(tmp_path):
    cache = DiskCache(tmp_path)
    assert cache.root.name == f"v{CACHE_VERSION}"


def test_corrupt_disk_entry_is_recomputed(tmp_path):
    trace = small_trace()
    cache = DiskCache(tmp_path)
    first = SweepExecutor(max_workers=1, disk_cache=cache)
    res = first.run_one(SPEC, trace)
    path = cache.path(cache_key(SPEC, trace))
    assert path.is_file()
    path.write_bytes(b"not a pickle")

    second = SweepExecutor(max_workers=1, disk_cache=cache)
    recomputed = second.run_one(SPEC, trace)
    assert (second.executions, second.disk_hits) == (1, 0)
    assert recomputed == res


def test_disk_cache_clear(tmp_path):
    cache = DiskCache(tmp_path)
    executor = SweepExecutor(max_workers=1, disk_cache=cache)
    executor.run_one(SPEC, small_trace())
    assert cache.clear() == 1
    assert cache.load(cache_key(SPEC, small_trace())) is None


def test_run_results_pickle_round_trip(executor):
    """Cluster records must be picklable for the pool and the disk tier."""
    res = executor.run_one(
        RunSpec(
            scheduler="hawk",
            n_workers=4,
            cutoff=TEST_CUTOFF,
            short_partition_fraction=0.25,
        ),
        small_trace(),
    )
    clone = pickle.loads(pickle.dumps(res))
    assert clone == res
    assert clone.stealing == res.stealing
    assert clone.median_utilization() == res.median_utilization()


# -- default-executor plumbing ----------------------------------------------
def test_run_cached_uses_default_executor(tmp_path):
    injected = SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))
    previous = set_executor(injected)
    try:
        trace = small_trace()
        a = run_cached(SPEC, trace)
        b = run_cached(SPEC, trace)
        assert a is b
        assert injected.executions == 1
    finally:
        set_executor(previous)
