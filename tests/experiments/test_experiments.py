"""Tests for the experiment harness: configs, cache, report rendering."""

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments import (
    RunSpec,
    ascii_table,
    build_engine,
    clear_cache,
    execute,
    run_cached,
    sweep_sizes,
)
from repro.experiments.config import high_load_size
from repro.experiments.report import FigureResult, ascii_cdf
from repro.experiments.runner import cache_size
from repro.workloads.spec import JobSpec, Trace
from tests.conftest import TEST_CUTOFF, long_job, short_job


@pytest.fixture
def small_trace():
    jobs = [long_job(0, 0.0, 4)] + [short_job(i, float(i)) for i in range(1, 6)]
    return Trace(jobs, name="exp-small")


# -- RunSpec / build_engine --------------------------------------------------
def test_unknown_scheduler_rejected():
    with pytest.raises(ConfigurationError):
        RunSpec(scheduler="nope", n_workers=4, cutoff=TEST_CUTOFF)


def test_invalid_worker_count_rejected():
    with pytest.raises(ConfigurationError):
        RunSpec(scheduler="hawk", n_workers=0, cutoff=TEST_CUTOFF)


@pytest.mark.parametrize(
    "name, has_stealing, has_partition",
    [
        ("hawk", True, True),
        ("sparrow", False, False),
        ("centralized", False, False),
        ("split", False, True),
        ("hawk-no-centralized", True, True),
        ("hawk-no-partition", True, False),
        ("hawk-no-stealing", False, True),
    ],
)
def test_build_engine_wiring(name, has_stealing, has_partition):
    spec = RunSpec(scheduler=name, n_workers=10, cutoff=TEST_CUTOFF)
    engine = build_engine(spec)
    assert (engine.stealing is not None) == has_stealing
    assert (engine.cluster.n_short > 0) == has_partition


def test_execute_runs_to_completion(small_trace):
    spec = RunSpec(scheduler="hawk", n_workers=6, cutoff=TEST_CUTOFF)
    res = execute(spec, small_trace)
    assert len(res.jobs) == len(small_trace)


def test_with_replaces_fields():
    spec = RunSpec(scheduler="hawk", n_workers=4, cutoff=TEST_CUTOFF)
    other = spec.with_(n_workers=8)
    assert other.n_workers == 8
    assert other.scheduler == "hawk"


# -- run cache -----------------------------------------------------------------
def test_run_cached_memoizes(small_trace):
    clear_cache()
    spec = RunSpec(scheduler="sparrow", n_workers=6, cutoff=TEST_CUTOFF)
    a = run_cached(spec, small_trace)
    before = cache_size()
    b = run_cached(spec, small_trace)
    assert a is b
    assert cache_size() == before


def test_run_cache_distinguishes_specs(small_trace):
    clear_cache()
    a = run_cached(
        RunSpec(scheduler="sparrow", n_workers=6, cutoff=TEST_CUTOFF), small_trace
    )
    b = run_cached(
        RunSpec(scheduler="sparrow", n_workers=7, cutoff=TEST_CUTOFF), small_trace
    )
    assert a is not b


def test_run_cache_distinguishes_estimate_tags(small_trace):
    clear_cache()
    a = run_cached(
        RunSpec(
            scheduler="sparrow",
            n_workers=6,
            cutoff=TEST_CUTOFF,
            estimate=lambda s: 1.0,
            estimate_tag="one",
        ),
        small_trace,
    )
    b = run_cached(
        RunSpec(
            scheduler="sparrow",
            n_workers=6,
            cutoff=TEST_CUTOFF,
            estimate=lambda s: 2.0,
            estimate_tag="two",
        ),
        small_trace,
    )
    assert a is not b


# -- sweep sizing -----------------------------------------------------------------
def test_sweep_sizes_monotone(small_trace):
    sizes = sweep_sizes(small_trace, (2.0, 1.0, 0.5))
    assert list(sizes) == sorted(sizes)
    assert sizes[1] == pytest.approx(
        small_trace.nodes_for_full_utilization(), abs=1
    )


def test_high_load_size_positive(small_trace):
    assert high_load_size(small_trace) >= 3


# -- report rendering ---------------------------------------------------------------
def test_ascii_table_alignment():
    out = ascii_table(("a", "bee"), [(1, 2.5), (10, 0.123456)])
    lines = out.splitlines()
    assert len(lines) == 4
    assert len(set(len(line) for line in lines)) == 1  # equal widths


def test_ascii_table_row_length_mismatch():
    with pytest.raises(ConfigurationError):
        ascii_table(("a",), [(1, 2)])


def test_ascii_table_empty_headers():
    with pytest.raises(ConfigurationError):
        ascii_table((), [])


def test_ascii_cdf_renders():
    out = ascii_cdf([1.0, 2.0, 3.0, 4.0], width=20, height=5, label="x")
    lines = out.splitlines()
    assert len(lines) == 6
    assert "*" in out


def test_ascii_cdf_empty_rejected():
    with pytest.raises(ConfigurationError):
        ascii_cdf([])


def test_figure_result_column_access():
    fig = FigureResult("F", "t", headers=("a", "b"))
    fig.add_row(1, 2)
    fig.add_row(3, 4)
    assert fig.column("b") == [2, 4]
    with pytest.raises(ConfigurationError):
        fig.column("zzz")


def test_figure_result_render_contains_notes():
    fig = FigureResult("F9", "title", headers=("x",))
    fig.add_row(1)
    fig.add_note("hello")
    out = fig.render()
    assert "F9" in out and "hello" in out
