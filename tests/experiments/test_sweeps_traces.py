"""Tests for the sweep helpers and the canonical experiment traces."""

import pytest

from repro.cluster.job import JobClass
from repro.core.errors import ConfigurationError
from repro.experiments.config import RunSpec
from repro.experiments.sweeps import (
    ReplicatedPoint,
    compare_at_size,
    extra_metrics,
    sweep,
)
from repro.experiments.traces import (
    ALL_WORKLOAD_SPECS,
    google_cutoff,
    google_short_fraction,
    google_trace,
    google_trace_factory,
    kmeans_trace_factory,
    kmeans_workload_trace,
)
from repro.metrics.stats import SummaryStats
from repro.workloads.replication import (
    assert_independent,
    replica_seeds,
    replicate_trace,
)
from repro.workloads.spec import Trace
from tests.conftest import TEST_CUTOFF, long_job, short_job


@pytest.fixture(scope="module")
def small_trace():
    jobs = [long_job(0, 0.0, 4), long_job(1, 1.0, 4)]
    jobs += [short_job(10 + i, float(i)) for i in range(8)]
    return Trace(jobs, name="sweep-small")


HAWK = RunSpec(
    scheduler="hawk",
    n_workers=1,
    cutoff=TEST_CUTOFF,
    short_partition_fraction=0.25,
)
SPARROW = RunSpec(scheduler="sparrow", n_workers=1, cutoff=TEST_CUTOFF)


def test_compare_at_size_populates_all_ratios(small_trace):
    point = compare_at_size(small_trace, 8, HAWK, SPARROW)
    assert point.n_workers == 8
    for ratio in (
        point.short_p50_ratio,
        point.short_p90_ratio,
        point.long_p50_ratio,
        point.long_p90_ratio,
    ):
        assert ratio > 0
    assert 0.0 <= point.baseline_median_utilization <= 1.0


def test_sweep_returns_one_point_per_size(small_trace):
    points = sweep(small_trace, (6, 8, 12), HAWK, SPARROW)
    assert [p.n_workers for p in points] == [6, 8, 12]


def test_extra_metrics_bounded(small_trace):
    point = compare_at_size(small_trace, 8, HAWK, SPARROW)
    frac, avg = extra_metrics(point, JobClass.SHORT)
    assert 0.0 <= frac <= 1.0
    assert avg > 0


def _fresh_trace(seed: int) -> Trace:
    """A tiny factory whose draws differ per seed (job ids carry it)."""
    jobs = [long_job(0, 0.0, 4), long_job(1, 1.0, 4)]
    jobs += [short_job(10 + seed * 100 + i, float(i)) for i in range(8)]
    return Trace(jobs, name=f"fresh-{seed}")


def test_sweep_replicated_returns_matched_aggregates(small_trace):
    points = sweep(
        small_trace, (8,), HAWK, SPARROW, n_seeds=3, trace_factory=_fresh_trace
    )
    assert len(points) == 1
    point = points[0]
    assert isinstance(point, ReplicatedPoint)
    assert point.n_seeds == 3
    assert point.seeds == replica_seeds(HAWK.seed, 3)
    # each replica carries a full candidate/baseline pair of runs
    for replica in point.replicas:
        assert replica.candidate != replica.baseline
        assert len(replica.candidate.jobs) == len(replica.baseline.jobs)
    stats = point.stat("short_p50_ratio")
    assert isinstance(stats, SummaryStats)
    assert stats.n == 3
    assert stats.ci_lo <= stats.mean <= stats.ci_hi
    assert isinstance(point.cell("short_p50_ratio"), SummaryStats)


def test_single_seed_sweep_is_degenerate_replication(small_trace):
    """n_seeds=1 carries the historical scalar values bit-for-bit."""
    point = sweep(small_trace, (8,), HAWK, SPARROW)[0]
    assert point.n_seeds == 1
    replica = point.replicas[0]
    assert point.short_p50_ratio == replica.short_p50_ratio
    assert point.baseline_median_utilization == replica.baseline_median_utilization
    assert point.cell("short_p50_ratio") == replica.short_p50_ratio
    assert isinstance(point.cell("short_p50_ratio"), float)
    assert point.candidate is replica.candidate
    stats = point.stat("long_p90_ratio")
    assert stats.ci_lo == stats.ci_hi == replica.long_p90_ratio


def test_extra_metrics_aggregates_over_replicas(small_trace):
    single = sweep(small_trace, (8,), HAWK, SPARROW)[0]
    replicated = sweep(
        small_trace, (8,), HAWK, SPARROW, n_seeds=2, trace_factory=_fresh_trace
    )[0]
    frac_1, avg_1 = extra_metrics(single, JobClass.SHORT)
    frac_n, avg_n = extra_metrics(replicated, JobClass.SHORT)
    # replica 0 of the replicated point is the single-seed run
    assert extra_metrics(replicated.replicas[0], JobClass.SHORT) == (
        frac_1,
        avg_1,
    )
    assert 0.0 <= frac_n <= 1.0 and avg_n > 0


def test_aggregate_applies_metric_per_matched_replica(small_trace):
    point = sweep(
        small_trace, (8,), HAWK, SPARROW, n_seeds=2, trace_factory=_fresh_trace
    )[0]
    stats = point.aggregate(
        lambda cand, base: len(cand.jobs) / len(base.jobs)
    )
    assert stats.n == 2
    assert stats.mean == pytest.approx(1.0)  # same trace within a replica


def test_trace_factories_draw_independent_traces():
    factory = google_trace_factory("quick")
    draws = replicate_trace(factory, 0, 3)
    assert_independent(draws)
    assert draws[0] is google_trace("quick", 0)  # shared per-process cache
    kfactory = kmeans_trace_factory(ALL_WORKLOAD_SPECS[0], "quick")
    assert_independent(replicate_trace(kfactory, 0, 2))


def test_assert_independent_rejects_seed_blind_factory(small_trace):
    with pytest.raises(ConfigurationError):
        assert_independent(replicate_trace(lambda seed: small_trace, 0, 2))


def test_google_trace_cached_per_scale_and_seed():
    a = google_trace("quick", seed=0)
    b = google_trace("quick", seed=0)
    assert a is b
    c = google_trace("quick", seed=1)
    assert c is not a


def test_kmeans_trace_cached():
    spec = ALL_WORKLOAD_SPECS[0]
    a = kmeans_workload_trace(spec, "quick")
    assert kmeans_workload_trace(spec, "quick") is a


def test_google_constants():
    assert google_cutoff() == 1129.0
    assert google_short_fraction() == 0.17


def test_full_scale_traces_are_bigger():
    assert len(google_trace("full")) > len(google_trace("quick"))
