"""Tests for the sweep helpers and the canonical experiment traces."""

import pytest

from repro.cluster.job import JobClass
from repro.experiments.config import RunSpec
from repro.experiments.sweeps import compare_at_size, extra_metrics, sweep
from repro.experiments.traces import (
    ALL_WORKLOAD_SPECS,
    google_cutoff,
    google_short_fraction,
    google_trace,
    kmeans_workload_trace,
)
from repro.workloads.spec import Trace
from tests.conftest import TEST_CUTOFF, long_job, short_job


@pytest.fixture(scope="module")
def small_trace():
    jobs = [long_job(0, 0.0, 4), long_job(1, 1.0, 4)]
    jobs += [short_job(10 + i, float(i)) for i in range(8)]
    return Trace(jobs, name="sweep-small")


HAWK = RunSpec(
    scheduler="hawk",
    n_workers=1,
    cutoff=TEST_CUTOFF,
    short_partition_fraction=0.25,
)
SPARROW = RunSpec(scheduler="sparrow", n_workers=1, cutoff=TEST_CUTOFF)


def test_compare_at_size_populates_all_ratios(small_trace):
    point = compare_at_size(small_trace, 8, HAWK, SPARROW)
    assert point.n_workers == 8
    for ratio in (
        point.short_p50_ratio,
        point.short_p90_ratio,
        point.long_p50_ratio,
        point.long_p90_ratio,
    ):
        assert ratio > 0
    assert 0.0 <= point.baseline_median_utilization <= 1.0


def test_sweep_returns_one_point_per_size(small_trace):
    points = sweep(small_trace, (6, 8, 12), HAWK, SPARROW)
    assert [p.n_workers for p in points] == [6, 8, 12]


def test_extra_metrics_bounded(small_trace):
    point = compare_at_size(small_trace, 8, HAWK, SPARROW)
    frac, avg = extra_metrics(point, JobClass.SHORT)
    assert 0.0 <= frac <= 1.0
    assert avg > 0


def test_google_trace_cached_per_scale_and_seed():
    a = google_trace("quick", seed=0)
    b = google_trace("quick", seed=0)
    assert a is b
    c = google_trace("quick", seed=1)
    assert c is not a


def test_kmeans_trace_cached():
    spec = ALL_WORKLOAD_SPECS[0]
    a = kmeans_workload_trace(spec, "quick")
    assert kmeans_workload_trace(spec, "quick") is a


def test_google_constants():
    assert google_cutoff() == 1129.0
    assert google_short_fraction() == 0.17


def test_full_scale_traces_are_bigger():
    assert len(google_trace("full")) > len(google_trace("quick"))
