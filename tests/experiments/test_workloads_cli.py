"""Tests for the workload-zoo CLI (`python -m repro.experiments.workloads`)."""

import pytest

from repro.experiments import workloads as cli
from repro.workloads import registry


def test_describe_is_the_schema_snapshot_content(capsys):
    assert cli.main(["describe"]) == 0
    assert capsys.readouterr().out == registry.describe()


def test_list_names_every_workload(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    for name in registry.registered_names():
        assert name in out


def test_show_summarizes_a_quick_workload(capsys):
    assert cli.main(["show", "motivation", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "long-job fraction" in out and "trace digest" in out


def test_show_accepts_param_overrides(capsys):
    assert cli.main(
        ["show", "google", "--quick", "--set", "n_jobs=40"]
    ) == 0
    assert "'n_jobs': 40" in capsys.readouterr().out


def test_show_unknown_workload_fails_cleanly(capsys):
    assert cli.main(["show", "nope"]) == 1
    assert "registered workloads" in capsys.readouterr().err


def test_parse_overrides_types_and_errors():
    parsed = cli._parse_overrides(["a=1", "b=2.5", "c=text"])
    assert parsed == {"a": 1, "b": 2.5, "c": "text"}
    with pytest.raises(Exception, match="name=value"):
        cli._parse_overrides(["oops"])


def test_docs_render_every_registry_entry(tmp_path):
    written = cli.write_docs(tmp_path)
    assert sorted(p.name for p in written) == ["policies.md", "workloads.md"]
    workload_docs = (tmp_path / "workloads.md").read_text()
    for name in registry.registered_names():
        assert f"## `{name}`" in workload_docs
    from repro.schedulers import registry as policy_registry

    policy_docs = (tmp_path / "policies.md").read_text()
    for name in policy_registry.registered_names():
        assert f"## `{name}`" in policy_docs


def test_committed_doc_pages_match_live_registries():
    """The committed registry_docs pages must track both registries."""
    from pathlib import Path

    docs_dir = (
        Path(__file__).resolve().parents[2]
        / "benchmarks"
        / "results"
        / "registry_docs"
    )
    assert (docs_dir / "policies.md").read_text() == cli.render_policy_docs()
    assert (docs_dir / "workloads.md").read_text() == cli.render_workload_docs()
