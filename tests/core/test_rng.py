"""Tests for seeded randomness helpers."""

import numpy as np
import pytest

from repro.core.rng import make_rng, sample_without_replacement, spread_sample


def test_same_seed_same_stream_reproduces():
    a = make_rng(42, "x").random(10)
    b = make_rng(42, "x").random(10)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = make_rng(1, "x").random(10)
    b = make_rng(2, "x").random(10)
    assert not np.array_equal(a, b)


def test_different_streams_differ():
    a = make_rng(42, "alpha").random(10)
    b = make_rng(42, "beta").random(10)
    assert not np.array_equal(a, b)


def test_empty_stream_is_valid():
    assert make_rng(0).random() is not None


def test_sample_without_replacement_distinct():
    rng = make_rng(0, "s")
    sample = sample_without_replacement(rng, 100, 30)
    assert len(sample) == 30
    assert len(set(sample)) == 30
    assert all(0 <= x < 100 for x in sample)


def test_sample_without_replacement_full_population():
    rng = make_rng(0, "s")
    sample = sample_without_replacement(rng, 10, 10)
    assert sorted(sample) == list(range(10))


def test_sample_without_replacement_k_zero():
    rng = make_rng(0, "s")
    assert sample_without_replacement(rng, 10, 0) == []


def test_sample_without_replacement_too_many_raises():
    rng = make_rng(0, "s")
    with pytest.raises(ValueError):
        sample_without_replacement(rng, 5, 6)


def test_sample_without_replacement_covers_population():
    """Every element should be reachable (Floyd + shuffle has no holes)."""
    rng = make_rng(0, "s")
    seen = set()
    for _ in range(300):
        seen.update(sample_without_replacement(rng, 10, 3))
    assert seen == set(range(10))


def test_spread_sample_within_population():
    rng = make_rng(0, "s")
    out = spread_sample(rng, range(100, 120), 5)
    assert len(out) == 5
    assert len(set(out)) == 5
    assert all(100 <= x < 120 for x in out)


def test_spread_sample_oversubscribed_is_balanced():
    rng = make_rng(0, "s")
    out = spread_sample(rng, range(4), 10)
    assert len(out) == 10
    counts = {i: out.count(i) for i in range(4)}
    # 10 picks over 4 items: every item 2 or 3 times, never 0 or 4.
    assert set(counts.values()) <= {2, 3}


def test_spread_sample_exact_multiple():
    rng = make_rng(0, "s")
    out = spread_sample(rng, range(5), 15)
    assert all(out.count(i) == 3 for i in range(5))


def test_spread_sample_empty_population_raises():
    rng = make_rng(0, "s")
    with pytest.raises(ValueError):
        spread_sample(rng, [], 1)


def test_spread_sample_deterministic():
    a = spread_sample(make_rng(3, "t"), range(50), 20)
    b = spread_sample(make_rng(3, "t"), range(50), 20)
    assert a == b
