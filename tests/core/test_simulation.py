"""Tests for the discrete-event engine."""

import pytest

from repro.core import Simulation, SimulationError


def test_clock_starts_at_zero():
    assert Simulation().now == 0.0


def test_clock_custom_start():
    assert Simulation(start_time=5.0).now == 5.0


def test_schedule_and_run_single_event():
    sim = Simulation()
    fired = []
    sim.schedule(3.0, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 3.0


def test_events_fire_in_time_order():
    sim = Simulation()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.run()
    assert fired == ["early", "late"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulation()
    fired = []
    for i in range(10):
        sim.schedule(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_same_time_fifo_across_both_schedule_paths():
    """The FIFO contract holds across plain and cancellable entries."""
    sim = Simulation()
    fired = []
    sim.schedule(1.0, fired.append, "plain-0")
    sim.schedule_cancellable(1.0, fired.append, "cancellable-1")
    sim.schedule(1.0, fired.append, "plain-2")
    sim.schedule_cancellable(1.0, fired.append, "cancellable-3")
    sim.run()
    assert fired == ["plain-0", "cancellable-1", "plain-2", "cancellable-3"]


def test_schedule_negative_delay_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_cancellable_negative_delay_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.schedule_cancellable(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulation()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulation()
    fired = []
    handle = sim.schedule_cancellable(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert sim.events_fired == 0


def test_cancel_is_idempotent():
    sim = Simulation()
    handle = sim.schedule_cancellable(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.events_fired == 0


def test_events_can_schedule_new_events():
    sim = Simulation()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            sim.schedule(1.0, chain, depth + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_zero_delay_event_fires_at_current_time():
    sim = Simulation()
    times = []
    sim.schedule(5.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [5.0]


def test_run_until_stops_before_later_events():
    sim = Simulation()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_is_inclusive():
    sim = Simulation()
    fired = []
    sim.schedule(5.0, fired.append, "edge")
    sim.run(until=5.0)
    assert fired == ["edge"]


def test_run_until_advances_clock_when_no_events():
    sim = Simulation()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_until_fires_cancellable_events():
    sim = Simulation()
    fired = []
    sim.schedule_cancellable(1.0, fired.append, "live")
    sim.schedule_cancellable(2.0, fired.append, "dead").cancel()
    sim.run(until=5.0)
    assert fired == ["live"]
    assert sim.now == 5.0


def test_max_events_budget_raises():
    sim = Simulation()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimulationError, match="budget"):
        sim.run(max_events=100)


def test_max_events_budget_counts_logical_events():
    """A batched delivery spends its full logical count of the budget."""
    sim = Simulation()

    def batch_of(k):
        sim.add_logical_events(k - 1)
        sim.schedule(1.0, batch_of, k)

    sim.schedule(1.0, batch_of, 10)
    with pytest.raises(SimulationError, match="budget"):
        sim.run(max_events=100)
    # 100-event budget, 10 logical events per pop: ~10 pops, not 100.
    assert sim.events_fired <= 110


def test_events_fired_counts_only_executed():
    sim = Simulation()
    sim.schedule(1.0, lambda: None)
    handle = sim.schedule_cancellable(2.0, lambda: None)
    handle.cancel()
    sim.run()
    assert sim.events_fired == 1


def test_add_logical_events_counts_batched_deliveries():
    sim = Simulation()
    sim.schedule(1.0, sim.add_logical_events, 4)
    sim.run()
    assert sim.events_fired == 5  # one pop, five logical deliveries


def test_step_fires_one_event():
    sim = Simulation()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == ["a", "b"]


def test_step_skips_cancelled_events():
    sim = Simulation()
    fired = []
    sim.schedule_cancellable(1.0, fired.append, "a").cancel()
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["b"]


def test_step_fires_cancellable_events():
    sim = Simulation()
    fired = []
    sim.schedule_cancellable(1.0, fired.append, "a")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.events_fired == 1


def test_run_not_reentrant():
    sim = Simulation()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_pending_events_counts_heap_entries():
    sim = Simulation()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2


def test_cancelled_entries_compact_when_they_dominate():
    """Cancelled handles may not grow the heap without bound (park/wake
    churn used to accumulate them until their timestamps drained)."""
    sim = Simulation()
    sim.schedule(1000.0, lambda: None)  # one live far-future event
    for _ in range(500):
        sim.schedule_cancellable(999.0, lambda: None).cancel()
    # Lazy compaction keeps the heap bounded by ~2x the live entries.
    assert sim.pending_events <= 3
    sim.run()
    assert sim.events_fired == 1
    assert sim.now == 1000.0


def test_compaction_during_run_keeps_later_events():
    """Regression: compaction triggered by a callback mid-run() must not
    strand the event loop on a stale heap — events scheduled after the
    compaction still fire, in order."""
    sim = Simulation()
    fired = []
    handles = [sim.schedule_cancellable(50.0, fired.append, "dead") for _ in range(64)]

    def cancel_everything_then_chain():
        for handle in handles:
            handle.cancel()  # crosses the compaction threshold mid-run
        sim.schedule(1.0, fired.append, "after-compaction")
        sim.schedule_cancellable(2.0, fired.append, "cancellable-after")

    sim.schedule(1.0, cancel_everything_then_chain)
    sim.run()
    assert fired == ["after-compaction", "cancellable-after"]
    assert sim.pending_events == 0
    assert sim.now == 3.0


def test_compaction_during_step_keeps_later_events():
    sim = Simulation()
    fired = []
    handles = [sim.schedule_cancellable(50.0, fired.append, "dead") for _ in range(64)]
    sim.schedule(1.0, lambda: [h.cancel() for h in handles])
    sim.schedule(2.0, fired.append, "later")
    assert sim.step() is True  # fires the mass-cancel (compacts)
    assert sim.step() is True
    assert fired == ["later"]
    assert sim.step() is False


def test_compaction_preserves_live_events_and_order():
    sim = Simulation()
    fired = []
    handles = [
        sim.schedule_cancellable(float(i), fired.append, i) for i in range(20)
    ]
    for handle in handles[::2]:
        handle.cancel()  # triggers several compactions along the way
    sim.run()
    assert fired == list(range(1, 20, 2))


def test_callback_args_are_passed():
    sim = Simulation()
    got = []
    sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "two")
    sim.run()
    assert got == [(1, "two")]


def test_interleaved_schedule_and_run_preserve_order():
    sim = Simulation()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.run()
    sim.schedule(1.0, fired.append, 2)
    sim.run()
    assert fired == [1, 2]
    assert sim.now == 2.0


def test_large_event_volume_ordering():
    sim = Simulation()
    fired = []
    import random

    rng = random.Random(7)
    times = [rng.uniform(0, 100) for _ in range(2000)]
    for t in times:
        sim.schedule(t, fired.append, t)
    sim.run()
    assert fired == sorted(times)


# -- reschedule_fired (handle reuse on the retry hot path) ------------------
def test_reschedule_fired_rearms_a_fired_handle():
    sim = Simulation()
    fired = []
    handle = sim.schedule_cancellable(1.0, fired.append, "first")
    sim.run(until=1.0)
    assert fired == ["first"]
    # reuse the popped handle for a second firing at a later time
    sim.reschedule_fired(handle, 2.0)
    assert handle.time == 3.0
    sim.run(until=5.0)
    assert fired == ["first", "first"]  # same callback and args fire again


def test_reschedule_fired_negative_delay_rejected():
    sim = Simulation()
    handle = sim.schedule_cancellable(1.0, lambda *_: None)
    sim.run(until=1.0)
    with pytest.raises(SimulationError):
        sim.reschedule_fired(handle, -0.5)


def test_reschedule_fired_preserves_event_order_and_cancel():
    sim = Simulation()
    fired = []
    handle = sim.schedule_cancellable(1.0, fired.append, "reused")
    sim.run(until=1.0)
    # re-armed handle interleaves with fresh events in (time, seq) order
    sim.schedule(1.0, fired.append, "before")
    sim.reschedule_fired(handle, 1.0)
    sim.schedule(1.0, fired.append, "after")
    sim.run(until=2.0)
    assert fired == ["reused", "before", "reused", "after"]
    # a re-armed handle can still be cancelled like a fresh one
    sim.reschedule_fired(handle, 1.0)
    handle.cancel()
    sim.run(until=10.0)
    assert fired == ["reused", "before", "reused", "after"]


def test_run_restores_gc_state():
    import gc

    sim = Simulation()
    sim.schedule(1.0, lambda: None)
    assert gc.isenabled()
    sim.run()  # disables the collector for the loop, restores after
    assert gc.isenabled()
    gc.disable()
    try:
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert not gc.isenabled()  # left alone when the caller disabled it
    finally:
        gc.enable()
