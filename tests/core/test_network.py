"""Tests for the network-delay model."""

import pytest

from repro.core import ConfigurationError, NetworkModel
from repro.core.network import DEFAULT_NETWORK_DELAY_S
from repro.core.rng import make_rng


def test_default_delay_is_half_millisecond():
    assert DEFAULT_NETWORK_DELAY_S == 0.0005
    assert NetworkModel().sample() == 0.0005


def test_constant_delay_no_jitter():
    model = NetworkModel(0.002)
    assert all(model.sample() == 0.002 for _ in range(5))


def test_round_trip_is_two_samples():
    assert NetworkModel(0.001).round_trip() == pytest.approx(0.002)


def test_jitter_within_bounds():
    model = NetworkModel(0.01, jitter=0.5, rng=make_rng(0, "net"))
    for _ in range(200):
        d = model.sample()
        assert 0.005 <= d <= 0.015


def test_jitter_actually_varies():
    model = NetworkModel(0.01, jitter=0.5, rng=make_rng(0, "net"))
    samples = {model.sample() for _ in range(10)}
    assert len(samples) > 1


def test_negative_delay_rejected():
    with pytest.raises(ConfigurationError):
        NetworkModel(-1.0)


def test_jitter_out_of_range_rejected():
    with pytest.raises(ConfigurationError):
        NetworkModel(0.001, jitter=1.0, rng=make_rng(0, "net"))


def test_jitter_requires_rng():
    with pytest.raises(ConfigurationError):
        NetworkModel(0.001, jitter=0.1)


def test_zero_delay_allowed():
    assert NetworkModel(0.0).sample() == 0.0
