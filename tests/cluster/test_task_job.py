"""Tests for the task and job state machines."""

import pytest

from repro.cluster.job import Job, JobClass, classify
from repro.cluster.task import TaskState
from repro.core.errors import SimulationError


def make_job(durations=(10.0, 20.0), cutoff=100.0, estimate=None):
    mean = sum(durations) / len(durations)
    return Job(
        job_id=1,
        submit_time=5.0,
        task_durations=durations,
        estimated_task_duration=estimate if estimate is not None else mean,
        cutoff=cutoff,
    )


# -- classification ----------------------------------------------------
def test_classify_below_cutoff_is_short():
    assert classify(99.9, 100.0) is JobClass.SHORT


def test_classify_at_cutoff_is_long():
    assert classify(100.0, 100.0) is JobClass.LONG


def test_job_scheduled_class_uses_estimate():
    job = make_job(durations=(10.0, 10.0), estimate=500.0)
    assert job.scheduled_class is JobClass.LONG
    assert job.true_class is JobClass.SHORT


def test_job_true_class_uses_true_mean():
    job = make_job(durations=(1000.0, 1000.0), estimate=10.0)
    assert job.scheduled_class is JobClass.SHORT
    assert job.true_class is JobClass.LONG


# -- task lifecycle -----------------------------------------------------
def test_task_initial_state():
    job = make_job()
    task = job.tasks[0]
    assert task.state is TaskState.PENDING
    assert task.worker_id is None


def test_task_start_finish_records_times():
    job = make_job()
    task = job.tasks[0]
    task.start(worker_id=3, now=7.0)
    assert task.state is TaskState.RUNNING
    assert task.worker_id == 3
    task.finish(now=17.0)
    assert task.state is TaskState.FINISHED
    assert task.finish_time == 17.0


def test_task_wait_time_measures_queueing():
    job = make_job()  # submitted at 5.0
    task = job.tasks[0]
    task.start(worker_id=0, now=9.0)
    assert task.wait_time == pytest.approx(4.0)


def test_task_wait_time_before_start_raises():
    with pytest.raises(SimulationError):
        make_job().tasks[0].wait_time


def test_task_double_start_rejected():
    task = make_job().tasks[0]
    task.start(0, 0.0)
    with pytest.raises(SimulationError):
        task.start(1, 1.0)


def test_task_finish_without_start_rejected():
    with pytest.raises(SimulationError):
        make_job().tasks[0].finish(1.0)


def test_task_nonpositive_duration_rejected():
    with pytest.raises(SimulationError):
        make_job(durations=(0.0,))


# -- job completion -----------------------------------------------------
def test_job_completes_after_all_tasks():
    job = make_job(durations=(10.0, 20.0, 30.0))
    assert not job.record_task_finish(15.0)
    assert not job.record_task_finish(25.0)
    assert job.record_task_finish(35.0)
    assert job.is_complete
    assert job.completion_time == 35.0
    assert job.runtime == pytest.approx(30.0)  # submitted at 5.0


def test_job_runtime_before_completion_raises():
    with pytest.raises(SimulationError):
        make_job().runtime


def test_job_too_many_finishes_rejected():
    job = make_job(durations=(10.0,))
    job.record_task_finish(1.0)
    with pytest.raises(SimulationError):
        job.record_task_finish(2.0)


def test_job_with_no_tasks_rejected():
    with pytest.raises(SimulationError):
        Job(1, 0.0, (), 1.0, 100.0)


def test_job_task_seconds():
    assert make_job(durations=(10.0, 20.0)).task_seconds == 30.0


def test_job_true_mean():
    assert make_job(durations=(10.0, 20.0)).true_mean_task_duration == 15.0


def test_unfinished_tasks_shrinks():
    job = make_job(durations=(10.0, 20.0))
    task = job.tasks[0]
    task.start(0, 0.0)
    task.finish(10.0)
    assert job.unfinished_tasks() == [job.tasks[1]]
