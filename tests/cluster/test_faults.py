"""Deterministic fault injection: plans, chaos hooks, cache identity."""

import pickle

import pytest

from repro.cluster.faults import FaultPlan
from repro.core.errors import ConfigurationError, SimulationError
from repro.experiments.config import RunSpec, build_engine, execute
from repro.experiments.parallel import (
    DiskCache,
    SweepExecutor,
    cache_key,
    spec_digest,
)
from repro.workloads.spec import Trace
from tests.conftest import TEST_CUTOFF, long_job, short_job

#: Every fault family active at once — the torture plan.
CHAOS = dict(
    crash_fraction=0.25,
    crash_start=1.0,
    crash_window=60.0,
    restart_delay=30.0,
    msg_loss=0.2,
    msg_extra_delay=0.05,
    msg_extra_delay_prob=0.3,
    straggler_fraction=0.2,
    straggler_slowdown=2.0,
    central_outage_start=5.0,
    central_outage_duration=40.0,
)


def chaos_trace(name="chaos"):
    jobs = [long_job(0, 0.0, 4), long_job(1, 2.0, 4)]
    jobs.extend(short_job(10 + i, 1.0 + 2.0 * i, 3) for i in range(12))
    return Trace(jobs, name=name)


def spec_for(scheduler="hawk", faults=None, seed=0):
    return RunSpec(
        scheduler=scheduler,
        n_workers=12,
        cutoff=TEST_CUTOFF,
        seed=seed,
        faults=faults,
    )


# -- plan construction and cache identity ------------------------------------
def test_empty_plan_normalizes_to_none():
    assert FaultPlan().is_empty
    assert FaultPlan.of().is_empty
    spec = spec_for(faults=FaultPlan())
    assert spec.faults is None
    assert spec == spec_for()
    assert spec_digest(spec) == spec_digest(spec_for())


def test_plan_accepts_mapping_and_validates():
    spec = spec_for(faults={"crash_fraction": 0.1})
    assert isinstance(spec.faults, FaultPlan)
    assert spec.faults.param("crash_fraction") == 0.1
    with pytest.raises(ConfigurationError):
        FaultPlan.of(crash_fraction=0.6)  # above the schema maximum
    with pytest.raises(ConfigurationError):
        FaultPlan.of(no_such_knob=1.0)


def test_fault_plans_move_the_cache_digest():
    base = spec_for()
    faulted = spec_for(faults=FaultPlan.of(crash_fraction=0.1))
    harder = spec_for(faults=FaultPlan.of(crash_fraction=0.2))
    digests = {spec_digest(base), spec_digest(faulted), spec_digest(harder)}
    assert len(digests) == 3
    trace = chaos_trace()
    assert cache_key(base, trace) != cache_key(faulted, trace)


def test_fault_free_run_bytes_unchanged_by_empty_plan():
    trace = chaos_trace()
    plain = execute(spec_for(), trace)
    empty = execute(spec_for(faults=FaultPlan()), trace)
    assert pickle.dumps(plain) == pickle.dumps(empty)


# -- determinism across execution paths --------------------------------------
@pytest.mark.parametrize("scheduler", ["hawk", "sparrow", "centralized"])
def test_fault_run_deterministic(scheduler):
    trace = chaos_trace()
    spec = spec_for(scheduler, faults=FaultPlan.of(**CHAOS))
    first = execute(spec, trace)
    second = execute(spec, trace)
    assert pickle.dumps(first) == pickle.dumps(second)
    assert len(first.jobs) == len(trace)
    assert sum(j.retried_tasks for j in first.jobs) > 0


def test_fault_run_identical_across_serial_pool_and_cache(tmp_path):
    trace = chaos_trace()
    specs = [
        spec_for("hawk", faults=FaultPlan.of(**CHAOS)),
        spec_for("sparrow", faults=FaultPlan.of(**CHAOS)),
    ]
    serial = SweepExecutor(max_workers=1, disk_cache=None)
    pool = SweepExecutor(max_workers=2, disk_cache=None)
    writer = SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))
    expected = serial.run_many([(s, trace) for s in specs])
    pooled = pool.run_many([(s, trace) for s in specs])
    writer.run_many([(s, trace) for s in specs])
    reader = SweepExecutor(max_workers=1, disk_cache=DiskCache(tmp_path))
    cached = reader.run_many([(s, trace) for s in specs])
    assert reader.disk_hits == 2
    for want, via_pool, via_cache in zip(expected, pooled, cached):
        assert pickle.dumps(want) == pickle.dumps(via_pool)
        assert pickle.dumps(want) == pickle.dumps(via_cache)


# -- crash semantics ---------------------------------------------------------
def test_crashed_workers_requeue_tasks_and_jobs_complete():
    trace = chaos_trace()
    plan = FaultPlan.of(
        crash_fraction=0.5, crash_start=1.0, crash_window=40.0,
        restart_delay=25.0,
    )
    engine = build_engine(spec_for("sparrow", faults=plan))
    result = engine.run(trace)
    faults = engine._faults
    assert faults is not None
    assert faults.crashes > 0
    assert faults.restarts == faults.crashes
    assert faults.tasks_requeued > 0
    assert len(result.jobs) == len(trace)
    assert sum(j.retried_tasks for j in result.jobs) == faults.tasks_requeued
    assert all(j.completion_time > j.submit_time for j in result.jobs)


def test_permanently_dead_workers_do_not_strand_jobs():
    trace = chaos_trace()
    plan = FaultPlan.of(
        crash_fraction=0.5, crash_start=1.0, crash_window=40.0,
        restart_delay=0.0,  # never restart
    )
    engine = build_engine(spec_for("sparrow", faults=plan))
    result = engine.run(trace)
    faults = engine._faults
    assert faults.crashes > 0
    assert faults.restarts == 0
    assert len(result.jobs) == len(trace)


# -- centralized outage / graceful degradation --------------------------------
def test_centralized_defers_jobs_during_outage():
    trace = chaos_trace()
    plan = FaultPlan.of(central_outage_start=5.0, central_outage_duration=40.0)
    engine = build_engine(spec_for("centralized", faults=plan))
    result = engine.run(trace)
    assert engine.scheduler.jobs_deferred > 0
    assert len(result.jobs) == len(trace)
    # A job submitted inside the outage cannot start (so cannot finish)
    # before the window ends.
    for record in result.jobs:
        if 5.0 <= record.submit_time < 45.0:
            assert record.completion_time > 45.0


def test_hawk_degrades_long_jobs_to_probes_during_outage():
    trace = chaos_trace()
    plan = FaultPlan.of(central_outage_start=0.0, central_outage_duration=10.0)
    engine = build_engine(spec_for("hawk", faults=plan))
    result = engine.run(trace)
    # Both long jobs arrive inside the outage: they go through the
    # degraded distributed path instead of waiting for the scheduler.
    assert engine.scheduler.degraded_long_jobs == 2
    # Nothing waited in the centralized scheduler's deferral queue.
    assert engine.scheduler._long.jobs_deferred == 0
    assert len(result.jobs) == len(trace)


def test_hawk_short_jobs_unaffected_by_centralized_outage():
    trace = chaos_trace()
    plan = FaultPlan.of(central_outage_start=5.0, central_outage_duration=40.0)
    plain = execute(spec_for("hawk"), trace)
    faulted = execute(spec_for("hawk", faults=plan), trace)
    plain_short = {
        j.job_id: j.completion_time for j in plain.jobs if j.job_id >= 10
    }
    faulted_short = {
        j.job_id: j.completion_time for j in faulted.jobs if j.job_id >= 10
    }
    # Short jobs never touch the centralized scheduler, and the degraded
    # long path only adds probes; shorts should be barely moved.
    for job_id, baseline in plain_short.items():
        assert faulted_short[job_id] == pytest.approx(baseline, rel=0.25)


# -- stragglers ---------------------------------------------------------------
def test_stragglers_slow_the_run_down():
    trace = chaos_trace()
    plan = FaultPlan.of(straggler_fraction=0.9, straggler_slowdown=4.0)
    plain = execute(spec_for("sparrow"), trace)
    slowed = execute(spec_for("sparrow", faults=plan), trace)
    assert slowed.end_time > plain.end_time
    assert len(slowed.jobs) == len(trace)


# -- message chaos ------------------------------------------------------------
def test_message_loss_delays_but_never_drops_work():
    trace = chaos_trace()
    plan = FaultPlan.of(msg_loss=0.5)
    plain = execute(spec_for("sparrow"), trace)
    lossy = execute(spec_for("sparrow", faults=plan), trace)
    assert len(lossy.jobs) == len(trace)
    # Retransmissions push completions later on average.
    assert sum(j.completion_time for j in lossy.jobs) > sum(
        j.completion_time for j in plain.jobs
    )


# -- guard rails --------------------------------------------------------------
def test_attach_faults_after_run_starts_is_rejected():
    engine = build_engine(spec_for("sparrow"))
    engine.run(chaos_trace())
    with pytest.raises(SimulationError):
        engine.attach_faults(FaultPlan.of(crash_fraction=0.1))
