"""Event-ordering contract of the batched transport fast paths.

The engine's transport batching (grouped probe/task deliveries, fused
probe round trips) is a pure transport optimization: every observable —
delivery order, timestamps, task placements, completion times, stealing
statistics and the logical ``events_fired`` count — must be bit-identical
to the per-message event path.  These tests hold it to that.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cluster import ClusterEngine
from repro.experiments.config import RunSpec, build_engine
from repro.workloads.spec import JobSpec, Trace


def job(job_id, submit, *durations):
    return JobSpec(
        job_id=job_id, submit_time=submit, task_durations=tuple(durations)
    )


@pytest.fixture
def mixed_trace():
    """Short and long jobs with same-timestamp submissions and contention."""
    jobs = [
        job(0, 0.0, *([800.0] * 3)),  # long, centrally placed under hawk
        job(1, 0.0, 2.0, 3.0, 4.0),  # short, same submit instant as job 0
        job(2, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
        job(3, 1.0, *([900.0] * 2)),
        job(4, 1.0, 5.0),
        job(5, 2.0, 0.5, 0.5, 0.5, 0.5),
    ]
    return Trace(jobs, name="transport-mix")


def run_result(scheduler: str, trace, batched: bool, seed: int = 7):
    spec = RunSpec(
        scheduler=scheduler, n_workers=6, cutoff=100.0, seed=seed
    )
    engine = build_engine(spec)
    engine.transport_batching = batched
    return engine.run(trace)


@pytest.mark.parametrize(
    "scheduler", ["sparrow", "hawk", "centralized", "split", "omniscient"]
)
def test_batched_and_unbatched_runs_are_bit_identical(scheduler, mixed_trace):
    batched = run_result(scheduler, mixed_trace, batched=True)
    unbatched = run_result(scheduler, mixed_trace, batched=False)
    assert pickle.dumps(batched) == pickle.dumps(unbatched)


def test_batched_preserves_logical_event_count(mixed_trace):
    """events_fired counts message arrivals, not heap pops."""
    batched = run_result("sparrow", mixed_trace, batched=True)
    unbatched = run_result("sparrow", mixed_trace, batched=False)
    assert batched.events_fired == unbatched.events_fired
    # The batched engine must actually be doing less heap work: rebuild
    # and count physical pops via the sim's pending-events bookkeeping.
    spec = RunSpec(scheduler="sparrow", n_workers=6, cutoff=100.0, seed=7)
    pops = {}
    for flag in (True, False):
        engine = build_engine(spec)
        engine.transport_batching = flag
        engine.run(mixed_trace)
        pops[flag] = engine.sim._seq  # events pushed == events popped
    assert pops[True] < pops[False]


def test_batched_delivery_preserves_same_timestamp_fifo(mixed_trace):
    """Probe groups land in target order, interleaved with other events
    exactly as the per-message path interleaves them (same seq window)."""
    order_batched: list[int] = []
    order_unbatched: list[int] = []
    for flag, sink in ((True, order_batched), (False, order_unbatched)):
        spec = RunSpec(scheduler="sparrow", n_workers=6, cutoff=100.0, seed=7)
        engine = build_engine(spec)
        engine.transport_batching = flag
        original = ClusterEngine._deliver_entry

        def spy(self, worker_id, entry, _sink=sink, _orig=original):
            _sink.append(worker_id)
            _orig(self, worker_id, entry)

        engine._deliver_entry = spy.__get__(engine)
        # _deliver_batch routes through worker enqueue directly; wrap it
        # too so both paths record delivery order.
        original_batch = ClusterEngine._deliver_batch

        def spy_batch(self, worker_ids, entries, _sink=sink):
            _sink.extend(worker_ids)
            return original_batch(self, worker_ids, entries)

        engine._deliver_batch = spy_batch.__get__(engine)
        engine.run(mixed_trace)
    assert order_batched == order_unbatched


def test_determinism_same_seed_same_bytes_through_fused_path(mixed_trace):
    """Same seed ⇒ same RunResult bytes on the default (fused) path."""
    a = run_result("hawk", mixed_trace, batched=True, seed=11)
    b = run_result("hawk", mixed_trace, batched=True, seed=11)
    assert pickle.dumps(a) == pickle.dumps(b)
    c = run_result("hawk", mixed_trace, batched=True, seed=12)
    assert pickle.dumps(a) != pickle.dumps(c)


def test_stealing_engine_agrees_across_transports(mixed_trace):
    """Hawk (probes + central placement + stealing retries) is the
    worst-case interleaving; stealing stats must agree too."""
    batched = run_result("hawk", mixed_trace, batched=True)
    unbatched = run_result("hawk", mixed_trace, batched=False)
    assert batched.stealing == unbatched.stealing
    assert [j.completion_time for j in batched.jobs] == [
        j.completion_time for j in unbatched.jobs
    ]
