"""Tests for result records: JobRecord, UtilizationSample, StealingStats,
RunResult helpers."""

import pytest

from repro.cluster.job import JobClass
from repro.cluster.records import (
    JobRecord,
    RunResult,
    StealingStats,
    UtilizationSample,
)


def record(job_id, runtime, cls=JobClass.SHORT, stolen=0):
    return JobRecord(
        job_id=job_id,
        submit_time=100.0,
        completion_time=100.0 + runtime,
        num_tasks=2,
        true_mean_task_duration=runtime / 2,
        estimated_task_duration=runtime / 2,
        task_seconds=runtime,
        scheduled_class=cls,
        true_class=cls,
        stolen_tasks=stolen,
    )


def result(records, utilization=()):
    return RunResult(
        scheduler_name="x",
        n_workers=4,
        jobs=tuple(records),
        utilization=tuple(utilization),
    )


def test_job_record_runtime():
    assert record(0, 42.0).runtime == pytest.approx(42.0)


def test_job_record_immutable():
    r = record(0, 1.0)
    with pytest.raises(AttributeError):
        r.job_id = 5


def test_utilization_sample_ratio():
    s = UtilizationSample(time=100.0, busy_workers=3, total_workers=4)
    assert s.utilization == 0.75


def test_stealing_stats_success_rate():
    stats = StealingStats(rounds=10, successful_rounds=4)
    assert stats.success_rate == 0.4


def test_stealing_stats_zero_rounds():
    assert StealingStats().success_rate == 0.0


def test_runtimes_no_filter_returns_all():
    res = result([record(0, 1.0), record(1, 2.0, JobClass.LONG)])
    assert sorted(res.runtimes()) == [1.0, 2.0]


def test_runtimes_filters_true_class():
    res = result([record(0, 1.0), record(1, 2.0, JobClass.LONG)])
    assert res.runtimes(JobClass.LONG) == [2.0]
    assert res.runtimes(JobClass.SHORT) == [1.0]


def test_records_filter():
    res = result([record(0, 1.0), record(1, 2.0, JobClass.LONG)])
    assert [r.job_id for r in res.records(JobClass.LONG)] == [1]


def test_median_utilization_odd_and_even():
    def s(u):
        return UtilizationSample(0.0, int(u * 100), 100)

    odd = result([record(0, 1.0)], [s(0.1), s(0.5), s(0.9)])
    assert odd.median_utilization() == pytest.approx(0.5)
    even = result([record(0, 1.0)], [s(0.2), s(0.4), s(0.6), s(0.8)])
    assert even.median_utilization() == pytest.approx(0.5)


def test_max_utilization():
    def s(u):
        return UtilizationSample(0.0, int(u * 100), 100)

    res = result([record(0, 1.0)], [s(0.1), s(0.97)])
    assert res.max_utilization() == pytest.approx(0.97)


def test_default_stealing_stats_are_zero():
    res = result([record(0, 1.0)])
    assert res.stealing.entries_stolen == 0
    assert res.stealing.rounds == 0
