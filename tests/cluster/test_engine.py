"""Integration tests for the run engine: the probe protocol, completion
accounting, utilization sampling and determinism."""

import pytest

from repro.cluster import Cluster, ClusterEngine, EngineConfig, JobClass
from repro.core.errors import ConfigurationError, SimulationError
from repro.schedulers import SparrowScheduler
from repro.workloads.spec import JobSpec, Trace
from tests.conftest import TEST_CUTOFF, job, make_engine, short_job


def run_sparrow(trace, n_workers=8, seed=0, **cfg):
    engine = ClusterEngine(
        Cluster(n_workers),
        SparrowScheduler(),
        EngineConfig(cutoff=TEST_CUTOFF, seed=seed, **cfg),
    )
    return engine.run(trace)


def test_single_job_completes(short_only_trace):
    res = run_sparrow(short_only_trace)
    assert len(res.jobs) == len(short_only_trace)
    assert all(r.completion_time > r.submit_time for r in res.jobs)


def test_empty_trace_rejected():
    engine = make_engine("sparrow")
    with pytest.raises(ConfigurationError):
        engine.run([])


def test_single_task_job_runtime_close_to_duration():
    trace = Trace([job(0, 0.0, 10.0)], name="one")
    res = run_sparrow(trace, n_workers=4)
    # duration + probe RTT (2 x 0.5 ms) + probe delivery (0.5 ms)
    assert res.jobs[0].runtime == pytest.approx(10.0, abs=0.01)


def test_parallel_tasks_run_concurrently():
    trace = Trace([job(0, 0.0, *([10.0] * 4))], name="par")
    res = run_sparrow(trace, n_workers=8)
    # 4 tasks on 8 free workers: runtime ~ one task duration, not four.
    assert res.jobs[0].runtime < 11.0


def test_queueing_when_single_worker():
    trace = Trace([job(0, 0.0, 10.0, 10.0, 10.0)], name="q")
    res = run_sparrow(trace, n_workers=1)
    # One worker: tasks serialize, runtime >= 30 s.
    assert res.jobs[0].runtime >= 30.0


def test_fifo_order_on_single_worker():
    trace = Trace([job(0, 0.0, 10.0), job(1, 1.0, 10.0)], name="fifo")
    res = run_sparrow(trace, n_workers=1)
    first = next(r for r in res.jobs if r.job_id == 0)
    second = next(r for r in res.jobs if r.job_id == 1)
    assert first.completion_time < second.completion_time


def test_records_have_true_and_scheduled_classes(tiny_trace):
    res = run_sparrow(tiny_trace)
    classes = {r.job_id: r.true_class for r in res.jobs}
    assert classes[0] is JobClass.LONG
    assert classes[10] is JobClass.SHORT


def test_record_task_seconds_matches_spec(tiny_trace):
    res = run_sparrow(tiny_trace)
    by_id = {s.job_id: s for s in tiny_trace}
    for record in res.jobs:
        assert record.task_seconds == pytest.approx(
            by_id[record.job_id].task_seconds
        )


def test_utilization_samples_taken_every_interval(tiny_trace):
    res = run_sparrow(tiny_trace, utilization_interval=100.0)
    assert len(res.utilization) >= 2
    times = [s.time for s in res.utilization]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(100.0) for g in gaps)


def test_utilization_values_bounded(tiny_trace):
    res = run_sparrow(tiny_trace)
    for sample in res.utilization:
        assert 0.0 <= sample.utilization <= 1.0


def test_busy_cluster_reports_full_utilization():
    # 6 long tasks on 2 workers: the cluster is saturated for a long time.
    trace = Trace([job(0, 0.0, *([1000.0] * 6))], name="sat")
    res = run_sparrow(trace, n_workers=2)
    assert res.max_utilization() == 1.0


def test_events_fired_positive(tiny_trace):
    res = run_sparrow(tiny_trace)
    assert res.events_fired > 0
    assert res.end_time > 0


def test_same_seed_bitwise_identical_results(tiny_trace):
    a = run_sparrow(tiny_trace, seed=5)
    b = run_sparrow(tiny_trace, seed=5)
    assert [r.completion_time for r in a.jobs] == [
        r.completion_time for r in b.jobs
    ]
    assert a.events_fired == b.events_fired


def test_different_seed_changes_placement(tiny_trace):
    a = run_sparrow(tiny_trace, seed=1)
    b = run_sparrow(tiny_trace, seed=2)
    assert [r.completion_time for r in a.jobs] != [
        r.completion_time for r in b.jobs
    ]


def test_max_events_guard_trips():
    trace = Trace([short_job(i, 0.0) for i in range(10)], name="m")
    with pytest.raises(SimulationError):
        run_sparrow(trace, max_events=5)


def test_all_schedulers_complete_all_jobs(tiny_trace):
    for name in ("sparrow", "hawk", "centralized", "split"):
        engine = make_engine(name)
        res = engine.run(tiny_trace)
        assert len(res.jobs) == len(tiny_trace), name
        assert all(r.completion_time >= r.submit_time for r in res.jobs), name


def test_no_task_runs_twice(tiny_trace):
    """Engine-level invariant: tasks executed == tasks in trace."""
    engine = make_engine("hawk")
    res = engine.run(tiny_trace)
    executed = sum(w.tasks_executed for w in engine.cluster.workers)
    assert executed == sum(s.num_tasks for s in tiny_trace)
    assert res.events_fired == engine.sim.events_fired


def test_workers_idle_after_run(tiny_trace):
    engine = make_engine("hawk")
    engine.run(tiny_trace)
    for worker in engine.cluster.workers:
        assert worker.current_task is None
        assert not worker.queue or all(
            hasattr(e, "frontend") for e in worker.queue
        )


def test_runtimes_filter_by_class(tiny_trace):
    res = run_sparrow(tiny_trace)
    all_rt = res.runtimes()
    short_rt = res.runtimes(JobClass.SHORT)
    long_rt = res.runtimes(JobClass.LONG)
    assert len(all_rt) == len(short_rt) + len(long_rt)
    assert len(long_rt) == 2


def test_median_and_max_utilization_consistent(tiny_trace):
    res = run_sparrow(tiny_trace)
    assert 0.0 <= res.median_utilization() <= res.max_utilization() <= 1.0


def test_engine_cutoff_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(cutoff=0.0)


def test_engine_interval_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(cutoff=10.0, utilization_interval=0.0)


def test_estimate_callable_overrides_mean(tiny_trace):
    engine = make_engine("sparrow", estimate=lambda spec: 1e6)
    res = engine.run(tiny_trace)
    assert all(r.scheduled_class is JobClass.LONG for r in res.jobs)
    assert any(r.true_class is JobClass.SHORT for r in res.jobs)


def test_hawk_same_seed_identical_with_stealing(tiny_trace):
    """Work stealing (parking, wakes, victim sampling) must be fully
    deterministic for a fixed seed — no dependence on object identity."""
    results = []
    for _ in range(2):
        engine = make_engine("hawk", seed=3)
        res = engine.run(tiny_trace)
        results.append(
            (
                [r.completion_time for r in res.jobs],
                res.stealing.entries_stolen,
                res.events_fired,
            )
        )
    assert results[0] == results[1]
