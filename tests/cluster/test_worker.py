"""Tests for worker queues and the Figure 3 stealing-eligibility scan."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cluster.job import Job, JobClass
from repro.cluster.worker import (
    ProbeEntry,
    TaskEntry,
    Worker,
    WorkerState,
    find_first_short_group,
)
from repro.core.errors import SimulationError
from repro.schedulers.frontend import ProbeFrontend


def short_entry():
    job = Job(1, 0.0, (10.0,), 10.0, cutoff=100.0)
    return ProbeEntry(job, ProbeFrontend(job))


def long_entry():
    job = Job(2, 0.0, (1000.0,), 1000.0, cutoff=100.0)
    return TaskEntry(job.tasks[0])


def worker_with(entries, current=None):
    w = Worker(0, in_short_partition=False)
    for e in entries:
        w.enqueue(e)
    if current is not None:
        w.current_entry = current
        w.state = WorkerState.BUSY
    return w


# -- basic queue mechanics ----------------------------------------------
def test_new_worker_is_idle_and_empty():
    w = Worker(0, False)
    assert w.is_idle
    assert w.queue_length == 0
    assert w.current_class is None


def test_enqueue_pop_fifo_order():
    a, b = short_entry(), short_entry()
    w = worker_with([a, b])
    assert w.pop_next() is a
    assert w.pop_next() is b


def test_pop_empty_queue_raises():
    with pytest.raises(SimulationError):
        Worker(0, False).pop_next()


def test_long_entries_counter_tracks_enqueue_and_pop():
    w = worker_with([long_entry(), short_entry(), long_entry()])
    assert w.long_entries == 2
    w.pop_next()
    assert w.long_entries == 1
    w.pop_next()
    assert w.long_entries == 1
    w.pop_next()
    assert w.long_entries == 0


def test_enqueue_front_preserves_order_and_counts():
    w = Worker(0, False)
    tail = short_entry()
    w.enqueue(tail)
    stolen = [short_entry(), long_entry()]
    w.enqueue_front(stolen)
    assert list(w.queue) == stolen + [tail]
    assert w.long_entries == 1


def test_remove_range_returns_slice_in_order():
    entries = [short_entry() for _ in range(5)]
    w = worker_with(entries)
    removed = w.remove_range(1, 3)
    assert removed == entries[1:3]
    assert list(w.queue) == [entries[0]] + entries[3:]


def test_remove_range_invalid_bounds_raise():
    w = worker_with([short_entry()])
    with pytest.raises(SimulationError):
        w.remove_range(0, 5)


def test_remove_range_empty_slice_is_noop():
    entries = [short_entry(), long_entry()]
    w = worker_with(entries)
    assert w.remove_range(1, 1) == []
    assert list(w.queue) == entries
    assert w.long_entries == 1


@pytest.mark.parametrize("start, stop", [(0, 2), (1, 4), (2, 5), (0, 5), (3, 3)])
def test_remove_range_matches_list_slicing(start, stop):
    entries = [
        long_entry(), short_entry(), short_entry(), long_entry(), short_entry()
    ]
    w = worker_with(entries)
    removed = w.remove_range(start, stop)
    assert removed == entries[start:stop]
    assert list(w.queue) == entries[:start] + entries[stop:]
    assert w.long_entries == sum(
        1 for e in entries[:start] + entries[stop:] if e.is_long
    )
    # bookkeeping stays consistent for subsequent steals
    assert w.steal_hint() is (w.eligible_steal_range() is not None)


def test_entry_class_flags():
    assert short_entry().is_short and not short_entry().is_long
    assert long_entry().is_long and not long_entry().is_short


# -- find_first_short_group (the pure Figure 3 rule) ---------------------
@pytest.mark.parametrize(
    "executing_long, flags, expected",
    [
        # b-cases: executing long, shorts at the head are eligible.
        (True, [False, False, True, False], (0, 2)),
        (True, [False], (0, 1)),
        # a-cases: executing short, shorts after the first queued long.
        (False, [False, True, False, False, True, False], (2, 4)),
        (False, [False, False], None),  # no long anywhere
        (True, [], None),  # empty queue
        (False, [True, False], (1, 2)),
        (False, [True], None),  # a long but nothing short behind it
        (True, [True, False, False], (1, 3)),  # head long, group behind it
        (False, [False, True], None),  # shorts only before the long
        (True, [True, True, False], (2, 3)),
        (False, [True, True, False, True, False], (2, 3)),  # first group only
    ],
)
def test_find_first_short_group(executing_long, flags, expected):
    assert find_first_short_group(executing_long, flags) == expected


# -- Worker.eligible_steal_range ties it together ------------------------
def test_eligible_range_executing_long_head_shorts():
    # Figure 3 case b1: executing long, short tasks at queue head.
    w = worker_with(
        [short_entry(), short_entry(), long_entry()], current=long_entry()
    )
    assert w.eligible_steal_range() == (0, 2)


def test_eligible_range_executing_short_group_after_long():
    # Figure 3 case a1: executing short, group sits behind the queued long.
    w = worker_with(
        [short_entry(), long_entry(), short_entry(), short_entry()],
        current=short_entry(),
    )
    assert w.eligible_steal_range() == (2, 4)


def test_eligible_range_empty_queue():
    w = Worker(0, False)
    assert w.eligible_steal_range() is None


def test_eligible_range_no_long_anywhere():
    w = worker_with([short_entry(), short_entry()], current=short_entry())
    assert w.eligible_steal_range() is None


def test_eligible_range_all_long_queue():
    w = worker_with([long_entry(), long_entry()], current=long_entry())
    assert w.eligible_steal_range() is None


def test_eligible_range_waiting_probe_counts_as_current():
    # A worker WAITING on a long probe blocks like an executing long task.
    w = Worker(0, False)
    w.enqueue(short_entry())
    w.current_entry = long_entry()
    w.state = WorkerState.WAITING
    assert w.eligible_steal_range() == (0, 1)


# -- steal_hint (O(1), exact) --------------------------------------------
def test_steal_hint_false_when_empty():
    assert Worker(0, False).steal_hint() is False


def test_steal_hint_true_when_executing_long_with_short_queued():
    w = worker_with([short_entry()], current=long_entry())
    assert w.steal_hint() is True


def test_steal_hint_false_when_all_queued_long():
    w = worker_with([long_entry()], current=long_entry())
    assert w.steal_hint() is False


def test_steal_hint_false_short_on_short():
    w = worker_with([short_entry()], current=short_entry())
    assert w.steal_hint() is False


def test_steal_hint_false_when_shorts_only_ahead_of_long():
    """Regression: ``[short, long]`` with a short (or idle) slot has no
    stealable group — the Figure 3 rule needs a short *behind* a long —
    but the old ``long_entries > 0`` hint reported one, keeping
    ``cluster.steal_hint_count`` stuck above zero so idle workers burned
    backoff-retry events forever instead of parking."""
    w = worker_with([short_entry(), long_entry()], current=short_entry())
    assert w.eligible_steal_range() is None
    assert w.steal_hint() is False

    idle = worker_with([short_entry(), long_entry()])
    assert idle.eligible_steal_range() is None
    assert idle.steal_hint() is False


# -- steals through the head-enqueue seq space ---------------------------
def test_remove_range_with_negative_seqs_from_enqueue_front():
    """Stolen entries re-queued at the head carry negative seqs; stealing
    them back out must still find the run in the per-class seq deques
    (``_drop_seqs`` rotates to a match, it does not assume 0-based)."""
    w = Worker(0, False)
    w.enqueue(long_entry())
    w.enqueue(short_entry())
    front = [short_entry(), short_entry()]
    w.enqueue_front(front)  # seqs -2, -1 ahead of the 0, 1 tail entries
    assert [e.seq for e in w.queue] == [-2, -1, 0, 1]
    removed = w.remove_range(0, 2)
    assert removed == front
    assert w.long_entries == 1
    assert w.steal_hint() is (w.eligible_steal_range() is not None)
    # the remaining tail entries are untouched and still steal-consistent
    assert [e.seq for e in w.queue] == [0, 1]


def test_remove_range_full_queue_resets_all_bookkeeping():
    entries = [long_entry(), short_entry(), long_entry(), short_entry()]
    w = worker_with(entries)
    removed = w.remove_range(0, len(entries))
    assert removed == entries
    assert w.queue_length == 0
    assert w.long_entries == 0
    assert w.steal_hint() is False
    assert w.eligible_steal_range() is None
    # the worker is immediately reusable: seq allocation keeps going up
    nxt = short_entry()
    w.enqueue(nxt)
    assert nxt.seq == len(entries)


def test_eligible_range_run_at_tail_is_stealable():
    # The eligible group extends to the end of the queue (no long after
    # it), exercising the ``(start, i + 1)`` tail return of the scan.
    entries = [long_entry(), short_entry(), short_entry()]
    w = worker_with(entries, current=short_entry())
    assert w.eligible_steal_range() == (1, 3)
    removed = w.remove_range(1, 3)
    assert removed == entries[1:]
    assert w.steal_hint() is False


def test_drop_seqs_middle_run():
    # Stealing a middle group leaves the deque sorted with the run gone.
    from collections import deque

    seqs = deque([-3, -1, 2, 5, 8])
    Worker._drop_seqs(seqs, [2, 5])
    assert list(seqs) == [-3, -1, 8]


# -- randomized state: hint <=> eligible range, columns track the queue --
@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("enqueue"), st.booleans()),
            st.tuples(
                st.just("front"),
                st.lists(st.booleans(), min_size=1, max_size=3),
            ),
            st.tuples(st.just("pop"), st.none()),
            st.tuples(st.just("steal"), st.none()),
            st.tuples(
                st.just("slot"), st.sampled_from(["long", "short", "none"])
            ),
        ),
        max_size=25,
    )
)
def test_hint_matches_range_and_columns_under_random_ops(ops):
    """``steal_hint() is (eligible_steal_range() is not None)`` and the
    struct-of-arrays columns mirror the queue through arbitrary mixes of
    tail enqueues, head (stolen-entry) enqueues, pops, eligible-range
    steals and slot changes."""
    w = Worker(0, False)
    for op, arg in ops:
        if op == "enqueue":
            w.enqueue(long_entry() if arg else short_entry())
        elif op == "front":
            w.enqueue_front(
                [long_entry() if f else short_entry() for f in arg]
            )
        elif op == "pop":
            if w.queue:
                w.pop_next()
        elif op == "steal":
            span = w.eligible_steal_range()
            if span is not None:
                removed = w.remove_range(*span)
                assert removed and all(e.is_short for e in removed)
        else:
            if arg == "none":
                w.current_entry = None
                w.state = WorkerState.IDLE
            else:
                w.current_entry = (
                    long_entry() if arg == "long" else short_entry()
                )
                w.state = WorkerState.BUSY
        # invariants after every step
        assert w.steal_hint() is (w.eligible_steal_range() is not None)
        assert w._col_backlog[w._index] == len(w.queue)
        longs = sum(1 for e in w.queue if e.is_long)
        assert w._col_long[w._index] == longs == w.long_entries
        seqs = [e.seq for e in w.queue]
        assert seqs == sorted(seqs)
        assert sorted(w._short_seqs) == [
            e.seq for e in w.queue if e.is_short
        ] == list(w._short_seqs)
        assert sorted(w._long_seqs) == [
            e.seq for e in w.queue if e.is_long
        ] == list(w._long_seqs)


def test_steal_hint_iff_eligible_range_exhaustive():
    """hint is True exactly when an eligible range exists (both ways)."""
    import itertools

    for current_long in (True, False, None):
        for n in range(5):
            for flags in itertools.product([True, False], repeat=n):
                w = Worker(0, False)
                for is_long in flags:
                    w.enqueue(long_entry() if is_long else short_entry())
                if current_long is not None:
                    w.current_entry = (
                        long_entry() if current_long else short_entry()
                    )
                    w.state = WorkerState.BUSY
                assert w.steal_hint() is (
                    w.eligible_steal_range() is not None
                ), (current_long, flags)
