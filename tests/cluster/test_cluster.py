"""Tests for cluster construction and partitioning."""

import pytest

from repro.cluster import Cluster, Partition
from repro.core import ConfigurationError


def test_partition_sizes_google_fraction():
    cluster = Cluster(100, short_partition_fraction=0.17)
    assert cluster.n_short == 17
    assert cluster.n_general == 83


def test_no_partition_by_default():
    cluster = Cluster(10)
    assert cluster.n_short == 0
    assert cluster.n_general == 10


def test_partition_id_ranges_are_disjoint_and_cover():
    cluster = Cluster(20, short_partition_fraction=0.25)
    general = set(cluster.ids(Partition.GENERAL))
    short = set(cluster.ids(Partition.SHORT_RESERVED))
    assert general | short == set(cluster.ids(Partition.ALL))
    assert not (general & short)
    assert len(short) == 5


def test_worker_partition_flags_match_ranges():
    cluster = Cluster(10, short_partition_fraction=0.3)
    for wid in cluster.ids(Partition.GENERAL):
        assert not cluster.worker(wid).in_short_partition
    for wid in cluster.ids(Partition.SHORT_RESERVED):
        assert cluster.worker(wid).in_short_partition


def test_tiny_fraction_rounds_up_to_one_node():
    cluster = Cluster(10, short_partition_fraction=0.01)
    assert cluster.n_short == 1


def test_zero_workers_rejected():
    with pytest.raises(ConfigurationError):
        Cluster(0)


def test_fraction_one_rejected():
    with pytest.raises(ConfigurationError):
        Cluster(10, short_partition_fraction=1.0)


def test_fraction_negative_rejected():
    with pytest.raises(ConfigurationError):
        Cluster(10, short_partition_fraction=-0.1)


def test_short_partition_cannot_cover_cluster():
    with pytest.raises(ConfigurationError):
        Cluster(1, short_partition_fraction=0.9)


def test_worker_ids_are_indices():
    cluster = Cluster(5)
    for i in range(5):
        assert cluster.worker(i).worker_id == i


def test_busy_count_initially_zero():
    assert Cluster(5).busy_count() == 0


def test_steal_hint_count_initially_zero():
    assert Cluster(5).steal_hint_count == 0
