"""Crash recovery: rehydration from the event store, kill -9 included.

The in-process tests drive :meth:`ServiceState.rehydrate` directly
against stores with interrupted runs; the subprocess test is the
integration proof — a real server killed with SIGKILL mid-run, restarted
on the same database, must finish the interrupted jobs and still pass
its own live-vs-replay equality check.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.service.api import ServiceState
from repro.service.event_store import EventStore
from repro.service.models import (
    KIND_SUBMITTED,
    LifecycleEvent,
    RunConfig,
    canonical_json,
)
from repro.service.replay import replay, replay_result

TIME_SCALE = 200.0


def make_config(policy="sparrow"):
    return RunConfig(policy=policy, n_workers=8, cutoff=0.1)


def interrupted_store(path, *, n_pending=3, n_tasks=2, with_tasks=True):
    """A store whose run died with ``n_pending`` jobs in flight."""
    store = EventStore(str(path))
    config = make_config()
    store.register_run(config, created_w=0.0)
    for job_id in range(n_pending):
        payload = {
            "tenant": "default",
            "num_tasks": n_tasks,
            "true_mean": 0.02,
            "estimate": 0.02,
            "task_seconds": 0.02 * n_tasks,
            "scheduled_class": "short",
            "true_class": "short",
            "recv": 0.0,
        }
        if with_tasks:
            payload["tasks"] = [0.02] * n_tasks
        store.append(
            LifecycleEvent(
                run_id=config.run_id,
                kind=KIND_SUBMITTED,
                vtime=0.001 * job_id,
                wtime=0.001 * job_id,
                job_id=job_id,
                payload=payload,
            )
        )
    store.flush()
    return store, config


def test_rehydrate_resumes_interrupted_jobs(tmp_path):
    store, config = interrupted_store(tmp_path / "events.db")
    state = ServiceState(store, time_scale=TIME_SCALE)
    summary = state.rehydrate()
    (resumed,) = summary["resumed"]
    assert resumed["run_id"] == config.run_id
    assert resumed["jobs_resumed"] == 3
    assert resumed["jobs_unrecoverable"] == 0
    assert summary["failed"] == []
    assert state.health()["rehydrated_runs"] == 1

    payload = state.run_result(config.run_id, drain=True, timeout=30.0)
    jobs = payload["result"]["jobs"]
    assert sorted(j["job_id"] for j in jobs) == [0, 1, 2]

    # The continued log folds cold to the same result the live bridge
    # reports — the crash left no divergence behind.
    live = state._live_bridge(config.run_id).result()
    assert replay_result(store, config.run_id) == live
    state.close(timeout=30.0)
    store.close()


def test_rehydrate_is_idempotent_and_continues_job_ids(tmp_path):
    store, config = interrupted_store(tmp_path / "events.db")
    state = ServiceState(store, time_scale=TIME_SCALE)
    state.rehydrate()
    # A second pass finds the run live and leaves it alone.
    assert state.rehydrate()["resumed"] == []

    # New submissions allocate ids past everything the log has seen.
    response = state.submit(
        {
            "policy": config.policy,
            "n_workers": config.n_workers,
            "cutoff": config.cutoff,
            "tasks": [0.02, 0.02],
        }
    )
    assert response["run_id"] == config.run_id
    assert response["job_id"] == 3

    payload = state.run_result(config.run_id, drain=True, timeout=30.0)
    assert len(payload["result"]["jobs"]) == 4
    state.close(timeout=30.0)
    store.close()


def test_rehydrate_skips_pre_upgrade_submissions(tmp_path):
    """Pending events without task durations cannot re-run; they must
    not wedge the bridge's completion accounting."""
    store, config = interrupted_store(
        tmp_path / "events.db", n_pending=2, with_tasks=False
    )
    state = ServiceState(store, time_scale=TIME_SCALE)
    summary = state.rehydrate()
    # Nothing recoverable -> the run is left cold rather than resumed
    # with zero jobs, or resumed with unrecoverable ones uncounted.
    if summary["resumed"]:
        (resumed,) = summary["resumed"]
        assert resumed["jobs_resumed"] == 0
        assert resumed["jobs_unrecoverable"] == 2
        payload = state.run_result(config.run_id, drain=True, timeout=5.0)
        assert payload["result"]["jobs"] == []
    state.close(timeout=10.0)
    store.close()


def test_rehydrate_completed_run_stays_cold(tmp_path):
    store = EventStore(str(tmp_path / "events.db"))
    state = ServiceState(store, time_scale=TIME_SCALE)
    response = state.submit(
        {"policy": "sparrow", "n_workers": 8, "cutoff": 0.1, "tasks": [0.02]}
    )
    run_id = response["run_id"]
    state.run_result(run_id, drain=True, timeout=30.0)
    state.close(timeout=30.0)

    fresh = ServiceState(store, time_scale=TIME_SCALE)
    assert fresh.rehydrate()["resumed"] == []
    # Historical result still served from the log alone.
    payload = fresh.run_result(run_id)
    assert len(payload["result"]["jobs"]) == 1
    fresh.close(timeout=10.0)
    store.close()


# -- the real thing: SIGKILL a serving process -------------------------------
def _http(port, method, path, payload=None, timeout=30):
    body = canonical_json(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _start_server(db_path):
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--db",
            str(db_path),
            "--http-port",
            "0",
            "--socket-port",
            "0",
            "--time-scale",
            "20",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": src_dir, "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    port = None
    startup_lines = []
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        startup_lines.append(line.strip())
        match = re.search(r"http on [\d.]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        process.kill()
        pytest.fail(f"server did not start: {startup_lines}")
    return process, port, startup_lines


@pytest.mark.slow
def test_kill9_restart_resumes_and_replay_matches(tmp_path):
    db_path = tmp_path / "events.db"
    process, port, _ = _start_server(db_path)
    try:
        # A couple of fast jobs complete before the crash ...
        submission = {
            "policy": "sparrow",
            "n_workers": 8,
            "cutoff": 1.0,
            "tasks": [0.1, 0.1],
        }
        status, payload = _http(port, "POST", "/jobs", submission)
        assert status == 202
        run_id = payload["run_id"]
        _http(port, "POST", f"/runs/{run_id}/drain")

        # ... then slow ones (60 virtual seconds = 3 wall seconds at
        # time scale 20) are still in flight when SIGKILL lands.
        slow = dict(submission, tasks=[60.0, 60.0])
        for _ in range(3):
            status, _ = _http(port, "POST", "/jobs", slow)
            assert status == 202
        # /healthz counts events, which flushes the store: the
        # submitted events are durably committed before the kill.
        _http(port, "GET", "/healthz")
    finally:
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)

    # The log must show the interruption: submitted but not completed.
    store = EventStore(str(db_path))
    fold = replay(store, run_id)
    assert fold.jobs_in_flight == 3
    assert fold.jobs_completed == 1
    store.close()

    process, port, startup = _start_server(db_path)
    try:
        assert any("resumed run" in line for line in startup)
        status, payload = _http(
            port, "GET", f"/runs/{run_id}/result", timeout=60
        )
        assert status == 200 and payload["drained"]
        jobs = payload["result"]["jobs"]
        assert sorted(j["job_id"] for j in jobs) == [0, 1, 2, 3]

        # The resumed run's live fold equals a cold replay of the
        # (pre-crash + post-restart) log.
        status, payload = _http(port, "POST", f"/runs/{run_id}/replay-check")
        assert status == 200 and payload["match"] is True
        assert payload["live_jobs"] == payload["replayed_jobs"] == 4
    finally:
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)
