"""Event-store durability: seq order, WAL crash recovery, compaction."""

from __future__ import annotations

import os
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.errors import ConfigurationError, ReproError
from repro.service.event_store import EventStore, StoreUnavailable
from repro.service.models import (
    KIND_COMPLETED,
    KIND_SUBMITTED,
    LifecycleEvent,
    RunConfig,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def ev(run_id="run-a", kind=KIND_SUBMITTED, vtime=0.0, job_id=0, payload=None):
    return LifecycleEvent(
        run_id=run_id,
        kind=kind,
        vtime=vtime,
        job_id=job_id,
        payload=payload or {},
    )


@pytest.fixture
def store(tmp_path):
    with EventStore(str(tmp_path / "events.db"), flush_every=4) as s:
        yield s


def test_appends_assign_strictly_increasing_seqs(store):
    seqs = [store.append(ev(vtime=float(i), job_id=i)) for i in range(10)]
    assert seqs == list(range(1, 11))
    read = list(store.events())
    assert [e.seq for e in read] == seqs
    assert [e.job_id for e in read] == list(range(10))


def test_events_filter_by_run_and_after_seq(store):
    for i in range(6):
        store.append(ev(run_id="run-a" if i % 2 == 0 else "run-b", job_id=i))
    a_events = list(store.events("run-a"))
    assert [e.job_id for e in a_events] == [0, 2, 4]
    tail = list(store.events("run-a", after_seq=a_events[0].seq))
    assert [e.job_id for e in tail] == [2, 4]
    assert store.event_count() == 6
    assert store.event_count("run-b") == 3


def test_payload_round_trips_through_storage(store):
    payload = {"tenant": "t1", "nested": {"a": [1, 2]}, "pi": 3.5}
    store.append(ev(payload=payload))
    (read,) = store.events()
    assert read.payload == payload


def test_register_run_is_idempotent_and_round_trips_config(store):
    config = RunConfig(policy="hawk", n_workers=20, seed=7)
    store.register_run(config, created_w=1.0)
    store.register_run(config, created_w=2.0)
    configs = store.run_configs()
    assert set(configs) == {config.run_id}
    assert configs[config.run_id] == config


def test_reopen_sees_flushed_events_and_continues_seq(tmp_path):
    path = str(tmp_path / "events.db")
    with EventStore(path, flush_every=4) as store:
        for i in range(5):
            store.append(ev(job_id=i))
    with EventStore(path) as reopened:
        assert reopened.event_count() == 5
        # AUTOINCREMENT: seqs never reuse values from a previous process.
        assert reopened.append(ev(job_id=5)) == 6


def test_flush_every_must_be_positive(tmp_path):
    with pytest.raises(ConfigurationError):
        EventStore(str(tmp_path / "x.db"), flush_every=0)


def test_crash_mid_write_loses_only_the_uncommitted_tail(tmp_path):
    """A hard crash (os._exit) keeps the committed prefix, whole rows only.

    The writer uses ``flush_every=4`` and appends 10 events, so commits
    land after rows 4 and 8; rows 9-10 sit in an open transaction when
    the process dies.  A fresh reader must see exactly rows 1..8.
    """
    db = tmp_path / "crash.db"
    script = (
        "import os, sys\n"
        "from repro.service.event_store import EventStore\n"
        "from repro.service.models import LifecycleEvent\n"
        "store = EventStore(sys.argv[1], flush_every=4)\n"
        "for i in range(10):\n"
        "    store.append(LifecycleEvent(\n"
        "        run_id='run-a', kind='submitted', vtime=float(i), job_id=i))\n"
        "os._exit(17)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", script, str(db)],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 17, proc.stderr
    with EventStore(str(db)) as store:
        survivors = list(store.events())
        assert [e.seq for e in survivors] == [1, 2, 3, 4, 5, 6, 7, 8]
        assert [e.job_id for e in survivors] == list(range(8))
        # the store keeps working after recovery
        store.append(ev(job_id=99))
        assert store.event_count() == 9


def test_snapshot_round_trip_and_compaction(store):
    for i in range(8):
        store.append(ev(job_id=i))
    assert store.compact("run-a") == 0  # no snapshot yet: never discards
    state = {"records": [], "last_seq": 5}
    store.save_snapshot("run-a", upto_seq=5, state=state, created_w=1.0)
    assert store.latest_snapshot("run-a") == (5, state)
    assert store.latest_snapshot("other") is None
    assert store.compact("run-a") == 5
    assert [e.seq for e in store.events("run-a")] == [6, 7, 8]


def test_compaction_leaves_other_runs_untouched(store):
    for i in range(4):
        store.append(ev(run_id="run-a", job_id=i))
    for i in range(4):
        store.append(ev(run_id="run-b", job_id=i))
    store.save_snapshot("run-a", upto_seq=8, state={}, created_w=0.0)
    store.compact("run-a")
    assert store.event_count("run-a") == 0
    assert store.event_count("run-b") == 4


def test_kinds_survive_storage(store):
    store.append(ev(kind=KIND_SUBMITTED))
    store.append(ev(kind=KIND_COMPLETED, payload={"stolen_tasks": 2}))
    kinds = [e.kind for e in store.events()]
    assert kinds == [KIND_SUBMITTED, KIND_COMPLETED]


# -- commit retry under lock contention ---------------------------------------
class FlakyConnection:
    """Wraps a real connection; fails the first N commits as locked."""

    def __init__(self, conn, failures, message="database is locked"):
        self._conn = conn
        self.failures = failures
        self.message = message
        self.commit_calls = 0

    def commit(self):
        self.commit_calls += 1
        if self.failures > 0:
            self.failures -= 1
            raise sqlite3.OperationalError(self.message)
        self._conn.commit()

    def __getattr__(self, name):
        return getattr(self._conn, name)


@pytest.fixture
def flaky_store(tmp_path):
    with EventStore(str(tmp_path / "flaky.db")) as s:
        s.commit_retries = 3
        s.commit_backoff = 0.001
        yield s


def test_transient_lock_is_retried_and_counted(flaky_store):
    flaky_store._conn = FlakyConnection(flaky_store._conn, failures=2)
    flaky_store.append(ev(job_id=0))
    flaky_store.flush()
    assert flaky_store._conn.commit_calls == 3  # 2 failures + 1 success
    assert flaky_store.stats()["commit_retries"] == 2
    assert flaky_store.event_count() == 1


def test_persistent_lock_raises_store_unavailable(flaky_store):
    flaky_store._conn = FlakyConnection(flaky_store._conn, failures=99)
    flaky_store.append(ev(job_id=0))
    with pytest.raises(StoreUnavailable) as excinfo:
        flaky_store.flush()
    assert "still locked after 3" in str(excinfo.value)
    assert isinstance(excinfo.value, ReproError)  # transports map it to 503
    assert flaky_store._conn.commit_calls == 3

    # The lock clearing later lets the same store finish the write.
    flaky_store._conn.failures = 0
    flaky_store.flush()
    assert flaky_store.event_count() == 1


def test_non_lock_errors_are_not_swallowed(flaky_store):
    flaky_store._conn = FlakyConnection(
        flaky_store._conn, failures=1, message="disk I/O error"
    )
    flaky_store.append(ev(job_id=0))
    with pytest.raises(sqlite3.OperationalError):
        flaky_store.flush()
    assert flaky_store._conn.commit_calls == 1  # no retry on foreign errors
