"""End-to-end transport tests: HTTP and the NDJSON socket.

One :class:`ServiceThread` per test module would share bridge state
between tests, so each test boots its own service on ephemeral ports —
startup is tens of milliseconds.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.service.api import ServiceState
from repro.service.event_store import EventStore
from repro.service.models import ServiceConfig, canonical_json
from repro.service.server import ServiceThread

SCALE = 200.0


@pytest.fixture
def service(tmp_path):
    store = EventStore(str(tmp_path / "events.db"))
    state = ServiceState(store, time_scale=SCALE)
    config = ServiceConfig(
        db_path=store.path, http_port=0, socket_port=0, drain_timeout=30.0
    )
    with ServiceThread(state, config) as thread:
        yield thread
    store.close()


def http(service, method, path, payload=None):
    body = canonical_json(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{service.http_port}{path}",
        data=body,
        method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def job_payload(policy="hawk", tasks=(0.02, 0.04)):
    return {
        "policy": policy,
        "n_workers": 16,
        "cutoff": 0.1,
        "tasks": list(tasks),
    }


def test_http_submit_drain_and_replay_check(service):
    status, payload = http(service, "GET", "/healthz")
    assert status == 200 and payload["status"] == "ok"

    run_id = None
    for i in range(10):
        status, payload = http(service, "POST", "/jobs", job_payload())
        assert status == 202
        assert payload["job_id"] == i
        run_id = payload["run_id"]

    status, payload = http(service, "POST", f"/runs/{run_id}/drain")
    assert status == 200 and payload["drained"]
    assert len(payload["result"]["jobs"]) == 10

    status, payload = http(service, "POST", f"/runs/{run_id}/replay-check")
    assert status == 200
    assert payload["match"] is True
    assert payload["live_jobs"] == payload["replayed_jobs"] == 10

    status, payload = http(service, "GET", "/runs")
    assert status == 200
    (row,) = payload["runs"]
    assert row["run_id"] == run_id and row["live"]

    status, payload = http(service, "GET", f"/runs/{run_id}")
    assert status == 200
    assert payload["config"]["policy"] == "hawk"
    assert payload["stats"]["completed"] == 10
    assert len(payload["latencies"]) == 10

    status, payload = http(
        service, "GET", f"/runs/{run_id}/result?drain=0"
    )
    assert status == 200 and len(payload["result"]["jobs"]) == 10


def test_http_checkpoint_compacts_on_request(service):
    status, payload = http(service, "POST", "/jobs", job_payload("sparrow"))
    run_id = payload["run_id"]
    http(service, "POST", f"/runs/{run_id}/drain")
    status, payload = http(service, "POST", f"/runs/{run_id}/checkpoint")
    assert status == 200 and payload["compacted_events"] == 0
    status, payload = http(
        service, "POST", f"/runs/{run_id}/checkpoint?compact=1"
    )
    assert status == 200 and payload["compacted_events"] > 0
    status, payload = http(service, "POST", f"/runs/{run_id}/replay-check")
    assert payload["match"] is True


def test_http_client_errors(service):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http(service, "POST", "/jobs", job_payload(policy="no-such-policy"))
    assert excinfo.value.code == 400

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http(service, "POST", "/jobs", job_payload(policy="omniscient"))
    assert excinfo.value.code == 400
    assert "serves_online" in json.loads(excinfo.value.read())["error"]

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http(service, "GET", "/runs/nope")
    assert excinfo.value.code == 400

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http(service, "GET", "/no/such/route")
    assert excinfo.value.code == 404


@pytest.fixture
def tiny_service(tmp_path):
    """A service with the smallest legal body cap and a tiny drain budget."""
    store = EventStore(str(tmp_path / "events.db"))
    state = ServiceState(store, time_scale=SCALE)
    config = ServiceConfig(
        db_path=store.path,
        http_port=0,
        socket_port=0,
        max_body_bytes=1024,
        drain_timeout=0.25,
    )
    with ServiceThread(state, config) as thread:
        yield thread
    store.close()


def raw_http(service, data, timeout=30):
    """Push raw bytes at the HTTP port and return everything sent back."""
    with socket.create_connection(
        ("127.0.0.1", service.http_port), timeout=timeout
    ) as sock:
        sock.sendall(data)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def test_http_oversized_request_line_gets_413(tiny_service):
    # No newline anywhere: readline overruns the stream limit, which
    # used to kill the handler without any response at all.
    response = raw_http(tiny_service, b"GET /" + b"a" * 8192)
    head, _, body = response.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 413 ")
    assert "size limit" in json.loads(body)["error"]

    # The listener survives oversized clients: a normal request works.
    status, payload = http(tiny_service, "GET", "/healthz")
    assert status == 200 and payload["status"] == "ok"


def test_http_oversized_body_gets_413(tiny_service):
    big = job_payload(tasks=[0.02] * 300)  # > 1024 bytes of JSON
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http(tiny_service, "POST", "/jobs", big)
    assert excinfo.value.code == 413
    assert "too large" in json.loads(excinfo.value.read())["error"]


def test_http_bad_content_length_gets_400(tiny_service):
    response = raw_http(
        tiny_service,
        b"POST /jobs HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
    )
    assert response.startswith(b"HTTP/1.1 400 ")
    assert b"Content-Length" in response


def test_ndjson_oversized_line_reports_before_closing(tiny_service):
    with socket.create_connection(
        ("127.0.0.1", tiny_service.socket_port), timeout=30
    ) as sock:
        sock.sendall(b"x" * 8192)  # no newline: unframed garbage
        handle = sock.makefile("r", encoding="utf-8", newline="\n")
        response = json.loads(handle.readline())
        assert response == {"ok": False, "error": "line too long"}
        assert handle.readline() == ""  # server closed the connection


def test_drain_timeout_maps_to_504_and_flags_ndjson(tiny_service):
    # 200 virtual seconds = 1 wall second at scale 200: far beyond the
    # 0.25 s drain budget, so the drain must time out rather than hang
    # or silently return a partial result.
    slow = job_payload("sparrow", tasks=(200.0,))
    status, payload = http(tiny_service, "POST", "/jobs", slow)
    assert status == 202
    run_id = payload["run_id"]

    with pytest.raises(urllib.error.HTTPError) as excinfo:
        http(tiny_service, "POST", f"/runs/{run_id}/drain")
    assert excinfo.value.code == 504
    body = json.loads(excinfo.value.read())
    assert body["timeout"] is True and "in" in body["error"]

    (via_socket,) = ndjson(
        tiny_service, {"op": "drain", "run_id": run_id, "timeout": 0.05}
    )
    assert via_socket["ok"] is False and via_socket["timeout"] is True

    # Partial results stay reachable while the run finishes ...
    status, payload = http(
        tiny_service, "GET", f"/runs/{run_id}/result?drain=0"
    )
    assert status == 200 and payload["result"]["jobs"] == []

    # ... and the run itself is fine: wait it out for a clean shutdown.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        status, payload = http(
            tiny_service, "GET", f"/runs/{run_id}/result?drain=0"
        )
        if len(payload["result"]["jobs"]) == 1:
            break
        time.sleep(0.05)
    else:
        pytest.fail("slow job never completed")


def ndjson(service, *payloads):
    responses = []
    with socket.create_connection(
        ("127.0.0.1", service.socket_port), timeout=30
    ) as sock:
        handle = sock.makefile("rw", encoding="utf-8", newline="\n")
        for payload in payloads:
            handle.write(canonical_json(payload) + "\n")
            handle.flush()
            responses.append(json.loads(handle.readline()))
        handle.close()
    return responses


def test_ndjson_submit_drain_and_replay_check(service):
    submits = [job_payload("sparrow") for _ in range(8)]
    responses = ndjson(service, *submits)
    assert all(r["ok"] for r in responses)
    assert [r["job_id"] for r in responses] == list(range(8))
    run_id = responses[0]["run_id"]
    assert len({r["run_id"] for r in responses}) == 1

    (drained,) = ndjson(service, {"op": "drain", "run_id": run_id})
    assert drained["ok"] and drained["drained"]
    assert len(drained["result"]["jobs"]) == 8

    (check,) = ndjson(service, {"op": "replay-check", "run_id": run_id})
    assert check["ok"] and check["match"] is True

    (health,) = ndjson(service, {"op": "health"})
    assert health["ok"] and health["live_runs"] == 1

    (runs,) = ndjson(service, {"op": "runs"})
    assert runs["ok"] and len(runs["runs"]) == 1


def test_ndjson_error_responses_keep_the_connection_usable(service):
    bad_policy = job_payload(policy="no-such-policy")
    responses = ndjson(
        service,
        bad_policy,
        {"op": "mystery"},
        {"op": "replay-check", "run_id": "nope"},
        job_payload("hawk"),
    )
    assert [r["ok"] for r in responses] == [False, False, False, True]
    assert "unknown policy" in responses[0]["error"] or "policy" in responses[0]["error"]
    assert "unknown op" in responses[1]["error"]


def test_same_config_lands_in_the_same_run_across_transports(service):
    (via_socket,) = ndjson(service, job_payload("hawk"))
    _, via_http = http(service, "POST", "/jobs", job_payload("hawk"))
    assert via_socket["run_id"] == via_http["run_id"]
    run_id = via_http["run_id"]
    (drained,) = ndjson(service, {"op": "drain", "run_id": run_id})
    assert len(drained["result"]["jobs"]) == 2
