"""Scheduler bridge: live runs whose results equal a cold replay."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.service.event_store import EventStore
from repro.service.models import RunConfig, Submission
from repro.service.replay import replay
from repro.service.scheduler_bridge import SchedulerBridge

#: Virtual seconds per wall second: fast enough that a 20-job test run
#: drains in well under a second of wall time.
SCALE = 200.0


@pytest.fixture
def store(tmp_path):
    with EventStore(str(tmp_path / "events.db")) as s:
        yield s


def run_jobs(store, config, n_jobs=20, tasks=(0.02, 0.05, 0.03)):
    bridge = SchedulerBridge(config, store, time_scale=SCALE).start()
    try:
        for i in range(n_jobs):
            bridge.submit(Submission(tasks=tuple(tasks)))
        assert bridge.drain(timeout=30.0)
    finally:
        assert bridge.stop(timeout=30.0)
    return bridge


@pytest.mark.parametrize("policy", ["hawk", "sparrow", "sparrow-batch"])
def test_live_result_equals_cold_replay(store, policy, tmp_path):
    config = RunConfig(policy=policy, n_workers=20, cutoff=0.1)
    bridge = run_jobs(store, config)
    live = bridge.result()
    cold = replay(store, config.run_id).result(config)
    assert live == cold
    assert len(live.jobs) == 20
    assert [r.job_id for r in live.jobs] == list(range(20))
    assert all(r.completion_time >= r.submit_time for r in live.jobs)


def test_every_lifecycle_kind_is_persisted(store):
    # cutoff below the mean task duration: jobs are long, so hawk routes
    # them through the centralized path and the short partition steals.
    config = RunConfig(
        policy="hawk", n_workers=8, cutoff=0.01, short_partition_fraction=0.25
    )
    run_jobs(store, config, n_jobs=12, tasks=(0.05,) * 4)
    kinds = {e.kind for e in store.events(config.run_id)}
    assert {"submitted", "queued", "started", "task-completed", "completed"} \
        <= kinds


def test_submitted_events_carry_the_classification(store):
    config = RunConfig(policy="sparrow", n_workers=8, cutoff=0.04)
    run_jobs(store, config, n_jobs=4, tasks=(0.06, 0.06))
    submitted = [
        e for e in store.events(config.run_id) if e.kind == "submitted"
    ]
    assert len(submitted) == 4
    for event in submitted:
        assert event.payload["true_class"] == "long"
        assert event.payload["num_tasks"] == 2
        assert event.payload["recv"] >= 0.0


def test_client_estimate_overrides_the_engine_estimator(store):
    config = RunConfig(policy="sparrow", n_workers=8, cutoff=0.04)
    bridge = SchedulerBridge(config, store, time_scale=SCALE).start()
    try:
        # true mean 0.02 (short) but the client claims 0.08 (long)
        bridge.submit(Submission(tasks=(0.02, 0.02), estimate=0.08))
        assert bridge.drain(timeout=30.0)
    finally:
        bridge.stop(timeout=30.0)
    (record,) = bridge.result().jobs
    assert record.estimated_task_duration == 0.08
    assert record.scheduled_class.value == "long"
    assert record.true_class.value == "short"


def test_checkpoint_and_compaction_preserve_replay(store):
    config = RunConfig(policy="hawk", n_workers=20, cutoff=0.1)
    bridge = run_jobs(store, config)
    live = bridge.result()
    compacted = bridge.checkpoint(compact=True)
    assert compacted > 0
    assert store.event_count(config.run_id) == 0
    assert replay(store, config.run_id).result(config) == live


def test_stop_without_start_is_a_noop(store):
    bridge = SchedulerBridge(RunConfig(policy="sparrow"), store)
    assert bridge.stop() is True


def test_stats_and_latencies(store):
    config = RunConfig(policy="sparrow", n_workers=20, cutoff=0.1)
    bridge = run_jobs(store, config, n_jobs=10)
    stats = bridge.stats()
    assert stats == {
        "submitted": 10,
        "injected": 10,
        "completed": 10,
        "in_flight": 0,
    }
    latencies = bridge.latencies()
    assert len(latencies) == 10
    assert all(lat >= 0.0 for lat in latencies)


def test_two_configs_share_one_store_without_mixing(store):
    hawk = RunConfig(policy="hawk", n_workers=20, cutoff=0.1)
    sparrow = RunConfig(policy="sparrow", n_workers=20, cutoff=0.1)
    assert hawk.run_id != sparrow.run_id
    b1 = run_jobs(store, hawk, n_jobs=8)
    b2 = run_jobs(store, sparrow, n_jobs=8)
    assert b1.result() == replay(store, hawk.run_id).result(hawk)
    assert b2.result() == replay(store, sparrow.run_id).result(sparrow)
    assert len(store.run_configs()) == 2


def test_non_serving_policy_is_rejected():
    with pytest.raises(ConfigurationError, match="serves_online=False"):
        RunConfig(policy="omniscient")


def test_run_config_digest_is_content_addressed():
    a = RunConfig(policy="hawk", seed=0)
    b = RunConfig(policy="hawk", seed=0)
    c = RunConfig(policy="hawk", seed=1)
    assert a.run_id == b.run_id
    assert a.run_id != c.run_id
    assert a.run_id.startswith("hawk-")


def test_submission_validation():
    with pytest.raises(ConfigurationError):
        Submission(tasks=())
    with pytest.raises(ConfigurationError):
        Submission(tasks=(-1.0,))
    with pytest.raises(ConfigurationError):
        Submission(tasks=(0.1,), estimate=float("nan"))
    with pytest.raises(ConfigurationError):
        Submission(tasks=(0.1,), tenant="")


def test_bridge_rejects_bad_knobs(store):
    config = RunConfig(policy="sparrow")
    with pytest.raises(ConfigurationError, match="time_scale"):
        SchedulerBridge(config, store, time_scale=0.0)
    with pytest.raises(ConfigurationError, match="idle_poll"):
        SchedulerBridge(config, store, idle_poll=0.0)
    bridge = SchedulerBridge(config, store)
    with pytest.raises(ConfigurationError, match="not started"):
        bridge.submit(Submission(tasks=(0.1,)))
