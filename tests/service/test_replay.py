"""Replay fold: event streams back into simulator-shaped records."""

from __future__ import annotations

import json

import pytest

from repro.cluster.job import JobClass
from repro.core.errors import ConfigurationError
from repro.service.event_store import EventStore
from repro.service.models import (
    KIND_COMPLETED,
    KIND_STARTED,
    KIND_STOLEN,
    KIND_SUBMITTED,
    LifecycleEvent,
    RunConfig,
)
from repro.service.replay import (
    RunFold,
    export_ndjson,
    fold_events,
    load_ndjson,
    replay,
    replay_result,
)

RUN = "run-a"


def submitted_payload(tasks=(2.0, 4.0), estimate=3.0, cutoff=100.0):
    mean = sum(tasks) / len(tasks)
    cls = JobClass.LONG if mean >= cutoff else JobClass.SHORT
    est_cls = JobClass.LONG if estimate >= cutoff else JobClass.SHORT
    return {
        "tenant": "default",
        "num_tasks": len(tasks),
        "true_mean": mean,
        "estimate": estimate,
        "task_seconds": sum(tasks),
        "scheduled_class": est_cls.value,
        "true_class": cls.value,
        "recv": 0.0,
    }


def job_events(job_id, seq0, submit_v=0.0, complete_v=5.0, run_id=RUN):
    return [
        LifecycleEvent(
            run_id=run_id,
            kind=KIND_SUBMITTED,
            vtime=submit_v,
            job_id=job_id,
            payload=submitted_payload(),
            seq=seq0,
        ),
        LifecycleEvent(
            run_id=run_id,
            kind=KIND_STARTED,
            vtime=submit_v + 0.5,
            job_id=job_id,
            task_index=0,
            worker_id=3,
            seq=seq0 + 1,
        ),
        LifecycleEvent(
            run_id=run_id,
            kind=KIND_COMPLETED,
            vtime=complete_v,
            job_id=job_id,
            payload={"stolen_tasks": 1},
            seq=seq0 + 2,
        ),
    ]


def test_fold_builds_a_record_from_submit_and_complete():
    fold = fold_events(job_events(0, seq0=1, submit_v=1.0, complete_v=7.0))
    assert fold.jobs_completed == 1
    assert fold.jobs_in_flight == 0
    (record,) = fold.records
    assert record.job_id == 0
    assert record.submit_time == 1.0
    assert record.completion_time == 7.0
    assert record.num_tasks == 2
    assert record.true_mean_task_duration == 3.0
    assert record.task_seconds == 6.0
    assert record.scheduled_class is JobClass.SHORT
    assert record.stolen_tasks == 1


def test_fold_tracks_stealing_and_clock():
    events = job_events(0, seq0=1, complete_v=9.0)
    events.append(
        LifecycleEvent(
            run_id=RUN,
            kind=KIND_STOLEN,
            vtime=4.0,
            worker_id=2,
            payload={"victim": 5, "entries": 3, "jobs": [0]},
            seq=4,
        )
    )
    fold = fold_events(events)
    assert fold.steal_transfers == 1
    assert fold.entries_stolen == 3
    assert fold.last_vtime == 9.0
    result = fold.result(RunConfig(policy="hawk"))
    assert result.stealing.entries_stolen == 3
    assert result.scheduler_name == "service-hawk"
    assert result.end_time == 9.0
    assert result.utilization == ()


def test_out_of_order_seq_raises():
    fold = RunFold()
    events = job_events(0, seq0=5)
    fold.apply(events[0])
    with pytest.raises(ConfigurationError, match="out of order"):
        fold.apply(events[0])


def test_completed_without_submitted_raises():
    fold = RunFold()
    with pytest.raises(ConfigurationError, match="without a submitted"):
        fold.apply(
            LifecycleEvent(
                run_id=RUN, kind=KIND_COMPLETED, vtime=1.0, job_id=9, seq=1
            )
        )


def test_state_round_trip_resumes_mid_stream():
    events = job_events(0, seq0=1) + job_events(1, seq0=4, complete_v=8.0)
    full = fold_events(events)
    half = fold_events(events[:4])  # job 1 still pending
    assert half.jobs_in_flight == 1
    state = json.loads(json.dumps(half.to_state()))  # through real JSON
    resumed = RunFold.from_state(state)
    for event in events[4:]:
        resumed.apply(event)
    config = RunConfig(policy="sparrow")
    assert resumed.result(config) == full.result(config)


def make_store(tmp_path, config, n_jobs=3):
    store = EventStore(str(tmp_path / "events.db"))
    store.register_run(config, created_w=0.0)
    for j in range(n_jobs):
        for event in job_events(
            j, seq0=0, submit_v=float(j), complete_v=float(j) + 5.0,
            run_id=config.run_id,
        ):
            store.append(event)
    return store


def test_replay_result_matches_direct_fold(tmp_path):
    config = RunConfig(policy="sparrow")
    store = make_store(tmp_path, config)
    result = replay_result(store, config.run_id)
    assert len(result.jobs) == 3
    assert [r.job_id for r in result.jobs] == [0, 1, 2]
    with pytest.raises(ConfigurationError, match="not registered"):
        replay_result(store, "nope")
    store.close()


def test_replay_from_snapshot_equals_full_replay(tmp_path):
    config = RunConfig(policy="sparrow")
    store = make_store(tmp_path, config, n_jobs=4)
    full = replay(store, config.run_id).result(config)
    # checkpoint after the first two jobs (6 events), then compact
    fold = RunFold()
    for event in list(store.events(config.run_id))[:6]:
        fold.apply(event)
    store.save_snapshot(
        config.run_id, upto_seq=fold.last_seq, state=fold.to_state(),
        created_w=0.0,
    )
    assert store.compact(config.run_id) == 6
    assert replay(store, config.run_id).result(config) == full
    store.close()


def test_replay_rejects_inconsistent_snapshot(tmp_path):
    config = RunConfig(policy="sparrow")
    store = make_store(tmp_path, config, n_jobs=1)
    fold = replay(store, config.run_id)
    store.save_snapshot(
        config.run_id, upto_seq=1, state=fold.to_state(), created_w=0.0
    )
    with pytest.raises(ConfigurationError, match="snapshot"):
        replay(store, config.run_id)
    store.close()


@pytest.mark.parametrize("name", ["log.ndjson", "log.ndjson.gz"])
def test_ndjson_export_load_round_trip(tmp_path, name):
    config = RunConfig(policy="hawk", n_workers=16)
    store = make_store(tmp_path, config)
    path = tmp_path / name
    count = export_ndjson(
        store,
        path,
        meta={"source": "test"},
        labels={config.run_id: {"multiple": 1.4}},
    )
    assert count == 9
    log = load_ndjson(path)
    assert log.meta == {"source": "test"}
    assert log.configs == {config.run_id: config}
    assert log.labels[config.run_id] == {"multiple": 1.4}
    results = log.results()
    assert results[config.run_id] == replay(store, config.run_id).result(config)
    store.close()


def test_load_ndjson_requires_runs(tmp_path):
    path = tmp_path / "empty.ndjson"
    path.write_text('{"type":"meta"}\n')
    with pytest.raises(ConfigurationError, match="declares no runs"):
        load_ndjson(path)


def test_load_ndjson_rejects_unknown_line_type(tmp_path):
    path = tmp_path / "bad.ndjson"
    path.write_text('{"type":"meta"}\n{"type":"mystery"}\n')
    with pytest.raises(ConfigurationError, match="unknown line type"):
        load_ndjson(path)
