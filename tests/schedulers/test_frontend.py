"""Tests for the late-binding probe frontend."""

from repro.cluster.job import Job
from repro.schedulers.frontend import ProbeFrontend


def make_frontend(n_tasks=3):
    job = Job(1, 0.0, tuple([10.0] * n_tasks), 10.0, cutoff=100.0)
    return ProbeFrontend(job), job


def test_hands_out_tasks_in_index_order():
    frontend, job = make_frontend(3)
    assert frontend.next_task() is job.tasks[0]
    assert frontend.next_task() is job.tasks[1]
    assert frontend.next_task() is job.tasks[2]


def test_cancel_after_exhaustion():
    frontend, _ = make_frontend(1)
    assert frontend.next_task() is not None
    assert frontend.next_task() is None
    assert frontend.next_task() is None


def test_remaining_counts_down():
    frontend, _ = make_frontend(2)
    assert frontend.remaining == 2
    frontend.next_task()
    assert frontend.remaining == 1
    frontend.next_task()
    assert frontend.remaining == 0


def test_cancels_sent_counter():
    frontend, _ = make_frontend(1)
    frontend.next_task()
    frontend.next_task()
    frontend.next_task()
    assert frontend.cancels_sent == 2


def test_each_task_handed_out_once():
    frontend, job = make_frontend(5)
    handed = [frontend.next_task() for _ in range(5)]
    assert len(set(id(t) for t in handed)) == 5
    assert frontend.next_task() is None
