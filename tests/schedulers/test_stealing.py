"""Tests for randomized work stealing."""

import pytest

from repro.cluster import Cluster, ClusterEngine, EngineConfig, JobClass, Partition
from repro.core.errors import ConfigurationError
from repro.schedulers import HawkScheduler, WorkStealing
from repro.workloads.spec import Trace
from tests.conftest import TEST_CUTOFF, job, long_job, short_job


def build(n_workers=8, cap=10, short_fraction=0.25):
    stealing = WorkStealing(cap=cap)
    engine = ClusterEngine(
        Cluster(n_workers, short_partition_fraction=short_fraction),
        HawkScheduler(),
        EngineConfig(cutoff=TEST_CUTOFF),
        stealing=stealing,
    )
    return engine, stealing


def test_cap_validation():
    with pytest.raises(ConfigurationError):
        WorkStealing(cap=0)


def test_retry_window_validation():
    with pytest.raises(ConfigurationError):
        WorkStealing(retry_initial=2.0, retry_max=1.0)


def test_double_bind_rejected():
    engine, stealing = build()
    with pytest.raises(RuntimeError):
        stealing.bind(engine)


def test_stealing_rescues_blocked_short_tasks():
    """Shorts queued behind longs must migrate to idle workers."""
    engine, stealing = build(n_workers=8)
    # 6 long jobs saturate the 6 general workers, then shorts arrive.
    trace_jobs = [long_job(i, 0.0, tasks=1) for i in range(6)]
    trace_jobs += [short_job(10 + i, 1.0, tasks=2) for i in range(4)]
    res = engine.run(Trace(trace_jobs, name="t"))
    stats = res.stealing
    assert stats.entries_stolen > 0
    # Short jobs must not wait for the 1000 s long tasks.
    short_runtimes = res.runtimes(JobClass.SHORT)
    assert max(short_runtimes) < 500.0


def test_without_stealing_shorts_block():
    engine = ClusterEngine(
        Cluster(8, short_partition_fraction=0.25),
        HawkScheduler(),
        EngineConfig(cutoff=TEST_CUTOFF),
        stealing=None,
    )
    trace_jobs = [long_job(i, 0.0, tasks=1) for i in range(6)]
    trace_jobs += [short_job(10 + i, 1.0, tasks=2) for i in range(4)]
    res = engine.run(Trace(trace_jobs, name="t"))
    # Short partition has 2 workers for 8 short tasks; some short probes
    # land behind longs in the general partition and stay there.
    assert max(res.runtimes(JobClass.SHORT)) > 500.0


def test_victims_only_in_general_partition():
    engine, stealing = build(n_workers=8)
    trace_jobs = [long_job(i, 0.0, tasks=1) for i in range(6)]
    trace_jobs += [short_job(10 + i, 1.0, tasks=2) for i in range(6)]
    engine.run(Trace(trace_jobs, name="t"))
    for wid in engine.cluster.ids(Partition.SHORT_RESERVED):
        assert engine.cluster.worker(wid).tasks_stolen_from == 0


def test_short_partition_workers_do_steal():
    engine, stealing = build(n_workers=8)
    trace_jobs = [long_job(i, 0.0, tasks=1) for i in range(6)]
    trace_jobs += [short_job(10 + i, 1.0, tasks=3) for i in range(6)]
    engine.run(Trace(trace_jobs, name="t"))
    short_ids = engine.cluster.ids(Partition.SHORT_RESERVED)
    stolen_by_short = sum(
        engine.cluster.worker(w).tasks_stolen_by for w in short_ids
    )
    assert stolen_by_short > 0


def test_stolen_tasks_recorded_on_jobs():
    engine, _ = build(n_workers=8)
    trace_jobs = [long_job(i, 0.0, tasks=1) for i in range(6)]
    trace_jobs += [short_job(10 + i, 1.0, tasks=2) for i in range(4)]
    res = engine.run(Trace(trace_jobs, name="t"))
    bound = sum(r.stolen_tasks for r in res.jobs)
    # Stolen probes that end up cancelled never bind a task, so the
    # per-job tally is a lower bound on entries moved.
    assert 0 < bound <= res.stealing.entries_stolen


def test_long_entries_never_stolen():
    engine, _ = build(n_workers=4, short_fraction=0.25)
    # More long jobs than general workers: longs queue behind longs.
    trace_jobs = [long_job(i, 0.0, tasks=2) for i in range(5)]
    res = engine.run(Trace(trace_jobs, name="t"))
    assert res.stealing.entries_stolen == 0
    long_records = res.records(JobClass.LONG)
    assert all(r.stolen_tasks == 0 for r in long_records)


def test_stats_counters_consistent():
    engine, _ = build(n_workers=8)
    trace_jobs = [long_job(i, 0.0, tasks=1) for i in range(6)]
    trace_jobs += [short_job(10 + i, 1.0, tasks=2) for i in range(4)]
    res = engine.run(Trace(trace_jobs, name="t"))
    stats = res.stealing
    assert stats.successful_rounds <= stats.rounds
    assert stats.victims_probed >= stats.successful_rounds
    assert 0.0 <= stats.success_rate <= 1.0


def test_cap_one_limits_probes_per_round():
    engine, _ = build(n_workers=8, cap=1)
    trace_jobs = [long_job(i, 0.0, tasks=1) for i in range(6)]
    trace_jobs += [short_job(10 + i, 1.0, tasks=2) for i in range(4)]
    res = engine.run(Trace(trace_jobs, name="t"))
    assert res.stealing.victims_probed <= res.stealing.rounds


def test_higher_cap_not_worse_for_shorts():
    results = {}
    for cap in (1, 10):
        engine, _ = build(n_workers=10, cap=cap)
        trace_jobs = [long_job(i, 0.0, tasks=1) for i in range(7)]
        trace_jobs += [short_job(10 + i, 1.0, tasks=2) for i in range(6)]
        res = engine.run(Trace(trace_jobs, name="t"))
        results[cap] = sorted(res.runtimes(JobClass.SHORT))[len(res.runtimes(JobClass.SHORT)) // 2]
    assert results[10] <= results[1] * 1.5  # cap 10 at least comparable


def test_single_worker_cluster_cannot_steal():
    stealing = WorkStealing()
    engine = ClusterEngine(
        Cluster(2, short_partition_fraction=0.5),
        HawkScheduler(),
        EngineConfig(cutoff=TEST_CUTOFF),
        stealing=stealing,
    )
    res = engine.run(Trace([short_job(0, 0.0, tasks=2)], name="t"))
    assert res.stealing.entries_stolen == 0


def test_steal_hint_count_returns_to_zero():
    engine, _ = build(n_workers=8)
    trace_jobs = [long_job(i, 0.0, tasks=1) for i in range(6)]
    trace_jobs += [short_job(10 + i, 1.0, tasks=2) for i in range(4)]
    engine.run(Trace(trace_jobs, name="t"))
    assert engine.cluster.steal_hint_count == 0


def test_stolen_probe_binds_and_marks_task():
    engine, _ = build(n_workers=8)
    trace_jobs = [long_job(i, 0.0, tasks=1) for i in range(6)]
    trace_jobs += [short_job(10 + i, 1.0, tasks=2) for i in range(4)]
    res = engine.run(Trace(trace_jobs, name="t"))
    stolen_jobs = [r for r in res.jobs if r.stolen_tasks > 0]
    assert stolen_jobs
    assert all(r.true_class is JobClass.SHORT for r in stolen_jobs)


def test_victim_draws_match_stdlib_randrange():
    """The inlined getrandbits rejection sampler must consume the RNG
    stream exactly as ``Random.randrange`` does — stealing outcomes (and
    so every figure) depend on the draws being bit-identical."""
    import random

    for n in (1, 2, 3, 7, 8, 100, 1023, 1024, 12345):
        reference = random.Random(42)
        inlined = random.Random(42)
        getrandbits = inlined.getrandbits
        bits = n.bit_length()
        for _ in range(200):
            expected = reference.randrange(n)
            victim = getrandbits(bits)
            while victim >= n:
                victim = getrandbits(bits)
            assert victim == expected, n


def test_cancelled_retry_handles_do_not_accumulate():
    """Regression: park/wake churn in lightly loaded runs used to leave
    every cancelled backoff retry on the heap until its timestamp
    drained.  Lazy compaction must keep cancelled entries a bounded
    fraction of the heap and pending_events in the live-event ballpark."""
    engine, stealing = build(n_workers=16)
    # A lightly loaded trickle: one short job at a time with idle gaps,
    # so idle workers repeatedly schedule, cancel and re-schedule steal
    # retries (every delivery to a worker with a pending retry cancels it).
    trace_jobs = [long_job(0, 0.0, tasks=2)]
    trace_jobs += [short_job(1 + i, 5.0 * i, tasks=2) for i in range(80)]
    samples = []

    def sampler():
        sim = engine.sim
        samples.append((sim.pending_events, sim._cancelled))
        if not engine.all_jobs_done:
            sim.schedule(1.0, sampler)

    engine.sim.schedule(1.0, sampler)
    engine.run(Trace(trace_jobs, name="trickle"))
    assert stealing.stats().rounds > 0  # the churn actually happened
    # The compaction invariant: cancelled entries never dominate.
    for pending, cancelled in samples:
        assert cancelled * 2 <= pending + 1, (pending, cancelled)
    # And the heap stays in the same ballpark as the live event count
    # (pending job submissions + idle-worker timers + in-flight
    # messages), instead of growing with the cancels issued over the run.
    max_pending = max(pending for pending, _ in samples)
    assert max_pending <= 2 * (16 + len(trace_jobs)), max_pending


def test_park_resets_backoff_ladder():
    """Regression: a worker that parked kept its escalated backoff, so
    after a wake its first failed retry resumed at the stale pre-park
    maximum instead of restarting from ``retry_initial``.  Parking ends
    the contention period: both park paths must zero the ladder."""
    engine, stealing = build(n_workers=8)
    cluster = engine.cluster
    worker = cluster.workers[0]
    assert cluster.steal_hint_count == 0  # nothing stealable -> park

    # the _schedule_retry park branch
    worker.steal_backoff = 32.0
    stealing._schedule_retry(worker)
    assert cluster.parked[worker.worker_id] == 1
    assert worker.steal_backoff == 0.0

    # the fused park branch inside _retry_fires
    other = cluster.workers[1]
    other.steal_backoff = 64.0
    stealing._retry_fires(other)
    assert cluster.parked[other.worker_id] == 1
    assert other.steal_backoff == 0.0

    # a retry scheduled after the reset starts back at retry_initial
    cluster.steal_hint_count = 1  # pretend work appeared
    cluster.parked[worker.worker_id] = 0
    stealing._parked_count -= 1
    stealing._schedule_retry(worker)
    assert worker.steal_backoff == stealing.retry_initial
    worker.pending_steal_retry.cancel()
