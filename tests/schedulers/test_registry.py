"""Tests for the policy registry: schemas, flags, cache-key stability."""

from pathlib import Path

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments.config import RunSpec, build_engine, execute
from repro.experiments.parallel import cache_key, spec_digest
from repro.schedulers import registry
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.registry import FrozenParams, Param, register_policy
from repro.schedulers.scenarios import BatchSamplingScheduler
from repro.workloads.spec import Trace
from tests.conftest import TEST_CUTOFF, long_job, short_job

SCHEMA_SNAPSHOT = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "results"
    / "registry_schema.txt"
)


@pytest.fixture
def tiny():
    jobs = [long_job(0, 0.0, 4)] + [short_job(i, float(i)) for i in range(1, 6)]
    return Trace(jobs, name="registry-tiny")


# -- registration rules ------------------------------------------------------
def test_duplicate_name_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        @register_policy("hawk")
        def _clash(params):  # pragma: no cover - never built
            raise AssertionError


def test_stealing_policy_must_declare_steal_cap():
    with pytest.raises(ConfigurationError, match="steal_cap"):
        @register_policy("steals-without-cap", uses_stealing=True)
        def _bad(params):  # pragma: no cover - never built
            raise AssertionError
    assert "steals-without-cap" not in registry.registered_names()


def test_class_registration_requires_from_params():
    with pytest.raises(ConfigurationError, match="from_params"):
        @register_policy("classy")
        class NoBuilder(SchedulerPolicy):  # pragma: no cover - never built
            def on_job_submit(self, job):
                raise AssertionError
    assert "classy" not in registry.registered_names()


def test_unknown_policy_lists_registered_names():
    with pytest.raises(ConfigurationError, match="registered policies"):
        RunSpec(scheduler="nope", n_workers=4, cutoff=TEST_CUTOFF)


# -- param schema validation -------------------------------------------------
def test_unknown_param_rejected():
    with pytest.raises(ConfigurationError, match="unknown param"):
        RunSpec(
            scheduler="hawk",
            n_workers=4,
            cutoff=TEST_CUTOFF,
            params={"warp_factor": 9},
        )


def test_out_of_range_param_rejected():
    with pytest.raises(ConfigurationError, match=">= 1"):
        RunSpec(
            scheduler="hawk",
            n_workers=4,
            cutoff=TEST_CUTOFF,
            params={"steal_cap": 0},
        )


def test_wrong_type_param_rejected():
    with pytest.raises(ConfigurationError, match="expects int"):
        RunSpec(
            scheduler="sparrow",
            n_workers=4,
            cutoff=TEST_CUTOFF,
            params={"probe_ratio": "two"},
        )
    # bool is not an int here, despite being a subclass
    with pytest.raises(ConfigurationError, match="expects int"):
        registry.validate_params("sparrow", {"probe_ratio": True})


def test_defaults_filled_and_canonicalized():
    spec = RunSpec(scheduler="hawk", n_workers=4, cutoff=TEST_CUTOFF)
    assert dict(spec.params) == {"probe_ratio": 2, "steal_cap": 10}
    assert spec.param("steal_cap") == 10
    explicit = RunSpec(
        scheduler="hawk",
        n_workers=4,
        cutoff=TEST_CUTOFF,
        params={"steal_cap": 10},
    )
    # omitted-vs-explicit default: the same spec
    assert spec == explicit and hash(spec) == hash(explicit)


def test_param_schema_rejects_bad_default():
    with pytest.raises(ConfigurationError):
        Param("x", int, default=0, minimum=1)


# -- capability-flag wiring --------------------------------------------------
@pytest.mark.parametrize(
    "name, has_stealing, has_partition",
    [
        ("hawk", True, True),
        ("sparrow", False, False),
        ("centralized", False, False),
        ("split", False, True),
        ("hawk-no-centralized", True, True),
        ("hawk-no-partition", True, False),
        ("hawk-no-stealing", False, True),
        ("sparrow-batch", False, False),
        ("omniscient", False, False),
    ],
)
def test_capability_flags_drive_engine_wiring(name, has_stealing, has_partition):
    entry = registry.policy_entry(name)
    assert entry.uses_stealing == has_stealing
    assert entry.uses_partition == has_partition
    engine = build_engine(
        RunSpec(scheduler=name, n_workers=10, cutoff=TEST_CUTOFF)
    )
    assert (engine.stealing is not None) == has_stealing
    assert (engine.cluster.n_short > 0) == has_partition


def test_steal_cap_param_configures_the_mechanism():
    engine = build_engine(
        RunSpec(
            scheduler="hawk",
            n_workers=10,
            cutoff=TEST_CUTOFF,
            params={"steal_cap": 3},
        )
    )
    assert engine.stealing is not None and engine.stealing.cap == 3


def test_ablation_family_comes_from_registry():
    assert registry.ablations_of("hawk") == (
        "hawk-no-centralized",
        "hawk-no-partition",
        "hawk-no-stealing",
    )
    # family members accept each other's params (shared schema)
    base = RunSpec(
        scheduler="hawk",
        n_workers=8,
        cutoff=TEST_CUTOFF,
        params={"steal_cap": 5},
    )
    for variant in registry.ablations_of("hawk"):
        assert base.with_(scheduler=variant).params == base.params


# -- cache-key stability -----------------------------------------------------
def test_cache_key_stable_across_params_dict_reordering(tiny):
    a = RunSpec(
        scheduler="hawk",
        n_workers=6,
        cutoff=TEST_CUTOFF,
        params={"probe_ratio": 3, "steal_cap": 7},
    )
    b = RunSpec(
        scheduler="hawk",
        n_workers=6,
        cutoff=TEST_CUTOFF,
        params={"steal_cap": 7, "probe_ratio": 3},
    )
    assert spec_digest(a) == spec_digest(b)
    assert cache_key(a, tiny) == cache_key(b, tiny)
    # and distinct values still mean distinct keys
    c = a.with_(params={"probe_ratio": 3, "steal_cap": 8})
    assert cache_key(a, tiny) != cache_key(c, tiny)


def test_frozen_params_mapping_semantics():
    params = FrozenParams({"b": 2, "a": 1})
    assert params == {"a": 1, "b": 2}
    assert list(params) == ["a", "b"]  # canonical order
    assert repr(params) == "FrozenParams(a=1, b=2)"
    assert hash(params) == hash(FrozenParams([("a", 1), ("b", 2)]))
    with pytest.raises(KeyError):
        params["zzz"]


# -- estimate/estimate_tag footgun -------------------------------------------
def test_custom_estimate_requires_non_exact_tag():
    with pytest.raises(ConfigurationError, match="estimate_tag"):
        RunSpec(
            scheduler="sparrow",
            n_workers=4,
            cutoff=TEST_CUTOFF,
            estimate=lambda s: 1.0,
        )
    # tagged estimators are fine, and the default path is untouched
    RunSpec(
        scheduler="sparrow",
        n_workers=4,
        cutoff=TEST_CUTOFF,
        estimate=lambda s: 1.0,
        estimate_tag="custom",
    )
    RunSpec(scheduler="sparrow", n_workers=4, cutoff=TEST_CUTOFF)


# -- registry-only scenario policies -----------------------------------------
def test_scenario_policies_run_without_config_edits(tiny):
    for name in ("sparrow-batch", "omniscient"):
        res = execute(
            RunSpec(scheduler=name, n_workers=6, cutoff=TEST_CUTOFF), tiny
        )
        assert len(res.jobs) == len(tiny)
        assert res.scheduler_name == name


def test_batch_sampling_probe_budget(tiny):
    spec = RunSpec(
        scheduler="sparrow-batch",
        n_workers=6,
        cutoff=TEST_CUTOFF,
        params={"batch_size": 4},
    )
    engine = build_engine(spec)
    assert isinstance(engine.scheduler, BatchSamplingScheduler)
    engine.run(tiny)
    # 4-task jobs at probe_ratio 2 would send 8 probes; the budget caps
    # each at max(num_tasks, min(8, 4)) = num_tasks
    expected = sum(job.num_tasks for job in tiny)
    assert engine.scheduler.probes_sent == expected


def test_omniscient_is_a_strong_baseline(tiny):
    omniscient = execute(
        RunSpec(scheduler="omniscient", n_workers=6, cutoff=TEST_CUTOFF), tiny
    )
    sparrow = execute(
        RunSpec(scheduler="sparrow", n_workers=6, cutoff=TEST_CUTOFF), tiny
    )
    # perfect knowledge should not lose on total completion time
    assert omniscient.end_time <= sparrow.end_time * 1.05


# -- end-to-end custom registration ------------------------------------------
def test_custom_policy_registers_and_sweeps(tiny):
    @register_policy(
        "test-fifo",
        params=(Param("fanout", int, default=1, minimum=1),),
    )
    class FifoPolicy(SchedulerPolicy):
        """Round-robin task placement (test-only)."""

        name = "test-fifo"

        def __init__(self, fanout: int) -> None:
            super().__init__()
            self.fanout = fanout
            self._next = 0

        @classmethod
        def from_params(cls, params):
            return cls(fanout=params["fanout"])

        def on_job_submit(self, job):
            for task in job.tasks:
                self.engine.place_task(
                    self._next % self.engine.cluster.n_workers, task
                )
                self._next += self.fanout

    try:
        spec = RunSpec(
            scheduler="test-fifo",
            n_workers=6,
            cutoff=TEST_CUTOFF,
            params={"fanout": 2},
        )
        res = execute(spec, tiny)
        assert len(res.jobs) == len(tiny)
        assert "test-fifo" in registry.registered_names()
    finally:
        registry.unregister("test-fifo")
    assert "test-fifo" not in registry.registered_names()


# -- schema drift guard ------------------------------------------------------
def test_schema_snapshot_matches_registry():
    """The checked-in schema snapshot must track the live registry.

    This is the same check the CI registry-smoke job runs; regenerate
    the snapshot on purpose when a schema changes:
    ``python -c "from repro.schedulers import registry;
    print(registry.describe(), end='')" > benchmarks/results/registry_schema.txt``
    """
    assert SCHEMA_SNAPSHOT.read_text() == registry.describe()
