"""Tests for the Sparrow batch-probing policy."""

import pytest

from repro.cluster import Cluster, ClusterEngine, EngineConfig, Partition
from repro.core.errors import ConfigurationError
from repro.schedulers import SparrowScheduler
from repro.workloads.spec import JobSpec, Trace
from tests.conftest import TEST_CUTOFF, job


def build(n_workers=10, probe_ratio=2, partition=Partition.ALL, seed=0):
    scheduler = SparrowScheduler(probe_ratio=probe_ratio, partition=partition)
    engine = ClusterEngine(
        Cluster(n_workers, short_partition_fraction=0.2),
        scheduler,
        EngineConfig(cutoff=TEST_CUTOFF, seed=seed),
    )
    return engine, scheduler


def test_probe_ratio_validation():
    with pytest.raises(ConfigurationError):
        SparrowScheduler(probe_ratio=0)


def test_two_probes_per_task_sent():
    engine, scheduler = build()
    trace = Trace([job(0, 0.0, 10.0, 10.0, 10.0)], name="t")
    engine.run(trace)
    assert scheduler.probes_sent == 6
    assert scheduler.jobs_scheduled == 1


def test_custom_probe_ratio():
    engine, scheduler = build(probe_ratio=3)
    engine.run(Trace([job(0, 0.0, 10.0, 10.0)], name="t"))
    assert scheduler.probes_sent == 6


def test_probes_land_on_distinct_workers_when_possible():
    engine, _ = build(n_workers=10)
    trace = Trace([job(0, 0.0, *([10.0] * 4))], name="t")
    res = engine.run(trace)
    # 8 probes over 10 distinct workers: no probe queues behind another,
    # so all tasks finish in ~1 task time.
    assert res.jobs[0].runtime < 11.0


def test_partition_scope_restricts_placement():
    engine, _ = build(partition=Partition.SHORT_RESERVED)
    trace = Trace([job(0, 0.0, 10.0, 10.0)], name="t")
    engine.run(trace)
    general = list(engine.cluster.ids(Partition.GENERAL))
    assert all(engine.cluster.worker(w).tasks_executed == 0 for w in general)


def test_empty_partition_rejected_at_bind():
    scheduler = SparrowScheduler(partition=Partition.SHORT_RESERVED)
    with pytest.raises(ConfigurationError):
        ClusterEngine(
            Cluster(10),  # no short partition configured
            scheduler,
            EngineConfig(cutoff=TEST_CUTOFF),
        )


def test_oversubscribed_probes_still_complete():
    # 2t probes > cluster size: probes wrap around, all tasks still run.
    engine, _ = build(n_workers=3)
    trace = Trace([job(0, 0.0, *([10.0] * 12))], name="big")
    res = engine.run(trace)
    assert res.jobs[0].completion_time > 0


def test_job_with_more_tasks_than_workers_completes():
    engine, _ = build(n_workers=2)
    trace = Trace([job(0, 0.0, *([5.0] * 9))], name="big")
    res = engine.run(trace)
    # 9 tasks on 2 workers: at least ceil(9/2) * 5 s of serial work.
    assert res.jobs[0].runtime >= 25.0- 1e-6


def test_late_binding_prevents_double_assignment():
    engine, scheduler = build(n_workers=10)
    trace = Trace([job(0, 0.0, *([10.0] * 5)) for _ in range(1)], name="t")
    engine.run(trace)
    executed = sum(w.tasks_executed for w in engine.cluster.workers)
    assert executed == 5  # despite 10 probes


def test_scheduler_name():
    assert SparrowScheduler().name == "sparrow"


def test_rebind_rejected():
    engine, scheduler = build()
    with pytest.raises(RuntimeError):
        scheduler.bind(engine)
