"""Tests for the least-waiting-time centralized scheduler."""

import pytest

from repro.cluster import Cluster, ClusterEngine, EngineConfig, Partition
from repro.schedulers import CentralizedScheduler
from repro.workloads.spec import Trace
from tests.conftest import TEST_CUTOFF, job


def build(n_workers=4, partition=Partition.ALL):
    scheduler = CentralizedScheduler(partition=partition)
    engine = ClusterEngine(
        Cluster(n_workers, short_partition_fraction=0.25),
        scheduler,
        EngineConfig(cutoff=TEST_CUTOFF),
    )
    return engine, scheduler


def test_tasks_spread_over_idle_workers():
    engine, scheduler = build(n_workers=4)
    trace = Trace([job(0, 0.0, *([50.0] * 4))], name="t")
    engine.run(trace)
    assert [w.tasks_executed for w in engine.cluster.workers] == [1, 1, 1, 1]


def test_least_loaded_worker_chosen_first():
    engine, scheduler = build(n_workers=2)
    # 3 equal tasks on 2 workers: one worker must take 2.
    trace = Trace([job(0, 0.0, 50.0, 50.0, 50.0)], name="t")
    engine.run(trace)
    counts = sorted(w.tasks_executed for w in engine.cluster.workers)
    assert counts == [1, 2]


def test_waiting_time_accumulates_estimates():
    engine, scheduler = build(n_workers=2)
    trace = Trace([job(0, 0.0, 50.0, 50.0, 50.0)], name="t")
    # Inspect mid-run: after placement, pending sums must equal job work.
    for spec in trace:
        pass
    engine.sim.schedule_at(0.0, lambda: None)
    engine.run(trace)
    # After completion all pending estimates return to ~zero.
    assert all(p == pytest.approx(0.0) for p in scheduler._pending.values())


def test_completion_feedback_frees_worker_view():
    """A worker whose task finished early must become preferred again."""
    engine, scheduler = build(n_workers=2)
    # Job A: two tasks, one short-running and one long-running reality,
    # same estimate.  Job B arrives later: must go to the freed worker.
    trace = Trace(
        [job(0, 0.0, 10.0, 500.0), job(1, 100.0, 10.0)],
        name="t",
    )
    engine.run(trace)
    # Worker that ran the 10 s task should have taken job 1's task too.
    counts = sorted(w.tasks_executed for w in engine.cluster.workers)
    assert counts == [1, 2]


def test_partition_restriction():
    engine, _ = build(n_workers=4, partition=Partition.GENERAL)
    trace = Trace([job(0, 0.0, *([50.0] * 6))], name="t")
    engine.run(trace)
    short_ids = list(engine.cluster.ids(Partition.SHORT_RESERVED))
    assert all(engine.cluster.worker(w).tasks_executed == 0 for w in short_ids)


def test_estimates_drive_placement_not_true_durations():
    """With a wildly wrong estimate, placement quality degrades — the
    scheduler must not peek at true durations."""
    scheduler = CentralizedScheduler()
    engine = ClusterEngine(
        Cluster(2),
        scheduler,
        EngineConfig(cutoff=TEST_CUTOFF),
        estimate=lambda spec: 1.0,  # everything looks tiny
    )
    trace = Trace([job(0, 0.0, 100.0), job(1, 0.5, 100.0)], name="t")
    engine.run(trace)
    # Both jobs estimated at ~1 s: the second job still must pick the
    # *other* worker (pending 0 < pending 1), so both run in parallel.
    counts = sorted(w.tasks_executed for w in engine.cluster.workers)
    assert counts == [1, 1]


def test_snapshot_sorted_by_waiting():
    engine, scheduler = build(n_workers=3)
    snap = scheduler.snapshot()
    assert snap == sorted(snap)
    assert len(snap) == 3


def test_tasks_placed_counter():
    engine, scheduler = build()
    trace = Trace([job(0, 0.0, 10.0, 10.0), job(1, 1.0, 10.0)], name="t")
    engine.run(trace)
    assert scheduler.tasks_placed == 3
    assert scheduler.jobs_scheduled == 2


def test_on_task_finish_ignores_foreign_tasks():
    engine, scheduler = build()
    from repro.cluster.job import Job

    foreign = Job(99, 0.0, (10.0,), 10.0, cutoff=TEST_CUTOFF)
    foreign.tasks[0].worker_id = 0
    scheduler.on_task_finish(foreign.tasks[0])  # must not raise


def test_many_tasks_balanced_modulo_one():
    engine, scheduler = build(n_workers=5)
    trace = Trace([job(0, 0.0, *([20.0] * 13))], name="t")
    engine.run(trace)
    counts = [w.tasks_executed for w in engine.cluster.workers]
    assert max(counts) - min(counts) <= 1
    assert sum(counts) == 13
