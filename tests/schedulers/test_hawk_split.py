"""Tests for the Hawk hybrid policy and the split-cluster baseline."""

import pytest

from repro.cluster import Cluster, ClusterEngine, EngineConfig, Partition
from repro.schedulers import HawkScheduler, SplitScheduler, WorkStealing
from repro.schedulers.centralized import CentralizedScheduler
from repro.schedulers.sparrow import SparrowScheduler
from repro.workloads.spec import Trace
from tests.conftest import TEST_CUTOFF, job, long_job, short_job


def build_hawk(n_workers=8, centralize_long=True, stealing=False):
    scheduler = HawkScheduler(centralize_long=centralize_long)
    engine = ClusterEngine(
        Cluster(n_workers, short_partition_fraction=0.25),
        scheduler,
        EngineConfig(cutoff=TEST_CUTOFF),
        stealing=WorkStealing() if stealing else None,
    )
    return engine, scheduler


# -- routing -------------------------------------------------------------
def test_long_jobs_counted_to_centralized():
    engine, scheduler = build_hawk()
    trace = Trace([long_job(0, 0.0), short_job(1, 1.0)], name="t")
    engine.run(trace)
    assert scheduler.long_jobs == 1
    assert scheduler.short_jobs == 1


def test_long_component_is_centralized_by_default():
    _, scheduler = build_hawk()
    assert isinstance(scheduler.long_component, CentralizedScheduler)
    assert scheduler.long_component.partition is Partition.GENERAL


def test_no_centralized_ablation_uses_probing_on_general():
    _, scheduler = build_hawk(centralize_long=False)
    assert isinstance(scheduler.long_component, SparrowScheduler)
    assert scheduler.long_component.partition is Partition.GENERAL


def test_long_tasks_never_run_in_short_partition():
    engine, _ = build_hawk()
    trace = Trace(
        [long_job(i, float(i), tasks=6) for i in range(3)], name="longs"
    )
    engine.run(trace)
    for wid in engine.cluster.ids(Partition.SHORT_RESERVED):
        assert engine.cluster.worker(wid).tasks_executed == 0


def test_long_tasks_never_run_in_short_partition_without_centralized():
    engine, _ = build_hawk(centralize_long=False)
    trace = Trace([long_job(i, float(i), tasks=6) for i in range(3)], name="l")
    engine.run(trace)
    for wid in engine.cluster.ids(Partition.SHORT_RESERVED):
        assert engine.cluster.worker(wid).tasks_executed == 0


def test_short_jobs_may_use_entire_cluster():
    engine, _ = build_hawk(n_workers=4)
    # Many short jobs: with only 3 general workers, some tasks must land
    # in the short partition too.
    trace = Trace([short_job(i, 0.0, tasks=4) for i in range(8)], name="s")
    engine.run(trace)
    short_ids = list(engine.cluster.ids(Partition.SHORT_RESERVED))
    assert sum(engine.cluster.worker(w).tasks_executed for w in short_ids) > 0


def test_classification_uses_estimate_not_truth():
    scheduler = HawkScheduler()
    engine = ClusterEngine(
        Cluster(8, short_partition_fraction=0.25),
        scheduler,
        EngineConfig(cutoff=TEST_CUTOFF),
        estimate=lambda spec: 1e6,  # everything misestimated as long
    )
    trace = Trace([short_job(0, 0.0), short_job(1, 1.0)], name="t")
    engine.run(trace)
    assert scheduler.long_jobs == 2
    assert scheduler.short_jobs == 0


def test_hawk_name():
    assert HawkScheduler().name == "hawk"


# -- split cluster --------------------------------------------------------
def build_split(n_workers=8):
    scheduler = SplitScheduler()
    engine = ClusterEngine(
        Cluster(n_workers, short_partition_fraction=0.25),
        scheduler,
        EngineConfig(cutoff=TEST_CUTOFF),
    )
    return engine, scheduler


def test_split_short_jobs_only_in_short_partition():
    engine, _ = build_split()
    trace = Trace([short_job(i, float(i)) for i in range(4)], name="s")
    engine.run(trace)
    for wid in engine.cluster.ids(Partition.GENERAL):
        assert engine.cluster.worker(wid).tasks_executed == 0


def test_split_long_jobs_only_in_general_partition():
    engine, _ = build_split()
    trace = Trace([long_job(0, 0.0)], name="l")
    engine.run(trace)
    for wid in engine.cluster.ids(Partition.SHORT_RESERVED):
        assert engine.cluster.worker(wid).tasks_executed == 0


def test_split_mixed_trace_completes(tiny_trace):
    engine, _ = build_split()
    res = engine.run(tiny_trace)
    assert len(res.jobs) == len(tiny_trace)


def test_split_short_jobs_queue_in_small_partition():
    """The split cluster's defining weakness: shorts cannot overflow."""
    engine, _ = build_split(n_workers=8)  # short partition = 2 workers
    trace = Trace([short_job(i, 0.0, tasks=4) for i in range(4)], name="s")
    res = engine.run(trace)
    # 16 short tasks of 10 s on 2 workers: >= 80 s of serial work.
    assert max(r.completion_time for r in res.jobs) >= 80.0
