"""Tests for estimation models."""

import pytest

from repro.core.errors import ConfigurationError
from repro.schedulers import ExactEstimation, UniformMisestimation
from repro.workloads.spec import JobSpec


def spec(job_id=1, durations=(10.0, 30.0)):
    return JobSpec(job_id, 0.0, durations)


def test_exact_returns_mean():
    assert ExactEstimation()(spec()) == 20.0


def test_misestimation_within_range():
    estimator = UniformMisestimation(0.5, 1.5, seed=0)
    for job_id in range(100):
        estimate = estimator(spec(job_id=job_id))
        assert 10.0 <= estimate <= 30.0


def test_misestimation_deterministic_per_job():
    a = UniformMisestimation(0.1, 1.9, seed=7)
    b = UniformMisestimation(0.1, 1.9, seed=7)
    for job_id in range(10):
        assert a(spec(job_id=job_id)) == b(spec(job_id=job_id))


def test_misestimation_varies_across_jobs():
    estimator = UniformMisestimation(0.1, 1.9, seed=0)
    estimates = {estimator(spec(job_id=i)) for i in range(20)}
    assert len(estimates) > 10


def test_misestimation_varies_across_seeds():
    a = UniformMisestimation(0.1, 1.9, seed=1)(spec())
    b = UniformMisestimation(0.1, 1.9, seed=2)(spec())
    assert a != b


def test_invalid_range_rejected():
    with pytest.raises(ConfigurationError):
        UniformMisestimation(0.0, 1.0)
    with pytest.raises(ConfigurationError):
        UniformMisestimation(1.5, 0.5)


def test_magnitude_label():
    assert UniformMisestimation(0.1, 1.9).magnitude_label == "0.1-1.9"


def test_degenerate_range_is_constant_factor():
    estimator = UniformMisestimation(2.0, 2.0, seed=0)
    assert estimator(spec()) == pytest.approx(40.0)


def test_mean_preserving_on_average():
    """Symmetric ranges around 1 should roughly preserve the mean."""
    estimator = UniformMisestimation(0.5, 1.5, seed=0)
    estimates = [estimator(spec(job_id=i)) for i in range(2000)]
    assert sum(estimates) / len(estimates) == pytest.approx(20.0, rel=0.05)
