"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterEngine, EngineConfig
from repro.experiments.parallel import DiskCache, SweepExecutor, set_executor
from repro.schedulers import (
    CentralizedScheduler,
    HawkScheduler,
    SparrowScheduler,
    SplitScheduler,
    WorkStealing,
)
from repro.workloads.spec import JobSpec, Trace

#: Cutoff used by the hand-built test traces: tasks of 10 s are short,
#: tasks of 1000 s are long.
TEST_CUTOFF = 100.0


@pytest.fixture(autouse=True, scope="session")
def _isolated_default_executor(tmp_path_factory):
    """Point the default executor at a throwaway disk cache.

    Unit tests assert behavior of the code under test; serving them
    stale results from the developer's persistent ``benchmarks/.runcache``
    (written by a *previous* revision of the engine) could mask
    regressions.  The benchmark harness, by contrast, keeps the
    persistent cache on purpose — cross-session reuse is the feature.
    """
    cache_dir = tmp_path_factory.mktemp("runcache")
    previous = set_executor(SweepExecutor(disk_cache=DiskCache(cache_dir)))
    yield
    set_executor(previous)


def job(job_id: int, submit: float, *durations: float) -> JobSpec:
    return JobSpec(job_id, submit, tuple(float(d) for d in durations))


def short_job(job_id: int, submit: float, tasks: int = 4) -> JobSpec:
    return job(job_id, submit, *([10.0] * tasks))


def long_job(job_id: int, submit: float, tasks: int = 4) -> JobSpec:
    return job(job_id, submit, *([1000.0] * tasks))


@pytest.fixture
def tiny_trace() -> Trace:
    """Two long jobs then a stream of short jobs — provokes queueing."""
    jobs = [long_job(0, 0.0, 6), long_job(1, 1.0, 6)]
    jobs.extend(short_job(10 + i, 2.0 + i, 3) for i in range(8))
    return Trace(jobs, name="tiny")


@pytest.fixture
def short_only_trace() -> Trace:
    return Trace([short_job(i, float(i)) for i in range(6)], name="shorts")


@pytest.fixture
def long_only_trace() -> Trace:
    return Trace([long_job(i, float(i)) for i in range(4)], name="longs")


def make_engine(
    scheduler_name: str,
    n_workers: int = 8,
    short_fraction: float = 0.25,
    seed: int = 0,
    cutoff: float = TEST_CUTOFF,
    steal_cap: int = 10,
    estimate=None,
) -> ClusterEngine:
    """Build a small engine for the named scheduler policy."""
    if scheduler_name == "sparrow":
        cluster = Cluster(n_workers)
        return ClusterEngine(
            cluster,
            SparrowScheduler(),
            EngineConfig(cutoff=cutoff, seed=seed),
            estimate=estimate,
        )
    if scheduler_name == "centralized":
        cluster = Cluster(n_workers)
        return ClusterEngine(
            cluster,
            CentralizedScheduler(),
            EngineConfig(cutoff=cutoff, seed=seed),
            estimate=estimate,
        )
    if scheduler_name == "split":
        cluster = Cluster(n_workers, short_partition_fraction=short_fraction)
        return ClusterEngine(
            cluster,
            SplitScheduler(),
            EngineConfig(cutoff=cutoff, seed=seed),
            estimate=estimate,
        )
    if scheduler_name == "hawk":
        cluster = Cluster(n_workers, short_partition_fraction=short_fraction)
        return ClusterEngine(
            cluster,
            HawkScheduler(),
            EngineConfig(cutoff=cutoff, seed=seed),
            stealing=WorkStealing(cap=steal_cap),
            estimate=estimate,
        )
    raise ValueError(scheduler_name)
