"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.cluster import Cluster, ClusterEngine, EngineConfig
from repro.cluster.job import Job, JobClass
from repro.cluster.worker import ProbeEntry, Worker, WorkerState, find_first_short_group
from repro.schedulers.frontend import ProbeFrontend
from repro.core import Simulation
from repro.core.rng import make_rng, sample_without_replacement, spread_sample
from repro.metrics.percentiles import percentile
from repro.schedulers import CentralizedScheduler, SparrowScheduler
from repro.workloads.analysis import cdf_points
from repro.workloads.spec import JobSpec, Trace

# -- Figure 3 scan ----------------------------------------------------------


@given(st.booleans(), st.lists(st.booleans(), max_size=30))
def test_scan_returns_valid_span_of_shorts(executing_long, flags):
    span = find_first_short_group(executing_long, flags)
    if span is not None:
        start, stop = span
        assert 0 <= start < stop <= len(flags)
        # the span contains only short entries
        assert not any(flags[start:stop])
        # maximality on the right: next entry (if any) is long
        if stop < len(flags):
            assert flags[stop]
        # the span is preceded by a long entry (or the executing one)
        if start == 0:
            assert executing_long
        else:
            assert flags[start - 1]


@given(st.booleans(), st.lists(st.booleans(), max_size=30))
def test_scan_none_means_no_short_after_long(executing_long, flags):
    span = find_first_short_group(executing_long, flags)
    if span is None:
        seen_long = executing_long
        for is_long in flags:
            if is_long:
                seen_long = True
            else:
                assert not seen_long, "a stealable short existed"


@given(st.lists(st.booleans(), min_size=1, max_size=30))
def test_scan_first_group_is_earliest(flags):
    span = find_first_short_group(True, flags)
    if span is not None:
        start, _ = span
        # no short entry before `start` (executing is long, so every
        # earlier short would itself have been eligible)
        assert all(flags[:start])


# -- steal hint vs eligibility ------------------------------------------------

_next_job_id = iter(range(10**9))


def _entry(is_long: bool) -> ProbeEntry:
    duration = 1000.0 if is_long else 10.0
    job = Job(next(_next_job_id), 0.0, (duration,), duration, cutoff=100.0)
    return ProbeEntry(job, ProbeFrontend(job))


def _model_hint(current_long: bool, flags: list[bool]) -> bool:
    """Reference implementation: a short sits behind a long (slot counts)."""
    seen_long = current_long
    for is_long in flags:
        if is_long:
            seen_long = True
        elif seen_long:
            return True
    return False


_worker_ops = st.lists(
    st.one_of(
        st.tuples(st.just("enqueue"), st.booleans()),
        st.tuples(st.just("enqueue_front"), st.lists(st.booleans(), max_size=3)),
        st.just(("pop",)),
        st.just(("finish",)),
        st.just(("steal",)),
    ),
    max_size=40,
)


@given(_worker_ops)
def test_steal_hint_iff_eligible_under_any_op_sequence(ops):
    """After any queue/slot history, ``steal_hint()`` is True exactly when
    ``eligible_steal_range()`` finds a group, and both agree with a plain
    list model of the queue."""
    w = Worker(0, in_short_partition=False)
    model: list[bool] = []  # is_long per queued entry
    current: bool | None = None  # slot class, None when idle
    for op in ops:
        if op[0] == "enqueue":
            w.enqueue(_entry(op[1]))
            model.append(op[1])
        elif op[0] == "enqueue_front":
            entries = [_entry(f) for f in op[1]]
            w.enqueue_front(entries)
            model[:0] = list(op[1])
        elif op[0] == "pop":
            if model:
                entry = w.pop_next()
                assert entry.is_long == model.pop(0)
                # the engine moves popped entries into the slot
                w.current_entry = entry
                w.state = WorkerState.BUSY
                current = entry.is_long
        elif op[0] == "finish":
            w.current_entry = None
            w.state = WorkerState.IDLE
            current = None
        elif op[0] == "steal":
            span = w.eligible_steal_range()
            assert span == find_first_short_group(
                current is True, model
            )
            if span is not None:
                stolen = w.remove_range(*span)
                assert all(e.is_short for e in stolen)
                del model[span[0] : span[1]]
        # Invariants hold after every operation.
        assert [e.is_long for e in w.queue] == model
        assert w.long_entries == sum(model)
        assert w.steal_hint() is _model_hint(current is True, model)
        assert w.steal_hint() is (w.eligible_steal_range() is not None)


# -- simulation ordering ------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=100))
def test_simulation_fires_in_sorted_order(times):
    sim = Simulation()
    fired = []
    for t in times:
        sim.schedule(t, fired.append, t)
    sim.run()
    assert fired == sorted(times)
    if times:
        assert sim.now == max(times)


# -- sampling ------------------------------------------------------------------


@given(st.integers(1, 200), st.data())
def test_sample_without_replacement_properties(population, data):
    k = data.draw(st.integers(0, population))
    rng = make_rng(data.draw(st.integers(0, 2**31)), "prop")
    out = sample_without_replacement(rng, population, k)
    assert len(out) == k
    assert len(set(out)) == k
    assert all(0 <= x < population for x in out)


@given(st.integers(1, 50), st.integers(1, 200), st.integers(0, 2**31))
def test_spread_sample_balance_property(n, k, seed):
    rng = make_rng(seed, "prop")
    out = spread_sample(rng, range(n), k)
    assert len(out) == k
    counts = [out.count(i) for i in range(n)]
    assert max(counts) - min(counts) <= 1


# -- percentile -----------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=50),
    st.floats(min_value=0, max_value=100),
)
def test_percentile_bounded_and_monotone(values, p):
    result = percentile(values, p)
    assert min(values) <= result <= max(values)
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=30),
)
def test_percentile_monotone_in_p(values):
    ps = [0, 25, 50, 75, 100]
    results = [percentile(values, p) for p in ps]
    assert results == sorted(results)


# -- CDF ---------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_cdf_points_properties(values):
    xs, ys = cdf_points(values)
    assert xs == sorted(values)
    assert ys[-1] == pytest.approx(100.0)
    assert all(0 < y <= 100.0 for y in ys)
    assert ys == sorted(ys)


# -- seed replication ---------------------------------------------------------


@given(st.integers(-(10**6), 10**6), st.integers(1, 25))
def test_replica_seeds_contiguous_and_anchored(base, n):
    from repro.workloads.replication import replica_seeds

    seeds = replica_seeds(base, n)
    assert len(seeds) == n
    assert seeds[0] == base  # replica 0 IS the base experiment
    assert len(set(seeds)) == n
    assert all(b - a == 1 for a, b in zip(seeds, seeds[1:]))


@given(st.integers(0, 50), st.integers(0, 50))
def test_seeded_trace_regeneration_is_pure(seed_a, seed_b):
    """A workload generator is a pure function of its seed: same seed ⇒
    same trace content, different seed ⇒ an independent draw."""
    from repro.workloads.google import GoogleTraceConfig, google_like_trace

    config = GoogleTraceConfig(n_jobs=12)
    a1 = google_like_trace(config, seed=seed_a)
    a2 = google_like_trace(config, seed=seed_a)
    b = google_like_trace(config, seed=seed_b)
    assert a1.content_digest() == a2.content_digest()
    if seed_a != seed_b:
        # continuous durations make a digest collision impossible in
        # practice; identical draws would mean the seed is ignored
        assert a1.content_digest() != b.content_digest()


# -- end-to-end conservation ---------------------------------------------------

_traces = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),  # submit time
        st.lists(
            st.floats(min_value=0.5, max_value=2000.0), min_size=1, max_size=6
        ),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=25, deadline=None)
@given(_traces, st.integers(0, 1000))
def test_sparrow_run_conserves_tasks(jobs, seed):
    trace = Trace(
        [JobSpec(i, submit, tuple(durs)) for i, (submit, durs) in enumerate(jobs)],
        name="prop",
    )
    engine = ClusterEngine(
        Cluster(5),
        SparrowScheduler(),
        EngineConfig(cutoff=100.0, seed=seed),
    )
    res = engine.run(trace)
    assert len(res.jobs) == len(trace)
    executed = sum(w.tasks_executed for w in engine.cluster.workers)
    assert executed == trace.total_tasks
    for record in res.jobs:
        # a job can never finish faster than its longest task
        spec = next(s for s in trace if s.job_id == record.job_id)
        assert record.runtime >= max(spec.task_durations) - 1e-6


@settings(max_examples=25, deadline=None)
@given(_traces, st.integers(0, 1000))
def test_centralized_run_conserves_tasks(jobs, seed):
    trace = Trace(
        [JobSpec(i, submit, tuple(durs)) for i, (submit, durs) in enumerate(jobs)],
        name="prop",
    )
    engine = ClusterEngine(
        Cluster(5),
        CentralizedScheduler(),
        EngineConfig(cutoff=100.0, seed=seed),
    )
    res = engine.run(trace)
    executed = sum(w.tasks_executed for w in engine.cluster.workers)
    assert executed == trace.total_tasks
    # lower bound: no schedule beats total work / cluster size
    total_work = trace.total_task_seconds
    makespan = max(r.completion_time for r in res.jobs)
    assert makespan >= total_work / engine.cluster.n_workers - 1e-6


@settings(max_examples=15, deadline=None)
@given(_traces, st.integers(0, 1000))
def test_same_seed_bit_identical_run_and_cache_round_trip(jobs, seed):
    """Determinism: same (trace, seed) ⇒ the same RunResult bytes from
    two independent engines, and a pickle (cache-entry) round trip is
    faithful.  The pool path is covered by
    tests/experiments/test_parallel.py's serial-vs-pool comparison."""
    import pickle

    from repro.cluster import Partition
    from repro.schedulers import HawkScheduler, WorkStealing

    trace = Trace(
        [JobSpec(i, submit, tuple(durs)) for i, (submit, durs) in enumerate(jobs)],
        name="prop-determinism",
    )

    def one_run():
        engine = ClusterEngine(
            Cluster(6, short_partition_fraction=0.34),
            HawkScheduler(),
            EngineConfig(cutoff=100.0, seed=seed),
            stealing=WorkStealing(),
        )
        return engine.run(trace)

    first, second = one_run(), one_run()
    blob = pickle.dumps(first)
    assert pickle.dumps(second) == blob
    clone = pickle.loads(blob)
    assert clone == first
    assert pickle.dumps(clone) == blob


@settings(max_examples=20, deadline=None)
@given(_traces, st.integers(0, 1000))
def test_hawk_run_conserves_tasks_and_partition(jobs, seed):
    from repro.cluster import Partition
    from repro.schedulers import HawkScheduler, WorkStealing

    trace = Trace(
        [JobSpec(i, submit, tuple(durs)) for i, (submit, durs) in enumerate(jobs)],
        name="prop",
    )
    engine = ClusterEngine(
        Cluster(6, short_partition_fraction=0.34),
        HawkScheduler(),
        EngineConfig(cutoff=100.0, seed=seed),
        stealing=WorkStealing(),
    )
    res = engine.run(trace)
    executed = sum(w.tasks_executed for w in engine.cluster.workers)
    assert executed == trace.total_tasks
    # long tasks must never have run in the short partition
    for job_record in res.jobs:
        pass  # per-task placement asserted via worker counters below
    long_ids = {s.job_id for s in trace if s.is_long(100.0)}
    if long_ids:
        # reconstruct: short-partition workers may only have run short work
        short_ts = sum(
            s.task_seconds for s in trace if s.job_id not in long_ids
        )
        short_part_work = sum(
            w.tasks_executed for w in engine.cluster.workers
            if w.in_short_partition
        )
        total_short_tasks = sum(
            s.num_tasks for s in trace if s.job_id not in long_ids
        )
        assert short_part_work <= total_short_tasks
