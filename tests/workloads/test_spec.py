"""Tests for JobSpec and Trace containers."""

import pytest

from repro.core.errors import ConfigurationError
from repro.workloads.spec import JobSpec, Trace


def test_jobspec_properties():
    spec = JobSpec(1, 5.0, (10.0, 20.0, 30.0))
    assert spec.num_tasks == 3
    assert spec.mean_task_duration == 20.0
    assert spec.task_seconds == 60.0


def test_jobspec_is_long():
    spec = JobSpec(1, 0.0, (100.0,))
    assert spec.is_long(100.0)
    assert not spec.is_long(100.1)


def test_jobspec_no_tasks_rejected():
    with pytest.raises(ConfigurationError):
        JobSpec(1, 0.0, ())


def test_jobspec_negative_submit_rejected():
    with pytest.raises(ConfigurationError):
        JobSpec(1, -1.0, (10.0,))


def test_jobspec_nonpositive_duration_rejected():
    with pytest.raises(ConfigurationError):
        JobSpec(1, 0.0, (10.0, 0.0))


def test_jobspec_immutable():
    spec = JobSpec(1, 0.0, (10.0,))
    with pytest.raises(AttributeError):
        spec.submit_time = 3.0


def test_trace_sorts_by_submit_time():
    trace = Trace(
        [JobSpec(1, 5.0, (1.0,)), JobSpec(2, 1.0, (1.0,))], name="t"
    )
    assert [j.job_id for j in trace] == [2, 1]


def test_trace_tie_broken_by_job_id():
    trace = Trace(
        [JobSpec(5, 1.0, (1.0,)), JobSpec(2, 1.0, (1.0,))], name="t"
    )
    assert [j.job_id for j in trace] == [2, 5]


def test_trace_len_and_index():
    trace = Trace([JobSpec(i, float(i), (1.0,)) for i in range(3)], name="t")
    assert len(trace) == 3
    assert trace[1].job_id == 1


def test_trace_empty_rejected():
    with pytest.raises(ConfigurationError):
        Trace([], name="t")


def test_trace_horizon_is_last_submit():
    trace = Trace([JobSpec(0, 2.0, (1.0,)), JobSpec(1, 9.0, (1.0,))], name="t")
    assert trace.horizon == 9.0


def test_trace_totals():
    trace = Trace(
        [JobSpec(0, 0.0, (10.0, 10.0)), JobSpec(1, 1.0, (5.0,))], name="t"
    )
    assert trace.total_tasks == 3
    assert trace.total_task_seconds == 25.0


def test_trace_class_split():
    trace = Trace(
        [JobSpec(0, 0.0, (10.0,)), JobSpec(1, 1.0, (1000.0,))], name="t"
    )
    assert len(trace.long_jobs(100.0)) == 1
    assert len(trace.short_jobs(100.0)) == 1


def test_nodes_for_full_utilization():
    trace = Trace(
        [JobSpec(0, 0.0, (100.0,)), JobSpec(1, 10.0, (100.0,))], name="t"
    )
    assert trace.nodes_for_full_utilization() == pytest.approx(20.0)


def test_subset_takes_first_jobs():
    trace = Trace([JobSpec(i, float(i), (1.0,)) for i in range(10)], name="t")
    sub = trace.subset(3)
    assert len(sub) == 3
    assert [j.job_id for j in sub] == [0, 1, 2]


def test_subset_invalid_size_rejected():
    trace = Trace([JobSpec(0, 0.0, (1.0,))], name="t")
    with pytest.raises(ConfigurationError):
        trace.subset(0)
