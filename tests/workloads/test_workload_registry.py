"""Tests for the workload registry: schemas, identity, cache stability."""

from pathlib import Path

import pytest

from repro.core.errors import ConfigurationError
from repro.core.params import FrozenParams, Param
from repro.experiments.config import RunSpec
from repro.experiments.parallel import cache_key
from repro.experiments.runner import run_replicated
from repro.experiments.sweeps import compare_at_size
from repro.experiments.traces import google_trace, google_workload
from repro.workloads import registry
from repro.workloads.registry import WorkloadSpec, quick_spec, register_workload
from repro.workloads.spec import JobSpec, Trace
from tests.conftest import TEST_CUTOFF

SCHEMA_SNAPSHOT = (
    Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "results"
    / "workload_schema.txt"
)


# -- registration rules ------------------------------------------------------
def test_duplicate_name_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        @register_workload("google", cutoff=100.0)
        def _clash(params, seed):  # pragma: no cover - never built
            raise AssertionError


def test_registration_requires_positive_cutoff():
    with pytest.raises(ConfigurationError, match="cutoff"):
        @register_workload("no-cutoff", cutoff=0.0)
        def _bad(params, seed):  # pragma: no cover - never built
            raise AssertionError
    assert "no-cutoff" not in registry.registered_names()


def test_registration_rejects_duplicate_params():
    with pytest.raises(ConfigurationError, match="duplicate"):
        @register_workload(
            "dup-params",
            params=(Param("x", int, 1), Param("x", int, 2)),
            cutoff=100.0,
        )
        def _bad(params, seed):  # pragma: no cover - never built
            raise AssertionError


def test_registration_rejects_invalid_quick_params():
    with pytest.raises(ConfigurationError, match="quick_params"):
        @register_workload(
            "bad-quick",
            params=(Param("n_jobs", int, 100, minimum=1),),
            cutoff=100.0,
            quick_params={"jobs": 10},  # not a declared name
        )
        def _bad(params, seed):  # pragma: no cover - never built
            raise AssertionError


def test_unknown_workload_lists_registered_names():
    with pytest.raises(ConfigurationError, match="registered workloads"):
        WorkloadSpec("nope")


# -- param schema validation -------------------------------------------------
def test_unknown_param_rejected():
    with pytest.raises(ConfigurationError, match="unknown param"):
        WorkloadSpec("google", {"warp_factor": 9})


def test_out_of_range_param_rejected():
    with pytest.raises(ConfigurationError, match=">= 10"):
        WorkloadSpec("google", {"n_jobs": 5})


def test_wrong_type_param_rejected():
    with pytest.raises(ConfigurationError, match="expects int"):
        WorkloadSpec("google", {"n_jobs": "many"})


def test_defaults_filled_and_canonicalized():
    spec = WorkloadSpec("google")
    assert dict(spec.params) == {"n_jobs": 1200, "mean_interarrival": 20.0}
    assert spec.param("n_jobs") == 1200
    explicit = WorkloadSpec("google", {"n_jobs": 1200})
    # omitted-vs-explicit default: the same workload
    assert spec == explicit and hash(spec) == hash(explicit)
    assert spec.digest() == explicit.digest()


def test_metadata_exposed_on_spec():
    spec = WorkloadSpec("google")
    assert spec.cutoff == 1129.0
    assert spec.short_partition_fraction == 0.17


def test_with_params_overrides_one_knob():
    spec = WorkloadSpec("google").with_params(n_jobs=260)
    assert spec.param("n_jobs") == 260
    assert spec.param("mean_interarrival") == 20.0
    assert spec == google_workload("quick")


def test_quick_spec_applies_registered_overrides():
    assert quick_spec("google") == google_workload("quick")
    assert quick_spec("google", {"n_jobs": 40}).param("n_jobs") == 40


# -- identity and materialization caching ------------------------------------
def test_params_reorder_keeps_digest_and_cache_key_stable():
    a = WorkloadSpec("google", {"n_jobs": 400, "mean_interarrival": 10.0})
    b = WorkloadSpec("google", {"mean_interarrival": 10.0, "n_jobs": 400})
    assert a.digest() == b.digest()
    assert a.trace(0) is b.trace(0)  # one materialization, shared object
    run = RunSpec(scheduler="sparrow", n_workers=8, cutoff=TEST_CUTOFF)
    assert cache_key(run, a.trace(0)) == cache_key(run, b.trace(0))
    # a different param value is a different workload and a different key
    c = a.with_params(n_jobs=401)
    assert c.digest() != a.digest()
    assert cache_key(run, c.trace(0)) != cache_key(run, a.trace(0))


def test_canonical_vs_default_params_materialize_identical_bytes():
    """Per-workload: explicit defaults produce byte-identical traces."""
    for name in registry.registered_names():
        bare = quick_spec(name)
        explicit = WorkloadSpec(name, dict(bare.params))
        assert bare.trace(0).content_digest() == explicit.trace(0).content_digest(), name


def test_materialized_trace_shared_with_traces_module():
    assert google_workload("quick").trace(3) is google_trace("quick", 3)


def test_spec_is_a_trace_factory():
    spec = google_workload("quick")
    assert spec(2) is spec.trace(2)
    draws = [spec(s) for s in (0, 1, 2)]
    digests = {t.content_digest() for t in draws}
    assert len(digests) == 3  # independent draws per seed


def test_builder_must_return_a_trace():
    @register_workload("not-a-trace", cutoff=100.0)
    def _bad(params, seed):
        return [JobSpec(0, 0.0, (1.0,))]

    try:
        with pytest.raises(ConfigurationError, match="expected Trace"):
            WorkloadSpec("not-a-trace").trace(0)
    finally:
        registry.unregister("not-a-trace")


# -- end-to-end custom workload ----------------------------------------------
def test_custom_workload_flows_through_a_figure_point():
    """Registering a workload is the whole integration: it sweeps."""

    @register_workload(
        "test-uniform",
        params=(
            Param("n_jobs", int, default=12, minimum=1),
            Param("tasks", int, default=3, minimum=1),
        ),
        cutoff=TEST_CUTOFF,
        short_partition_fraction=0.25,
        quick_params={"n_jobs": 6},
    )
    def uniform_trace(params, seed):
        """Uniform short jobs plus one long straggler (test-only)."""
        jobs = [
            JobSpec(i, float(i) + 0.01 * seed, (10.0,) * params["tasks"])
            for i in range(params["n_jobs"])
        ]
        jobs.append(JobSpec(params["n_jobs"], 0.0, (1000.0,) * 4))
        return Trace(jobs, name="test-uniform")

    try:
        workload = WorkloadSpec("test-uniform", {"tasks": 2})
        hawk = RunSpec(
            scheduler="hawk",
            n_workers=8,
            cutoff=workload.cutoff,
            short_partition_fraction=workload.short_partition_fraction,
        )
        sparrow = RunSpec(scheduler="sparrow", n_workers=8, cutoff=workload.cutoff)
        point = compare_at_size(workload, 8, hawk, sparrow, n_seeds=2)
        assert point.n_seeds == 2
        assert all(r.candidate.n_workers == 8 for r in point.replicas)
        # replica 1 drew its own trace from the replica seed
        assert (
            point.replicas[0].candidate.jobs != point.replicas[1].candidate.jobs
        )
        # run_replicated accepts the spec in place of (trace, factory) too
        runs = run_replicated(sparrow, workload, 2)
        assert len(runs) == 2
        assert "test-uniform" in registry.registered_names()
    finally:
        registry.unregister("test-uniform")
    assert "test-uniform" not in registry.registered_names()


# -- schema drift guard ------------------------------------------------------
def test_schema_snapshot_matches_registry():
    """The checked-in schema snapshot must track the live registry.

    Same contract as the CI workload-smoke job; regenerate on purpose:
    ``python -m repro.experiments.workloads describe
    > benchmarks/results/workload_schema.txt``
    """
    assert SCHEMA_SNAPSHOT.read_text() == registry.describe()
