"""Tests for trace analysis, file I/O, arrivals and prototype scaling."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.rng import make_rng
from repro.workloads import read_trace, write_trace
from repro.workloads.analysis import (
    cdf_at,
    cdf_points,
    long_job_fraction,
    mean_duration_ratio,
    task_seconds_share,
    tasks_share,
    workload_summary,
)
from repro.workloads.arrivals import poisson_arrival_times
from repro.workloads.scaling import (
    mean_task_runtime,
    scale_trace_for_prototype,
    with_interarrival,
)
from repro.workloads.spec import JobSpec, Trace


@pytest.fixture
def mixed_trace():
    return Trace(
        [
            JobSpec(0, 0.0, (10.0, 10.0)),  # short: 20 ts
            JobSpec(1, 1.0, (10.0,)),  # short: 10 ts
            JobSpec(2, 2.0, (1000.0, 1000.0)),  # long: 2000 ts
        ],
        name="mixed",
    )


# -- analysis -------------------------------------------------------------
def test_long_job_fraction(mixed_trace):
    assert long_job_fraction(mixed_trace, 100.0) == pytest.approx(1 / 3)


def test_task_seconds_share(mixed_trace):
    assert task_seconds_share(mixed_trace, 100.0) == pytest.approx(2000 / 2030)


def test_tasks_share(mixed_trace):
    assert tasks_share(mixed_trace, 100.0) == pytest.approx(2 / 5)


def test_mean_duration_ratio(mixed_trace):
    assert mean_duration_ratio(mixed_trace, 100.0) == pytest.approx(100.0)


def test_ratio_requires_both_classes():
    trace = Trace([JobSpec(0, 0.0, (10.0,))], name="t")
    with pytest.raises(ConfigurationError):
        mean_duration_ratio(trace, 100.0)


def test_workload_summary_bundles_everything(mixed_trace):
    summary = workload_summary(mixed_trace, 100.0)
    assert summary.total_jobs == 3
    assert summary.name == "mixed"


def test_cdf_points_monotone():
    xs, ys = cdf_points([3.0, 1.0, 2.0])
    assert xs == [1.0, 2.0, 3.0]
    assert ys == [pytest.approx(100 / 3), pytest.approx(200 / 3), 100.0]


def test_cdf_points_empty_rejected():
    with pytest.raises(ConfigurationError):
        cdf_points([])


def test_cdf_at():
    values = [1.0, 2.0, 3.0, 4.0]
    assert cdf_at(values, 2.5) == 0.5
    assert cdf_at(values, 0.0) == 0.0
    assert cdf_at(values, 4.0) == 1.0


# -- trace I/O --------------------------------------------------------------
def test_roundtrip_plain(tmp_path, mixed_trace):
    path = tmp_path / "trace.tsv"
    write_trace(mixed_trace, path)
    back = read_trace(path)
    assert len(back) == len(mixed_trace)
    for a, b in zip(mixed_trace, back):
        assert a.job_id == b.job_id
        assert a.submit_time == b.submit_time
        assert a.task_durations == b.task_durations


def test_roundtrip_gzip(tmp_path, mixed_trace):
    path = tmp_path / "trace.tsv.gz"
    write_trace(mixed_trace, path)
    back = read_trace(path)
    assert [j.job_id for j in back] == [j.job_id for j in mixed_trace]


def test_read_skips_comments_and_blank_lines(tmp_path):
    path = tmp_path / "trace.tsv"
    path.write_text("# header\n\n0\t0.0\t1.0,2.0\n")
    trace = read_trace(path)
    assert len(trace) == 1
    assert trace[0].task_durations == (1.0, 2.0)


def test_read_malformed_line_raises(tmp_path):
    path = tmp_path / "bad.tsv"
    path.write_text("0\t0.0\n")
    with pytest.raises(ConfigurationError, match="expected 3"):
        read_trace(path)


def test_read_empty_file_raises(tmp_path):
    path = tmp_path / "empty.tsv"
    path.write_text("")
    with pytest.raises(ConfigurationError):
        read_trace(path)


def test_read_uses_filename_as_default_name(tmp_path, mixed_trace):
    path = tmp_path / "myname.tsv"
    write_trace(mixed_trace, path)
    assert read_trace(path).name == "myname"


def test_roundtrip_preserves_float_precision(tmp_path):
    trace = Trace([JobSpec(0, 0.123456789, (0.000123456789,))], name="t")
    path = tmp_path / "p.tsv"
    write_trace(trace, path)
    back = read_trace(path)
    assert back[0].submit_time == trace[0].submit_time
    assert back[0].task_durations == trace[0].task_durations


# -- arrivals ----------------------------------------------------------------
def test_poisson_arrivals_increasing():
    times = poisson_arrival_times(make_rng(0, "a"), 100, 10.0)
    assert len(times) == 100
    assert times == sorted(times)
    assert times[0] > 0


def test_poisson_mean_gap_close_to_parameter():
    times = poisson_arrival_times(make_rng(0, "a"), 5000, 10.0)
    assert times[-1] / 5000 == pytest.approx(10.0, rel=0.1)


def test_poisson_validation():
    with pytest.raises(ConfigurationError):
        poisson_arrival_times(make_rng(0, "a"), 0, 10.0)
    with pytest.raises(ConfigurationError):
        poisson_arrival_times(make_rng(0, "a"), 10, 0.0)


# -- prototype scaling --------------------------------------------------------
@pytest.fixture
def scalable_trace():
    return Trace(
        [
            JobSpec(0, 0.0, tuple([100.0] * 50)),  # the largest job
            JobSpec(1, 10.0, (500.0, 500.0)),
            JobSpec(2, 20.0, (2000.0,) * 10),
        ],
        name="orig",
    )


def test_scaling_preserves_task_seconds_ratio(scalable_trace):
    scaled = scale_trace_for_prototype(
        scalable_trace, cluster_size=10, cutoff=1000.0
    )
    orig_ts = [j.task_seconds for j in scalable_trace]
    new_ts = [j.task_seconds for j in scaled.trace]
    ratios = [n / o for n, o in zip(new_ts, orig_ts)]
    assert max(ratios) / min(ratios) == pytest.approx(1.0, rel=0.01)


def test_scaling_largest_job_matches_cluster(scalable_trace):
    scaled = scale_trace_for_prototype(
        scalable_trace, cluster_size=10, cutoff=1000.0
    )
    assert max(j.num_tasks for j in scaled.trace) == 10


def test_scaling_hits_target_mean_runtime(scalable_trace):
    scaled = scale_trace_for_prototype(
        scalable_trace, cluster_size=10, cutoff=1000.0,
        target_mean_task_runtime=0.05,
    )
    assert mean_task_runtime(scaled.trace) == pytest.approx(0.05)


def test_scaling_carries_long_classification(scalable_trace):
    scaled = scale_trace_for_prototype(
        scalable_trace, cluster_size=10, cutoff=1000.0
    )
    assert scaled.long_job_ids == {2}


def test_scaling_explicit_time_scale(scalable_trace):
    scaled = scale_trace_for_prototype(
        scalable_trace, cluster_size=10, cutoff=1000.0, time_scale=1e-3
    )
    assert scaled.time_scale == 1e-3
    assert scaled.cutoff == pytest.approx(1.0)


def test_scaling_validation(scalable_trace):
    with pytest.raises(ConfigurationError):
        scale_trace_for_prototype(scalable_trace, cluster_size=0, cutoff=1.0)


def test_with_interarrival_redraws_times(scalable_trace):
    redrawn = with_interarrival(scalable_trace, 5.0, seed=0)
    assert len(redrawn) == len(scalable_trace)
    assert redrawn.horizon != scalable_trace.horizon
    assert {j.job_id for j in redrawn} == {j.job_id for j in scalable_trace}


def test_mean_task_runtime_weighted():
    trace = Trace(
        [JobSpec(0, 0.0, (1.0,)), JobSpec(1, 1.0, (3.0, 3.0, 3.0))], name="t"
    )
    assert mean_task_runtime(trace) == pytest.approx(10.0 / 4)
