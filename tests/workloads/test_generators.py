"""Tests for the workload generators: calibration against paper statistics."""

import pytest

from repro.core.errors import ConfigurationError
from repro.workloads import (
    CLOUDERA_C,
    FACEBOOK_2010,
    GOOGLE_CUTOFF_S,
    YAHOO_2011,
    GoogleTraceConfig,
    google_like_trace,
    kmeans_trace,
    motivation_trace,
)
from repro.workloads.analysis import workload_summary
from repro.workloads.kmeans import ALL_KMEANS_WORKLOADS, KMeansWorkloadSpec
from repro.workloads.motivation import MotivationConfig


# -- Google-like ----------------------------------------------------------
def test_google_job_count():
    trace = google_like_trace(GoogleTraceConfig(n_jobs=200))
    assert len(trace) == 200


def test_google_long_fraction_exact():
    trace = google_like_trace(GoogleTraceConfig(n_jobs=300), seed=1)
    summary = workload_summary(trace, GOOGLE_CUTOFF_S)
    assert summary.long_fraction == pytest.approx(0.10, abs=0.005)


def test_google_task_seconds_share_calibrated():
    for seed in (0, 1, 2):
        trace = google_like_trace(GoogleTraceConfig(n_jobs=400), seed=seed)
        summary = workload_summary(trace, GOOGLE_CUTOFF_S)
        assert summary.task_seconds_share == pytest.approx(0.8365, abs=0.02)


def test_google_duration_ratio_calibrated():
    for seed in (0, 1, 2):
        trace = google_like_trace(GoogleTraceConfig(n_jobs=400), seed=seed)
        summary = workload_summary(trace, GOOGLE_CUTOFF_S)
        assert summary.duration_ratio == pytest.approx(7.34, rel=0.15)


def test_google_tasks_share_in_plausible_band():
    trace = google_like_trace(GoogleTraceConfig(n_jobs=600), seed=0)
    summary = workload_summary(trace, GOOGLE_CUTOFF_S)
    assert 0.15 <= summary.tasks_share <= 0.5  # paper: 0.28


def test_google_classes_respect_cutoff_by_construction():
    trace = google_like_trace(GoogleTraceConfig(n_jobs=300), seed=0)
    for job in trace:
        mean = job.mean_task_duration
        assert mean >= GOOGLE_CUTOFF_S or mean < GOOGLE_CUTOFF_S  # total
    longs = trace.long_jobs(GOOGLE_CUTOFF_S)
    assert all(j.mean_task_duration >= GOOGLE_CUTOFF_S for j in longs)


def test_google_task_limits_respected():
    cfg = GoogleTraceConfig(n_jobs=300)
    trace = google_like_trace(cfg, seed=0)
    for job in trace:
        assert job.num_tasks <= cfg.long_tasks_max


def test_google_within_job_variation():
    cfg = GoogleTraceConfig(n_jobs=100, within_job_cv=0.5)
    trace = google_like_trace(cfg, seed=0)
    varied = [j for j in trace if j.num_tasks > 1]
    assert any(len(set(j.task_durations)) > 1 for j in varied)


def test_google_per_task_mean_matches_drawn_mean():
    """Rescaling guarantees the realized mean equals the drawn one, so
    classification is exact."""
    trace = google_like_trace(GoogleTraceConfig(n_jobs=100), seed=0)
    for job in trace:
        assert min(job.task_durations) > 0


def test_google_deterministic_per_seed():
    a = google_like_trace(GoogleTraceConfig(n_jobs=50), seed=9)
    b = google_like_trace(GoogleTraceConfig(n_jobs=50), seed=9)
    assert [j.task_durations for j in a] == [j.task_durations for j in b]


def test_google_arrivals_increasing():
    trace = google_like_trace(GoogleTraceConfig(n_jobs=100), seed=0)
    times = [j.submit_time for j in trace]
    assert times == sorted(times)


def test_google_config_validation():
    with pytest.raises(ConfigurationError):
        GoogleTraceConfig(n_jobs=5)
    with pytest.raises(ConfigurationError):
        GoogleTraceConfig(long_fraction=0.0)


# -- k-means traces --------------------------------------------------------
@pytest.mark.parametrize("spec", ALL_KMEANS_WORKLOADS, ids=lambda s: s.name)
def test_kmeans_long_fraction_near_paper(spec):
    trace = kmeans_trace(spec, n_jobs=800, mean_interarrival=10.0, seed=0)
    summary = workload_summary(trace, spec.cutoff)
    assert summary.long_fraction == pytest.approx(
        spec.paper_long_fraction, abs=0.035
    )


@pytest.mark.parametrize("spec", ALL_KMEANS_WORKLOADS, ids=lambda s: s.name)
def test_kmeans_task_seconds_share_near_paper(spec):
    # Exponential job-size tails make single traces noisy; calibration is
    # asserted in expectation over a few seeds.
    shares = []
    for seed in range(3):
        trace = kmeans_trace(spec, n_jobs=800, mean_interarrival=10.0, seed=seed)
        shares.append(workload_summary(trace, spec.cutoff).task_seconds_share)
    mean_share = sum(shares) / len(shares)
    assert mean_share == pytest.approx(spec.paper_task_seconds_share, abs=0.06)


def test_kmeans_all_durations_positive():
    trace = kmeans_trace(CLOUDERA_C, n_jobs=200, mean_interarrival=10.0)
    assert all(d > 0 for j in trace for d in j.task_durations)


def test_kmeans_deterministic():
    a = kmeans_trace(YAHOO_2011, n_jobs=50, mean_interarrival=10.0, seed=4)
    b = kmeans_trace(YAHOO_2011, n_jobs=50, mean_interarrival=10.0, seed=4)
    assert [j.task_durations for j in a] == [j.task_durations for j in b]


def test_kmeans_stratification_represents_small_clusters():
    """Even small traces must include jobs from every cluster."""
    trace = kmeans_trace(FACEBOOK_2010, n_jobs=300, mean_interarrival=10.0)
    # Facebook's rarest cluster (0.21%) has quota < 1 but the remainder
    # assignment still allocates it at least sometimes; check the trace
    # has genuinely large jobs at all.
    assert max(j.task_seconds for j in trace) > 1e5


def test_kmeans_invalid_job_count():
    with pytest.raises(ConfigurationError):
        kmeans_trace(CLOUDERA_C, n_jobs=0, mean_interarrival=10.0)


def test_kmeans_weights_must_sum_to_one():
    from repro.workloads.kmeans import KMeansCluster

    with pytest.raises(ConfigurationError):
        KMeansWorkloadSpec(
            name="bad",
            clusters=(KMeansCluster(0.5, 10.0, 10.0),),
            cutoff=100.0,
            short_partition_fraction=0.1,
            paper_long_fraction=0.1,
            paper_task_seconds_share=0.9,
            paper_total_jobs=100,
        )


def test_kmeans_max_tasks_cap():
    trace = kmeans_trace(
        FACEBOOK_2010, n_jobs=400, mean_interarrival=10.0, max_tasks_per_job=500
    )
    assert max(j.num_tasks for j in trace) <= 500


# -- motivation workload ----------------------------------------------------
def test_motivation_defaults_match_paper():
    cfg = MotivationConfig()
    assert cfg.n_jobs == 1000
    assert cfg.n_servers == 15000
    assert cfg.short_tasks == 100
    assert cfg.long_duration == 20000.0


def test_motivation_class_mix():
    cfg = MotivationConfig().scaled(0.1)
    trace = motivation_trace(cfg)
    longs = trace.long_jobs(cfg.cutoff)
    assert len(longs) == pytest.approx(0.05 * len(trace), abs=2)
    assert all(j.num_tasks == cfg.long_tasks for j in longs)


def test_motivation_scaling_preserves_interarrival_load():
    base = MotivationConfig()
    scaled = base.scaled(0.1)
    assert scaled.n_jobs == 100
    assert scaled.n_servers == 1500
    assert scaled.mean_interarrival == pytest.approx(500.0)


def test_motivation_scale_validation():
    with pytest.raises(ConfigurationError):
        MotivationConfig().scaled(0.0)


def test_motivation_long_jobs_spread_out():
    cfg = MotivationConfig().scaled(0.1)
    trace = motivation_trace(cfg)
    long_positions = [
        i for i, j in enumerate(trace) if j.is_long(cfg.cutoff)
    ]
    # Long jobs should not all cluster at the start or end.
    assert long_positions[0] < len(trace) / 2
    assert long_positions[-1] > len(trace) / 2
