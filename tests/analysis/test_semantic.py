"""REG001/REG002 failing fixtures: temporarily register known-bad entries.

The semantic rules interrogate the *live* registries, so the fixture
corpus here registers deliberately broken policies, asserts the rule
catches them, and unregisters on the way out.
"""

from __future__ import annotations

import pytest

from repro.analysis.semantic import (
    _param_schema_holes,
    _perturbed,
    check_cache_key_completeness,
    check_registry_schemas,
)
from repro.analysis import repo_root
from repro.core.params import Param
from repro.schedulers import registry as policies
from repro.schedulers.registry import register_policy
from repro.schedulers.sparrow import SparrowScheduler


@pytest.fixture
def temp_policy():
    """Register a policy for one test; always unregister after."""
    names = []

    def _register(name, **kwargs):
        names.append(name)

        @register_policy(name, **kwargs)
        def _builder(params):
            return SparrowScheduler()

        return _builder

    yield _register
    for name in names:
        policies.unregister(name)


def reg001_messages(root=None):
    return [f.message for f in check_registry_schemas(root or repo_root())]


def test_reg001_flags_undocumented_param():
    holes = list(_param_schema_holes(
        "policy 'x'", Param("k", int, default=1, minimum=1, maximum=9)
    ))
    assert holes and "no doc" in holes[0]


def test_reg001_flags_unbounded_numeric_param():
    holes = list(_param_schema_holes(
        "policy 'x'", Param("k", int, default=1, minimum=1, doc="d")
    ))
    assert holes == [
        "policy 'x' param 'k' (int) is unbounded; declare minimum and "
        "maximum (or choices)"
    ]


def test_reg001_accepts_choices_as_bounds():
    param = Param("k", int, default=1, choices=(1, 2, 4), doc="d")
    assert list(_param_schema_holes("policy 'x'", param)) == []


def test_reg001_flags_open_string_param():
    holes = list(_param_schema_holes(
        "policy 'x'", Param("mode", str, default="a", doc="d")
    ))
    assert holes and "no choices" in holes[0]


def test_reg001_flags_registered_bad_entry(temp_policy):
    temp_policy(
        "reg001-fixture",
        params=(Param("depth", int, default=3, minimum=1, doc="d"),),
        doc="fixture policy with an unbounded param",
    )
    messages = reg001_messages()
    assert any(
        "policy 'reg001-fixture' param 'depth'" in m and "unbounded" in m
        for m in messages
    )


def test_reg001_flags_dangling_ablation(temp_policy):
    temp_policy(
        "reg001-dangling",
        ablation_of="no-such-policy",
        doc="fixture with a dangling ablation_of",
    )
    messages = reg001_messages()
    assert any(
        "ablation_of='no-such-policy'" in m and "not a registered policy" in m
        for m in messages
    )


def test_reg001_clean_on_the_real_registries():
    assert reg001_messages() == []


# -- REG002 -------------------------------------------------------------------
def test_reg002_clean_on_the_real_registries():
    assert [f.message for f in check_cache_key_completeness(repo_root())] == []


def test_reg002_findings_point_at_cache_modules(temp_policy):
    # a policy whose param is real must still move the digest; RunSpec's
    # digest includes the whole params mapping, so this passes — the
    # failing direction is covered by the perturbation helper below and
    # the RunSpec exemption contract test.
    temp_policy(
        "reg002-fixture",
        params=(
            Param("depth", int, default=3, minimum=1, maximum=9, doc="d"),
        ),
        doc="fixture policy for digest coverage",
    )
    assert [f.message for f in check_cache_key_completeness(repo_root())] == []


def test_reg002_detects_unexempted_field(monkeypatch):
    # simulate RunSpec growing a non-compared field with no documented
    # stand-in: shrink the exemption table and watch the rule fire
    from repro.analysis import semantic

    monkeypatch.setattr(semantic, "RUNSPEC_DIGEST_EXEMPTIONS", {})
    messages = [f.message for f in check_cache_key_completeness(repo_root())]
    assert any(
        "RunSpec.estimate is excluded from comparison" in m for m in messages
    )


def test_perturbed_respects_bounds_and_choices():
    assert _perturbed(Param("k", int, default=1, minimum=1, maximum=9, doc="d")) != 1
    assert _perturbed(Param("m", str, default="a", choices=("a", "b"), doc="d")) == "b"
    # a fully pinned param has no legal second value
    assert _perturbed(Param("p", int, default=1, choices=(1,), doc="d")) is None
