"""Runtime canary for the determinism contract reprolint checks statically.

DET003/DET004 argue about PYTHONHASHSEED hazards from the AST; this test
closes the loop at runtime: one quick fig05-style point (the google
quick workload under the hawk policy) executed in two fresh
subprocesses with *different* hash seeds must print a byte-identical
result digest.  If hash-ordered iteration ever leaks into a simulation
path, the two digests diverge here even if the static rules missed it.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

# Runs in a fresh interpreter so PYTHONHASHSEED actually takes effect
# (it is read once at startup).  Prints one blake2b digest over the
# exact job-record fields of the run, then the first few records for a
# readable diff on failure.
CANARY = """
import hashlib
from repro.experiments.config import RunSpec, execute, high_load_size
from repro.workloads.registry import quick_spec

wspec = quick_spec("google")
trace = wspec.trace(seed=0)
spec = RunSpec(
    scheduler="hawk",
    n_workers=high_load_size(trace),
    cutoff=wspec.cutoff,
    short_partition_fraction=wspec.short_partition_fraction,
    seed=0,
)
result = execute(spec, trace)
digest = hashlib.blake2b(digest_size=16)
for job in result.jobs:
    digest.update(
        f"{job.job_id},{job.submit_time!r},{job.completion_time!r}\\n".encode()
    )
digest.update(f"end={result.end_time!r},events={result.events_fired}".encode())
print(digest.hexdigest())
for job in result.jobs[:5]:
    print(job.job_id, repr(job.completion_time))
"""


def run_canary(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_RUNCACHE"] = "0"  # a cache hit would make the test vacuous
    proc = subprocess.run(
        [sys.executable, "-c", CANARY],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.slow
def test_simulation_is_hashseed_invariant():
    out_a = run_canary("0")
    out_b = run_canary("42")
    assert out_a == out_b, (
        "simulation output depends on PYTHONHASHSEED — hash-ordered "
        f"iteration is leaking into a sim path:\n--- seed 0\n{out_a}"
        f"--- seed 42\n{out_b}"
    )
