"""mypy gate on the deterministic core, as a pytest wrapper.

The container used for quick local loops may not ship mypy; CI installs
it and this test then enforces the committed ``mypy.ini`` on
``repro.core`` + ``repro.cluster`` + ``repro.service``.  Locally it
skips cleanly when mypy is absent rather than failing on a missing
tool.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_core_cluster_and_service_pass_mypy():
    pytest.importorskip("mypy", reason="mypy not installed; CI runs this gate")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "mypy.ini"),
            "src/repro/core",
            "src/repro/cluster",
            "src/repro/service",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=600,
    )
    assert proc.returncode == 0, f"mypy failed:\n{proc.stdout}{proc.stderr}"
