"""Suppression pragma semantics: reasons are mandatory, stale pragmas fail."""

from __future__ import annotations

from repro.analysis import analyze_source
from repro.analysis.findings import parse_suppressions

PATH = "src/repro/core/example.py"


def test_reasoned_suppression_silences_the_finding():
    source = (
        "import time\n"
        "start = time.time()  # reprolint: disable=DET001 -- profiling hook\n"
    )
    assert analyze_source(source, PATH) == []


def test_comment_only_pragma_applies_to_next_line():
    source = (
        "import time\n"
        "# reprolint: disable=DET001 -- profiling hook\n"
        "start = time.time()\n"
    )
    assert analyze_source(source, PATH) == []


def test_suppression_without_reason_is_rejected():
    source = (
        "import time\n"
        "start = time.time()  # reprolint: disable=DET001\n"
    )
    rules = {f.rule for f in analyze_source(source, PATH)}
    # the pragma does not take effect AND is itself flagged
    assert rules == {"DET001", "SUP001"}


def test_unused_suppression_is_flagged():
    source = "x = 1  # reprolint: disable=DET001 -- left over from a refactor\n"
    findings = analyze_source(source, PATH)
    assert [f.rule for f in findings] == ["SUP002"]
    assert "DET001" in findings[0].message


def test_multi_rule_pragma_tracks_usage_per_rule():
    source = (
        "import time\n"
        "start = time.time()  # reprolint: disable=DET001,DET002 -- bench only\n"
    )
    findings = analyze_source(source, PATH)
    # DET001 suppressed; the DET002 half matched nothing -> stale
    assert [f.rule for f in findings] == ["SUP002"]


def test_parse_extracts_rules_and_reason():
    source = "x = 1  # reprolint: disable=DET003,REG001 -- ordering proven above\n"
    (sup,) = parse_suppressions(source, PATH)
    assert sup.rules == ("DET003", "REG001")
    assert sup.reason == "ordering proven above"
    assert sup.applies_to == 1


def test_placeholder_pragma_is_not_parsed():
    # the documentation convention: spell pragmas with <RULE> in prose
    source = "# reprolint: disable=<RULE> -- how to write a pragma\n"
    assert parse_suppressions(source, PATH) == []
