"""Per-rule fixture corpus: each known-bad snippet must trip its rule.

Every syntactic rule gets at least one failing fixture and at least one
near-miss that must stay clean — the near-misses pin down the rule's
precision (dict iteration is ordered, ``id()`` as a dict key is fine,
``__post_init__`` may mutate a frozen instance, ...).
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_source

PATH = "src/repro/core/example.py"


def rules_hit(source: str, rule_ids=None) -> set[str]:
    return {f.rule for f in analyze_source(source, PATH, rule_ids=rule_ids)}


# -- DET001: wall-clock reads -------------------------------------------------
@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nstart = time.time()\n",
        "import time\nstart = time.perf_counter()\n",
        "import time as t\nstart = t.monotonic()\n",
        "from time import perf_counter\nstart = perf_counter()\n",
        "import datetime\nnow = datetime.datetime.now()\n",
        "from datetime import datetime\nnow = datetime.utcnow()\n",
        "import time\nns = time.perf_counter_ns()\n",
    ],
)
def test_det001_flags_wall_clock(snippet):
    assert "DET001" in rules_hit(snippet)


def test_det001_spares_simulated_clock():
    clean = "class Engine:\n    def now(self):\n        return self._sim_time\n"
    assert "DET001" not in rules_hit(clean)


# -- DET002: global / unseeded RNG --------------------------------------------
@pytest.mark.parametrize(
    "snippet",
    [
        "import random\nx = random.random()\n",
        "import random\nrandom.shuffle(items)\n",
        "import random\nrng = random.Random()\n",
        "import numpy as np\nx = np.random.rand(3)\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "from random import randint\nx = randint(0, 5)\n",
    ],
)
def test_det002_flags_global_rng(snippet):
    assert "DET002" in rules_hit(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        "import random\nrng = random.Random(seed)\n",
        "import numpy as np\nrng = np.random.default_rng(seed)\n",
        "x = rng.random()\n",
    ],
)
def test_det002_spares_seeded_rng(snippet):
    assert "DET002" not in rules_hit(snippet)


# -- DET003: unordered iteration ----------------------------------------------
@pytest.mark.parametrize(
    "snippet",
    [
        "for w in {1, 2, 3}:\n    process(w)\n",
        "for w in set(workers):\n    process(w)\n",
        "for w in set(a) | b:\n    process(w)\n",
        "out = [f(w) for w in frozenset(workers)]\n",
        # dict views only trip when the body feeds an order-sensitive sink
        "for w in workers.keys():\n    heapq.heappush(heap, w)\n",
        "for w in pending.values():\n    engine.schedule(0.0, w)\n",
        "for w in pending.items():\n    total += cost(w)\n",
    ],
)
def test_det003_flags_unordered_iteration(snippet):
    assert "DET003" in rules_hit(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        # plain dict iteration is insertion-ordered (3.7+): clean
        "for w in workers:\n    process(w)\n",
        "for k, v in workers.items():\n    result[k] = v\n",
        "for w in sorted(set(workers)):\n    process(w)\n",
        "out = [f(w) for w in sorted(frozenset(workers))]\n",
    ],
)
def test_det003_spares_ordered_iteration(snippet):
    assert "DET003" not in rules_hit(snippet)


# -- DET004: id()/hash() in ordering or digests -------------------------------
@pytest.mark.parametrize(
    "snippet",
    [
        "order = sorted(tasks, key=hash)\n",
        "order = sorted(tasks, key=lambda t: hash(t))\n",
        "heapq.heappush(heap, (id(task), task))\n",
        "digest.update(str(hash(spec)).encode())\n",
        "if hash(a) < hash(b):\n    swap(a, b)\n",
    ],
)
def test_det004_flags_hash_ordering(snippet):
    assert "DET004" in rules_hit(snippet)


@pytest.mark.parametrize(
    "snippet",
    [
        "estimates[id(task)] = task.duration\n",  # identity lookup: fine
        "x = estimates[id(task)]\n",
        "def __hash__(self):\n    return hash(self._items)\n",
    ],
)
def test_det004_spares_identity_lookup(snippet):
    assert "DET004" not in rules_hit(snippet)


# -- DET005: accumulation over unordered collections --------------------------
@pytest.mark.parametrize(
    "snippet",
    [
        "total = sum({f(w) for w in workers})\n",
        "total = sum(durations.values())\n",
        "total = sum(f(w) for w in set(workers))\n",
        "total = math.fsum(x.values())\n",
    ],
)
def test_det005_flags_unordered_accumulation(snippet):
    assert "DET005" in rules_hit(snippet, rule_ids=("DET005",))


def test_det005_spares_sorted_accumulation():
    clean = "total = sum(sorted(durations.values()))\n"
    assert "DET005" not in rules_hit(clean, rule_ids=("DET005",))


# -- PURE001: frozen-instance mutation outside constructors -------------------
FROZEN_MUTATION = """
from dataclasses import dataclass

@dataclass(frozen=True)
class Spec:
    n: int

    def __post_init__(self):
        object.__setattr__(self, "n", max(self.n, 0))  # fine: constructor

    def bump(self):
        object.__setattr__(self, "n", self.n + 1)  # violation
"""


def test_pure001_flags_mutation_outside_constructor():
    findings = analyze_source(FROZEN_MUTATION, PATH)
    pure = [f for f in findings if f.rule == "PURE001"]
    assert len(pure) == 1
    assert "bump" in pure[0].message


def test_pure001_flags_self_assignment_in_frozen_class():
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class Spec:\n"
        "    n: int\n"
        "    def grow(self):\n"
        "        self.n = self.n + 1\n"
    )
    assert "PURE001" in rules_hit(source)


def test_pure001_spares_ordinary_classes():
    source = (
        "class Counter:\n"
        "    def bump(self):\n"
        "        self.n += 1\n"
    )
    assert "PURE001" not in rules_hit(source)


# -- scoping: tool paths run the reduced ruleset ------------------------------
def test_tool_scope_skips_wall_clock_rule():
    snippet = "import time\nstart = time.perf_counter()\n"
    tool_findings = analyze_source(snippet, "src/repro/bench/timer.py")
    assert "DET001" not in {f.rule for f in tool_findings}
    # but the global-RNG rule still applies everywhere
    rng = "import random\nx = random.random()\n"
    assert "DET002" in {
        f.rule for f in analyze_source(rng, "src/repro/bench/timer.py")
    }


def test_every_syntactic_rule_has_an_explain():
    from repro.analysis.rules import SYNTACTIC_RULES

    for rule in SYNTACTIC_RULES:
        assert rule.rule_id
        assert rule.title
        assert len(rule.explain.strip()) > 40
