"""Baseline round-trip, drift classification, and the repo self-check.

``test_repo_is_clean_against_committed_baseline`` is the tier-1 reprolint
gate: it runs the full analyzer (syntactic + semantic rules) over
``src/repro`` and fails on any new finding *or* any stale baseline
entry, mirroring the CI job.
"""

from __future__ import annotations

from repro.analysis import (
    DEFAULT_BASELINE,
    DEFAULT_REPORT,
    Baseline,
    Finding,
    analyze_paths,
    diff_baseline,
    render_report,
    repo_root,
)


def make_finding(rule="DET001", path="src/repro/core/x.py", message="m"):
    return Finding(rule=rule, path=path, line=3, col=0, message=message)


def test_baseline_round_trip(tmp_path):
    findings = [
        make_finding("DET001", message="call to time.time()"),
        make_finding("DET003", path="src/repro/cluster/y.py",
                     message="iteration over set literal"),
    ]
    baseline = Baseline.from_findings(findings)
    target = tmp_path / "baseline.txt"
    baseline.dump(target, header="test header\nsecond line")
    loaded = Baseline.load(target)
    assert loaded.keys == baseline.keys
    new, stale = diff_baseline(findings, loaded)
    assert new == [] and stale == []


def test_baseline_identity_ignores_line_numbers(tmp_path):
    baseline = Baseline.from_findings([make_finding()])
    moved = Finding(rule="DET001", path="src/repro/core/x.py",
                    line=99, col=4, message="m")
    new, stale = diff_baseline([moved], baseline)
    assert new == [] and stale == []


def test_new_finding_is_reported():
    new, stale = diff_baseline([make_finding()], Baseline())
    assert len(new) == 1 and stale == []


def test_stale_entry_is_reported():
    baseline = Baseline.from_findings([make_finding()])
    new, stale = diff_baseline([], baseline)
    assert new == [] and stale == [make_finding().key()]


def test_empty_baseline_file_loads_as_empty(tmp_path):
    target = tmp_path / "baseline.txt"
    target.write_text("# only comments\n\n")
    assert len(Baseline.load(target)) == 0


def test_repo_is_clean_against_committed_baseline():
    """Tier-1 gate: src/repro must have zero unbaselined findings."""
    root = repo_root()
    result = analyze_paths(root=root)
    baseline = Baseline.load(root / DEFAULT_BASELINE)
    new, stale = diff_baseline(result.findings, baseline)
    rendered = "\n".join(f.render() for f in new)
    assert new == [], f"unbaselined reprolint findings:\n{rendered}"
    assert stale == [], f"stale baseline entries (fixed code): {stale}"
    # the committed baseline is the zero-entry goal state
    assert len(baseline) == 0


def test_committed_report_matches_regeneration():
    """The report is a drift-checked snapshot, like the registry schemas.

    Regenerate deliberately with
    ``python -m repro.analysis --report benchmarks/results/reprolint_report.txt``.
    """
    root = repo_root()
    result = analyze_paths(root=root)
    committed = (root / DEFAULT_REPORT).read_text(encoding="utf-8")
    assert committed == render_report(result)
