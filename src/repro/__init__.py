"""repro — a reproduction of "Hawk: Hybrid Datacenter Scheduling" (ATC '15).

Public API quick reference
--------------------------
Workloads:   :func:`repro.google_like_trace`, :func:`repro.kmeans_trace`,
             :func:`repro.motivation_trace`
Schedulers:  :class:`repro.HawkScheduler`, :class:`repro.SparrowScheduler`,
             :class:`repro.CentralizedScheduler`, :class:`repro.SplitScheduler`
Running:     :class:`repro.Cluster`, :class:`repro.ClusterEngine`,
             :class:`repro.EngineConfig`, :class:`repro.WorkStealing`
Metrics:     :func:`repro.compare_runs`, :func:`repro.percentile`

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

from repro.cluster import (
    Cluster,
    ClusterEngine,
    EngineConfig,
    JobClass,
    JobRecord,
    Partition,
    RunResult,
)
from repro.metrics import compare_runs, percentile
from repro.schedulers import (
    BatchSamplingScheduler,
    CentralizedScheduler,
    ExactEstimation,
    HawkScheduler,
    OmniscientScheduler,
    Param,
    SparrowScheduler,
    SplitScheduler,
    UniformMisestimation,
    WorkStealing,
    register_policy,
    registry,
)
from repro.workloads import (
    GoogleTraceConfig,
    JobSpec,
    MotivationConfig,
    Trace,
    google_like_trace,
    kmeans_trace,
    motivation_trace,
)

__version__ = "1.0.0"

__all__ = [
    "BatchSamplingScheduler",
    "CentralizedScheduler",
    "Cluster",
    "ClusterEngine",
    "EngineConfig",
    "ExactEstimation",
    "GoogleTraceConfig",
    "HawkScheduler",
    "JobClass",
    "JobRecord",
    "JobSpec",
    "MotivationConfig",
    "OmniscientScheduler",
    "Param",
    "Partition",
    "RunResult",
    "SparrowScheduler",
    "SplitScheduler",
    "Trace",
    "UniformMisestimation",
    "WorkStealing",
    "compare_runs",
    "google_like_trace",
    "kmeans_trace",
    "motivation_trace",
    "percentile",
    "register_policy",
    "registry",
    "__version__",
]
