"""Normalized comparisons between two runs (the paper's main metric).

"When comparing Hawk to another approach X, we mostly take the ratio
between the 50th (or 90th) percentile job runtime for Hawk and the 50th
(or 90th) percentile job runtime for X" (Section 4.1).  Figure 5c adds the
fraction of jobs Hawk improves (or matches) and the average job-runtime
ratio.  Lower values favor the numerator system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.job import JobClass
from repro.cluster.records import RunResult
from repro.core.errors import ConfigurationError
from repro.metrics.percentiles import percentile


def normalized_percentile(
    numerator: RunResult,
    denominator: RunResult,
    job_class: JobClass | None,
    p: float,
) -> float:
    """p-th percentile runtime of ``numerator`` over that of ``denominator``."""
    num = numerator.runtimes(job_class)
    den = denominator.runtimes(job_class)
    if not num or not den:
        raise ConfigurationError(f"no jobs of class {job_class} in one of the runs")
    return percentile(num, p) / percentile(den, p)


def average_runtime_ratio(
    numerator: RunResult, denominator: RunResult, job_class: JobClass | None
) -> float:
    """Ratio of mean job runtimes (Figure 5c's second metric)."""
    num = numerator.runtimes(job_class)
    den = denominator.runtimes(job_class)
    if not num or not den:
        raise ConfigurationError(f"no jobs of class {job_class} in one of the runs")
    return (sum(num) / len(num)) / (sum(den) / len(den))


def fraction_improved(
    candidate: RunResult,
    baseline: RunResult,
    job_class: JobClass | None,
    tolerance: float = 1e-9,
) -> float:
    """Fraction of jobs for which the candidate is better than or equal to
    the baseline (Figure 5c's first metric).  Jobs are matched by id."""
    base_by_id = {
        r.job_id: r.runtime for r in baseline.records(job_class)
    }
    cand = candidate.records(job_class)
    if not cand or not base_by_id:
        raise ConfigurationError(f"no jobs of class {job_class} in one of the runs")
    improved = 0
    matched = 0
    for record in cand:
        base = base_by_id.get(record.job_id)
        if base is None:
            continue
        matched += 1
        if record.runtime <= base * (1.0 + tolerance):
            improved += 1
    if matched == 0:
        raise ConfigurationError("runs share no job ids; cannot pair jobs")
    return improved / matched


@dataclass(frozen=True, slots=True)
class Comparison:
    """All paper metrics for one (candidate, baseline) pair and class."""

    job_class: JobClass | None
    p50_ratio: float
    p90_ratio: float
    avg_ratio: float
    fraction_improved: float


def compare_runs(
    candidate: RunResult, baseline: RunResult, job_class: JobClass | None
) -> Comparison:
    return Comparison(
        job_class=job_class,
        p50_ratio=normalized_percentile(candidate, baseline, job_class, 50.0),
        p90_ratio=normalized_percentile(candidate, baseline, job_class, 90.0),
        avg_ratio=average_runtime_ratio(candidate, baseline, job_class),
        fraction_improved=fraction_improved(candidate, baseline, job_class),
    )
