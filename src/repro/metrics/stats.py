"""Statistics over seed-replicated runs.

Every metric in the evaluation is a function of a stochastic run, so a
single-seed value is one sample from an unknown distribution.  This
module aggregates per-replica samples into the quantities the figures
and claim tests report:

* :func:`mean` / :func:`stdev` / :func:`percentile_of_replicas` — plain
  sample statistics;
* :func:`t_confidence_interval` — a Student-t interval on the mean (the
  t quantile is computed in-process via the regularized incomplete beta
  function, so no SciPy dependency);
* :func:`summarize` — all of the above bundled into a
  :class:`SummaryStats`;
* :func:`paired_values` / :func:`paired_summary` — matched-seed pairing:
  a comparison metric (e.g. a normalized percentile) is evaluated
  *within* each replica, where candidate and baseline share a seed and a
  trace draw, and only then aggregated.  Pairing cancels the trace-level
  noise common to both systems, which is what makes small replica counts
  informative.

Degenerate case: ``n = 1`` yields ``stdev = 0`` and a zero-width
interval at the sample itself, and ``mean([x]) == x`` bit-for-bit —
single-seed experiments flow through this module unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import lgamma, sqrt
from typing import Callable, Sequence, TypeVar

from repro.core.errors import ConfigurationError
from repro.metrics.percentiles import percentile

T = TypeVar("T")

#: Default confidence level for intervals (the paper-standard 95%).
DEFAULT_CONFIDENCE = 0.95


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; ``mean([x]) == x`` exactly (IEEE division by 1)."""
    if not values:
        raise ConfigurationError("cannot take the mean of no values")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for a single value."""
    if not values:
        raise ConfigurationError("cannot take the stdev of no values")
    n = len(values)
    if n == 1:
        return 0.0
    m = mean(values)
    return sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


def percentile_of_replicas(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile across replica values (linear interpolation)."""
    return percentile(values, p)


def median_of_replicas(values: Sequence[float]) -> float:
    return percentile(values, 50.0)


# -- Student-t quantiles (no SciPy) -------------------------------------
def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    from math import exp, log

    front = exp(
        lgamma(a + b) - lgamma(a) - lgamma(b) + a * log(x) + b * log(1.0 - x)
    )
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_cdf(t: float, dof: int) -> float:
    """CDF of Student's t distribution with ``dof`` degrees of freedom."""
    if dof <= 0:
        raise ConfigurationError(f"degrees of freedom must be positive, got {dof}")
    if t == 0.0:
        return 0.5
    x = dof / (dof + t * t)
    tail = 0.5 * _betainc(dof / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


def t_ppf(q: float, dof: int) -> float:
    """Quantile (inverse CDF) of Student's t, by bisection on :func:`t_cdf`."""
    if not 0.0 < q < 1.0:
        raise ConfigurationError(f"quantile must be in (0, 1), got {q}")
    if q == 0.5:
        return 0.0
    lo, hi = -1.0, 1.0
    while t_cdf(lo, dof) > q:
        lo *= 2.0
        if lo < -1e12:  # pragma: no cover - defensive
            break
    while t_cdf(hi, dof) < q:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - defensive
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid, dof) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)


def t_test_pvalue(values: Sequence[float], null: float) -> float:
    """Two-sided one-sample Student-t p-value for ``mean(values) == null``.

    Fed with matched-pair metric values (one per replica) this is the
    paired t-test: for per-replica candidate/baseline *ratios* the
    natural null is 1.0 (parity), for differences 0.0.  Degenerate
    cases: a single sample carries no dispersion information (p = 1.0);
    zero sample variance yields 0.0 unless the mean equals the null
    exactly.
    """
    n = len(values)
    if not values:
        raise ConfigurationError("cannot t-test no values")
    m = mean(values)
    if n == 1:
        return 1.0
    s = stdev(values)
    if s == 0.0:
        return 1.0 if m == null else 0.0
    t = (m - null) / (s / sqrt(n))
    return 2.0 * (1.0 - t_cdf(abs(t), n - 1))


def t_confidence_interval(
    values: Sequence[float], confidence: float = DEFAULT_CONFIDENCE
) -> tuple[float, float]:
    """Two-sided Student-t interval on the mean of ``values``.

    ``n = 1`` degenerates to a zero-width interval at the sample: there
    is no dispersion information, and the single-seed path must report
    the point value unchanged.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    m = mean(values)
    n = len(values)
    if n == 1:
        return (m, m)
    half = t_ppf(0.5 + confidence / 2.0, n - 1) * stdev(values) / sqrt(n)
    return (m - half, m + half)


# -- aggregation --------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SummaryStats:
    """Sample statistics of one metric across replicas.

    ``p_value`` is set when the metric has a natural null hypothesis
    (e.g. 1.0 for candidate/baseline ratios): the two-sided paired-t
    p-value of the replica values against that null.  ``None`` means no
    null applies (plain magnitudes) or there is only one replica.
    """

    n: int
    mean: float
    stdev: float
    median: float
    ci_lo: float
    ci_hi: float
    confidence: float = DEFAULT_CONFIDENCE
    p_value: float | None = None

    @property
    def ci_half(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_hi - self.ci_lo) / 2.0


def summarize(
    values: Sequence[float],
    confidence: float = DEFAULT_CONFIDENCE,
    null: float | None = None,
) -> SummaryStats:
    """All replica statistics for one metric.

    With ``null`` set, the summary also carries the two-sided
    :func:`t_test_pvalue` of the values against that null (reported
    next to the CI band by the table renderer); a single replica has no
    dispersion information, so its p-value stays ``None``.
    """
    lo, hi = t_confidence_interval(values, confidence)
    p_value = (
        t_test_pvalue(values, null)
        if null is not None and len(values) > 1
        else None
    )
    return SummaryStats(
        n=len(values),
        mean=mean(values),
        stdev=stdev(values),
        median=median_of_replicas(values),
        ci_lo=lo,
        ci_hi=hi,
        confidence=confidence,
        p_value=p_value,
    )


# -- matched-seed pairing ----------------------------------------------
def paired_values(
    metric: Callable[[T, T], float],
    candidates: Sequence[T],
    baselines: Sequence[T],
) -> list[float]:
    """Evaluate a comparison metric within each matched replica.

    ``candidates[r]`` and ``baselines[r]`` must come from the same
    replica seed (and trace draw); the metric — typically a normalized
    percentile — is computed per pair so that trace-level noise common
    to both systems cancels before aggregation.
    """
    if len(candidates) != len(baselines):
        raise ConfigurationError(
            f"matched pairing needs equal replica counts, got "
            f"{len(candidates)} candidates vs {len(baselines)} baselines"
        )
    if not candidates:
        raise ConfigurationError("matched pairing needs at least one replica")
    return [metric(c, b) for c, b in zip(candidates, baselines)]


#: Null hypothesis for paired comparison *ratios*: parity.
RATIO_NULL = 1.0


def paired_summary(
    metric: Callable[[T, T], float],
    candidates: Sequence[T],
    baselines: Sequence[T],
    confidence: float = DEFAULT_CONFIDENCE,
    null: float | None = RATIO_NULL,
) -> SummaryStats:
    """Matched-seed pairing followed by :func:`summarize`.

    The default ``null`` of 1.0 fits the normalized-ratio metrics every
    figure reports (candidate == baseline); pass ``null=None`` for
    metrics without a parity hypothesis.
    """
    return summarize(
        paired_values(metric, candidates, baselines), confidence, null=null
    )


def paired_cell(
    metric: Callable[[T, T], float],
    candidates: Sequence[T],
    baselines: Sequence[T],
    confidence: float = DEFAULT_CONFIDENCE,
    null: float | None = RATIO_NULL,
) -> float | SummaryStats:
    """Matched-pair table cell: plain value or replica statistics.

    A single matched pair yields the metric value itself (bit-identical
    to the unreplicated path, and rendered as a plain number); several
    pairs yield a :class:`SummaryStats` rendered as ``mean±ci (p=...)``
    — the paired-t p-value against ``null`` (parity by default).  Shared
    by the figure drivers that aggregate run lists directly rather than
    through :class:`~repro.experiments.sweeps.ReplicatedPoint`.
    """
    values = paired_values(metric, candidates, baselines)
    if len(values) == 1:
        return values[0]
    return summarize(values, confidence, null=null)
