"""Percentile computation (linear interpolation, matching numpy)."""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import ConfigurationError


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0-100) with linear interpolation."""
    if not values:
        raise ConfigurationError("cannot take a percentile of no values")
    if not 0.0 <= p <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {p}")
    xs = sorted(values)
    if len(xs) == 1:
        return xs[0]
    rank = (p / 100.0) * (len(xs) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(xs) - 1)
    if xs[lo] == xs[hi]:
        return xs[lo]  # avoids float drift when interpolating equal values
    frac = rank - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac
