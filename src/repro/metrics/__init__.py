"""Metrics: percentiles, normalized comparisons, utilization summaries."""

from repro.metrics.comparison import (
    Comparison,
    average_runtime_ratio,
    compare_runs,
    fraction_improved,
    normalized_percentile,
)
from repro.metrics.percentiles import percentile

__all__ = [
    "Comparison",
    "average_runtime_ratio",
    "compare_runs",
    "fraction_improved",
    "normalized_percentile",
    "percentile",
]
