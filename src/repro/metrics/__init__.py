"""Metrics: percentiles, normalized comparisons, utilization summaries."""

from repro.metrics.comparison import (
    Comparison,
    average_runtime_ratio,
    compare_runs,
    fraction_improved,
    normalized_percentile,
)
from repro.metrics.percentiles import percentile
from repro.metrics.stats import (
    SummaryStats,
    mean,
    median_of_replicas,
    paired_cell,
    paired_summary,
    paired_values,
    percentile_of_replicas,
    stdev,
    summarize,
    t_confidence_interval,
)

__all__ = [
    "Comparison",
    "SummaryStats",
    "average_runtime_ratio",
    "compare_runs",
    "fraction_improved",
    "mean",
    "median_of_replicas",
    "normalized_percentile",
    "paired_cell",
    "paired_summary",
    "paired_values",
    "percentile",
    "percentile_of_replicas",
    "stdev",
    "summarize",
    "t_confidence_interval",
]
