"""Figure 6: Hawk normalized to Sparrow on Cloudera, Facebook and Yahoo.

The paper reports p90 ratios for long and short jobs across cluster
sizes; the short-job improvements are larger than on the Google trace
because the short partitions are less utilized, leaving more stealing
opportunities.
"""

from __future__ import annotations

from repro.experiments.config import GOOGLE_UTILIZATION_TARGETS, RunSpec, sweep_sizes
from repro.experiments.report import FigureResult
from repro.experiments.sweeps import SweepJob, multi_sweep
from repro.experiments.traces import ALL_WORKLOAD_SPECS, kmeans_workload


def run(
    scale: str = "full",
    seed: int = 0,
    utilization_targets=GOOGLE_UTILIZATION_TARGETS,
    n_seeds: int = 1,
) -> FigureResult:
    result = FigureResult(
        figure_id="Figure 6",
        title="Hawk normalized to Sparrow (Cloudera / Facebook / Yahoo)",
        headers=(
            "workload",
            "nodes",
            "util(sparrow)",
            "short p90",
            "long p90",
            "short p50",
            "long p50",
        ),
    )
    # All three workloads chain into ONE executor stream: no per-workload
    # batch barrier, so Yahoo's runs start while Cloudera's slowest point
    # is still in flight.
    workloads = [kmeans_workload(spec, scale) for spec in ALL_WORKLOAD_SPECS]
    jobs = []
    for workload in workloads:
        sizes = sweep_sizes(workload.trace(seed), utilization_targets)
        hawk = RunSpec(
            scheduler="hawk",
            n_workers=1,
            cutoff=workload.cutoff,
            short_partition_fraction=workload.short_partition_fraction,
            seed=seed,
        )
        sparrow = RunSpec(
            scheduler="sparrow", n_workers=1, cutoff=workload.cutoff, seed=seed
        )
        jobs.append(SweepJob(workload, tuple(sizes), hawk, sparrow))
    for workload, points in zip(workloads, multi_sweep(jobs, n_seeds=n_seeds)):
        for point in points:
            result.add_row(
                workload.name,
                point.n_workers,
                point.cell("baseline_median_utilization"),
                point.cell("short_p90_ratio"),
                point.cell("long_p90_ratio"),
                point.cell("short_p50_ratio"),
                point.cell("long_p50_ratio"),
            )
    result.add_note(
        "the paper plots p90 only (its Figure 6); p50 columns correspond "
        "to its in-text remark that Hawk also improves the median"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "ratio cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result
