"""Figure 6: Hawk normalized to Sparrow on Cloudera, Facebook and Yahoo.

The paper reports p90 ratios for long and short jobs across cluster
sizes; the short-job improvements are larger than on the Google trace
because the short partitions are less utilized, leaving more stealing
opportunities.
"""

from __future__ import annotations

from repro.experiments.config import GOOGLE_UTILIZATION_TARGETS, RunSpec, sweep_sizes
from repro.experiments.report import FigureResult
from repro.experiments.sweeps import sweep
from repro.experiments.traces import ALL_WORKLOAD_SPECS, kmeans_workload_trace


def run(
    scale: str = "full",
    seed: int = 0,
    utilization_targets=GOOGLE_UTILIZATION_TARGETS,
) -> FigureResult:
    result = FigureResult(
        figure_id="Figure 6",
        title="Hawk normalized to Sparrow (Cloudera / Facebook / Yahoo)",
        headers=(
            "workload",
            "nodes",
            "util(sparrow)",
            "short p90",
            "long p90",
            "short p50",
            "long p50",
        ),
    )
    for spec in ALL_WORKLOAD_SPECS:
        trace = kmeans_workload_trace(spec, scale, seed)
        sizes = sweep_sizes(trace, utilization_targets)
        hawk = RunSpec(
            scheduler="hawk",
            n_workers=1,
            cutoff=spec.cutoff,
            short_partition_fraction=spec.short_partition_fraction,
            seed=seed,
        )
        sparrow = RunSpec(
            scheduler="sparrow", n_workers=1, cutoff=spec.cutoff, seed=seed
        )
        for point in sweep(trace, sizes, hawk, sparrow):
            result.add_row(
                spec.name,
                point.n_workers,
                point.baseline_median_utilization,
                point.short_p90_ratio,
                point.long_p90_ratio,
                point.short_p50_ratio,
                point.long_p50_ratio,
            )
    result.add_note(
        "the paper plots p90 only (its Figure 6); p50 columns correspond "
        "to its in-text remark that Hawk also improves the median"
    )
    return result
