"""Figure 7: breaking down Hawk's benefits.

Each of Hawk's three mechanisms is removed in turn and the resulting
runtimes are normalized to full Hawk (values > 1 mean the variant is
worse).  Paper findings: without centralized scheduling long jobs take a
significant hit (and short jobs improve slightly); without the partition
short jobs suffer and long jobs slightly improve; without stealing both
suffer, short jobs greatly.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import HIGH_LOAD_TARGET, RunSpec, high_load_size
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.experiments.traces import google_workload
from repro.metrics.comparison import normalized_percentile
from repro.metrics.stats import paired_cell
from repro.schedulers import registry
from repro.workloads.replication import replica_seeds



def run(
    scale: str = "full",
    seed: int = 0,
    load_target: float = HIGH_LOAD_TARGET,
    n_seeds: int = 1,
) -> FigureResult:
    # The ablation family comes straight off the policy registry, read
    # at run time: any policy registered with ``ablation_of="hawk"`` —
    # including one registered outside this package — joins the figure.
    variants = registry.ablations_of("hawk")
    workload = google_workload(scale)
    trace = workload.trace(seed)
    n = high_load_size(trace, load_target)
    base_spec = RunSpec(
        scheduler="hawk",
        n_workers=n,
        cutoff=workload.cutoff,
        short_partition_fraction=workload.short_partition_fraction,
        seed=seed,
    )
    # One batch: full Hawk plus every ablation variant, per replica seed.
    # Each replica's variants normalize to the same replica's full Hawk
    # (matched seeds and trace draw), so per-replica ratios pair up.
    seeds = replica_seeds(seed, n_seeds)
    batch = []
    for r, s in enumerate(seeds):
        replica_trace = workload.trace(s)
        replica_base = base_spec.with_(seed=s)
        batch.append((replica_base, replica_trace))
        batch.extend(
            (replica_base.with_(scheduler=v), replica_trace) for v in variants
        )
    results = get_executor().run_many(batch)
    stride = 1 + len(variants)
    bases = [results[r * stride] for r in range(n_seeds)]
    per_variant = {
        v: [results[r * stride + 1 + i] for r in range(n_seeds)]
        for i, v in enumerate(variants)
    }

    result = FigureResult(
        figure_id="Figure 7",
        title=f"Ablation normalized to full Hawk ({n} nodes)",
        headers=("variant", "short p50", "short p90", "long p50", "long p90"),
    )

    def ratio_cell(variant_runs, job_class, p):
        return paired_cell(
            lambda v, b: normalized_percentile(v, b, job_class, p),
            variant_runs,
            bases,
        )

    for variant in variants:
        runs = per_variant[variant]
        result.add_row(
            variant,
            ratio_cell(runs, JobClass.SHORT, 50),
            ratio_cell(runs, JobClass.SHORT, 90),
            ratio_cell(runs, JobClass.LONG, 50),
            ratio_cell(runs, JobClass.LONG, 90),
        )
    result.add_note("values > 1: removing the mechanism hurts that class")
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result
