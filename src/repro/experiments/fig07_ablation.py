"""Figure 7: breaking down Hawk's benefits.

Each of Hawk's three mechanisms is removed in turn and the resulting
runtimes are normalized to full Hawk (values > 1 mean the variant is
worse).  Paper findings: without centralized scheduling long jobs take a
significant hit (and short jobs improve slightly); without the partition
short jobs suffer and long jobs slightly improve; without stealing both
suffer, short jobs greatly.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import HIGH_LOAD_TARGET, RunSpec, high_load_size
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.experiments.traces import google_cutoff, google_short_fraction, google_trace
from repro.metrics.comparison import normalized_percentile

VARIANTS = ("hawk-no-centralized", "hawk-no-partition", "hawk-no-stealing")


def run(
    scale: str = "full", seed: int = 0, load_target: float = HIGH_LOAD_TARGET
) -> FigureResult:
    trace = google_trace(scale, seed)
    cutoff = google_cutoff()
    n = high_load_size(trace, load_target)
    base_spec = RunSpec(
        scheduler="hawk",
        n_workers=n,
        cutoff=cutoff,
        short_partition_fraction=google_short_fraction(),
        seed=seed,
    )
    # One batch: full Hawk plus every ablation variant.
    specs = [base_spec] + [base_spec.with_(scheduler=v) for v in VARIANTS]
    base, *variant_results = get_executor().run_many(
        [(spec, trace) for spec in specs]
    )

    result = FigureResult(
        figure_id="Figure 7",
        title=f"Ablation normalized to full Hawk ({n} nodes)",
        headers=("variant", "short p50", "short p90", "long p50", "long p90"),
    )
    for variant, res in zip(VARIANTS, variant_results):
        result.add_row(
            variant,
            normalized_percentile(res, base, JobClass.SHORT, 50),
            normalized_percentile(res, base, JobClass.SHORT, 90),
            normalized_percentile(res, base, JobClass.LONG, 50),
            normalized_percentile(res, base, JobClass.LONG, 90),
        )
    result.add_note("values > 1: removing the mechanism hurts that class")
    return result
