"""Figure 1: short jobs fare poorly under Sparrow in a loaded cluster.

Reproduces Section 2.3: the motivation workload run under Sparrow, with
the CDF of short-job runtimes and the utilization statistics the paper
quotes (median 86%, max 97.8%, "an omniscient scheduler would yield job
runtimes of 100s for the majority of the short jobs").
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import RunSpec
from repro.experiments.report import FigureResult, ascii_cdf
from repro.experiments.runner import run_cached
from repro.metrics.percentiles import percentile
from repro.workloads.motivation import MotivationConfig
from repro.workloads.registry import WorkloadSpec

#: Default scale: 1/10th of the paper's scenario (100 jobs, 1500 servers)
#: keeps the bench quick; scale=1.0 reproduces the full 1000x15000 setup.
DEFAULT_SCALE = 0.1


def run(scale: float = DEFAULT_SCALE, seed: int = 0) -> FigureResult:
    # The trace comes through the registry; the config is still needed
    # locally for the scenario's recommended server count.
    config = MotivationConfig().scaled(scale)
    trace = WorkloadSpec("motivation", {"scale": scale}).trace(seed)
    spec = RunSpec(
        scheduler="sparrow",
        n_workers=config.n_servers,
        cutoff=config.cutoff,
        seed=seed,
    )
    res = run_cached(spec, trace)
    short_runtimes = res.runtimes(JobClass.SHORT)

    result = FigureResult(
        figure_id="Figure 1",
        title="CDF of short-job runtime under Sparrow, loaded cluster",
        headers=("percentile", "short-job runtime (s)", "x task duration"),
    )
    for p in (10, 25, 50, 75, 90, 99):
        runtime = percentile(short_runtimes, p)
        result.add_row(p, runtime, runtime / config.short_duration)
    result.add_note(
        f"cluster utilization: median {100 * res.median_utilization():.1f}% "
        f"(paper: 86%), max {100 * res.max_utilization():.1f}% (paper: 97.8%)"
    )
    result.add_note(
        f"an ideal scheduler would finish most short jobs in "
        f"{config.short_duration:.0f}s; large multiples indicate "
        "head-of-line blocking behind long tasks"
    )
    result.add_note("\n" + ascii_cdf(short_runtimes, label="short-job runtime (s)"))
    return result
