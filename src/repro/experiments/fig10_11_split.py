"""Figures 10-11: Hawk normalized to a split cluster.

The split baseline dedicates 17% of nodes to short jobs (distributed
scheduling) and 83% to long jobs (centralized scheduling), with no shared
partition and no stealing.  Paper findings: the split cluster is slightly
better for long jobs but greatly increases short-job runtimes at
intermediate sizes, because short tasks cannot leverage general-partition
nodes.
"""

from __future__ import annotations

from repro.experiments.config import (
    GOOGLE_UTILIZATION_TARGETS,
    RunSpec,
    sweep_sizes,
)
from repro.experiments.report import FigureResult
from repro.experiments.sweeps import sweep
from repro.experiments.traces import google_workload


def run(
    scale: str = "full",
    seed: int = 0,
    utilization_targets=GOOGLE_UTILIZATION_TARGETS,
    n_seeds: int = 1,
) -> FigureResult:
    workload = google_workload(scale)
    cutoff = workload.cutoff
    sizes = sweep_sizes(workload.trace(seed), utilization_targets)
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=cutoff,
        short_partition_fraction=workload.short_partition_fraction,
        seed=seed,
    )
    split = RunSpec(
        scheduler="split",
        n_workers=1,
        cutoff=cutoff,
        short_partition_fraction=workload.short_partition_fraction,
        seed=seed,
    )
    result = FigureResult(
        figure_id="Figures 10-11",
        title="Hawk normalized to split cluster (Google trace)",
        headers=(
            "nodes",
            "util(split)",
            "short p50",
            "short p90",
            "long p50",
            "long p90",
        ),
    )
    points = sweep(workload, sizes, hawk, split, n_seeds=n_seeds)
    for point in points:
        result.add_row(
            point.n_workers,
            point.cell("baseline_median_utilization"),
            point.cell("short_p50_ratio"),
            point.cell("short_p90_ratio"),
            point.cell("long_p50_ratio"),
            point.cell("long_p90_ratio"),
        )
    result.add_note(
        "Figure 10 = short columns (Hawk far better in the mid-range), "
        "Figure 11 = long columns (split slightly better)"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "ratio cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result
