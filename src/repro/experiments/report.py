"""ASCII rendering of experiment results (tables and CDF/series plots)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.errors import ConfigurationError
from repro.metrics.stats import SummaryStats


def _format_p(p: float) -> str:
    return "<0.001" if p < 0.001 else f"{p:.3f}"


def _format_cell(value) -> str:
    if isinstance(value, SummaryStats):
        # Aggregated replicas render as mean±(CI half-width), plus the
        # paired-t p-value when the metric has a null hypothesis; a
        # plain float cell (the single-seed path) is untouched, keeping
        # single-seed tables bit-identical to the historical output.
        cell = f"{_format_cell(value.mean)}±{_format_cell(value.ci_half)}"
        if value.p_value is not None:
            cell += f" (p={_format_p(value.p_value)})"
        return cell
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def progress_line(
    done: int,
    total: int | None,
    inflight: int,
    memo_hits: int = 0,
    disk_hits: int = 0,
    executions: int = 0,
) -> str:
    """One streaming-sweep progress line (``REPRO_SWEEP_PROGRESS=1``).

    ``total`` is unknown for unbounded generators and renders as ``?``.
    """
    span = "?" if total is None else str(total)
    return (
        f"[sweep] point {done}/{span} done, in-flight {inflight}, "
        f"memo {memo_hits}, disk {disk_hits}, exec {executions}"
    )


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a padded, pipe-separated table."""
    if not headers:
        raise ConfigurationError("table needs headers")
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(" | ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def ascii_cdf(
    values: Sequence[float],
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """A coarse text plot of an empirical CDF (x: value, y: percent)."""
    if not values:
        raise ConfigurationError("cannot plot an empty CDF")
    xs = sorted(values)
    lo, hi = xs[0], xs[-1]
    span = hi - lo or 1.0
    n = len(xs)
    grid = [[" "] * width for _ in range(height)]
    for i, x in enumerate(xs):
        col = min(width - 1, int((x - lo) / span * (width - 1)))
        row = min(height - 1, max(0, height - 1 - int((i + 1) / n * (height - 1))))
        grid[row][col] = "*"
    lines = [f"CDF {label}  (x: {lo:.1f} .. {hi:.1f}, y: 0..100%)"]
    lines.extend("".join(r) for r in grid)
    return "\n".join(lines)


@dataclass(slots=True)
class FigureResult:
    """Output of a figure/table driver: named rows plus free-form notes."""

    figure_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, header: str) -> list:
        """Extract a column by header name (for tests and assertions)."""
        try:
            idx = self.headers.index(header)
        except ValueError as exc:
            raise ConfigurationError(
                f"no column {header!r} in {self.figure_id}"
            ) from exc
        return [row[idx] for row in self.rows]

    def column_means(self, header: str) -> list[float]:
        """Like :meth:`column`, but collapsing aggregated cells to means.

        Lets assertions run unchanged over single-seed (float cells) and
        replicated (:class:`~repro.metrics.stats.SummaryStats` cells)
        figure output.
        """
        return [
            v.mean if isinstance(v, SummaryStats) else v
            for v in self.column(header)
        ]

    def render(self) -> str:
        parts = [f"== {self.figure_id}: {self.title} ==",
                 ascii_table(self.headers, self.rows)]
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
