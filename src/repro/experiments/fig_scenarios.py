"""Scenario workloads through the standard Hawk-vs-Sparrow comparison.

The registry-only scenario workloads (``pareto-heavy``,
``bursty-diurnal`` — see :mod:`repro.workloads.scenarios`) run the
canonical candidate-vs-baseline point at their high-load cluster size.
This driver is deliberately generic: it reads *everything* — trace,
cutoff, partition sizing — off the workload registry entries, so any
newly registered workload joins the figure by name with zero changes
here.  It exists both as the committed proof that the trace zoo is open
end to end and as the paper-style sanity check for new scenarios: Hawk's
short-job benefit should survive workload shapes the paper never
evaluated.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import HIGH_LOAD_TARGET, RunSpec, high_load_size
from repro.experiments.report import FigureResult
from repro.experiments.sweeps import SweepJob, extra_metrics, multi_sweep
from repro.workloads.registry import WorkloadSpec, quick_spec

#: The registry-only scenario workloads this figure ships with.
DEFAULT_WORKLOADS = ("pareto-heavy", "bursty-diurnal")


def run(
    scale: str = "full",
    seed: int = 0,
    workloads=DEFAULT_WORKLOADS,
    load_target: float = HIGH_LOAD_TARGET,
    n_seeds: int = 1,
) -> FigureResult:
    result = FigureResult(
        figure_id="Figure S (scenarios)",
        title="Hawk normalized to Sparrow on registry scenario workloads",
        headers=(
            "workload",
            "nodes",
            "util(sparrow)",
            "short p50",
            "short p90",
            "long p50",
            "long p90",
            "frac short improved",
        ),
    )
    # One executor stream across every scenario: a straggler in one
    # workload's point no longer gates the next workload's runs.
    specs = []
    jobs = []
    for name in workloads:
        workload = (
            quick_spec(name) if scale == "quick" else WorkloadSpec(name)
        )
        n = high_load_size(workload.trace(seed), load_target)
        hawk = RunSpec(
            scheduler="hawk",
            n_workers=n,
            cutoff=workload.cutoff,
            short_partition_fraction=workload.short_partition_fraction,
            seed=seed,
        )
        sparrow = RunSpec(
            scheduler="sparrow", n_workers=n, cutoff=workload.cutoff, seed=seed
        )
        specs.append(workload)
        jobs.append(SweepJob(workload, (n,), hawk, sparrow))
    for workload, points in zip(specs, multi_sweep(jobs, n_seeds=n_seeds)):
        for point in points:
            frac_s, _ = extra_metrics(point, JobClass.SHORT)
            result.add_row(
                workload.name,
                point.n_workers,
                point.cell("baseline_median_utilization"),
                point.cell("short_p50_ratio"),
                point.cell("short_p90_ratio"),
                point.cell("long_p50_ratio"),
                point.cell("long_p90_ratio"),
                frac_s,
            )
    result.add_note(
        "workloads constructed purely through the workload registry "
        "(repro/workloads/scenarios.py registers them; nothing in the "
        "experiment layer names them)"
    )
    result.add_note("ratios < 1 favor Hawk, as in Figures 5-6")
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "ratio cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result
