"""Run specifications shared by every experiment driver.

Construction is registry-driven (:mod:`repro.schedulers.registry`):
``RunSpec`` v2 names a registered policy and carries a frozen,
schema-validated ``params`` mapping; :func:`build_engine` is a pure
registry lookup.  Adding a scheduler therefore never touches this
module — register it and every sweep, figure driver and cache key
accepts it.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.cluster import ClusterEngine
from repro.cluster.faults import FaultPlan
from repro.cluster.records import RunResult
from repro.core.errors import ConfigurationError
from repro.schedulers import registry
from repro.schedulers.registry import FrozenParams
from repro.workloads.replication import replica_seeds
from repro.workloads.spec import Trace

#: Offered-load points for cluster-size sweeps, expressed as offered
#: task-seconds over cluster capacity.  They mirror the paper's 10k-50k
#: node sweep of the Google trace: overload -> high load -> mostly idle.
GOOGLE_UTILIZATION_TARGETS = (1.25, 1.0, 0.8, 0.65, 0.5, 0.35)

#: The load point used for the single-cluster-size experiments
#: (Figures 7, 12-15); corresponds to the paper's 15000-node setting.
HIGH_LOAD_TARGET = 1.0


@dataclass(frozen=True, slots=True)
class RunSpec:
    """Everything needed to build one engine run (minus the trace).

    ``scheduler`` must name a registered policy; ``params`` holds that
    policy's knobs (e.g. ``probe_ratio``, ``steal_cap``, a scenario
    policy's ``batch_size``) and is validated against the registry
    schema at construction — unknown names, wrong types and
    out-of-range values all fail fast.  The stored mapping is frozen
    and canonically ordered, so equality, hashing and the run-cache key
    are independent of params-dict insertion order, and undeclared
    params are pinned at their schema defaults (two specs differing
    only in an omitted-vs-explicit default are the *same* spec).
    """

    scheduler: str
    n_workers: int
    cutoff: float
    short_partition_fraction: float = 0.17
    seed: int = 0
    params: Mapping = FrozenParams()
    estimate: Callable | None = field(default=None, compare=False)
    #: Opaque tag making otherwise-equal specs distinct in the run cache
    #: (required whenever ``estimate`` is set: callables have no stable
    #: content, so the tag is their cache-visible identity).
    estimate_tag: str = "exact"
    #: Injected failures for this run (:mod:`repro.cluster.faults`).  An
    #: empty plan normalizes to ``None``, and ``None`` is skipped by the
    #: cache-key digest, so fault-free specs hash, compare and cache
    #: exactly as they did before faults existed.
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        # Raises ConfigurationError for unknown policies/params and
        # canonicalizes the mapping (defaults filled, keys sorted).
        object.__setattr__(
            self, "params", registry.validate_params(self.scheduler, self.params)
        )
        faults = self.faults
        if faults is not None and not isinstance(faults, FaultPlan):
            faults = FaultPlan(params=faults)
            object.__setattr__(self, "faults", faults)
        if faults is not None and faults.is_empty:
            object.__setattr__(self, "faults", None)
        if self.n_workers <= 0:
            raise ConfigurationError("n_workers must be positive")
        if self.estimate is not None and self.estimate_tag == "exact":
            raise ConfigurationError(
                "a custom estimate callable requires a non-'exact' "
                "estimate_tag: the tag is the estimator's identity in the "
                "run-cache key, and leaving it at the default would let "
                "different estimators silently share cached results"
            )

    def param(self, name: str):
        """One validated param value (defaults filled in)."""
        return self.params[name]

    def with_(self, **changes) -> "RunSpec":
        return replace(self, **changes)

    def replicas(self, n_seeds: int) -> tuple["RunSpec", ...]:
        """The spec's seed-replica family: seeds ``seed .. seed+n-1``.

        Replica 0 is the spec itself, so ``spec.replicas(1) == (spec,)``
        and the single-seed path is unchanged.  Engine RNG streams are
        derived from the seed (see :mod:`repro.core.rng`), so each
        replica is an independent draw of every stochastic mechanism —
        probe sampling, stealing victims, estimator noise.
        """
        seeds = replica_seeds(self.seed, n_seeds)
        return (self,) + tuple(self.with_(seed=s) for s in seeds[1:])


def build_engine(spec: RunSpec) -> ClusterEngine:
    """Construct the cluster, policy and mechanisms for a spec.

    Pure registry lookup: the policy's entry supplies the builder and
    the capability flags that decide partitioning and work stealing (see
    :func:`repro.schedulers.registry.build_engine`).
    """
    return registry.build_engine(spec)


def execute(spec: RunSpec, trace: Trace) -> RunResult:
    """Build and run one experiment configuration."""
    return build_engine(spec).run(trace)


def sweep_sizes(trace: Trace, utilization_targets=GOOGLE_UTILIZATION_TARGETS):
    """Cluster sizes whose offered load matches the given targets.

    The paper varies the number of nodes to vary utilization
    (Section 4.2); this helper inverts that: given offered-load targets it
    returns the cluster sizes achieving them for the trace at hand.
    """
    full = trace.nodes_for_full_utilization()
    return tuple(max(3, int(round(full / target))) for target in utilization_targets)


def high_load_size(trace: Trace, target: float = HIGH_LOAD_TARGET) -> int:
    """The single cluster size used by the fixed-size experiments."""
    return max(3, int(round(trace.nodes_for_full_utilization() / target)))
