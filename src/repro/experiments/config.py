"""Run specifications shared by every experiment driver."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.cluster import Cluster, ClusterEngine, EngineConfig
from repro.cluster.records import RunResult
from repro.core.errors import ConfigurationError
from repro.schedulers import (
    CentralizedScheduler,
    HawkScheduler,
    SparrowScheduler,
    SplitScheduler,
    WorkStealing,
)
from repro.workloads.replication import replica_seeds
from repro.workloads.spec import Trace

#: Offered-load points for cluster-size sweeps, expressed as offered
#: task-seconds over cluster capacity.  They mirror the paper's 10k-50k
#: node sweep of the Google trace: overload -> high load -> mostly idle.
GOOGLE_UTILIZATION_TARGETS = (1.25, 1.0, 0.8, 0.65, 0.5, 0.35)

#: The load point used for the single-cluster-size experiments
#: (Figures 7, 12-15); corresponds to the paper's 15000-node setting.
HIGH_LOAD_TARGET = 1.0

#: Scheduler names accepted by :class:`RunSpec`.
SCHEDULER_NAMES = (
    "hawk",
    "sparrow",
    "centralized",
    "split",
    "hawk-no-centralized",
    "hawk-no-partition",
    "hawk-no-stealing",
)

#: Schedulers that use the work-stealing runtime mechanism.
_STEALING = {"hawk", "hawk-no-centralized", "hawk-no-partition"}

#: Schedulers that reserve a short partition.
_PARTITIONED = {"hawk", "split", "hawk-no-centralized", "hawk-no-stealing"}


@dataclass(frozen=True, slots=True)
class RunSpec:
    """Everything needed to build one engine run (minus the trace)."""

    scheduler: str
    n_workers: int
    cutoff: float
    short_partition_fraction: float = 0.17
    seed: int = 0
    probe_ratio: int = 2
    steal_cap: int = 10
    estimate: Callable | None = field(default=None, compare=False)
    #: Opaque tag making otherwise-equal specs distinct in the run cache
    #: (used when ``estimate`` differs).
    estimate_tag: str = "exact"

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULER_NAMES:
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler!r}; "
                f"expected one of {SCHEDULER_NAMES}"
            )
        if self.n_workers <= 0:
            raise ConfigurationError("n_workers must be positive")

    def with_(self, **changes) -> "RunSpec":
        return replace(self, **changes)

    def replicas(self, n_seeds: int) -> tuple["RunSpec", ...]:
        """The spec's seed-replica family: seeds ``seed .. seed+n-1``.

        Replica 0 is the spec itself, so ``spec.replicas(1) == (spec,)``
        and the single-seed path is unchanged.  Engine RNG streams are
        derived from the seed (see :mod:`repro.core.rng`), so each
        replica is an independent draw of every stochastic mechanism —
        probe sampling, stealing victims, estimator noise.
        """
        seeds = replica_seeds(self.seed, n_seeds)
        return (self,) + tuple(self.with_(seed=s) for s in seeds[1:])


def build_engine(spec: RunSpec) -> ClusterEngine:
    """Construct the cluster, policy and stealing mechanism for a spec."""
    partition_fraction = (
        spec.short_partition_fraction if spec.scheduler in _PARTITIONED else 0.0
    )
    cluster = Cluster(spec.n_workers, short_partition_fraction=partition_fraction)
    if spec.scheduler == "sparrow":
        scheduler = SparrowScheduler(probe_ratio=spec.probe_ratio)
    elif spec.scheduler == "centralized":
        scheduler = CentralizedScheduler()
    elif spec.scheduler == "split":
        scheduler = SplitScheduler(probe_ratio=spec.probe_ratio)
    elif spec.scheduler == "hawk-no-centralized":
        scheduler = HawkScheduler(
            probe_ratio=spec.probe_ratio, centralize_long=False
        )
    else:  # hawk, hawk-no-partition, hawk-no-stealing
        scheduler = HawkScheduler(probe_ratio=spec.probe_ratio)
    stealing = (
        WorkStealing(cap=spec.steal_cap) if spec.scheduler in _STEALING else None
    )
    config = EngineConfig(cutoff=spec.cutoff, seed=spec.seed)
    return ClusterEngine(
        cluster, scheduler, config, stealing=stealing, estimate=spec.estimate
    )


def execute(spec: RunSpec, trace: Trace) -> RunResult:
    """Build and run one experiment configuration."""
    return build_engine(spec).run(trace)


def sweep_sizes(trace: Trace, utilization_targets=GOOGLE_UTILIZATION_TARGETS):
    """Cluster sizes whose offered load matches the given targets.

    The paper varies the number of nodes to vary utilization
    (Section 4.2); this helper inverts that: given offered-load targets it
    returns the cluster sizes achieving them for the trace at hand.
    """
    full = trace.nodes_for_full_utilization()
    return tuple(max(3, int(round(full / target))) for target in utilization_targets)


def high_load_size(trace: Trace, target: float = HIGH_LOAD_TARGET) -> int:
    """The single cluster size used by the fixed-size experiments."""
    return max(3, int(round(trace.nodes_for_full_utilization() / target)))
