"""Canonical experiment traces (full and quick-scale variants).

All figure drivers obtain their input workloads here so that runs are
shared through the cache and every experiment agrees on the trace.
"""

from __future__ import annotations

from repro.workloads import (
    CLOUDERA_C,
    FACEBOOK_2010,
    GOOGLE_CUTOFF_S,
    YAHOO_2011,
    GoogleTraceConfig,
    google_like_trace,
    kmeans_trace,
)
from repro.workloads.google import GOOGLE_SHORT_PARTITION_FRACTION
from repro.workloads.kmeans import KMeansWorkloadSpec
from repro.workloads.replication import TraceFactory
from repro.workloads.spec import Trace

#: Jobs per generated trace at the two scales.  "full" is the default used
#: by the benchmark harness; "quick" keeps unit/integration tests fast.
_GOOGLE_JOBS = {"full": 1200, "quick": 260}
_KMEANS_JOBS = {"full": 900, "quick": 240}

#: The 10k-worker scale point (fig05_scale): same generator, arrivals
#: densified so ~10,000 nodes sit at high-but-not-overloaded utilization
#: (nodes-for-full-utilization scales with mean work / inter-arrival, not
#: with job count).
_GOOGLE_SCALE_JOBS = 3000
_GOOGLE_SCALE_INTERARRIVAL = 3.2

_cache: dict[tuple, Trace] = {}


def google_trace(scale: str = "full", seed: int = 0) -> Trace:
    """The synthetic Google-like trace used throughout the evaluation."""
    key = ("google", scale, seed)
    if key not in _cache:
        config = GoogleTraceConfig(n_jobs=_GOOGLE_JOBS[scale])
        _cache[key] = google_like_trace(config, seed=seed)
    return _cache[key]


def kmeans_workload_trace(
    spec: KMeansWorkloadSpec, scale: str = "full", seed: int = 0
) -> Trace:
    """A Cloudera/Facebook/Yahoo trace at the requested scale."""
    key = (spec.name, scale, seed)
    if key not in _cache:
        _cache[key] = kmeans_trace(
            spec,
            n_jobs=_KMEANS_JOBS[scale],
            mean_interarrival=20.0,
            seed=seed,
        )
    return _cache[key]


def google_scale_trace(seed: int = 0) -> Trace:
    """The densified Google-like trace for the 10k-worker scale point."""
    key = ("google-scale10k", seed)
    if key not in _cache:
        config = GoogleTraceConfig(
            n_jobs=_GOOGLE_SCALE_JOBS,
            mean_interarrival=_GOOGLE_SCALE_INTERARRIVAL,
        )
        _cache[key] = google_like_trace(config, seed=seed)
    return _cache[key]


def google_scale_trace_factory() -> TraceFactory:
    """``seed -> Trace`` for seed-replicated 10k-worker sweeps."""
    return google_scale_trace


def google_trace_factory(scale: str = "full") -> TraceFactory:
    """``seed -> Trace`` for seed-replicated sweeps of the Google trace.

    Backed by the same per-(scale, seed) cache as :func:`google_trace`,
    so replicas regenerate once per process and identical seeds share
    run-cache entries across figures.
    """
    return lambda seed: google_trace(scale, seed)


def kmeans_trace_factory(
    spec: KMeansWorkloadSpec, scale: str = "full"
) -> TraceFactory:
    """``seed -> Trace`` for seed-replicated sweeps of a k-means workload."""
    return lambda seed: kmeans_workload_trace(spec, scale, seed)


def google_cutoff() -> float:
    return GOOGLE_CUTOFF_S


def google_short_fraction() -> float:
    return GOOGLE_SHORT_PARTITION_FRACTION


ALL_WORKLOAD_SPECS = (CLOUDERA_C, FACEBOOK_2010, YAHOO_2011)
