"""Canonical experiment workloads, named as :class:`WorkloadSpec` values.

All figure drivers obtain their input workloads here so every experiment
agrees on the trace identity.  Since the workload registry
(:mod:`repro.workloads.registry`) became the construction path, this
module is nothing but registry lookups: each helper returns the
``WorkloadSpec`` naming a registered workload at the canonical full or
quick scale, and trace materialization (with its per-process cache) is
``spec.trace(seed)`` — the module-level trace cache that used to live
here is gone.

Compatibility accessors (``google_trace(scale, seed)`` and friends)
remain for callers that want the materialized trace directly; they are
one-line spec lookups.
"""

from __future__ import annotations

from repro.workloads import CLOUDERA_C, FACEBOOK_2010, GOOGLE_CUTOFF_S, YAHOO_2011
from repro.workloads.google import GOOGLE_SHORT_PARTITION_FRACTION
from repro.workloads.kmeans import KMeansWorkloadSpec
from repro.workloads.registry import WorkloadSpec
from repro.workloads.spec import Trace

#: Jobs per generated trace at the two scales.  "full" is the default used
#: by the benchmark harness; "quick" keeps unit/integration tests fast.
#: (The full-scale values are the registered defaults; quick overrides
#: match each entry's registered ``quick_params``.)
_GOOGLE_JOBS = {"full": 1200, "quick": 260}
_KMEANS_JOBS = {"full": 900, "quick": 240}


def google_workload(scale: str = "full") -> WorkloadSpec:
    """The synthetic Google-like workload at the canonical scale."""
    return WorkloadSpec("google", {"n_jobs": _GOOGLE_JOBS[scale]})


def kmeans_workload(spec: KMeansWorkloadSpec, scale: str = "full") -> WorkloadSpec:
    """A Cloudera/Facebook/Yahoo workload at the canonical scale."""
    return WorkloadSpec(spec.name, {"n_jobs": _KMEANS_JOBS[scale]})


def google_scale_workload() -> WorkloadSpec:
    """The densified Google workload for the 10k-worker scale point."""
    return WorkloadSpec("google-scale10k")


def google_scale100k_workload() -> WorkloadSpec:
    """The densified Google workload for the 100k-worker scale point."""
    return WorkloadSpec("google-scale100k")


def google_trace(scale: str = "full", seed: int = 0) -> Trace:
    """The materialized Google-like trace (shared per-process cache)."""
    return google_workload(scale).trace(seed)


def kmeans_workload_trace(
    spec: KMeansWorkloadSpec, scale: str = "full", seed: int = 0
) -> Trace:
    """A materialized Cloudera/Facebook/Yahoo trace at the requested scale."""
    return kmeans_workload(spec, scale).trace(seed)


def google_scale_trace(seed: int = 0) -> Trace:
    """The materialized densified trace for the 10k-worker scale point."""
    return google_scale_workload().trace(seed)


def google_trace_factory(scale: str = "full") -> WorkloadSpec:
    """``seed -> Trace`` factory for the Google workload (= its spec)."""
    return google_workload(scale)


def kmeans_trace_factory(
    spec: KMeansWorkloadSpec, scale: str = "full"
) -> WorkloadSpec:
    """``seed -> Trace`` factory for a k-means workload (= its spec)."""
    return kmeans_workload(spec, scale)


def google_scale_trace_factory() -> WorkloadSpec:
    """``seed -> Trace`` factory for the 10k-worker scale point."""
    return google_scale_workload()


def google_cutoff() -> float:
    return GOOGLE_CUTOFF_S


def google_short_fraction() -> float:
    return GOOGLE_SHORT_PARTITION_FRACTION


ALL_WORKLOAD_SPECS = (CLOUDERA_C, FACEBOOK_2010, YAHOO_2011)
