"""Figure 15: sensitivity to the number of stealing attempts.

The maximum number of random nodes an idle server contacts per stealing
round sweeps 1..250; short-job runtimes are normalized to the cap=1 run.
Paper finding: performance increases with the cap, but even a low value
(10) captures most of the benefit.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import HIGH_LOAD_TARGET, RunSpec, high_load_size
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.experiments.traces import google_cutoff, google_short_fraction, google_trace
from repro.metrics.comparison import normalized_percentile

#: The paper's x-axis.
PAPER_CAPS = (1, 2, 3, 4, 5, 10, 15, 20, 25, 50, 75, 100, 250)


def run(
    scale: str = "full",
    seed: int = 0,
    caps=PAPER_CAPS,
    load_target: float = HIGH_LOAD_TARGET,
) -> FigureResult:
    trace = google_trace(scale, seed)
    cutoff = google_cutoff()
    n = high_load_size(trace, load_target)

    def spec(cap: int) -> RunSpec:
        return RunSpec(
            scheduler="hawk",
            n_workers=n,
            cutoff=cutoff,
            short_partition_fraction=google_short_fraction(),
            seed=seed,
            steal_cap=cap,
        )

    # One batch: cap=1 plus the whole sweep (the executor deduplicates
    # the repeated cap=1 run).
    base, *cap_results = get_executor().run_many(
        [(spec(1), trace)] + [(spec(cap), trace) for cap in caps]
    )
    result = FigureResult(
        figure_id="Figure 15",
        title=f"Steal-cap sensitivity normalized to cap=1 ({n} nodes)",
        headers=("cap", "short p50", "short p90", "steal success rate"),
    )
    for cap, res in zip(caps, cap_results):
        result.add_row(
            cap,
            normalized_percentile(res, base, JobClass.SHORT, 50),
            normalized_percentile(res, base, JobClass.SHORT, 90),
            res.stealing.success_rate,
        )
    result.add_note(
        "ratios should fall with the cap and flatten by cap≈10 "
        "(paper Section 4.9)"
    )
    return result
