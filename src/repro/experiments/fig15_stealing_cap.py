"""Figure 15: sensitivity to the number of stealing attempts.

The maximum number of random nodes an idle server contacts per stealing
round sweeps 1..250; short-job runtimes are normalized to the cap=1 run.
Paper finding: performance increases with the cap, but even a low value
(10) captures most of the benefit.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import HIGH_LOAD_TARGET, RunSpec, high_load_size
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.experiments.traces import google_workload
from repro.metrics.comparison import normalized_percentile
from repro.metrics.stats import mean, paired_cell
from repro.workloads.replication import replica_seeds

#: The paper's x-axis.
PAPER_CAPS = (1, 2, 3, 4, 5, 10, 15, 20, 25, 50, 75, 100, 250)


def run(
    scale: str = "full",
    seed: int = 0,
    caps=PAPER_CAPS,
    load_target: float = HIGH_LOAD_TARGET,
    n_seeds: int = 1,
) -> FigureResult:
    workload = google_workload(scale)
    cutoff = workload.cutoff
    n = high_load_size(workload.trace(seed), load_target)
    seeds = replica_seeds(seed, n_seeds)
    traces = [workload.trace(s) for s in seeds]

    def spec(cap: int, s: int) -> RunSpec:
        return RunSpec(
            scheduler="hawk",
            n_workers=n,
            cutoff=cutoff,
            short_partition_fraction=workload.short_partition_fraction,
            seed=s,
            params={"steal_cap": cap},
        )

    # One batch: cap=1 plus the whole sweep, per replica seed (the
    # executor deduplicates the repeated cap=1 runs).  Each replica's
    # caps normalize to the same replica's cap=1 run (matched seeds).
    batch = [(spec(1, s), traces[r]) for r, s in enumerate(seeds)]
    batch += [
        (spec(cap, s), traces[r])
        for cap in caps
        for r, s in enumerate(seeds)
    ]
    results = get_executor().run_many(batch)
    bases = results[:n_seeds]
    result = FigureResult(
        figure_id="Figure 15",
        title=f"Steal-cap sensitivity normalized to cap=1 ({n} nodes)",
        headers=("cap", "short p50", "short p90", "steal success rate"),
    )
    for i, cap in enumerate(caps):
        runs = results[n_seeds * (i + 1) : n_seeds * (i + 2)]

        def ratio_cell(p):
            return paired_cell(
                lambda c, b: normalized_percentile(c, b, JobClass.SHORT, p),
                runs,
                bases,
            )

        result.add_row(
            cap,
            ratio_cell(50),
            ratio_cell(90),
            mean([r.stealing.success_rate for r in runs]),
        )
    result.add_note(
        "ratios should fall with the cap and flatten by cap≈10 "
        "(paper Section 4.9)"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "ratio cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result
