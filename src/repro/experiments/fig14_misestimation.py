"""Figure 14: sensitivity to task-runtime mis-estimation.

For each job the correct estimate is multiplied by a random value chosen
uniformly within a range (0.1-1.9 down to 0.7-1.3).  Runtimes of the jobs
*classified as long when no mis-estimations are present* are reported
normalized to Sparrow, aggregated over several runs (ten in the paper).
Short jobs see only minute variations (their scheduling never uses
estimates) — the short columns verify that.

The repetition axis rides on the ordinary seed-replication machinery:
one Hawk spec per range carries a :class:`UniformMisestimation`
estimator, and ``run_replicated`` fans it out over matched seed replicas
— the engine specializes the estimator to each replica's run seed (its
``seeded`` hook), so every replica is an independent draw of both the
scheduling randomness *and* the mis-estimation noise.  The Sparrow
baseline replicates over the same seeds, and each range's ratios are
paired within replicas before aggregation.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import HIGH_LOAD_TARGET, RunSpec, high_load_size
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_replicated
from repro.experiments.traces import google_workload
from repro.metrics.comparison import normalized_percentile
from repro.metrics.stats import paired_cell
from repro.schedulers.estimator import UniformMisestimation

#: The paper's mis-estimation magnitude ranges.
PAPER_RANGES = (
    (0.1, 1.9),
    (0.2, 1.8),
    (0.3, 1.7),
    (0.4, 1.6),
    (0.5, 1.5),
    (0.6, 1.4),
    (0.7, 1.3),
)

#: Seed replicas aggregated per range (the paper uses 10 runs).
DEFAULT_N_SEEDS = 5


def run(
    scale: str = "full",
    seed: int = 0,
    ranges=PAPER_RANGES,
    n_seeds: int = DEFAULT_N_SEEDS,
    load_target: float = HIGH_LOAD_TARGET,
) -> FigureResult:
    workload = google_workload(scale)
    trace = workload.trace(seed)
    cutoff = workload.cutoff
    n = high_load_size(trace, load_target)
    # The trace is held fixed across replicas on purpose: the axis under
    # study is estimator noise, not workload noise.
    sparrow = RunSpec(scheduler="sparrow", n_workers=n, cutoff=cutoff, seed=seed)
    sparrow_runs = run_replicated(sparrow, trace, n_seeds)

    result = FigureResult(
        figure_id="Figure 14",
        title=(
            f"Mis-estimation sensitivity, Hawk/Sparrow, {n} nodes, "
            f"{n_seeds} seed replicas"
        ),
        headers=(
            "magnitude",
            "long p50",
            "long p90",
            "short p50",
            "short p90",
        ),
    )
    for low, high in ranges:
        hawk = RunSpec(
            scheduler="hawk",
            n_workers=n,
            cutoff=cutoff,
            short_partition_fraction=workload.short_partition_fraction,
            seed=seed,
            estimate=UniformMisestimation(low, high, seed=seed),
            # The estimator's base seed is part of its identity: replica
            # families with different bases overlap in spec.seed, and the
            # tag is what keeps their cache entries distinct.
            estimate_tag=f"mis-{low:g}-{high:g}-s{seed}",
        )
        hawk_runs = run_replicated(hawk, trace, n_seeds)

        def ratio_cell(job_class, p):
            # true_class is based on the correct estimate, so these are
            # the jobs "classified as long when no mis-estimations are
            # present" — exactly the paper's reporting population.
            return paired_cell(
                lambda h, s: normalized_percentile(h, s, job_class, p),
                hawk_runs,
                sparrow_runs,
            )

        result.add_row(
            f"{low:g}-{high:g}",
            ratio_cell(JobClass.LONG, 50),
            ratio_cell(JobClass.LONG, 90),
            ratio_cell(JobClass.SHORT, 50),
            ratio_cell(JobClass.SHORT, 90),
        )
    result.add_note(
        "Hawk should be robust: ratios stay close to the exact-estimation "
        "values across all magnitudes (paper Section 4.8)"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas with "
            "independent mis-estimation draws; cells are mean±95% CI "
            "half-width (p: paired t vs ratio 1)"
        )
    return result
