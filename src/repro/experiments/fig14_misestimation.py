"""Figure 14: sensitivity to task-runtime mis-estimation.

For each job the correct estimate is multiplied by a random value chosen
uniformly within a range (0.1-1.9 down to 0.7-1.3).  Runtimes of the jobs
*classified as long when no mis-estimations are present* are reported
normalized to Sparrow, averaged over several runs (ten in the paper).
Short jobs see only minute variations (their scheduling never uses
estimates) — the short columns verify that.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import HIGH_LOAD_TARGET, RunSpec, high_load_size
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.experiments.traces import google_cutoff, google_short_fraction, google_trace
from repro.metrics.comparison import normalized_percentile
from repro.schedulers.estimator import UniformMisestimation

#: The paper's mis-estimation magnitude ranges.
PAPER_RANGES = (
    (0.1, 1.9),
    (0.2, 1.8),
    (0.3, 1.7),
    (0.4, 1.6),
    (0.5, 1.5),
    (0.6, 1.4),
    (0.7, 1.3),
)

#: Runs averaged per range (the paper uses 10).
DEFAULT_REPETITIONS = 5


def run(
    scale: str = "full",
    seed: int = 0,
    ranges=PAPER_RANGES,
    repetitions: int = DEFAULT_REPETITIONS,
    load_target: float = HIGH_LOAD_TARGET,
) -> FigureResult:
    trace = google_trace(scale, seed)
    cutoff = google_cutoff()
    n = high_load_size(trace, load_target)
    sparrow = RunSpec(scheduler="sparrow", n_workers=n, cutoff=cutoff, seed=seed)

    def hawk_spec(low: float, high: float, rep: int) -> RunSpec:
        estimator = UniformMisestimation(low, high, seed=seed * 1000 + rep)
        return RunSpec(
            scheduler="hawk",
            n_workers=n,
            cutoff=cutoff,
            short_partition_fraction=google_short_fraction(),
            seed=seed + rep,
            estimate=estimator,
            estimate_tag=f"mis-{low:g}-{high:g}-{rep}",
        )

    # One batch: the Sparrow baseline plus every (range, repetition) run.
    batch = [(sparrow, trace)]
    batch += [
        (hawk_spec(low, high, rep), trace)
        for low, high in ranges
        for rep in range(repetitions)
    ]
    sparrow_res, *hawk_results = get_executor().run_many(batch)
    hawk_by_run = iter(hawk_results)

    result = FigureResult(
        figure_id="Figure 14",
        title=(
            f"Mis-estimation sensitivity, Hawk/Sparrow, {n} nodes, "
            f"avg of {repetitions} runs"
        ),
        headers=(
            "magnitude",
            "long p50",
            "long p90",
            "short p50",
            "short p90",
        ),
    )
    for low, high in ranges:
        ratios = {"l50": 0.0, "l90": 0.0, "s50": 0.0, "s90": 0.0}
        for rep in range(repetitions):
            hawk_res = next(hawk_by_run)
            # true_class is based on the correct estimate, so these are
            # the jobs "classified as long when no mis-estimations are
            # present" — exactly the paper's reporting population.
            ratios["l50"] += normalized_percentile(
                hawk_res, sparrow_res, JobClass.LONG, 50
            )
            ratios["l90"] += normalized_percentile(
                hawk_res, sparrow_res, JobClass.LONG, 90
            )
            ratios["s50"] += normalized_percentile(
                hawk_res, sparrow_res, JobClass.SHORT, 50
            )
            ratios["s90"] += normalized_percentile(
                hawk_res, sparrow_res, JobClass.SHORT, 90
            )
        result.add_row(
            f"{low:g}-{high:g}",
            ratios["l50"] / repetitions,
            ratios["l90"] / repetitions,
            ratios["s50"] / repetitions,
            ratios["s90"] / repetitions,
        )
    result.add_note(
        "Hawk should be robust: ratios stay close to the exact-estimation "
        "values across all magnitudes (paper Section 4.8)"
    )
    return result
