"""Figures 16-17: prototype implementation vs simulation.

The paper runs a 3300-job Google sample on a 100-node Spark cluster
(sleep tasks, durations scaled seconds -> milliseconds) and sweeps load
via the mean job inter-arrival time expressed as a multiple of the mean
task runtime, comparing Hawk to Sparrow and overlaying the corresponding
simulation results.  Expected outcome: the two agree in trend — Hawk is
best at high load, the 50th percentiles converge as load decreases, and
the short-job 90th percentile stays considerably better even at medium
load — with residual differences because the simulation does not model
scheduling/stealing overheads (Section 4.10).

Here the "implementation" is the threaded prototype runtime
(:mod:`repro.runtime`): real OS threads, real sleeps, real lock
contention and real message latency.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.cluster.records import RunResult
from repro.experiments.config import RunSpec
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.experiments.traces import google_short_fraction
from repro.metrics.percentiles import percentile
from repro.runtime import PrototypeCluster, PrototypeConfig
from repro.workloads import GOOGLE_CUTOFF_S, WorkloadSpec
from repro.workloads.scaling import scale_trace_for_prototype, with_interarrival

#: The paper's load sweep (inter-arrival multiples).
PAPER_MULTIPLES = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25)

#: A cheaper default sweep for the benchmark harness.
DEFAULT_MULTIPLES = (1.0, 1.4, 1.8, 2.25)


def _scheduled_runtimes(result: RunResult, job_class: JobClass) -> list[float]:
    """Runtimes filtered by *scheduled* class.

    Prototype-scaled traces carry their classification from the original
    trace (task-count compensation perturbs scaled means), so scheduled
    class — identical across all four systems compared here — is the
    consistent reporting population.
    """
    return [r.runtime for r in result.jobs if r.scheduled_class is job_class]


def _ratio(hawk: RunResult, sparrow: RunResult, cls: JobClass, p: float) -> float:
    return percentile(_scheduled_runtimes(hawk, cls), p) / percentile(
        _scheduled_runtimes(sparrow, cls), p
    )


def run(
    n_jobs: int = 80,
    n_monitors: int = 100,
    multiples=DEFAULT_MULTIPLES,
    target_mean_task_runtime: float = 0.12,
    seed: int = 3,
) -> FigureResult:
    # The base sample is declared by workload spec; the prototype scaling
    # is a transform on top (it needs the time factor and the carried
    # long-job classification, not just the scaled trace).
    base = WorkloadSpec("google", {"n_jobs": n_jobs}).trace(seed)
    scaled = scale_trace_for_prototype(
        base,
        cluster_size=n_monitors,
        cutoff=GOOGLE_CUTOFF_S,
        target_mean_task_runtime=target_mean_task_runtime,
    )
    # Offered load 1.0 at multiple 1: base gap = work / (jobs * capacity).
    base_interarrival = scaled.trace.total_task_seconds / (
        len(scaled.trace) * n_monitors
    )

    def classify_estimate(spec):
        # Carry the original classification into the simulator: clamp
        # scaled-short means below the scaled cutoff (compensation can
        # inflate them past it) and leave everything else untouched.
        if spec.job_id in scaled.long_job_ids:
            return max(spec.mean_task_duration, scaled.cutoff)
        return min(spec.mean_task_duration, 0.99 * scaled.cutoff)

    result = FigureResult(
        figure_id="Figures 16-17",
        title=(
            f"Implementation vs simulation, Hawk/Sparrow, {n_monitors} nodes"
        ),
        headers=(
            "interarrival multiple",
            "system",
            "short p50",
            "short p90",
            "long p50",
            "long p90",
        ),
    )
    for multiple in multiples:
        trace = with_interarrival(
            scaled.trace, multiple * base_interarrival, seed=seed
        )
        runs: dict[str, RunResult] = {}
        sim_batch = []
        for scheduler in ("sparrow", "hawk"):
            proto = PrototypeCluster(
                PrototypeConfig(
                    scheduler=scheduler,
                    n_monitors=n_monitors,
                    cutoff=scaled.cutoff,
                    seed=seed,
                )
            )
            runs[f"proto-{scheduler}"] = proto.run(
                trace, long_job_ids=scaled.long_job_ids
            )
            spec = RunSpec(
                scheduler=scheduler,
                n_workers=n_monitors,
                cutoff=scaled.cutoff,
                short_partition_fraction=google_short_fraction(),
                seed=seed,
                estimate=classify_estimate,
                estimate_tag="carried-classes",
            )
            sim_batch.append((spec, trace))
        # classify_estimate is a closure, so the executor runs these
        # in-process; the batch still flows through the two-tier cache.
        for (spec, _), res in zip(
            sim_batch, get_executor().run_many(sim_batch)
        ):
            runs[f"sim-{spec.scheduler}"] = res
        for system in ("implementation", "simulation"):
            prefix = "proto" if system == "implementation" else "sim"
            hawk = runs[f"{prefix}-hawk"]
            sparrow = runs[f"{prefix}-sparrow"]
            result.add_row(
                multiple,
                system,
                _ratio(hawk, sparrow, JobClass.SHORT, 50),
                _ratio(hawk, sparrow, JobClass.SHORT, 90),
                _ratio(hawk, sparrow, JobClass.LONG, 50),
                _ratio(hawk, sparrow, JobClass.LONG, 90),
            )
    result.add_note(
        "implementation and simulation should agree in trend; exact values "
        "differ because the simulation has no scheduling/stealing overheads "
        "(Section 4.10)"
    )
    return result
