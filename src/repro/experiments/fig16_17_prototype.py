"""Figures 16-17: prototype implementation vs simulation.

The paper runs a 3300-job Google sample on a 100-node Spark cluster
(sleep tasks, durations scaled seconds -> milliseconds) and sweeps load
via the mean job inter-arrival time expressed as a multiple of the mean
task runtime, comparing Hawk to Sparrow and overlaying the corresponding
simulation results.  Expected outcome: the two agree in trend — Hawk is
best at high load, the 50th percentiles converge as load decreases, and
the short-job 90th percentile stays considerably better even at medium
load — with residual differences because the simulation does not model
scheduling/stealing overheads (Section 4.10).

Here the "implementation" is the threaded prototype runtime
(:mod:`repro.runtime`): real OS threads, real sleeps, real lock
contention and real message latency.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster.job import JobClass
from repro.cluster.records import RunResult
from repro.experiments.config import RunSpec
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.experiments.traces import google_short_fraction
from repro.metrics.percentiles import percentile
from repro.runtime import PrototypeCluster, PrototypeConfig
from repro.workloads import GOOGLE_CUTOFF_S, WorkloadSpec
from repro.workloads.scaling import scale_trace_for_prototype, with_interarrival

#: The paper's load sweep (inter-arrival multiples).
PAPER_MULTIPLES = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25)

#: A cheaper default sweep for the benchmark harness.
DEFAULT_MULTIPLES = (1.0, 1.4, 1.8, 2.25)


def _scheduled_runtimes(result: RunResult, job_class: JobClass) -> list[float]:
    """Runtimes filtered by *scheduled* class.

    Prototype-scaled traces carry their classification from the original
    trace (task-count compensation perturbs scaled means), so scheduled
    class — identical across all four systems compared here — is the
    consistent reporting population.
    """
    return [r.runtime for r in result.jobs if r.scheduled_class is job_class]


def _ratio(hawk: RunResult, sparrow: RunResult, cls: JobClass, p: float) -> float:
    return percentile(_scheduled_runtimes(hawk, cls), p) / percentile(
        _scheduled_runtimes(sparrow, cls), p
    )


def run(
    n_jobs: int = 80,
    n_monitors: int = 100,
    multiples=DEFAULT_MULTIPLES,
    target_mean_task_runtime: float = 0.12,
    seed: int = 3,
) -> FigureResult:
    # The base sample is declared by workload spec; the prototype scaling
    # is a transform on top (it needs the time factor and the carried
    # long-job classification, not just the scaled trace).
    base = WorkloadSpec("google", {"n_jobs": n_jobs}).trace(seed)
    scaled = scale_trace_for_prototype(
        base,
        cluster_size=n_monitors,
        cutoff=GOOGLE_CUTOFF_S,
        target_mean_task_runtime=target_mean_task_runtime,
    )
    # Offered load 1.0 at multiple 1: base gap = work / (jobs * capacity).
    base_interarrival = scaled.trace.total_task_seconds / (
        len(scaled.trace) * n_monitors
    )

    def classify_estimate(spec):
        # Carry the original classification into the simulator: clamp
        # scaled-short means below the scaled cutoff (compensation can
        # inflate them past it) and leave everything else untouched.
        if spec.job_id in scaled.long_job_ids:
            return max(spec.mean_task_duration, scaled.cutoff)
        return min(spec.mean_task_duration, 0.99 * scaled.cutoff)

    result = FigureResult(
        figure_id="Figures 16-17",
        title=(
            f"Implementation vs simulation, Hawk/Sparrow, {n_monitors} nodes"
        ),
        headers=(
            "interarrival multiple",
            "system",
            "short p50",
            "short p90",
            "long p50",
            "long p90",
        ),
    )
    for multiple in multiples:
        trace = with_interarrival(
            scaled.trace, multiple * base_interarrival, seed=seed
        )
        runs: dict[str, RunResult] = {}
        sim_batch = []
        for scheduler in ("sparrow", "hawk"):
            proto = PrototypeCluster(
                PrototypeConfig(
                    scheduler=scheduler,
                    n_monitors=n_monitors,
                    cutoff=scaled.cutoff,
                    seed=seed,
                )
            )
            runs[f"proto-{scheduler}"] = proto.run(
                trace, long_job_ids=scaled.long_job_ids
            )
            spec = RunSpec(
                scheduler=scheduler,
                n_workers=n_monitors,
                cutoff=scaled.cutoff,
                short_partition_fraction=google_short_fraction(),
                seed=seed,
                estimate=classify_estimate,
                estimate_tag="carried-classes",
            )
            sim_batch.append((spec, trace))
        # classify_estimate is a closure, so the executor runs these
        # in-process; the batch still flows through the two-tier cache.
        for (spec, _), res in zip(
            sim_batch, get_executor().run_many(sim_batch)
        ):
            runs[f"sim-{spec.scheduler}"] = res
        for system in ("implementation", "simulation"):
            prefix = "proto" if system == "implementation" else "sim"
            hawk = runs[f"{prefix}-hawk"]
            sparrow = runs[f"{prefix}-sparrow"]
            result.add_row(
                multiple,
                system,
                _ratio(hawk, sparrow, JobClass.SHORT, 50),
                _ratio(hawk, sparrow, JobClass.SHORT, 90),
                _ratio(hawk, sparrow, JobClass.LONG, 50),
                _ratio(hawk, sparrow, JobClass.LONG, 90),
            )
    result.add_note(
        "implementation and simulation should agree in trend; exact values "
        "differ because the simulation has no scheduling/stealing overheads "
        "(Section 4.10)"
    )
    return result


# -- event-log replay path ---------------------------------------------------
#
# A second "implementation" exists since the scheduler service landed: the
# same Hawk/Sparrow comparison can be driven through live service bridges,
# every lifecycle transition persisted, and the figure rendered later from
# nothing but the event log.  ``make_events_fixture`` records such a log
# (opt-in: the recording embeds wall-clock timing) and ``run_from_events``
# folds a committed fixture back into the table deterministically.

#: Load points recorded into the committed fixture (kept to the sweep's
#: endpoints so the file stays small).
FIXTURE_MULTIPLES = (1.0, 2.25)


def default_events_path() -> Path:
    """The committed fixture next to the other benchmark results."""
    return (
        Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "results"
        / "fig16_17_events.ndjson.gz"
    )


def make_events_fixture(
    path: Path | None = None,
    n_jobs: int = 30,
    n_workers: int = 40,
    multiples=FIXTURE_MULTIPLES,
    target_mean_task_runtime: float = 0.05,
    time_scale: float = 4.0,
    seed: int = 3,
) -> Path:
    """Record the Hawk/Sparrow load sweep as a service event log.

    Streams the scaled Google sample through one live
    :class:`~repro.service.scheduler_bridge.SchedulerBridge` per
    (scheduler, load point) — pacing submissions so virtual arrival times
    reproduce the trace — and exports the store as portable NDJSON.  The
    client supplies the estimate that carries each job's original
    classification, exactly like the simulation rows of :func:`run`.
    """
    from repro.service.event_store import EventStore
    from repro.service.models import RunConfig, Submission
    from repro.service.replay import export_ndjson
    from repro.service.scheduler_bridge import SchedulerBridge

    path = path or default_events_path()
    base = WorkloadSpec("google", {"n_jobs": n_jobs}).trace(seed)
    scaled = scale_trace_for_prototype(
        base,
        cluster_size=n_workers,
        cutoff=GOOGLE_CUTOFF_S,
        target_mean_task_runtime=target_mean_task_runtime,
    )
    base_interarrival = scaled.trace.total_task_seconds / (
        len(scaled.trace) * n_workers
    )

    def carried_estimate(spec) -> float:
        if spec.job_id in scaled.long_job_ids:
            return max(spec.mean_task_duration, scaled.cutoff)
        return min(spec.mean_task_duration, 0.99 * scaled.cutoff)

    labels: dict[str, dict[str, object]] = {}
    with tempfile.TemporaryDirectory(prefix="fig16-17-events-") as tmp:
        with EventStore(os.path.join(tmp, "fixture.db")) as store:
            for index, multiple in enumerate(multiples):
                trace = with_interarrival(
                    scaled.trace, multiple * base_interarrival, seed=seed
                )
                arrivals = sorted(trace, key=lambda s: s.submit_time)
                for scheduler in ("sparrow", "hawk"):
                    config = RunConfig(
                        policy=scheduler,
                        n_workers=n_workers,
                        cutoff=scaled.cutoff,
                        short_partition_fraction=google_short_fraction(),
                        # the seed doubles as the load-point index so each
                        # (scheduler, multiple) pair is its own run id
                        seed=index,
                    )
                    bridge = SchedulerBridge(
                        config, store, time_scale=time_scale
                    ).start()
                    t0 = time.monotonic()
                    for spec in arrivals:
                        delay = spec.submit_time / time_scale - (
                            time.monotonic() - t0
                        )
                        if delay > 0:
                            time.sleep(delay)
                        bridge.submit(
                            Submission(
                                tasks=spec.task_durations,
                                tenant="fig16-17",
                                estimate=carried_estimate(spec),
                            )
                        )
                    if not bridge.drain(timeout=300.0):
                        raise TimeoutError(
                            f"{scheduler} run at multiple {multiple} did "
                            "not drain"
                        )
                    bridge.stop(timeout=300.0)
                    labels[config.run_id] = {
                        "scheduler": scheduler,
                        "multiple": multiple,
                    }
            export_ndjson(
                store,
                path,
                meta={
                    "figure": "16-17",
                    "n_jobs": n_jobs,
                    "n_workers": n_workers,
                    "time_scale": time_scale,
                    "target_mean_task_runtime": target_mean_task_runtime,
                    "seed": seed,
                },
                labels=labels,
            )
    return path


def run_from_events(path: Path | str | None = None) -> FigureResult:
    """Render the figure from a recorded event log — no scheduling at all.

    Every row is a cold fold of the fixture's persisted events; rerunning
    is deterministic because the wall-clock work happened once, at
    recording time.
    """
    from repro.service.replay import load_ndjson

    fixture = Path(path) if path is not None else default_events_path()
    log = load_ndjson(fixture)
    results = log.results()
    by_point: dict[float, dict[str, RunResult]] = {}
    for run_id, run_result in results.items():
        label = log.labels.get(run_id, {})
        point = by_point.setdefault(float(label["multiple"]), {})
        point[str(label["scheduler"])] = run_result
    n_workers = next(iter(log.configs.values())).n_workers
    result = FigureResult(
        figure_id="Figures 16-17 (event-log replay)",
        title=(
            f"Hawk/Sparrow served online, {n_workers} virtual nodes, "
            "folded from the recorded event log"
        ),
        headers=(
            "interarrival multiple",
            "system",
            "short p50",
            "short p90",
            "long p50",
            "long p90",
        ),
    )
    for multiple in sorted(by_point):
        pair = by_point[multiple]
        result.add_row(
            multiple,
            "service-replay",
            _ratio(pair["hawk"], pair["sparrow"], JobClass.SHORT, 50),
            _ratio(pair["hawk"], pair["sparrow"], JobClass.SHORT, 90),
            _ratio(pair["hawk"], pair["sparrow"], JobClass.LONG, 50),
            _ratio(pair["hawk"], pair["sparrow"], JobClass.LONG, 90),
        )
    result.add_note(
        f"folded from {fixture.name}: every row is a cold replay of the "
        "scheduler service's persisted lifecycle events"
    )
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fig16_17_prototype",
        description=(
            "Figures 16-17 from the service event log: render a committed "
            "fixture (--from-events) or record a fresh one (--make-events)."
        ),
    )
    parser.add_argument(
        "--from-events",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help=(
            "fold an NDJSON event log into the figure "
            "(default: the committed fixture)"
        ),
    )
    parser.add_argument(
        "--make-events",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="record the fixture by running the sweep through live bridges",
    )
    args = parser.parse_args(argv)
    if args.make_events is not None:
        target = Path(args.make_events) if args.make_events else None
        written = make_events_fixture(target)
        print(f"wrote {written}")
        return 0
    if args.from_events is not None:
        source = Path(args.from_events) if args.from_events else None
        print(run_from_events(source).render())
        return 0
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
