"""Process-wide run cache, backed by the sweep executor.

Several figures reuse identical runs (e.g. the Hawk sweep appears in
Figures 5, 8-9 and 10-11).  Runs are deterministic given (spec, trace),
so results are memoized — in-process for object identity within a
session, and on disk so repeated figure regenerations across pytest
sessions skip the simulation entirely (see
:mod:`repro.experiments.parallel` for the cache layout, keying and
invalidation rules).

Runs are keyed on a content hash of the spec and the *full* trace: job
ids, submit times and exact per-task durations.  Earlier revisions keyed
traces on (name, length, rounded totals), which silently shared a cached
``RunResult`` between same-shape traces that differed only in per-job
durations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.cluster.records import RunResult
from repro.experiments.config import RunSpec
from repro.experiments.parallel import get_executor
from repro.workloads.registry import WorkloadSpec
from repro.workloads.replication import TraceFactory
from repro.workloads.spec import Trace


def run_cached(spec: RunSpec, trace: Trace) -> RunResult:
    """Run one experiment through the executor's two-tier cache."""
    return get_executor().run_one(spec, trace)


def run_stream(
    pairs: Iterable[tuple[RunSpec, Trace]],
    on_result: Callable[[int, str, RunResult], None] | None = None,
) -> Iterator[tuple[int, str, RunResult]]:
    """Stream ``(index, key, result)`` triples as runs complete.

    The producer/consumer core of the default executor: pairs are pulled
    lazily (arbitrarily large generators stay bounded by the in-flight
    window) and results arrive in completion order — see
    :meth:`~repro.experiments.parallel.SweepExecutor.run_stream`.
    """
    return get_executor().run_stream(pairs, on_result=on_result)


def run_replicated(
    spec: RunSpec,
    trace: Trace | WorkloadSpec,
    n_seeds: int,
    trace_factory: TraceFactory | None = None,
) -> list[RunResult]:
    """``n_seeds`` matched replicas of one run, through the same cache.

    Replica ``r`` re-seeds the spec with ``spec.seed + r`` (and redraws
    the trace from that seed when a factory is given); each replica is
    cached under its own key.  A
    :class:`~repro.workloads.registry.WorkloadSpec` is accepted in place
    of the trace and serves as its own factory.
    ``run_replicated(spec, trace, 1)`` is exactly
    ``[run_cached(spec, trace)]``.
    """
    return get_executor().run_replicated(spec, trace, n_seeds, trace_factory)


def clear_cache() -> None:
    """Drop the in-process memo (the on-disk tier is left intact)."""
    get_executor().clear_memo()


def cache_size() -> int:
    return get_executor().memo_size()
