"""Process-wide run cache.

Several figures reuse identical runs (e.g. the Hawk sweep appears in
Figures 5, 8-9 and 10-11).  Runs are deterministic given (spec, trace),
so a process-wide memo avoids recomputing them when multiple benchmarks
execute in one pytest session.
"""

from __future__ import annotations

from repro.cluster.records import RunResult
from repro.experiments.config import RunSpec, execute
from repro.workloads.spec import Trace

_CACHE: dict[tuple, RunResult] = {}


def _trace_key(trace: Trace) -> tuple:
    # horizon + first submit distinguish re-drawn arrival processes on
    # otherwise identical job sets (e.g. the Figure 16-17 load sweep).
    return (
        trace.name,
        len(trace),
        round(trace.total_task_seconds, 6),
        round(trace.horizon, 9),
        round(trace[0].submit_time, 9),
    )


def run_cached(spec: RunSpec, trace: Trace) -> RunResult:
    """Run an experiment, memoizing on (spec, trace identity)."""
    key = (spec, _trace_key(trace))
    result = _CACHE.get(key)
    if result is None:
        result = execute(spec, trace)
        _CACHE[key] = result
    return result


def clear_cache() -> None:
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)
