"""Graceful degradation under injected failures (Hawk-specific payoff).

The fault plans of :mod:`repro.cluster.faults` make failure a swept
experimental axis: each level crashes a growing fraction of workers
mid-trace (they restart after a fixed downtime) and takes the
centralized scheduler offline for a window whose length grows with the
level.  Three policies run every level on the same trace:

* ``centralized`` routes *every* job through the central scheduler, so
  the outage stalls its whole admission pipeline — short-job latency
  collapses with the failure level;
* ``sparrow`` is fully distributed and only feels the crashes;
* ``hawk`` schedules short jobs with distributed probes (outage-immune)
  and degrades long jobs to Sparrow-style probing while the centralized
  scheduler is down, recovering when it returns.

The figure's claim — the reason Hawk's hybrid split exists — is that
Hawk's short-job p50 degrades strictly less than the centralized-only
baseline's as the failure level rises.
"""

from __future__ import annotations

from repro.cluster.faults import FaultPlan
from repro.cluster.job import JobClass
from repro.experiments.config import RunSpec, high_load_size
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.metrics.percentiles import percentile
from repro.metrics.stats import summarize
from repro.workloads.registry import WorkloadSpec, quick_spec
from repro.workloads.replication import replica_seeds

#: Policies compared at every failure level.
POLICIES = ("hawk", "sparrow", "centralized")

#: Fraction of workers crashed per failure level (0 = fault-free).
DEFAULT_CRASH_FRACTIONS = (0.0, 0.1, 0.2, 0.3)

#: Offered load for the fault sweep.  Deliberately below saturation:
#: with up to 30% of workers down before their restart, the surviving
#: capacity must still exceed the offered load or queues grow without
#: bound and every policy "collapses" for capacity reasons, not
#: scheduling ones.
FAULT_LOAD_TARGET = 0.65

#: Virtual seconds a crashed worker stays down before restarting.
RESTART_DELAY = 300.0

#: Centralized-scheduler outage length per unit of crash fraction, as a
#: fraction of the trace's submission horizon: at crash fraction 0.3 the
#: outage covers 0.3 * this fraction of the trace.
OUTAGE_HORIZON_FRACTION = 1.0


def plan_for(crash_fraction: float, horizon: float) -> FaultPlan | None:
    """The fault plan for one failure level of the sweep.

    Crashes are spread over the middle of the trace and the centralized
    outage opens early, so both failure families overlap the bulk of
    the submissions.  Level 0 returns ``None``: the fault-free run is
    byte-identical to one that predates fault injection.
    """
    if crash_fraction == 0.0:
        return None
    return FaultPlan.of(
        crash_fraction=crash_fraction,
        crash_start=0.10 * horizon,
        crash_window=0.60 * horizon,
        restart_delay=RESTART_DELAY,
        central_outage_start=0.15 * horizon,
        central_outage_duration=(
            crash_fraction * OUTAGE_HORIZON_FRACTION * horizon
        ),
    )


def run(
    scale: str = "full",
    seed: int = 0,
    crash_fractions=DEFAULT_CRASH_FRACTIONS,
    load_target: float = FAULT_LOAD_TARGET,
    n_seeds: int = 1,
) -> FigureResult:
    workload = (
        quick_spec("google") if scale == "quick" else WorkloadSpec("google")
    )
    seeds = replica_seeds(seed, n_seeds)
    traces = {s: workload.trace(s) for s in seeds}
    first = traces[seeds[0]]
    n = high_load_size(first, load_target)
    horizon = first.horizon

    pairs = []
    for fraction in crash_fractions:
        plan = plan_for(fraction, horizon)
        for policy in POLICIES:
            for s in seeds:
                spec = RunSpec(
                    scheduler=policy,
                    n_workers=n,
                    cutoff=workload.cutoff,
                    short_partition_fraction=(
                        workload.short_partition_fraction
                    ),
                    seed=s,
                    faults=plan,
                )
                pairs.append((spec, traces[s]))
    results = iter(get_executor().run_many(pairs))

    result = FigureResult(
        figure_id="Figure R (faults)",
        title=(
            "Job runtimes under injected failures "
            "(worker crashes + centralized outage)"
        ),
        headers=(
            "crash frac",
            "policy",
            "short p50 (s)",
            "short p90 (s)",
            "long p50 (s)",
            "retried tasks",
        ),
    )
    # Per (policy, level) mean short p50 across replicas, for the
    # degradation note and the acceptance assertion downstream.
    short_p50: dict[tuple[str, float], float] = {}
    for fraction in crash_fractions:
        for policy in POLICIES:
            replicas = [next(results) for _ in seeds]
            s50 = [percentile(r.runtimes(JobClass.SHORT), 50.0) for r in replicas]
            s90 = [percentile(r.runtimes(JobClass.SHORT), 90.0) for r in replicas]
            l50 = [percentile(r.runtimes(JobClass.LONG), 50.0) for r in replicas]
            retried = [
                float(sum(job.retried_tasks for job in r.jobs))
                for r in replicas
            ]
            short_p50[(policy, fraction)] = sum(s50) / len(s50)
            if n_seeds == 1:
                cells = (s50[0], s90[0], l50[0], retried[0])
            else:
                cells = tuple(summarize(v) for v in (s50, s90, l50, retried))
            result.add_row(fraction, policy, *cells)

    worst = max(crash_fractions)
    if worst > 0.0:
        degradations = {
            policy: short_p50[(policy, worst)] / short_p50[(policy, 0.0)]
            for policy in POLICIES
        }
        result.add_note(
            "short-job p50 degradation (worst level / fault-free): "
            + ", ".join(
                f"{policy} {degradations[policy]:.2f}x"
                for policy in POLICIES
            )
        )
    result.add_note(
        f"cluster sized for {load_target:.2f} offered load; crashed "
        f"workers restart after {RESTART_DELAY:.0f}s virtual"
    )
    result.add_note(
        "each level crashes the listed worker fraction mid-trace and "
        "takes the centralized scheduler down for a window proportional "
        "to it; hawk degrades long jobs to distributed probes during "
        "the outage, so its short-job path never touches the outage"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "cells are mean±95% CI half-width"
        )
    return result
