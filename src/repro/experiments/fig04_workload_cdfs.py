"""Figure 4: workload-property CDFs.

The paper plots, per workload and per class, the CDF of the average task
duration per job (4a long, 4b short) and of the number of tasks per job
(4c long, 4d short).  We report the CDFs as percentile tables, one row
per workload/class.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.traces import (
    ALL_WORKLOAD_SPECS,
    google_workload,
    kmeans_workload,
)
from repro.metrics.percentiles import percentile

_PERCENTILES = (10, 25, 50, 75, 90, 99)


def _traces(scale: str, seed: int):
    for workload in (google_workload(scale),) + tuple(
        kmeans_workload(spec, scale) for spec in ALL_WORKLOAD_SPECS
    ):
        yield workload.trace(seed), workload.cutoff


def run(scale: str = "full", seed: int = 0) -> FigureResult:
    result = FigureResult(
        figure_id="Figure 4",
        title="Workload CDF percentiles: task duration and tasks per job",
        headers=("workload", "class", "metric")
        + tuple(f"p{p}" for p in _PERCENTILES),
    )
    for trace, cutoff in _traces(scale, seed):
        for class_name, jobs in (
            ("long", trace.long_jobs(cutoff)),
            ("short", trace.short_jobs(cutoff)),
        ):
            if not jobs:
                continue
            durations = [j.mean_task_duration for j in jobs]
            tasks = [float(j.num_tasks) for j in jobs]
            result.add_row(
                trace.name,
                class_name,
                "task duration (s)",
                *(percentile(durations, p) for p in _PERCENTILES),
            )
            result.add_row(
                trace.name,
                class_name,
                "tasks per job",
                *(percentile(tasks, p) for p in _PERCENTILES),
            )
    result.add_note(
        "paper panels: 4a = long durations, 4b = short durations, "
        "4c = long task counts, 4d = short task counts"
    )
    return result
