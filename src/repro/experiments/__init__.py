"""Experiment drivers: one module per table/figure of the paper.

Every driver exposes a ``run(...)`` function returning a
:class:`repro.experiments.report.FigureResult` whose ``render()`` prints
the same rows/series the paper reports.  The benchmark harness under
``benchmarks/`` calls these drivers; they are also directly usable::

    from repro.experiments import fig05_google
    print(fig05_google.run().render())
"""

from repro.experiments.config import (
    GOOGLE_UTILIZATION_TARGETS,
    RunSpec,
    build_engine,
    execute,
    sweep_sizes,
)
from repro.experiments.parallel import (
    DiskCache,
    SweepExecutor,
    cache_key,
    get_executor,
    replica_pairs,
    set_executor,
)
from repro.experiments.report import FigureResult, ascii_cdf, ascii_table
from repro.experiments.result_index import ResultIndex
from repro.experiments.runner import (
    clear_cache,
    run_cached,
    run_replicated,
    run_stream,
)
from repro.experiments.sweeps import (
    ReplicatedPoint,
    SweepJob,
    SweepPoint,
    multi_sweep,
    sweep,
)
from repro.workloads.registry import WorkloadSpec

__all__ = [
    "DiskCache",
    "FigureResult",
    "GOOGLE_UTILIZATION_TARGETS",
    "ReplicatedPoint",
    "ResultIndex",
    "RunSpec",
    "SweepExecutor",
    "SweepJob",
    "SweepPoint",
    "WorkloadSpec",
    "ascii_cdf",
    "ascii_table",
    "build_engine",
    "cache_key",
    "clear_cache",
    "execute",
    "get_executor",
    "multi_sweep",
    "replica_pairs",
    "run_cached",
    "run_replicated",
    "run_stream",
    "set_executor",
    "sweep",
    "sweep_sizes",
]
