"""Tables 1 and 2: workload heterogeneity statistics."""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.traces import (
    ALL_WORKLOAD_SPECS,
    google_workload,
    kmeans_workload,
)
from repro.metrics.stats import summarize
from repro.workloads.analysis import workload_summary
from repro.workloads.replication import replica_seeds

#: Paper values for (long-job fraction, task-seconds share) per workload.
PAPER_TABLE1 = {
    "google-like": (0.1000, 0.8365),
    "cloudera-c": (0.0502, 0.9279),
    "facebook-2010": (0.0201, 0.9979),
    "yahoo-2011": (0.0941, 0.9831),
}

#: Paper values for Table 2: (long fraction, total jobs in original trace).
PAPER_TABLE2 = {
    "google-like": (0.1000, 506460),
    "cloudera-c": (0.0502, 21030),
    "facebook-2010": (0.0201, 1169184),
    "yahoo-2011": (0.0941, 24262),
}


def _summaries(scale: str, seed: int, n_seeds: int = 1):
    """Per workload: one :func:`workload_summary` per replica seed."""
    seeds = replica_seeds(seed, n_seeds)
    workloads = (google_workload(scale),) + tuple(
        kmeans_workload(spec, scale) for spec in ALL_WORKLOAD_SPECS
    )
    for workload in workloads:
        yield [
            workload_summary(workload.trace(s), workload.cutoff)
            for s in seeds
        ]


def _percent_cell(values: list[float], paper: float | None = None):
    """``100 * value``, or its replica statistics when replicated.

    With several trace draws and a ``paper`` reference value (a
    fraction), the cell's statistics carry the one-sample t p-value of
    our draws against the paper's number — rendered next to the CI band
    as ``mean±ci (p=...)``; a low p flags a calibration drift of the
    generator, not noise.
    """
    scaled = [100.0 * v for v in values]
    if len(scaled) == 1:
        return scaled[0]
    return summarize(
        scaled, null=None if paper is None else 100.0 * paper
    )


def run_table1(scale: str = "full", seed: int = 0, n_seeds: int = 1) -> FigureResult:
    """Table 1: long jobs are few but take most task-seconds."""
    result = FigureResult(
        figure_id="Table 1",
        title="Long jobs: fraction of jobs vs fraction of task-seconds",
        headers=(
            "workload",
            "% long (paper)",
            "% long (ours)",
            "% task-sec (paper)",
            "% task-sec (ours)",
        ),
    )
    for summaries in _summaries(scale, seed, n_seeds):
        paper_long, paper_ts = PAPER_TABLE1[summaries[0].name]
        result.add_row(
            summaries[0].name,
            100.0 * paper_long,
            _percent_cell([s.long_fraction for s in summaries], paper_long),
            100.0 * paper_ts,
            _percent_cell(
                [s.task_seconds_share for s in summaries], paper_ts
            ),
        )
    result.add_note(
        "generated workloads are synthetic stand-ins calibrated to the "
        "paper's statistics (see DESIGN.md)"
    )
    if n_seeds > 1:
        result.add_note(
            f"measured over {n_seeds} independent trace draws; "
            "cells are mean±95% CI half-width (p: t-test vs paper value)"
        )
    return result


def run_table2(scale: str = "full", seed: int = 0, n_seeds: int = 1) -> FigureResult:
    """Table 2: number of long jobs and total job counts."""
    result = FigureResult(
        figure_id="Table 2",
        title="Long-job fraction and trace sizes",
        headers=(
            "workload",
            "% long (paper)",
            "% long (ours)",
            "jobs (paper)",
            "jobs (ours)",
        ),
    )
    for summaries in _summaries(scale, seed, n_seeds):
        paper_long, paper_jobs = PAPER_TABLE2[summaries[0].name]
        result.add_row(
            summaries[0].name,
            100.0 * paper_long,
            _percent_cell([s.long_fraction for s in summaries], paper_long),
            paper_jobs,
            summaries[0].total_jobs,  # fixed by the generator's job count
        )
    result.add_note(
        "our traces are downscaled in job count; per-job statistics, not "
        "totals, drive the scheduling dynamics"
    )
    if n_seeds > 1:
        result.add_note(
            f"measured over {n_seeds} independent trace draws; "
            "% cells are mean±95% CI half-width (p: t-test vs paper value)"
        )
    return result
