"""Tables 1 and 2: workload heterogeneity statistics."""

from __future__ import annotations

from repro.experiments.report import FigureResult
from repro.experiments.traces import (
    ALL_WORKLOAD_SPECS,
    google_cutoff,
    google_trace,
    kmeans_workload_trace,
)
from repro.workloads.analysis import workload_summary

#: Paper values for (long-job fraction, task-seconds share) per workload.
PAPER_TABLE1 = {
    "google-like": (0.1000, 0.8365),
    "cloudera-c": (0.0502, 0.9279),
    "facebook-2010": (0.0201, 0.9979),
    "yahoo-2011": (0.0941, 0.9831),
}

#: Paper values for Table 2: (long fraction, total jobs in original trace).
PAPER_TABLE2 = {
    "google-like": (0.1000, 506460),
    "cloudera-c": (0.0502, 21030),
    "facebook-2010": (0.0201, 1169184),
    "yahoo-2011": (0.0941, 24262),
}


def _summaries(scale: str, seed: int):
    yield workload_summary(google_trace(scale, seed), google_cutoff())
    for spec in ALL_WORKLOAD_SPECS:
        yield workload_summary(
            kmeans_workload_trace(spec, scale, seed), spec.cutoff
        )


def run_table1(scale: str = "full", seed: int = 0) -> FigureResult:
    """Table 1: long jobs are few but take most task-seconds."""
    result = FigureResult(
        figure_id="Table 1",
        title="Long jobs: fraction of jobs vs fraction of task-seconds",
        headers=(
            "workload",
            "% long (paper)",
            "% long (ours)",
            "% task-sec (paper)",
            "% task-sec (ours)",
        ),
    )
    for summary in _summaries(scale, seed):
        paper_long, paper_ts = PAPER_TABLE1[summary.name]
        result.add_row(
            summary.name,
            100.0 * paper_long,
            100.0 * summary.long_fraction,
            100.0 * paper_ts,
            100.0 * summary.task_seconds_share,
        )
    result.add_note(
        "generated workloads are synthetic stand-ins calibrated to the "
        "paper's statistics (see DESIGN.md)"
    )
    return result


def run_table2(scale: str = "full", seed: int = 0) -> FigureResult:
    """Table 2: number of long jobs and total job counts."""
    result = FigureResult(
        figure_id="Table 2",
        title="Long-job fraction and trace sizes",
        headers=(
            "workload",
            "% long (paper)",
            "% long (ours)",
            "jobs (paper)",
            "jobs (ours)",
        ),
    )
    for summary in _summaries(scale, seed):
        paper_long, paper_jobs = PAPER_TABLE2[summary.name]
        result.add_row(
            summary.name,
            100.0 * paper_long,
            100.0 * summary.long_fraction,
            paper_jobs,
            summary.total_jobs,
        )
    result.add_note(
        "our traces are downscaled in job count; per-job statistics, not "
        "totals, drive the scheduling dynamics"
    )
    return result
