"""Streaming sweep execution with a two-tier persistent run cache.

Every figure reduces to independent ``(RunSpec, trace)`` runs.
:class:`SweepExecutor` consumes them as a *stream*: :meth:`run_stream`
pulls pairs lazily from a generator, keeps a bounded in-flight window
over a ``multiprocessing`` worker pool (backpressure — arbitrarily large
grids never materialize), drains completions out of order as they land,
and retires each result into the cache immediately.  ``run_many`` /
``run_one`` / ``run_replicated`` are thin wrappers that collect the
stream back into submission order, so batch callers see exactly the
pre-streaming behaviour.

Two cache tiers sit in front of execution:

* an in-process memo (``dict``) giving object identity within a session —
  the contract ``run_cached(spec, t) is run_cached(spec, t)`` that the
  figure drivers and tests rely on;
* an on-disk cache of pickled :class:`RunResult` values under
  ``benchmarks/.runcache/v<N>/<key>.pkl``, shared across processes and
  pytest sessions.  A SQLite sidecar (``index.db``, see
  :mod:`repro.experiments.result_index`) indexes the blobs — size, LRU
  recency, provenance — so lookup bookkeeping, the size cap and LRU
  eviction run off one query instead of a directory walk; it rebuilds
  itself from the blobs whenever it disagrees with the filesystem.

The cache key is a content hash of the spec (every compared field,
including ``estimate_tag``) and the *full* trace — job ids, submit times
and exact per-task durations via :meth:`Trace.content_digest` — so two
traces that merely share a name, length and rounded totals can never
collide.  ``CACHE_VERSION`` is baked into both the key and the directory
name: bump it whenever engine semantics change (event ordering, RNG
streams, record fields) and every stale entry is invalidated at once.
Streaming did NOT bump it: keys and results are untouched, only the
order in which completions are observed changed.

Trace transport: a sweep submits many specs over few distinct traces, so
pickling the full trace into every pool submission is the dominant IPC
cost for large traces.  Each distinct trace (keyed on its content
digest) is instead serialized once into a ``multiprocessing.shared_memory``
segment owned by the executor; submissions carry only ``(digest, segment
name, length)`` and pool workers attach, deserialize once, and keep a
small digest-keyed cache.  Segments are unlinked when the executor
closes (and at interpreter exit as a fallback).  If shared memory is
unavailable the executor transparently falls back to inline pickling.

Knobs (also see ``src/repro/experiments/README.md``):

* ``REPRO_EXECUTOR_WORKERS`` — worker-pool size; unset defaults to
  ``os.cpu_count()``; ``0``/``1`` force the deterministic serial path.
* ``REPRO_EXECUTOR_INFLIGHT`` — in-flight window of the streaming core
  (submitted-but-unfinished runs); unset defaults to 2× the pool size.
  Smaller values bound memory on huge generators, larger ones smooth
  over uneven run times.
* ``REPRO_RUNCACHE`` — set to ``0`` to disable the on-disk tier.
* ``REPRO_RUNCACHE_DIR`` — override the on-disk cache location.
* ``REPRO_RUNCACHE_MAX_MB`` — cap the on-disk tier's total size;
  least-recently-used entries (by mtime, refreshed on every cache hit)
  are evicted after each store until the cache fits.  Unset means
  unbounded.
* ``REPRO_TRACE_SHM`` — set to ``0`` to disable the shared-memory trace
  transport (traces are then pickled into every pool submission).
* ``REPRO_SWEEP_PROGRESS`` — set to ``1`` for per-completion progress
  lines on stderr (``point k/N done, in-flight j, memo/disk/exec``).

Runs are deterministic given (spec, trace): per-run RNG streams are
seeded from the spec, so the parallel path returns bit-identical results
to the serial one; serial execution additionally preserves today's
submission ordering exactly.  Specs whose ``estimate`` callable cannot be
pickled (e.g. closures) transparently fall back to in-process execution.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
import sys
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import fields
from hashlib import blake2b
from multiprocessing import shared_memory
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.cluster.records import RunResult
from repro.core.errors import ConfigurationError
from repro.experiments.config import RunSpec, execute
from repro.experiments.result_index import ResultIndex
from repro.workloads.registry import WorkloadSpec
from repro.workloads.replication import TraceFactory
from repro.workloads.spec import Trace

#: Bump to invalidate every persisted run at once (see module docstring).
#: v2: RunSpec v2 — policy params moved into the registry-validated
#: ``params`` mapping (canonically ordered in the key) and estimators
#: gained the seed-derived noise hook.
#: v3: work-stealing backoff resets on park, changing retry timing (and
#: so RNG consumption order) in every stealing run.
CACHE_VERSION = 3

WORKERS_ENV = "REPRO_EXECUTOR_WORKERS"
INFLIGHT_ENV = "REPRO_EXECUTOR_INFLIGHT"
DISK_CACHE_ENV = "REPRO_RUNCACHE"
DISK_CACHE_DIR_ENV = "REPRO_RUNCACHE_DIR"
DISK_CACHE_MAX_MB_ENV = "REPRO_RUNCACHE_MAX_MB"
TRACE_SHM_ENV = "REPRO_TRACE_SHM"
PROGRESS_ENV = "REPRO_SWEEP_PROGRESS"

def _default_cache_dir() -> Path:
    """``benchmarks/.runcache`` at the repo root for a src/ checkout.

    When the package is installed elsewhere (site-packages), the
    repo-root heuristic would point outside any repo, so fall back to a
    per-user cache directory instead of creating stray directories.
    """
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / ".runcache"
    return Path.home() / ".cache" / "repro-runcache"


#: Default on-disk location (see :func:`_default_cache_dir`).
DEFAULT_CACHE_DIR = _default_cache_dir()


def spec_digest(spec: RunSpec) -> str:
    """Canonical string of every compared RunSpec field.

    ``estimate`` is excluded (callables have no stable content); as in
    spec equality, ``estimate_tag`` is its cache-visible stand-in, so
    specs carrying different estimators must carry different tags.
    ``params`` is a :class:`~repro.schedulers.registry.FrozenParams`
    whose repr is canonically ordered with defaults filled, so the
    digest is independent of params-dict insertion order and of
    omitted-vs-explicit defaults.  ``faults`` joins the digest only when
    a plan is present (RunSpec normalizes empty plans to ``None``), so
    every fault-free key is byte-identical to its pre-fault form — no
    ``CACHE_VERSION`` bump, no invalidated entries.
    """
    parts = [
        f"{f.name}={getattr(spec, f.name)!r}"
        for f in fields(spec)
        if f.compare and not (f.name == "faults" and spec.faults is None)
    ]
    return ";".join(parts)


def cache_key(spec: RunSpec, trace: Trace) -> str:
    """Content hash identifying one run for both cache tiers."""
    h = blake2b(digest_size=20)
    h.update(f"v{CACHE_VERSION}|".encode())
    h.update(spec_digest(spec).encode())
    h.update(b"|")
    h.update(trace.content_digest().encode())
    return h.hexdigest()


def _provenance(spec: RunSpec, trace: Trace) -> dict:
    """Result-index metadata recorded alongside a stored blob."""
    return {
        "policy": spec.scheduler,
        "seed": spec.seed,
        "spec_digest": spec_digest(spec),
        "trace_digest": trace.content_digest(),
    }


class DiskCache:
    """Pickled RunResults under ``<root>/v<CACHE_VERSION>/<key>.pkl``.

    With ``max_bytes`` set, the cache is bounded: after every store, the
    least-recently-used entries — oldest mtime first, across *all*
    version directories under the root, so stale-version entries go
    first — are deleted until the total size fits.  A hit refreshes the
    entry's mtime, making the policy LRU rather than FIFO.  The entry
    just written is never evicted, so a single result larger than the
    cap still caches (the cap then holds only approximately).

    Size accounting and eviction ordering come from the persistent
    :class:`~repro.experiments.result_index.ResultIndex` sidecar
    (``<root>/index.db``).  The first cap/size query of an instance
    reconciles the index against the blobs actually on disk (adopting
    pre-index caches and entries touched behind our back), after which
    queries are index-only; if SQLite is unavailable the cache falls
    back to the directory scan it used before the index existed.
    """

    def __init__(
        self,
        root: Path | str = DEFAULT_CACHE_DIR,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(
                f"cache max_bytes must be positive, got {max_bytes}"
            )
        self.base_root = Path(root)
        self.root = self.base_root / f"v{CACHE_VERSION}"
        self.max_bytes = max_bytes
        self.index = ResultIndex(self.base_root)
        self._synced = False
        #: Entries deleted by cap enforcement (observability counter).
        self.evictions = 0
        # Running size estimate so stores far below the cap skip the
        # full reconciliation: seeded by one query on first need,
        # advanced by this writer's stores, re-synced by every
        # enforcement pass.  Other writers' concurrent stores are only
        # picked up at the next pass, so the cap is exact per-writer and
        # approximate across writers — over-use is bounded and corrected
        # as soon as any writer crosses its own estimate.
        self._approx_total: int | None = None

    def path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def _rel(self, path: Path) -> str:
        return str(path.relative_to(self.base_root))

    def load(self, key: str) -> RunResult | None:
        path = self.path(key)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            self.index.remove([self._rel(path)])  # drop any stale row
            return None
        except Exception:
            # Truncated or otherwise unreadable entries are plain
            # misses; the run is recomputed and the entry rewritten.
            return None
        if not isinstance(result, RunResult):
            return None
        try:
            os.utime(path)  # refresh LRU recency
            self.index.touch(self._rel(path), path.stat().st_mtime)
        except OSError:
            pass
        return result

    def store(self, key: str, result: RunResult, meta: dict | None = None) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.path(key)
        # Write-then-rename keeps concurrent readers/writers safe: a
        # reader never observes a partially written pickle.
        tmp = final.with_name(f"{final.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, final)
        except OSError:
            tmp.unlink(missing_ok=True)
            return
        try:
            stat = final.stat()
        except OSError:
            return
        self.index.record(self._rel(final), stat.st_size, stat.st_mtime, meta)
        if self.max_bytes is None:
            return
        if self._approx_total is None:
            self._approx_total = self.total_bytes()  # includes this entry
        else:
            self._approx_total += stat.st_size
        if self._approx_total > self.max_bytes:
            self.enforce_cap(keep=final)

    def _scan(self) -> list[tuple[float, Path, int]]:
        """(mtime, path, size) of every blob; racing deletions skipped."""
        entries = []
        if not self.base_root.is_dir():
            return entries
        for path in self.base_root.glob("**/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
        return entries

    def _ensure_synced(self) -> None:
        """Reconcile the index with the filesystem, once per instance.

        This is the rebuild-from-blobs migration (pre-index caches index
        themselves on first use) and the self-healing path for blobs
        created, deleted or ``utime``-d behind our back.
        """
        if self._synced:
            return
        self._synced = True
        self.index.reconcile(
            [(mtime, self._rel(path), size) for mtime, path, size in self._scan()]
        )

    def rebuild_index(self) -> int:
        """Force a rebuild of ``index.db`` from the blobs on disk.

        Returns the number of blobs indexed.  Provenance columns of
        adopted rows stay ``NULL`` — a blob's key is a one-way hash, so
        only fresh stores know what produced them.
        """
        blobs = [(mtime, self._rel(path), size) for mtime, path, size in self._scan()]
        self.index.reconcile(blobs)
        self._synced = True
        return len(blobs)

    def _indexed_entries(self) -> list[tuple[float, Path, str, int]]:
        """(mtime, path, rel, size) of every entry, via index or scan."""
        self._ensure_synced()
        rows = self.index.lru_entries()
        if rows is not None:
            return [
                (mtime, self.base_root / rel, rel, size)
                for mtime, rel, size in rows
            ]
        return [
            (mtime, path, self._rel(path), size)
            for mtime, path, size in self._scan()
        ]

    def total_bytes(self) -> int:
        """Current size of every entry under the cache root (all versions)."""
        self._ensure_synced()
        total = self.index.total_bytes()
        if total is None:
            return sum(size for _, _, size in self._scan())
        return total

    def enforce_cap(self, keep: Path | None = None) -> int:
        """Evict LRU entries until the cache fits ``max_bytes``.

        Returns the number of entries deleted.  ``keep`` (the entry just
        written) is exempt.  Concurrent enforcement is safe: deleting an
        already-deleted entry is a no-op, and over-deletion only costs a
        future recompute, never correctness.
        """
        if self.max_bytes is None:
            return 0
        entries = self._indexed_entries()
        total = sum(size for _, _, _, size in entries)
        removed = 0
        dropped_rows: list[str] = []
        for _, path, rel, size in sorted(entries, key=lambda e: (e[0], e[2])):
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except FileNotFoundError:
                dropped_rows.append(rel)  # stale row: blob already gone
                total -= size
                continue
            except OSError:
                continue
            dropped_rows.append(rel)
            total -= size
            removed += 1
        self.index.remove(dropped_rows)
        self._approx_total = total
        self.evictions += removed
        return removed

    def clear(self) -> int:
        """Delete this version's entries; returns the number removed."""
        removed = 0
        dropped_rows: list[str] = []
        if self.root.is_dir():
            for entry in self.root.glob("*.pkl"):
                entry.unlink(missing_ok=True)
                dropped_rows.append(self._rel(entry))
                removed += 1
        self.index.remove(dropped_rows)
        self._approx_total = None
        return removed


def _pool_size_from_env() -> int:
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or raw.strip() == "":
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None
    return max(1, value)


def _inflight_from_env(max_workers: int) -> int:
    """Streaming window: ``REPRO_EXECUTOR_INFLIGHT`` or 2× the pool."""
    raw = os.environ.get(INFLIGHT_ENV)
    if raw is None or raw.strip() == "":
        return max(2, 2 * max_workers)
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{INFLIGHT_ENV} must be an integer, got {raw!r}"
        ) from None
    return max(1, value)


def _max_bytes_from_env() -> int | None:
    raw = os.environ.get(DISK_CACHE_MAX_MB_ENV)
    if raw is None or raw.strip() == "":
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{DISK_CACHE_MAX_MB_ENV} must be a number (MB), got {raw!r}"
        ) from None
    if not math.isfinite(megabytes) or megabytes <= 0:
        raise ConfigurationError(
            f"{DISK_CACHE_MAX_MB_ENV} must be a positive finite number, "
            f"got {raw!r}"
        )
    return int(megabytes * 1024 * 1024)


def _disk_cache_from_env() -> DiskCache | None:
    if os.environ.get(DISK_CACHE_ENV, "1").strip() in ("0", "off", "no"):
        return None
    return DiskCache(
        os.environ.get(DISK_CACHE_DIR_ENV, DEFAULT_CACHE_DIR),
        max_bytes=_max_bytes_from_env(),
    )


def _progress_enabled() -> bool:
    return os.environ.get(PROGRESS_ENV, "").strip() in ("1", "on", "yes")


def replica_pairs(
    spec: RunSpec,
    trace: Trace | WorkloadSpec,
    n_seeds: int,
    trace_factory: TraceFactory | None = None,
) -> list[tuple[RunSpec, Trace]]:
    """Expand one (spec, trace) point into ``n_seeds`` replica pairs.

    Replica ``r`` runs ``spec`` with seed ``spec.seed + r`` (the
    :meth:`RunSpec.replicas` family).  With a ``trace_factory``, each
    replica additionally gets an independent trace draw from the replica
    seed; replica 0 always uses the given ``trace`` verbatim, so the
    ``n_seeds=1`` expansion is exactly the historical single run — same
    spec, same trace object, same cache key.

    A :class:`~repro.workloads.registry.WorkloadSpec` is accepted in
    place of the trace: it materializes at the spec's base seed and
    serves as its own per-replica factory (a ``WorkloadSpec`` *is* a
    ``TraceFactory``).
    """
    if isinstance(trace, WorkloadSpec):
        trace_factory = trace_factory or trace
        trace = trace.trace(spec.seed)
    specs = spec.replicas(n_seeds)
    pairs: list[tuple[RunSpec, Trace]] = [(specs[0], trace)]
    for replica in specs[1:]:
        replica_trace = (
            trace if trace_factory is None else trace_factory(replica.seed)
        )
        pairs.append((replica, replica_trace))
    return pairs


def _execute_keyed(run_fn, key: str, spec: RunSpec, trace: Trace):
    """Pool-side worker: run one experiment, echoing its cache key."""
    return key, run_fn(spec, trace)


# -- shared-memory trace transport --------------------------------------
class TraceTransport:
    """Publishes each distinct trace once for all pool submissions.

    The parent owns the segments: one per distinct
    :meth:`Trace.content_digest`, holding the pickled trace.  Pool
    submissions then reference ``(digest, segment name, payload length)``
    instead of carrying the trace, so a sweep of hundreds of specs over
    one trace serializes it exactly once.  Segments are unlinked by
    :meth:`close` (idempotent; also registered via ``atexit`` so an
    executor that is never closed cannot leak past interpreter exit).
    """

    def __init__(self) -> None:
        self._segments: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
        self._disabled = False  # set on first shm failure; see publish()
        atexit.register(self.close)

    def __len__(self) -> int:
        return len(self._segments)

    def publish(self, trace: Trace) -> tuple[str, str, int] | None:
        """(digest, segment name, length) for a trace, creating on first use.

        Returns ``None`` when shared memory is unavailable — callers fall
        back to pickling the trace into the submission.  The first
        failure disables the transport for this instance, so later
        submissions skip straight to the fallback instead of paying a
        doomed serialization + syscall each.
        """
        if self._disabled:
            return None
        digest = trace.content_digest()
        segment = self._segments.get(digest)
        if segment is None:
            payload = pickle.dumps(trace, protocol=pickle.HIGHEST_PROTOCOL)
            try:
                shm = shared_memory.SharedMemory(create=True, size=len(payload))
            except (OSError, ValueError):
                self._disabled = True
                return None
            shm.buf[: len(payload)] = payload
            segment = (shm, len(payload))
            self._segments[digest] = segment
        return digest, segment[0].name, segment[1]

    def close(self) -> None:
        """Unlink every published segment (safe to call repeatedly)."""
        for shm, _ in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass
        self._segments.clear()
        atexit.unregister(self.close)


#: Pool-worker-side cache of deserialized traces, keyed by content digest.
#: Small and FIFO-bounded: a sweep touches few distinct traces, and a
#: stale entry merely costs one re-read from shared memory.
_WORKER_TRACE_CACHE_MAX = 8
_worker_trace_cache: "OrderedDict[str, Trace]" = OrderedDict()


def _trace_from_shm(digest: str, shm_name: str, length: int) -> Trace:
    trace = _worker_trace_cache.get(digest)
    if trace is None:
        shm = shared_memory.SharedMemory(name=shm_name)
        try:
            trace = pickle.loads(bytes(shm.buf[:length]))
        finally:
            shm.close()
        _worker_trace_cache[digest] = trace
        while len(_worker_trace_cache) > _WORKER_TRACE_CACHE_MAX:
            _worker_trace_cache.popitem(last=False)
    return trace


def _execute_keyed_shm(
    run_fn, key: str, spec: RunSpec, digest: str, shm_name: str, length: int
):
    """Pool-side worker: like :func:`_execute_keyed`, trace via shm."""
    return key, run_fn(spec, _trace_from_shm(digest, shm_name, length))


def _trace_shm_enabled_from_env() -> bool:
    return os.environ.get(TRACE_SHM_ENV, "1").strip() not in ("0", "off", "no")


def _transportable(spec: RunSpec) -> bool:
    """Can this spec cross a process boundary?

    Only the ``estimate`` callable can be unpicklable (lambdas/closures,
    e.g. the Figure 16-17 classification carrier); everything else in a
    (spec, trace) pair is plain data.
    """
    if spec.estimate is None:
        return True
    try:
        pickle.dumps(spec.estimate)
    except Exception:
        return False
    return True


class SweepExecutor:
    """Streaming runner for independent (RunSpec, trace) experiments.

    Parameters
    ----------
    max_workers:
        Worker-pool size.  ``None`` reads ``REPRO_EXECUTOR_WORKERS`` and
        falls back to ``os.cpu_count()``.  ``<= 1`` selects the serial
        path, which executes cache misses in submission order in this
        process — bit-identical to the historical one-by-one loop.
    disk_cache:
        A :class:`DiskCache`, ``None`` to disable the persistent tier, or
        the string ``"env"`` (default) to honor the ``REPRO_RUNCACHE*``
        environment variables.
    trace_shm:
        Ship traces to pool workers through the shared-memory transport
        (one segment per distinct trace) instead of pickling the trace
        into every submission.  ``None`` (default) honors
        ``REPRO_TRACE_SHM``.
    inflight:
        In-flight window of :meth:`run_stream` — the maximum number of
        cache misses submitted-but-unfinished at once.  ``None``
        (default) honors ``REPRO_EXECUTOR_INFLIGHT``, falling back to 2×
        the pool size.
    run_fn:
        The function executed per (spec, trace) pair; defaults to
        :func:`repro.experiments.config.execute`.  Must be a picklable
        module-level callable to cross the pool boundary (the benchmark
        and crash tests inject synthetic runs here).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        disk_cache: DiskCache | None | str = "env",
        trace_shm: bool | None = None,
        inflight: int | None = None,
        run_fn: Callable[[RunSpec, Trace], RunResult] = execute,
    ) -> None:
        self.max_workers = (
            _pool_size_from_env() if max_workers is None else max(1, max_workers)
        )
        self.disk_cache = (
            _disk_cache_from_env() if disk_cache == "env" else disk_cache
        )
        self.trace_shm = (
            _trace_shm_enabled_from_env() if trace_shm is None else trace_shm
        )
        self.inflight = (
            _inflight_from_env(self.max_workers)
            if inflight is None
            else max(1, inflight)
        )
        self.run_fn = run_fn
        self._memo: dict[str, RunResult] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._transport: TraceTransport | None = None
        # Observability counters (read by tests and the benchmark).
        self.memo_hits = 0
        self.disk_hits = 0
        self.executions = 0
        self.pool_rebuilds = 0
        self.max_inflight = 0

    # -- cache management ----------------------------------------------
    def memo_size(self) -> int:
        return len(self._memo)

    def clear_memo(self) -> None:
        self._memo.clear()

    def close(self) -> None:
        """Shut down the pool and release shm segments (caches stay intact).

        Queued-but-unstarted futures are cancelled and running ones are
        drained (``wait=True``) *before* the shm segments are unlinked,
        so a live pool worker can never observe its trace segment
        disappearing mid-read.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def summary(self) -> dict:
        """Cache-hit / execution counters for logs, tests and the bench."""
        return {
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "executions": self.executions,
            "pool_rebuilds": self.pool_rebuilds,
            "max_inflight": self.max_inflight,
        }

    def _record(
        self, key: str, result: RunResult, persist: bool, meta: dict | None = None
    ) -> None:
        self._memo[key] = result
        if persist and self.disk_cache is not None:
            self.disk_cache.store(key, result, meta)

    # -- execution ------------------------------------------------------
    def run_one(self, spec: RunSpec, trace: Trace) -> RunResult:
        return self.run_many([(spec, trace)])[0]

    def run_replicated(
        self,
        spec: RunSpec,
        trace: Trace | WorkloadSpec,
        n_seeds: int,
        trace_factory: TraceFactory | None = None,
    ) -> list[RunResult]:
        """``n_seeds`` independent replicas of one (spec, trace) point.

        Replica ``r`` uses seed ``spec.seed + r`` and, when a
        ``trace_factory`` is given, an independent trace drawn from that
        seed (see :func:`replica_pairs`; a ``WorkloadSpec`` in place of
        the trace is its own factory).  Each replica has its own cache
        key — the seed is a compared spec field and replica traces have
        distinct content digests — so replicas hit the two-tier cache
        independently and flow through the pool as one stream.
        ``run_replicated(spec, trace, 1)`` is exactly
        ``[run_one(spec, trace)]``.
        """
        return self.run_many(replica_pairs(spec, trace, n_seeds, trace_factory))

    def run_many(
        self, pairs: Sequence[tuple[RunSpec, Trace]]
    ) -> list[RunResult]:
        """Run a batch, returning results in submission order.

        A thin ordered-collection wrapper over :meth:`run_stream`:
        completions may land in any order, but results are slotted back
        by submission index, so callers are byte-identical to the
        pre-streaming batch path.  Duplicate submissions (same cache
        key) execute once; results for a given key are identical objects
        within a session.
        """
        pairs = list(pairs)
        results: list[RunResult | None] = [None] * len(pairs)
        for index, _key, result in self.run_stream(pairs, total=len(pairs)):
            results[index] = result
        return results  # type: ignore[return-value]

    def run_stream(
        self,
        pairs: Iterable[tuple[RunSpec, Trace]],
        on_result: Callable[[int, str, RunResult], None] | None = None,
        total: int | None = None,
    ) -> Iterator[tuple[int, str, RunResult]]:
        """Producer/consumer core: stream results as they complete.

        Pulls ``(spec, trace)`` pairs lazily from ``pairs`` (any
        iterable, including an unbounded generator), keeps at most
        :attr:`inflight` cache misses submitted-but-unfinished — the
        backpressure that stops huge generators from materializing — and
        yields ``(submission_index, cache_key, result)`` in *completion*
        order.  ``on_result`` (if given) is invoked with the same triple
        just before each yield.  Every result is retired into the
        two-tier cache before it is emitted.

        Cache semantics match the batch path exactly: duplicate keys
        execute once (later duplicates wait on the first occurrence and
        emit with it, or hit the memo if it already finished), specs
        that cannot cross the pool run in-process, a lone miss is
        executed in-process rather than paying pool startup, and the
        serial path (``max_workers <= 1``) executes misses in submission
        order in this process.

        A :class:`~concurrent.futures.BrokenExecutor` from a crashed
        pool worker does not lose the stream: the pool is torn down
        (rebuilt lazily on the next miss), and every affected key is
        re-run serially in-process in submission order.
        """
        if total is None and hasattr(pairs, "__len__"):
            total = len(pairs)  # type: ignore[arg-type]
        it = iter(pairs)
        progress = _progress_enabled()
        window = self.inflight
        # Streaming state: `waiters` maps every in-flight or deferred
        # key to the submission indices awaiting it; `pending` keeps the
        # (spec, trace) pair for each such key so crashed keys can be
        # re-run; `running` maps live pool futures back to their key;
        # `deferred` holds back the first transportable miss so a stream
        # with a single miss never pays pool startup.
        waiters: dict[str, list[int]] = {}
        pending: dict[str, tuple[RunSpec, Trace]] = {}
        running: dict = {}
        deferred: str | None = None
        next_index = 0
        done_points = 0
        exhausted = False

        def finish(key: str, result: RunResult):
            """Emissions for every index waiting on a completed key."""
            nonlocal done_points
            emissions = []
            for index in waiters.pop(key, []):
                done_points += 1
                if on_result is not None:
                    on_result(index, key, result)
                emissions.append((index, key, result))
            if progress:
                live = len(running) + (1 if deferred is not None else 0)
                self._progress(done_points, total, live)
            return emissions

        def emit_now(index: int, key: str, result: RunResult):
            """Emission for a pair satisfied at pull time (cache hit)."""
            waiters[key] = [index]
            return finish(key, result)

        def run_local(key: str):
            """Execute one pending key in-process and emit its waiters."""
            spec, trace = pending.pop(key)
            self.executions += 1
            result = self.run_fn(spec, trace)
            self._record(key, result, persist=True, meta=_provenance(spec, trace))
            return finish(key, result)

        while True:
            # Fill: pull from the input while the window has room.
            while not exhausted:
                live = len(running) + (1 if deferred is not None else 0)
                self.max_inflight = max(self.max_inflight, live)
                if live >= window:
                    break
                try:
                    spec, trace = next(it)
                except StopIteration:
                    exhausted = True
                    break
                index = next_index
                next_index += 1
                key = cache_key(spec, trace)
                if key in waiters:  # duplicate of an in-flight key
                    waiters[key].append(index)
                    continue
                result = self._memo.get(key)
                if result is not None:
                    self.memo_hits += 1
                    yield from emit_now(index, key, result)
                    continue
                if self.disk_cache is not None:
                    result = self.disk_cache.load(key)
                    if result is not None:
                        self.disk_hits += 1
                        self._memo[key] = result
                        yield from emit_now(index, key, result)
                        continue
                waiters[key] = [index]
                pending[key] = (spec, trace)
                if self.max_workers <= 1 or not _transportable(spec):
                    yield from run_local(key)
                    continue
                if deferred is None and not running and self._pool is None:
                    deferred = key  # a stream of one miss stays in-process
                    continue
                if deferred is not None:
                    head, deferred = deferred, None
                    hspec, htrace = pending[head]
                    running[self._submit(head, hspec, htrace)] = head
                running[self._submit(key, spec, trace)] = key
                live = len(running)
                self.max_inflight = max(self.max_inflight, live)

            # Drain: consume at least one completion, or flush leftovers.
            if running:
                done, _ = wait(set(running), return_when=FIRST_COMPLETED)
                crashed: list[str] = []
                for future in done:
                    key = running.pop(future)
                    try:
                        _, result = future.result()
                    except BrokenExecutor:
                        crashed.append(key)
                        continue
                    spec, trace = pending.pop(key)
                    self.executions += 1
                    self._record(
                        key, result, persist=True, meta=_provenance(spec, trace)
                    )
                    yield from finish(key, result)
                if crashed:
                    # The pool is gone and took every queued future with
                    # it.  Tear it down (the next miss rebuilds it) and
                    # re-run the affected keys serially, in submission
                    # order, in this process.
                    crashed_keys = set(crashed) | set(running.values())
                    running.clear()
                    if self._pool is not None:
                        self._pool.shutdown(wait=False, cancel_futures=True)
                        self._pool = None
                    self.pool_rebuilds += 1
                    for key in [k for k in pending if k in crashed_keys]:
                        yield from run_local(key)
            elif deferred is not None:
                # Input exhausted (or window=1) with one lone miss held
                # back: a batch of one always ran in-process.
                head, deferred = deferred, None
                yield from run_local(head)
            elif exhausted:
                return

    def _progress(self, done: int, total: int | None, live: int) -> None:
        from repro.experiments.report import progress_line

        print(
            progress_line(
                done,
                total,
                live,
                memo_hits=self.memo_hits,
                disk_hits=self.disk_hits,
                executions=self.executions,
            ),
            file=sys.stderr,
        )

    def _submit(self, key: str, spec: RunSpec, trace: Trace):
        """Submit one run, shipping the trace by reference when possible."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        if self.trace_shm:
            if self._transport is None:
                self._transport = TraceTransport()
            published = self._transport.publish(trace)
            if published is not None:
                digest, name, length = published
                return self._pool.submit(
                    _execute_keyed_shm, self.run_fn, key, spec, digest, name, length
                )
        return self._pool.submit(_execute_keyed, self.run_fn, key, spec, trace)


# -- module-level default executor -------------------------------------
_default_executor: SweepExecutor | None = None


def get_executor() -> SweepExecutor:
    """The process-wide executor used by ``run_cached`` and ``sweep``."""
    global _default_executor
    if _default_executor is None:
        _default_executor = SweepExecutor()
    return _default_executor


def set_executor(executor: SweepExecutor | None) -> SweepExecutor | None:
    """Swap the default executor; returns the previous one.

    Pass ``None`` to force re-creation from the environment on next use
    (tests use this to inject isolated cache directories).
    """
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous
