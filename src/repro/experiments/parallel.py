"""Parallel sweep execution with a two-tier persistent run cache.

Every figure reduces to a batch of independent ``(RunSpec, trace)`` runs.
:class:`SweepExecutor` materializes such batches, deduplicates them by a
content-addressed cache key, satisfies what it can from its caches and
fans the remaining runs out over a ``multiprocessing`` worker pool.

Two cache tiers sit in front of execution:

* an in-process memo (``dict``) giving object identity within a session —
  the contract ``run_cached(spec, t) is run_cached(spec, t)`` that the
  figure drivers and tests rely on;
* an on-disk cache of pickled :class:`RunResult` values under
  ``benchmarks/.runcache/v<N>/<key>.pkl``, shared across processes and
  pytest sessions.

The cache key is a content hash of the spec (every compared field,
including ``estimate_tag``) and the *full* trace — job ids, submit times
and exact per-task durations via :meth:`Trace.content_digest` — so two
traces that merely share a name, length and rounded totals can never
collide.  ``CACHE_VERSION`` is baked into both the key and the directory
name: bump it whenever engine semantics change (event ordering, RNG
streams, record fields) and every stale entry is invalidated at once.

Trace transport: a sweep submits many specs over few distinct traces, so
pickling the full trace into every pool submission is the dominant IPC
cost for large traces.  Each distinct trace (keyed on its content
digest) is instead serialized once into a ``multiprocessing.shared_memory``
segment owned by the executor; submissions carry only ``(digest, segment
name, length)`` and pool workers attach, deserialize once, and keep a
small digest-keyed cache.  Segments are unlinked when the executor
closes (and at interpreter exit as a fallback).  If shared memory is
unavailable the executor transparently falls back to inline pickling.

Knobs (also see ``src/repro/experiments/README.md``):

* ``REPRO_EXECUTOR_WORKERS`` — worker-pool size; unset defaults to
  ``os.cpu_count()``; ``0``/``1`` force the deterministic serial path.
* ``REPRO_RUNCACHE`` — set to ``0`` to disable the on-disk tier.
* ``REPRO_RUNCACHE_DIR`` — override the on-disk cache location.
* ``REPRO_RUNCACHE_MAX_MB`` — cap the on-disk tier's total size;
  least-recently-used entries (by mtime, refreshed on every cache hit)
  are evicted after each store until the cache fits.  Unset means
  unbounded.
* ``REPRO_TRACE_SHM`` — set to ``0`` to disable the shared-memory trace
  transport (traces are then pickled into every pool submission).

Runs are deterministic given (spec, trace): per-run RNG streams are
seeded from the spec, so the parallel path returns bit-identical results
to the serial one; serial execution additionally preserves today's
submission ordering exactly.  Specs whose ``estimate`` callable cannot be
pickled (e.g. closures) transparently fall back to in-process execution.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import fields
from hashlib import blake2b
from multiprocessing import shared_memory
from pathlib import Path
from typing import Sequence

from repro.cluster.records import RunResult
from repro.core.errors import ConfigurationError
from repro.experiments.config import RunSpec, execute
from repro.workloads.registry import WorkloadSpec
from repro.workloads.replication import TraceFactory
from repro.workloads.spec import Trace

#: Bump to invalidate every persisted run at once (see module docstring).
#: v2: RunSpec v2 — policy params moved into the registry-validated
#: ``params`` mapping (canonically ordered in the key) and estimators
#: gained the seed-derived noise hook.
#: v3: work-stealing backoff resets on park, changing retry timing (and
#: so RNG consumption order) in every stealing run.
CACHE_VERSION = 3

WORKERS_ENV = "REPRO_EXECUTOR_WORKERS"
DISK_CACHE_ENV = "REPRO_RUNCACHE"
DISK_CACHE_DIR_ENV = "REPRO_RUNCACHE_DIR"
DISK_CACHE_MAX_MB_ENV = "REPRO_RUNCACHE_MAX_MB"
TRACE_SHM_ENV = "REPRO_TRACE_SHM"

def _default_cache_dir() -> Path:
    """``benchmarks/.runcache`` at the repo root for a src/ checkout.

    When the package is installed elsewhere (site-packages), the
    repo-root heuristic would point outside any repo, so fall back to a
    per-user cache directory instead of creating stray directories.
    """
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / ".runcache"
    return Path.home() / ".cache" / "repro-runcache"


#: Default on-disk location (see :func:`_default_cache_dir`).
DEFAULT_CACHE_DIR = _default_cache_dir()


def spec_digest(spec: RunSpec) -> str:
    """Canonical string of every compared RunSpec field.

    ``estimate`` is excluded (callables have no stable content); as in
    spec equality, ``estimate_tag`` is its cache-visible stand-in, so
    specs carrying different estimators must carry different tags.
    ``params`` is a :class:`~repro.schedulers.registry.FrozenParams`
    whose repr is canonically ordered with defaults filled, so the
    digest is independent of params-dict insertion order and of
    omitted-vs-explicit defaults.  ``faults`` joins the digest only when
    a plan is present (RunSpec normalizes empty plans to ``None``), so
    every fault-free key is byte-identical to its pre-fault form — no
    ``CACHE_VERSION`` bump, no invalidated entries.
    """
    parts = [
        f"{f.name}={getattr(spec, f.name)!r}"
        for f in fields(spec)
        if f.compare and not (f.name == "faults" and spec.faults is None)
    ]
    return ";".join(parts)


def cache_key(spec: RunSpec, trace: Trace) -> str:
    """Content hash identifying one run for both cache tiers."""
    h = blake2b(digest_size=20)
    h.update(f"v{CACHE_VERSION}|".encode())
    h.update(spec_digest(spec).encode())
    h.update(b"|")
    h.update(trace.content_digest().encode())
    return h.hexdigest()


class DiskCache:
    """Pickled RunResults under ``<root>/v<CACHE_VERSION>/<key>.pkl``.

    With ``max_bytes`` set, the cache is bounded: after every store, the
    least-recently-used entries — oldest mtime first, across *all*
    version directories under the root, so stale-version entries go
    first — are deleted until the total size fits.  A hit refreshes the
    entry's mtime, making the policy LRU rather than FIFO.  The entry
    just written is never evicted, so a single result larger than the
    cap still caches (the cap then holds only approximately).
    """

    def __init__(
        self,
        root: Path | str = DEFAULT_CACHE_DIR,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(
                f"cache max_bytes must be positive, got {max_bytes}"
            )
        self.base_root = Path(root)
        self.root = self.base_root / f"v{CACHE_VERSION}"
        self.max_bytes = max_bytes
        #: Entries deleted by cap enforcement (observability counter).
        self.evictions = 0
        # Running size estimate so stores far below the cap skip the
        # full tree scan: seeded by one scan on first need, advanced by
        # this writer's stores, re-synced by every enforcement scan.
        # Other writers' concurrent stores are only picked up at the
        # next scan, so the cap is exact per-writer and approximate
        # across writers — over-use is bounded and corrected as soon as
        # any writer crosses its own estimate.
        self._approx_total: int | None = None

    def path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def load(self, key: str) -> RunResult | None:
        try:
            with open(self.path(key), "rb") as fh:
                result = pickle.load(fh)
        except Exception:
            # Missing, truncated or otherwise unreadable entries are
            # plain misses; the run is recomputed and the entry rewritten.
            return None
        if not isinstance(result, RunResult):
            return None
        try:
            os.utime(self.path(key))  # refresh LRU recency
        except OSError:
            pass
        return result

    def store(self, key: str, result: RunResult) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.path(key)
        # Write-then-rename keeps concurrent readers/writers safe: a
        # reader never observes a partially written pickle.
        tmp = final.with_name(f"{final.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, final)
        except OSError:
            tmp.unlink(missing_ok=True)
            return
        if self.max_bytes is None:
            return
        if self._approx_total is None:
            self._approx_total = self.total_bytes()  # includes this entry
        else:
            try:
                self._approx_total += final.stat().st_size
            except OSError:
                self._approx_total = None
        if self._approx_total is None or self._approx_total > self.max_bytes:
            self.enforce_cap(keep=final)

    def total_bytes(self) -> int:
        """Current size of every entry under the cache root (all versions)."""
        return sum(size for _, _, size in self._entries())

    def _entries(self) -> list[tuple[float, Path, int]]:
        """(mtime, path, size) of every entry; racing deletions skipped."""
        entries = []
        if not self.base_root.is_dir():
            return entries
        for path in self.base_root.glob("**/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
        return entries

    def enforce_cap(self, keep: Path | None = None) -> int:
        """Evict LRU entries until the cache fits ``max_bytes``.

        Returns the number of entries deleted.  ``keep`` (the entry just
        written) is exempt.  Concurrent enforcement is safe: deleting an
        already-deleted entry is a no-op, and over-deletion only costs a
        future recompute, never correctness.
        """
        if self.max_bytes is None:
            return 0
        entries = self._entries()
        total = sum(size for _, _, size in entries)
        removed = 0
        for _, path, size in sorted(entries):  # oldest mtime first
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self._approx_total = total
        self.evictions += removed
        return removed

    def clear(self) -> int:
        """Delete this version's entries; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.pkl"):
                entry.unlink(missing_ok=True)
                removed += 1
        self._approx_total = None
        return removed


def _pool_size_from_env() -> int:
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or raw.strip() == "":
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None
    return max(1, value)


def _max_bytes_from_env() -> int | None:
    raw = os.environ.get(DISK_CACHE_MAX_MB_ENV)
    if raw is None or raw.strip() == "":
        return None
    try:
        megabytes = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{DISK_CACHE_MAX_MB_ENV} must be a number (MB), got {raw!r}"
        ) from None
    if not math.isfinite(megabytes) or megabytes <= 0:
        raise ConfigurationError(
            f"{DISK_CACHE_MAX_MB_ENV} must be a positive finite number, "
            f"got {raw!r}"
        )
    return int(megabytes * 1024 * 1024)


def _disk_cache_from_env() -> DiskCache | None:
    if os.environ.get(DISK_CACHE_ENV, "1").strip() in ("0", "off", "no"):
        return None
    return DiskCache(
        os.environ.get(DISK_CACHE_DIR_ENV, DEFAULT_CACHE_DIR),
        max_bytes=_max_bytes_from_env(),
    )


def replica_pairs(
    spec: RunSpec,
    trace: Trace | WorkloadSpec,
    n_seeds: int,
    trace_factory: TraceFactory | None = None,
) -> list[tuple[RunSpec, Trace]]:
    """Expand one (spec, trace) point into ``n_seeds`` replica pairs.

    Replica ``r`` runs ``spec`` with seed ``spec.seed + r`` (the
    :meth:`RunSpec.replicas` family).  With a ``trace_factory``, each
    replica additionally gets an independent trace draw from the replica
    seed; replica 0 always uses the given ``trace`` verbatim, so the
    ``n_seeds=1`` expansion is exactly the historical single run — same
    spec, same trace object, same cache key.

    A :class:`~repro.workloads.registry.WorkloadSpec` is accepted in
    place of the trace: it materializes at the spec's base seed and
    serves as its own per-replica factory (a ``WorkloadSpec`` *is* a
    ``TraceFactory``).
    """
    if isinstance(trace, WorkloadSpec):
        trace_factory = trace_factory or trace
        trace = trace.trace(spec.seed)
    specs = spec.replicas(n_seeds)
    pairs: list[tuple[RunSpec, Trace]] = [(specs[0], trace)]
    for replica in specs[1:]:
        replica_trace = (
            trace if trace_factory is None else trace_factory(replica.seed)
        )
        pairs.append((replica, replica_trace))
    return pairs


def _execute_keyed(key: str, spec: RunSpec, trace: Trace):
    """Pool-side worker: run one experiment, echoing its cache key."""
    return key, execute(spec, trace)


# -- shared-memory trace transport --------------------------------------
class TraceTransport:
    """Publishes each distinct trace once for all pool submissions.

    The parent owns the segments: one per distinct
    :meth:`Trace.content_digest`, holding the pickled trace.  Pool
    submissions then reference ``(digest, segment name, payload length)``
    instead of carrying the trace, so a sweep of hundreds of specs over
    one trace serializes it exactly once.  Segments are unlinked by
    :meth:`close` (idempotent; also registered via ``atexit`` so an
    executor that is never closed cannot leak past interpreter exit).
    """

    def __init__(self) -> None:
        self._segments: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
        self._disabled = False  # set on first shm failure; see publish()
        atexit.register(self.close)

    def __len__(self) -> int:
        return len(self._segments)

    def publish(self, trace: Trace) -> tuple[str, str, int] | None:
        """(digest, segment name, length) for a trace, creating on first use.

        Returns ``None`` when shared memory is unavailable — callers fall
        back to pickling the trace into the submission.  The first
        failure disables the transport for this instance, so later
        submissions skip straight to the fallback instead of paying a
        doomed serialization + syscall each.
        """
        if self._disabled:
            return None
        digest = trace.content_digest()
        segment = self._segments.get(digest)
        if segment is None:
            payload = pickle.dumps(trace, protocol=pickle.HIGHEST_PROTOCOL)
            try:
                shm = shared_memory.SharedMemory(create=True, size=len(payload))
            except (OSError, ValueError):
                self._disabled = True
                return None
            shm.buf[: len(payload)] = payload
            segment = (shm, len(payload))
            self._segments[digest] = segment
        return digest, segment[0].name, segment[1]

    def close(self) -> None:
        """Unlink every published segment (safe to call repeatedly)."""
        for shm, _ in self._segments.values():
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass
        self._segments.clear()
        atexit.unregister(self.close)


#: Pool-worker-side cache of deserialized traces, keyed by content digest.
#: Small and FIFO-bounded: a sweep touches few distinct traces, and a
#: stale entry merely costs one re-read from shared memory.
_WORKER_TRACE_CACHE_MAX = 8
_worker_trace_cache: "OrderedDict[str, Trace]" = OrderedDict()


def _trace_from_shm(digest: str, shm_name: str, length: int) -> Trace:
    trace = _worker_trace_cache.get(digest)
    if trace is None:
        shm = shared_memory.SharedMemory(name=shm_name)
        try:
            trace = pickle.loads(bytes(shm.buf[:length]))
        finally:
            shm.close()
        _worker_trace_cache[digest] = trace
        while len(_worker_trace_cache) > _WORKER_TRACE_CACHE_MAX:
            _worker_trace_cache.popitem(last=False)
    return trace


def _execute_keyed_shm(
    key: str, spec: RunSpec, digest: str, shm_name: str, length: int
):
    """Pool-side worker: like :func:`_execute_keyed`, trace via shm."""
    return key, execute(spec, _trace_from_shm(digest, shm_name, length))


def _trace_shm_enabled_from_env() -> bool:
    return os.environ.get(TRACE_SHM_ENV, "1").strip() not in ("0", "off", "no")


def _transportable(spec: RunSpec) -> bool:
    """Can this spec cross a process boundary?

    Only the ``estimate`` callable can be unpicklable (lambdas/closures,
    e.g. the Figure 16-17 classification carrier); everything else in a
    (spec, trace) pair is plain data.
    """
    if spec.estimate is None:
        return True
    try:
        pickle.dumps(spec.estimate)
    except Exception:
        return False
    return True


class SweepExecutor:
    """Batch runner for independent (RunSpec, trace) experiments.

    Parameters
    ----------
    max_workers:
        Worker-pool size.  ``None`` reads ``REPRO_EXECUTOR_WORKERS`` and
        falls back to ``os.cpu_count()``.  ``<= 1`` selects the serial
        path, which executes cache misses in submission order in this
        process — bit-identical to the historical one-by-one loop.
    disk_cache:
        A :class:`DiskCache`, ``None`` to disable the persistent tier, or
        the string ``"env"`` (default) to honor the ``REPRO_RUNCACHE*``
        environment variables.
    trace_shm:
        Ship traces to pool workers through the shared-memory transport
        (one segment per distinct trace) instead of pickling the trace
        into every submission.  ``None`` (default) honors
        ``REPRO_TRACE_SHM``.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        disk_cache: DiskCache | None | str = "env",
        trace_shm: bool | None = None,
    ) -> None:
        self.max_workers = (
            _pool_size_from_env() if max_workers is None else max(1, max_workers)
        )
        self.disk_cache = (
            _disk_cache_from_env() if disk_cache == "env" else disk_cache
        )
        self.trace_shm = (
            _trace_shm_enabled_from_env() if trace_shm is None else trace_shm
        )
        self._memo: dict[str, RunResult] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._transport: TraceTransport | None = None
        # Observability counters (read by tests and the benchmark).
        self.memo_hits = 0
        self.disk_hits = 0
        self.executions = 0

    # -- cache management ----------------------------------------------
    def memo_size(self) -> int:
        return len(self._memo)

    def clear_memo(self) -> None:
        self._memo.clear()

    def close(self) -> None:
        """Shut down the pool and release shm segments (caches stay intact)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def _record(self, key: str, result: RunResult, persist: bool) -> None:
        self._memo[key] = result
        if persist and self.disk_cache is not None:
            self.disk_cache.store(key, result)

    # -- execution ------------------------------------------------------
    def run_one(self, spec: RunSpec, trace: Trace) -> RunResult:
        return self.run_many([(spec, trace)])[0]

    def run_replicated(
        self,
        spec: RunSpec,
        trace: Trace | WorkloadSpec,
        n_seeds: int,
        trace_factory: TraceFactory | None = None,
    ) -> list[RunResult]:
        """``n_seeds`` independent replicas of one (spec, trace) point.

        Replica ``r`` uses seed ``spec.seed + r`` and, when a
        ``trace_factory`` is given, an independent trace drawn from that
        seed (see :func:`replica_pairs`; a ``WorkloadSpec`` in place of
        the trace is its own factory).  Each replica has its own cache
        key — the seed is a compared spec field and replica traces have
        distinct content digests — so replicas hit the two-tier cache
        independently and fan out over the pool as one batch.
        ``run_replicated(spec, trace, 1)`` is exactly
        ``[run_one(spec, trace)]``.
        """
        return self.run_many(replica_pairs(spec, trace, n_seeds, trace_factory))

    def run_many(
        self, pairs: Sequence[tuple[RunSpec, Trace]]
    ) -> list[RunResult]:
        """Run a batch, returning results in submission order.

        Duplicate submissions (same cache key) execute once.  Results for
        a given key are identical objects within a session.
        """
        keys = [cache_key(spec, trace) for spec, trace in pairs]
        missing: dict[str, tuple[RunSpec, Trace]] = {}
        for key, pair in zip(keys, pairs):
            if key in missing:
                continue
            if key in self._memo:
                self.memo_hits += 1
                continue
            if self.disk_cache is not None:
                result = self.disk_cache.load(key)
                if result is not None:
                    self.disk_hits += 1
                    self._memo[key] = result
                    continue
            missing[key] = pair
        if missing:
            self._execute_missing(missing)
        return [self._memo[key] for key in keys]

    def _execute_missing(
        self, missing: dict[str, tuple[RunSpec, Trace]]
    ) -> None:
        local = list(missing.items())
        if self.max_workers > 1 and len(local) > 1:
            remote = [item for item in local if _transportable(item[1][0])]
            if len(remote) > 1:
                remote_keys = {key for key, _ in remote}
                local = [item for item in local if item[0] not in remote_keys]
                self._fan_out(remote)
        for key, (spec, trace) in local:
            self.executions += 1
            self._record(key, execute(spec, trace), persist=True)

    def _submit(self, key: str, spec: RunSpec, trace: Trace):
        """Submit one run, shipping the trace by reference when possible."""
        assert self._pool is not None
        if self.trace_shm:
            if self._transport is None:
                self._transport = TraceTransport()
            published = self._transport.publish(trace)
            if published is not None:
                digest, name, length = published
                return self._pool.submit(
                    _execute_keyed_shm, key, spec, digest, name, length
                )
        return self._pool.submit(_execute_keyed, key, spec, trace)

    def _fan_out(self, items: list[tuple[str, tuple[RunSpec, Trace]]]) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        futures = [
            self._submit(key, spec, trace) for key, (spec, trace) in items
        ]
        for future in futures:
            key, result = future.result()
            self.executions += 1
            self._record(key, result, persist=True)


# -- module-level default executor -------------------------------------
_default_executor: SweepExecutor | None = None


def get_executor() -> SweepExecutor:
    """The process-wide executor used by ``run_cached`` and ``sweep``."""
    global _default_executor
    if _default_executor is None:
        _default_executor = SweepExecutor()
    return _default_executor


def set_executor(executor: SweepExecutor | None) -> SweepExecutor | None:
    """Swap the default executor; returns the previous one.

    Pass ``None`` to force re-creation from the environment on next use
    (tests use this to inject isolated cache directories).
    """
    global _default_executor
    previous = _default_executor
    _default_executor = executor
    return previous
