"""Figure 5: Hawk normalized to Sparrow on the Google trace.

5a: long-job p50/p90 ratios vs cluster size.
5b: short-job p50/p90 ratios vs cluster size.
5c: fraction of jobs Hawk improves-or-matches and average runtime ratio.
The paper's headline: up to 80%/90% better p50/p90 for short jobs and up
to 35%/10% for long jobs, with the peak at high-but-not-overloaded sizes.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import (
    GOOGLE_UTILIZATION_TARGETS,
    RunSpec,
    sweep_sizes,
)
from repro.experiments.report import FigureResult
from repro.experiments.sweeps import extra_metrics, sweep
from repro.experiments.traces import google_workload


def run(
    scale: str = "full",
    seed: int = 0,
    utilization_targets=GOOGLE_UTILIZATION_TARGETS,
    n_seeds: int = 1,
) -> FigureResult:
    workload = google_workload(scale)
    trace = workload.trace(seed)
    cutoff = workload.cutoff
    sizes = sweep_sizes(trace, utilization_targets)
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=cutoff,
        short_partition_fraction=workload.short_partition_fraction,
        seed=seed,
    )
    sparrow = RunSpec(scheduler="sparrow", n_workers=1, cutoff=cutoff, seed=seed)
    points = sweep(workload, sizes, hawk, sparrow, n_seeds=n_seeds)

    result = FigureResult(
        figure_id="Figure 5",
        title="Hawk normalized to Sparrow (Google trace)",
        headers=(
            "nodes",
            "util(sparrow)",
            "short p50",
            "short p90",
            "long p50",
            "long p90",
            "frac short improved",
            "avg ratio short",
            "frac long improved",
            "avg ratio long",
        ),
    )
    for point in points:
        frac_s, avg_s = extra_metrics(point, JobClass.SHORT)
        frac_l, avg_l = extra_metrics(point, JobClass.LONG)
        result.add_row(
            point.n_workers,
            point.cell("baseline_median_utilization"),
            point.cell("short_p50_ratio"),
            point.cell("short_p90_ratio"),
            point.cell("long_p50_ratio"),
            point.cell("long_p90_ratio"),
            frac_s,
            avg_s,
            frac_l,
            avg_l,
        )
    result.add_note(
        "ratios < 1 favor Hawk; the paper reports up to 0.2/0.1 for short "
        "p50/p90 and 0.65/0.9 for long p50/p90, peaking at high load"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "ratio cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result
