"""Workload-zoo CLI: list, describe and summarize registered workloads.

The registry's front door for humans::

    python -m repro.experiments.workloads list
    python -m repro.experiments.workloads describe
    python -m repro.experiments.workloads show pareto-heavy --quick --seed 1
    python -m repro.experiments.workloads docs --output benchmarks/results/registry_docs

* ``list`` — one line per registered workload (name, metadata, doc).
* ``describe`` — the canonical schema listing
  (:func:`repro.workloads.registry.describe`), the exact text the CI
  workload-smoke job diffs against
  ``benchmarks/results/workload_schema.txt``.
* ``show`` — materialize one workload (default or ``--quick`` scale,
  ``--set name=value`` overrides) and print its summary statistics.
* ``docs`` — render the per-policy and per-workload registry doc pages
  (markdown) from the two registries' ``describe()`` metadata; the
  committed copies live under ``benchmarks/results/registry_docs/``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.errors import ConfigurationError
from repro.schedulers import registry as policy_registry
from repro.workloads import registry as workload_registry
from repro.workloads.analysis import workload_summary
from repro.workloads.registry import WorkloadSpec, quick_spec


def _parse_overrides(pairs: list[str]) -> dict:
    """``name=value`` strings to a params dict (int/float/str inferred)."""
    overrides = {}
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep or not name:
            raise ConfigurationError(f"expected name=value, got {pair!r}")
        value: object = raw
        for parse in (int, float):
            try:
                value = parse(raw)
                break
            except ValueError:
                continue
        overrides[name] = value
    return overrides


def cmd_list() -> str:
    lines = []
    for name in sorted(workload_registry.registered_names()):
        entry = workload_registry.workload_entry(name)
        lines.append(
            f"{name:<18} cutoff={entry.cutoff:<8g} "
            f"short-fraction={entry.short_partition_fraction:<5g} {entry.doc}"
        )
    return "\n".join(lines) + "\n"


def cmd_show(name: str, quick: bool, seed: int, overrides: dict) -> str:
    spec = (
        quick_spec(name, overrides) if quick else WorkloadSpec(name, overrides)
    )
    trace = spec.trace(seed)
    summary = workload_summary(trace, spec.cutoff)
    lines = [
        f"workload {name}  seed={seed}  params {dict(spec.params)}",
        f"  jobs                {len(trace)}",
        f"  tasks               {trace.total_tasks}",
        f"  task-seconds        {trace.total_task_seconds:.0f}",
        f"  horizon (s)         {trace.horizon:.0f}",
        f"  nodes @ full util   {trace.nodes_for_full_utilization():.0f}",
        f"  cutoff (s)          {spec.cutoff:g}",
        f"  long-job fraction   {summary.long_fraction:.4f}",
        f"  long task-sec share {summary.task_seconds_share:.4f}",
        f"  trace digest        {trace.content_digest()}",
    ]
    return "\n".join(lines) + "\n"


# -- registry doc pages --------------------------------------------------
def _param_rows(params) -> list[str]:
    rows = ["| param | type | default | range | doc |", "| --- | --- | --- | --- | --- |"]
    for p in params:
        lo = "" if p.minimum is None else f"{p.minimum:g}"
        hi = "" if p.maximum is None else f"{p.maximum:g}"
        bounds = f"[{lo or '-inf'}, {hi or '+inf'}]" if (lo or hi) else ""
        if p.choices is not None:
            bounds = f"one of {list(p.choices)}"
        rows.append(
            f"| `{p.name}` | {p.type.__name__} | `{p.default!r}` "
            f"| {bounds} | {p.doc} |"
        )
    return rows


def render_policy_docs() -> str:
    lines = [
        "# Registered scheduler policies",
        "",
        "Generated from `repro.schedulers.registry` — do not edit by hand;",
        "regenerate with `python -m repro.experiments.workloads docs`.",
        "",
    ]
    for name in sorted(policy_registry.registered_names()):
        entry = policy_registry.policy_entry(name)
        lines.append(f"## `{name}`")
        lines.append("")
        if entry.doc:
            lines.append(entry.doc)
            lines.append("")
        flags = [
            f"stealing: {'yes' if entry.uses_stealing else 'no'}",
            f"partition: {'yes' if entry.uses_partition else 'no'}",
            f"online: {'yes' if entry.serves_online else 'no'}",
        ]
        if entry.ablation_of:
            flags.append(f"ablation of `{entry.ablation_of}`")
        lines.append("- " + "; ".join(flags))
        lines.append("")
        if entry.params:
            lines.extend(_param_rows(entry.params))
            lines.append("")
    return "\n".join(lines)


def render_workload_docs() -> str:
    lines = [
        "# Registered workloads",
        "",
        "Generated from `repro.workloads.registry` — do not edit by hand;",
        "regenerate with `python -m repro.experiments.workloads docs`.",
        "",
    ]
    for name in sorted(workload_registry.registered_names()):
        entry = workload_registry.workload_entry(name)
        lines.append(f"## `{name}`")
        lines.append("")
        if entry.doc:
            lines.append(entry.doc)
            lines.append("")
        lines.append(
            f"- long/short cutoff: {entry.cutoff:g} s; "
            f"short-partition fraction: {entry.short_partition_fraction:g}"
        )
        if entry.quick_params:
            quick = ", ".join(
                f"`{k}={v!r}`" for k, v in entry.quick_params.items()
            )
            lines.append(f"- quick-scale overrides: {quick}")
        lines.append("")
        if entry.params:
            lines.extend(_param_rows(entry.params))
            lines.append("")
    return "\n".join(lines)


def write_docs(output: Path) -> list[Path]:
    output.mkdir(parents=True, exist_ok=True)
    written = []
    for filename, content in (
        ("policies.md", render_policy_docs()),
        ("workloads.md", render_workload_docs()),
    ):
        path = output / filename
        path.write_text(content)
        written.append(path)
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.workloads",
        description="List, describe and summarize the registered workload zoo.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="one line per registered workload")
    sub.add_parser(
        "describe",
        help="canonical schema listing (the workload_schema.txt content)",
    )
    show = sub.add_parser("show", help="materialize one workload and summarize it")
    show.add_argument("name", help="registered workload name")
    show.add_argument("--seed", type=int, default=0)
    show.add_argument(
        "--quick", action="store_true", help="use the registered quick scale"
    )
    show.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="param override (repeatable)",
    )
    docs = sub.add_parser(
        "docs", help="render the policy/workload registry doc pages"
    )
    docs.add_argument(
        "--output",
        type=Path,
        default=Path("benchmarks/results/registry_docs"),
        help="directory the markdown pages are written to",
    )
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            sys.stdout.write(cmd_list())
        elif args.command == "describe" or args.command is None:
            sys.stdout.write(workload_registry.describe())
        elif args.command == "show":
            sys.stdout.write(
                cmd_show(
                    args.name,
                    args.quick,
                    args.seed,
                    _parse_overrides(args.overrides),
                )
            )
        elif args.command == "docs":
            for path in write_docs(args.output):
                print(f"wrote {path}")
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
