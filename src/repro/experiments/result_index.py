"""Persistent SQLite index over the on-disk run cache.

The disk tier (:class:`repro.experiments.parallel.DiskCache`) stores one
pickled ``RunResult`` blob per cache key.  Everything the cache needs to
know *about* those blobs — which keys exist, how big they are, when they
were last used, and what produced them — used to be answered by globbing
the cache directory and ``stat``-ing every entry on each size-cap
enforcement.  This module replaces those scans with a single-table
SQLite index at ``<cache root>/index.db``:

``entries(path PRIMARY KEY, key, version, size, mtime, policy, seed,
spec_digest, trace_digest)``

* ``path`` is the blob's location *relative to the cache root* (e.g.
  ``v3/<key>.pkl``), so the row stays valid if the cache directory is
  moved, and stale-version blobs index cleanly next to current ones.
* ``key``/``version`` mirror the path components for queries.
* ``size``/``mtime`` drive the LRU size cap: eviction is one ``ORDER BY
  mtime`` query instead of a filesystem walk.
* ``policy``/``seed``/``spec_digest``/``trace_digest`` are provenance
  recorded at store time (what run produced the blob).  They are *not*
  recoverable from a blob's filename — the key is a one-way hash — so a
  rebuild from blobs leaves them ``NULL``; only fresh stores fill them.

The index is an accelerator, never an authority over correctness: blobs
remain self-contained pickles, every operation degrades gracefully when
SQLite is unavailable (the caller falls back to directory scans), and
:meth:`reconcile` rebuilds the index from the blobs on disk — the
migration path for caches that predate the index, and the self-healing
path when another process (or a test) touches blobs behind our back.
Connections are opened per operation: the index is low-traffic (one
write per simulation executed), and a stateless handle cannot leak
across ``fork`` into pool workers.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterable, Mapping, Sequence

#: Name of the database file inside the cache root.
INDEX_FILENAME = "index.db"

_SCHEMA = """\
CREATE TABLE IF NOT EXISTS entries (
    path TEXT PRIMARY KEY,
    key TEXT NOT NULL,
    version TEXT NOT NULL,
    size INTEGER NOT NULL,
    mtime REAL NOT NULL,
    policy TEXT,
    seed INTEGER,
    spec_digest TEXT,
    trace_digest TEXT
);
CREATE INDEX IF NOT EXISTS entries_mtime ON entries (mtime);
CREATE INDEX IF NOT EXISTS entries_key ON entries (key);
"""


class ResultIndex:
    """The ``index.db`` sidecar of one disk-cache root.

    Every method is safe to call whether or not the database (or even
    the cache directory) exists; SQLite-level failures — locked files,
    corrupt databases, read-only filesystems — disable the index for
    this instance (:attr:`available` turns ``False``) instead of
    propagating, so the owning cache can fall back to directory scans.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.db_path = self.root / INDEX_FILENAME
        self._disabled = False

    @property
    def available(self) -> bool:
        """False once a SQLite failure has disabled this instance."""
        return not self._disabled

    # -- connection plumbing -------------------------------------------
    def _connect(self, create: bool) -> sqlite3.Connection | None:
        """One short-lived connection, or ``None`` when unavailable.

        ``create=False`` read paths never materialize the database: a
        cache that is only ever read from stays a plain directory.
        """
        if self._disabled:
            return None
        if not create and not self.db_path.is_file():
            return None
        try:
            if create:
                self.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(self.db_path, timeout=5.0)
            conn.executescript(_SCHEMA)
            return conn
        except (sqlite3.Error, OSError):
            self._disabled = True
            return None

    def _run(self, create: bool, fn):
        conn = self._connect(create)
        if conn is None:
            return None
        try:
            with conn:  # one transaction per operation
                return fn(conn)
        except sqlite3.Error:
            self._disabled = True
            return None
        finally:
            conn.close()

    # -- writes ---------------------------------------------------------
    def record(
        self,
        rel_path: str,
        size: int,
        mtime: float,
        meta: Mapping | None = None,
    ) -> None:
        """Insert or replace the row for one stored blob."""
        key, version = _key_and_version(rel_path)
        meta = meta or {}
        row = (
            rel_path,
            key,
            version,
            size,
            mtime,
            meta.get("policy"),
            meta.get("seed"),
            meta.get("spec_digest"),
            meta.get("trace_digest"),
        )
        self._run(
            True,
            lambda conn: conn.execute(
                "INSERT OR REPLACE INTO entries VALUES (?,?,?,?,?,?,?,?,?)",
                row,
            ),
        )

    def touch(self, rel_path: str, mtime: float) -> None:
        """Refresh one row's LRU recency (cache hit)."""
        self._run(
            False,
            lambda conn: conn.execute(
                "UPDATE entries SET mtime = ? WHERE path = ?",
                (mtime, rel_path),
            ),
        )

    def remove(self, rel_paths: Iterable[str]) -> None:
        paths = [(p,) for p in rel_paths]
        if not paths:
            return
        self._run(
            False,
            lambda conn: conn.executemany(
                "DELETE FROM entries WHERE path = ?", paths
            ),
        )

    # -- reads ----------------------------------------------------------
    def lookup(self, rel_path: str) -> tuple[int, float] | None:
        """(size, mtime) of one indexed blob, or ``None``."""
        return self._run(
            False,
            lambda conn: conn.execute(
                "SELECT size, mtime FROM entries WHERE path = ?", (rel_path,)
            ).fetchone(),
        )

    def total_bytes(self) -> int | None:
        """Summed size of every indexed blob; ``None`` when unavailable."""
        row = self._run(
            False,
            lambda conn: conn.execute(
                "SELECT COALESCE(SUM(size), 0) FROM entries"
            ).fetchone(),
        )
        return None if row is None else int(row[0])

    def lru_entries(self) -> list[tuple[float, str, int]] | None:
        """Every row as (mtime, rel_path, size), least recent first."""
        return self._run(
            False,
            lambda conn: conn.execute(
                "SELECT mtime, path, size FROM entries ORDER BY mtime, path"
            ).fetchall(),
        )

    def provenance(self, rel_path: str) -> tuple | None:
        """(policy, seed, spec_digest, trace_digest) recorded at store time."""
        return self._run(
            False,
            lambda conn: conn.execute(
                "SELECT policy, seed, spec_digest, trace_digest "
                "FROM entries WHERE path = ?",
                (rel_path,),
            ).fetchone(),
        )

    def count(self) -> int:
        row = self._run(
            False,
            lambda conn: conn.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone(),
        )
        return 0 if row is None else int(row[0])

    # -- rebuild / migration --------------------------------------------
    def reconcile(self, blobs: Sequence[tuple[float, str, int]]) -> bool:
        """Make the index agree with the blobs actually on disk.

        ``blobs`` is the scan result: (mtime, rel_path, size) for every
        ``*.pkl`` under the cache root.  Rows without a blob are
        dropped; blobs without a row are adopted (provenance ``NULL`` —
        this *is* the rebuild-from-blobs migration for pre-index
        caches); rows whose size/mtime drifted (``os.utime``, rewrites
        by other writers) are refreshed, keeping their provenance.
        Returns ``True`` when the index is usable afterwards.
        """
        if not blobs and not self.db_path.is_file():
            return self.available  # nothing on disk, nothing to create

        def _apply(conn: sqlite3.Connection):
            on_disk = {rel: (size, mtime) for mtime, rel, size in blobs}
            stale = [
                (path,)
                for (path,) in conn.execute("SELECT path FROM entries")
                if path not in on_disk
            ]
            conn.executemany("DELETE FROM entries WHERE path = ?", stale)
            for rel, (size, mtime) in on_disk.items():
                key, version = _key_and_version(rel)
                conn.execute(
                    "INSERT INTO entries (path, key, version, size, mtime) "
                    "VALUES (?,?,?,?,?) "
                    "ON CONFLICT(path) DO UPDATE SET size = ?, mtime = ?",
                    (rel, key, version, size, mtime, size, mtime),
                )
            return True

        return bool(self._run(True, _apply))


def _key_and_version(rel_path: str) -> tuple[str, str]:
    """Split ``v3/<key>.pkl`` into its key and version-directory parts."""
    path = Path(rel_path)
    return path.stem, path.parent.name
