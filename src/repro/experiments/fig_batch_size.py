"""Batch-size sensitivity of constrained batch sampling (sparrow-batch).

The ``sparrow-batch`` scenario policy (PR 3) caps each job's probe
traffic at a ``batch_size`` budget instead of always sending
``probe_ratio * tasks`` probes.  This driver sweeps that budget at the
high-load cluster size and reports runtimes normalized to unconstrained
Sparrow on the same trace: at small budgets every job gets exactly one
probe per task (no sampling choice — ratios well above 1 for short
jobs), and as the budget grows the policy converges to Sparrow from
below (ratios -> 1).  The interesting question is the same one Figure 15
asks of the steal cap: how small a budget already captures most of the
benefit of unconstrained probing?

Built entirely on registry identities: the workload is a
:class:`~repro.workloads.registry.WorkloadSpec`, the policy axis is a
``params`` override on one ``RunSpec`` — no bespoke trace or scheduler
wiring anywhere.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import HIGH_LOAD_TARGET, RunSpec, high_load_size
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.experiments.traces import google_workload
from repro.metrics.comparison import normalized_percentile
from repro.metrics.stats import paired_cell
from repro.workloads.replication import replica_seeds

#: The probe-budget axis: 1 task-probe floor up to effectively-Sparrow.
DEFAULT_BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def run(
    scale: str = "full",
    seed: int = 0,
    batch_sizes=DEFAULT_BATCH_SIZES,
    load_target: float = HIGH_LOAD_TARGET,
    n_seeds: int = 1,
) -> FigureResult:
    workload = google_workload(scale)
    cutoff = workload.cutoff
    n = high_load_size(workload.trace(seed), load_target)
    seeds = replica_seeds(seed, n_seeds)
    traces = [workload.trace(s) for s in seeds]

    def spec(batch_size: int, s: int) -> RunSpec:
        return RunSpec(
            scheduler="sparrow-batch",
            n_workers=n,
            cutoff=cutoff,
            seed=s,
            params={"batch_size": batch_size},
        )

    # One batch: the Sparrow baseline plus every budget, per replica
    # seed.  Each replica's budgets normalize to the same replica's
    # Sparrow run (matched seeds and trace draw).
    batch = [
        (RunSpec(scheduler="sparrow", n_workers=n, cutoff=cutoff, seed=s), traces[r])
        for r, s in enumerate(seeds)
    ]
    batch += [
        (spec(b, s), traces[r])
        for b in batch_sizes
        for r, s in enumerate(seeds)
    ]
    results = get_executor().run_many(batch)
    bases = results[:n_seeds]

    result = FigureResult(
        figure_id="Figure B (batch size)",
        title=f"sparrow-batch normalized to Sparrow ({n} nodes)",
        headers=("batch size", "short p50", "short p90", "long p50", "long p90"),
    )
    for i, batch_size in enumerate(batch_sizes):
        runs = results[n_seeds * (i + 1) : n_seeds * (i + 2)]

        def ratio_cell(job_class, p):
            return paired_cell(
                lambda c, b: normalized_percentile(c, b, job_class, p),
                runs,
                bases,
            )

        result.add_row(
            batch_size,
            ratio_cell(JobClass.SHORT, 50),
            ratio_cell(JobClass.SHORT, 90),
            ratio_cell(JobClass.LONG, 50),
            ratio_cell(JobClass.LONG, 90),
        )
    result.add_note(
        "probe budget per job; the floor of one probe per task applies at "
        "batch size 1, so small budgets remove Sparrow's sampling choice"
    )
    result.add_note(
        "ratios -> 1 as the budget stops binding (sparrow-batch converges "
        "to Sparrow); the knee shows the cheapest budget that keeps "
        "Sparrow-level latency"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "ratio cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result
