"""Figure 5 at cluster scale: Hawk vs Sparrow on a 10,000-worker cluster.

The paper's Google sweep (Figure 5) tops out at cluster sizes in the low
thousands because that is where the 1200-job synthetic trace's offered
load lives.  This driver pushes the same comparison to a 10k-worker
cluster: the arrival process is densified (same generator, shorter
inter-arrivals) so ten thousand nodes sit at high-but-not-overloaded
load — the regime where Hawk's short-job benefit peaks.  The point runs
through the standard sweep pipeline (executor batch, two-tier cache,
seed replication), and exists because the fast-path simulation core
made this cluster size practical to regenerate; ``python -m repro.bench``
tracks the underlying events/sec budget.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import RunSpec
from repro.experiments.report import FigureResult
from repro.experiments.sweeps import extra_metrics, sweep
from repro.experiments.traces import google_scale_workload

#: The headline cluster size (the paper's sweeps stop near 5k).
SCALE_N_WORKERS = 10_000


def run(
    seed: int = 0,
    sizes: tuple[int, ...] = (SCALE_N_WORKERS,),
    n_seeds: int = 1,
) -> FigureResult:
    workload = google_scale_workload()
    trace = workload.trace(seed)
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=workload.cutoff,
        short_partition_fraction=workload.short_partition_fraction,
        seed=seed,
    )
    sparrow = RunSpec(
        scheduler="sparrow", n_workers=1, cutoff=workload.cutoff, seed=seed
    )
    points = sweep(workload, sizes, hawk, sparrow, n_seeds=n_seeds)

    result = FigureResult(
        figure_id="Figure 5 (scale)",
        title="Hawk normalized to Sparrow at 10k workers (dense Google trace)",
        headers=(
            "nodes",
            "offered load",
            "util(sparrow)",
            "short p50",
            "short p90",
            "long p50",
            "long p90",
            "frac short improved",
            "avg ratio short",
        ),
    )
    offered = trace.nodes_for_full_utilization()
    for point in points:
        frac_s, avg_s = extra_metrics(point, JobClass.SHORT)
        result.add_row(
            point.n_workers,
            offered / point.n_workers,
            point.cell("baseline_median_utilization"),
            point.cell("short_p50_ratio"),
            point.cell("short_p90_ratio"),
            point.cell("long_p50_ratio"),
            point.cell("long_p90_ratio"),
            frac_s,
            avg_s,
        )
    result.add_note(
        f"dense Google-like trace ({len(trace)} jobs, "
        f"{trace.total_tasks} tasks); ratios < 1 favor Hawk"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "ratio cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result
