"""Figure 5 at cluster scale: Hawk vs Sparrow on 10k and 100k workers.

The paper's Google sweep (Figure 5) tops out at cluster sizes in the low
thousands because that is where the 1200-job synthetic trace's offered
load lives.  These drivers push the same comparison to larger clusters:
the arrival process is densified (same generator, shorter inter-arrivals)
so ten thousand — and, with another 10x densification, one hundred
thousand — nodes sit at high-but-not-overloaded load, the regime where
Hawk's short-job benefit peaks.  Each point runs through the standard
sweep pipeline (executor batch, two-tier cache, seed replication).  The
10k point exists because the fast-path simulation core made that cluster
size practical to regenerate; the 100k point because the flat-array
worker columns hold victim selection and hint bookkeeping at O(1) per
round regardless of cluster size; ``python -m repro.bench`` tracks the
underlying events/sec budget for both.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import RunSpec
from repro.experiments.report import FigureResult
from repro.experiments.sweeps import extra_metrics, sweep
from repro.experiments.traces import google_scale100k_workload, google_scale_workload
from repro.workloads.registry import WorkloadSpec

#: The headline cluster size (the paper's sweeps stop near 5k).
SCALE_N_WORKERS = 10_000

#: The flat-array frontier: one hundred thousand single-slot servers.
SCALE_100K_N_WORKERS = 100_000


def _run_scale_point(
    workload: WorkloadSpec,
    figure_id: str,
    title: str,
    seed: int,
    sizes: tuple[int, ...],
    n_seeds: int,
) -> FigureResult:
    trace = workload.trace(seed)
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=workload.cutoff,
        short_partition_fraction=workload.short_partition_fraction,
        seed=seed,
    )
    sparrow = RunSpec(
        scheduler="sparrow", n_workers=1, cutoff=workload.cutoff, seed=seed
    )
    points = sweep(workload, sizes, hawk, sparrow, n_seeds=n_seeds)

    result = FigureResult(
        figure_id=figure_id,
        title=title,
        headers=(
            "nodes",
            "offered load",
            "util(sparrow)",
            "short p50",
            "short p90",
            "long p50",
            "long p90",
            "frac short improved",
            "avg ratio short",
        ),
    )
    offered = trace.nodes_for_full_utilization()
    for point in points:
        frac_s, avg_s = extra_metrics(point, JobClass.SHORT)
        result.add_row(
            point.n_workers,
            offered / point.n_workers,
            point.cell("baseline_median_utilization"),
            point.cell("short_p50_ratio"),
            point.cell("short_p90_ratio"),
            point.cell("long_p50_ratio"),
            point.cell("long_p90_ratio"),
            frac_s,
            avg_s,
        )
    result.add_note(
        f"dense Google-like trace ({len(trace)} jobs, "
        f"{trace.total_tasks} tasks); ratios < 1 favor Hawk"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "ratio cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result


def run(
    seed: int = 0,
    sizes: tuple[int, ...] = (SCALE_N_WORKERS,),
    n_seeds: int = 1,
) -> FigureResult:
    return _run_scale_point(
        google_scale_workload(),
        "Figure 5 (scale)",
        "Hawk normalized to Sparrow at 10k workers (dense Google trace)",
        seed,
        sizes,
        n_seeds,
    )


def run_100k(
    seed: int = 0,
    sizes: tuple[int, ...] = (SCALE_100K_N_WORKERS,),
    n_seeds: int = 1,
) -> FigureResult:
    return _run_scale_point(
        google_scale100k_workload(),
        "Figure 5 (100k scale)",
        "Hawk normalized to Sparrow at 100k workers (dense Google trace)",
        seed,
        sizes,
        n_seeds,
    )
