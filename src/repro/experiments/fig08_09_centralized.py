"""Figures 8-9: Hawk normalized to a fully centralized scheduler.

The baseline schedules *all* jobs with the Section 3.7 least-waiting-time
algorithm over the whole cluster (no partition, no stealing).  Paper
findings: the centralized scheduler penalizes short jobs under heavy load
(Figure 8) while being slightly better for long jobs, which can use the
entire cluster (Figure 9).
"""

from __future__ import annotations

from repro.experiments.config import (
    GOOGLE_UTILIZATION_TARGETS,
    RunSpec,
    sweep_sizes,
)
from repro.experiments.report import FigureResult
from repro.experiments.sweeps import sweep
from repro.experiments.traces import google_workload


def run(
    scale: str = "full",
    seed: int = 0,
    utilization_targets=GOOGLE_UTILIZATION_TARGETS,
    n_seeds: int = 1,
) -> FigureResult:
    workload = google_workload(scale)
    cutoff = workload.cutoff
    sizes = sweep_sizes(workload.trace(seed), utilization_targets)
    hawk = RunSpec(
        scheduler="hawk",
        n_workers=1,
        cutoff=cutoff,
        short_partition_fraction=workload.short_partition_fraction,
        seed=seed,
    )
    centralized = RunSpec(
        scheduler="centralized", n_workers=1, cutoff=cutoff, seed=seed
    )
    result = FigureResult(
        figure_id="Figures 8-9",
        title="Hawk normalized to fully centralized (Google trace)",
        headers=(
            "nodes",
            "util(centralized)",
            "short p50",
            "short p90",
            "long p50",
            "long p90",
        ),
    )
    points = sweep(workload, sizes, hawk, centralized, n_seeds=n_seeds)
    for point in points:
        result.add_row(
            point.n_workers,
            point.cell("baseline_median_utilization"),
            point.cell("short_p50_ratio"),
            point.cell("short_p90_ratio"),
            point.cell("long_p50_ratio"),
            point.cell("long_p90_ratio"),
        )
    result.add_note(
        "Figure 8 = short columns (Hawk wins under heavy load), "
        "Figure 9 = long columns (centralized slightly better: whole cluster)"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "ratio cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result
