"""Shared machinery for cluster-size sweep comparisons.

Figures 5, 6, 8-9 and 10-11 all have the same skeleton: run a candidate
scheduler and a baseline over a range of cluster sizes on one trace, and
report candidate-normalized-to-baseline percentile runtimes per job class.

All runs of a sweep are submitted as one batch to the
:class:`~repro.experiments.parallel.SweepExecutor`, which deduplicates
them against the two-tier run cache and fans cache misses out over a
worker pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.job import JobClass
from repro.cluster.records import RunResult
from repro.experiments.config import RunSpec
from repro.experiments.parallel import SweepExecutor, get_executor
from repro.metrics.comparison import (
    average_runtime_ratio,
    fraction_improved,
    normalized_percentile,
)
from repro.workloads.spec import Trace


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One cluster size of a candidate-vs-baseline sweep."""

    n_workers: int
    baseline_median_utilization: float
    short_p50_ratio: float
    short_p90_ratio: float
    long_p50_ratio: float
    long_p90_ratio: float
    candidate: RunResult
    baseline: RunResult


def _build_point(
    n_workers: int, candidate: RunResult, baseline: RunResult
) -> SweepPoint:
    return SweepPoint(
        n_workers=n_workers,
        baseline_median_utilization=baseline.median_utilization(),
        short_p50_ratio=normalized_percentile(
            candidate, baseline, JobClass.SHORT, 50
        ),
        short_p90_ratio=normalized_percentile(
            candidate, baseline, JobClass.SHORT, 90
        ),
        long_p50_ratio=normalized_percentile(candidate, baseline, JobClass.LONG, 50),
        long_p90_ratio=normalized_percentile(candidate, baseline, JobClass.LONG, 90),
        candidate=candidate,
        baseline=baseline,
    )


def compare_at_size(
    trace: Trace,
    n_workers: int,
    candidate_spec: RunSpec,
    baseline_spec: RunSpec,
    executor: SweepExecutor | None = None,
) -> SweepPoint:
    executor = executor or get_executor()
    candidate, baseline = executor.run_many(
        [
            (candidate_spec.with_(n_workers=n_workers), trace),
            (baseline_spec.with_(n_workers=n_workers), trace),
        ]
    )
    return _build_point(n_workers, candidate, baseline)


def sweep(
    trace: Trace,
    sizes,
    candidate_spec: RunSpec,
    baseline_spec: RunSpec,
    executor: SweepExecutor | None = None,
) -> list[SweepPoint]:
    """Compare the two schedulers at every cluster size.

    The whole sweep — candidate and baseline at every size — is one
    executor batch, so independent runs execute concurrently when the
    pool has more than one worker.
    """
    executor = executor or get_executor()
    pairs: list[tuple[RunSpec, Trace]] = []
    for n in sizes:
        pairs.append((candidate_spec.with_(n_workers=n), trace))
        pairs.append((baseline_spec.with_(n_workers=n), trace))
    results = executor.run_many(pairs)
    return [
        _build_point(n, results[2 * i], results[2 * i + 1])
        for i, n in enumerate(sizes)
    ]


def extra_metrics(point: SweepPoint, job_class: JobClass) -> tuple[float, float]:
    """Figure 5c metrics: (fraction improved-or-equal, avg runtime ratio)."""
    return (
        fraction_improved(point.candidate, point.baseline, job_class),
        average_runtime_ratio(point.candidate, point.baseline, job_class),
    )
