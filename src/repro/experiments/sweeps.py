"""Shared machinery for cluster-size sweep comparisons.

Figures 5, 6, 8-9 and 10-11 all have the same skeleton: run a candidate
scheduler and a baseline over a range of cluster sizes on one trace, and
report candidate-normalized-to-baseline percentile runtimes per job class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.job import JobClass
from repro.cluster.records import RunResult
from repro.experiments.config import RunSpec
from repro.experiments.runner import run_cached
from repro.metrics.comparison import (
    average_runtime_ratio,
    fraction_improved,
    normalized_percentile,
)
from repro.workloads.spec import Trace


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One cluster size of a candidate-vs-baseline sweep."""

    n_workers: int
    baseline_median_utilization: float
    short_p50_ratio: float
    short_p90_ratio: float
    long_p50_ratio: float
    long_p90_ratio: float
    candidate: RunResult
    baseline: RunResult


def compare_at_size(
    trace: Trace,
    n_workers: int,
    candidate_spec: RunSpec,
    baseline_spec: RunSpec,
) -> SweepPoint:
    candidate = run_cached(candidate_spec.with_(n_workers=n_workers), trace)
    baseline = run_cached(baseline_spec.with_(n_workers=n_workers), trace)
    return SweepPoint(
        n_workers=n_workers,
        baseline_median_utilization=baseline.median_utilization(),
        short_p50_ratio=normalized_percentile(
            candidate, baseline, JobClass.SHORT, 50
        ),
        short_p90_ratio=normalized_percentile(
            candidate, baseline, JobClass.SHORT, 90
        ),
        long_p50_ratio=normalized_percentile(candidate, baseline, JobClass.LONG, 50),
        long_p90_ratio=normalized_percentile(candidate, baseline, JobClass.LONG, 90),
        candidate=candidate,
        baseline=baseline,
    )


def sweep(
    trace: Trace,
    sizes,
    candidate_spec: RunSpec,
    baseline_spec: RunSpec,
) -> list[SweepPoint]:
    """Compare the two schedulers at every cluster size."""
    return [
        compare_at_size(trace, n, candidate_spec, baseline_spec) for n in sizes
    ]


def extra_metrics(point: SweepPoint, job_class: JobClass) -> tuple[float, float]:
    """Figure 5c metrics: (fraction improved-or-equal, avg runtime ratio)."""
    return (
        fraction_improved(point.candidate, point.baseline, job_class),
        average_runtime_ratio(point.candidate, point.baseline, job_class),
    )
