"""Shared machinery for cluster-size sweep comparisons.

Figures 5, 6, 8-9 and 10-11 all have the same skeleton: run a candidate
scheduler and a baseline over a range of cluster sizes on one trace, and
report candidate-normalized-to-baseline percentile runtimes per job class.

All runs of a sweep flow through the
:class:`~repro.experiments.parallel.SweepExecutor` streaming core
(:meth:`~repro.experiments.parallel.SweepExecutor.run_stream`), which
deduplicates them against the two-tier run cache and keeps pool workers
fed under a bounded in-flight window.  Results are folded into
:class:`ReplicatedPoint` aggregates *incrementally* as completions land
(:class:`_SweepFold`): a point is built the moment its last replica
finishes, and the optional ``on_point`` hook observes it right then —
no global join.  :func:`multi_sweep` chains several candidate-vs-baseline
sweeps through one continuous stream, so a slow point in one workload's
grid no longer stalls the next workload behind a batch barrier.

Seed replication: with ``n_seeds > 1`` every sweep point fans out into
``n_seeds`` matched replicas — replica ``r`` runs *both* schedulers with
seed ``base + r`` on the same trace draw (an independent draw per
replica when a ``trace_factory`` is given) — and the sweep returns
:class:`ReplicatedPoint` aggregates.  Per-replica ratios are computed
within the matched pair before aggregation, so trace-level noise common
to candidate and baseline cancels.  ``n_seeds=1`` is the degenerate
case: one replica, scalar accessors return its values bit-for-bit, and
the executor batch is identical to the historical single-seed sweep.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cluster.job import JobClass
from repro.cluster.records import RunResult
from repro.core.errors import ConfigurationError
from repro.experiments.config import RunSpec
from repro.experiments.parallel import SweepExecutor, get_executor
from repro.metrics.comparison import (
    average_runtime_ratio,
    fraction_improved,
    normalized_percentile,
)
from repro.metrics.stats import SummaryStats, mean, summarize
from repro.workloads.registry import WorkloadSpec
from repro.workloads.replication import TraceFactory, replica_seeds
from repro.workloads.spec import Trace


@dataclass(frozen=True, slots=True)
class SweepPoint:
    """One replica of one cluster size of a candidate-vs-baseline sweep."""

    n_workers: int
    baseline_median_utilization: float
    short_p50_ratio: float
    short_p90_ratio: float
    long_p50_ratio: float
    long_p90_ratio: float
    candidate: RunResult
    baseline: RunResult


#: The scalar metrics a SweepPoint carries (aggregatable per replica).
POINT_METRICS = (
    "baseline_median_utilization",
    "short_p50_ratio",
    "short_p90_ratio",
    "long_p50_ratio",
    "long_p90_ratio",
)

#: The subset of :data:`POINT_METRICS` that are candidate/baseline
#: ratios — their replica statistics carry a paired-t p-value against
#: parity (null = 1.0).  Utilization is a magnitude: no null applies.
RATIO_METRICS = frozenset(m for m in POINT_METRICS if m.endswith("_ratio"))


@dataclass(frozen=True, slots=True)
class ReplicatedPoint:
    """One cluster size, aggregated over matched seed replicas.

    ``replicas[r]`` holds the :class:`SweepPoint` for replica seed
    ``seeds[r]``; candidate and baseline of a replica share that seed
    (and trace draw), so each replica's ratios are a matched-pair sample.
    Scalar accessors (``short_p50_ratio`` …) return replica means, which
    for a single replica are its values bit-for-bit; :meth:`stat` returns
    the full replica statistics.
    """

    n_workers: int
    seeds: tuple[int, ...]
    replicas: tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        if not self.replicas or len(self.seeds) != len(self.replicas):
            raise ConfigurationError(
                f"need one seed per replica, got {len(self.seeds)} seeds "
                f"for {len(self.replicas)} replicas"
            )

    @property
    def n_seeds(self) -> int:
        return len(self.replicas)

    # -- degenerate-safe scalar accessors (means over replicas) ---------
    @property
    def baseline_median_utilization(self) -> float:
        return mean([r.baseline_median_utilization for r in self.replicas])

    @property
    def short_p50_ratio(self) -> float:
        return mean([r.short_p50_ratio for r in self.replicas])

    @property
    def short_p90_ratio(self) -> float:
        return mean([r.short_p90_ratio for r in self.replicas])

    @property
    def long_p50_ratio(self) -> float:
        return mean([r.long_p50_ratio for r in self.replicas])

    @property
    def long_p90_ratio(self) -> float:
        return mean([r.long_p90_ratio for r in self.replicas])

    @property
    def candidate(self) -> RunResult:
        """The base-seed replica's candidate run."""
        return self.replicas[0].candidate

    @property
    def baseline(self) -> RunResult:
        """The base-seed replica's baseline run."""
        return self.replicas[0].baseline

    # -- replica statistics ---------------------------------------------
    def stat(self, metric: str, confidence: float = 0.95) -> SummaryStats:
        """Replica statistics of one named :data:`POINT_METRICS` entry.

        Ratio metrics additionally carry the paired-t p-value against
        parity (the per-replica ratios are matched-pair samples, so the
        one-sample test on them *is* the paired test).
        """
        null = 1.0 if metric in RATIO_METRICS else None
        return summarize(
            [getattr(r, metric) for r in self.replicas], confidence, null=null
        )

    def cell(self, metric: str) -> float | SummaryStats:
        """Render value for a table cell.

        A single replica yields the plain float (keeping single-seed
        figure output bit-identical); multiple replicas yield the full
        :class:`~repro.metrics.stats.SummaryStats`, which the report
        layer renders as ``mean±ci``.
        """
        if self.n_seeds == 1:
            return getattr(self.replicas[0], metric)
        return self.stat(metric)

    def aggregate(
        self,
        metric: Callable[[RunResult, RunResult], float],
        confidence: float = 0.95,
    ) -> SummaryStats:
        """Matched-seed aggregate of ``metric(candidate, baseline)``."""
        return summarize(
            [metric(r.candidate, r.baseline) for r in self.replicas],
            confidence,
        )


def _build_point(
    n_workers: int, candidate: RunResult, baseline: RunResult
) -> SweepPoint:
    return SweepPoint(
        n_workers=n_workers,
        baseline_median_utilization=baseline.median_utilization(),
        short_p50_ratio=normalized_percentile(
            candidate, baseline, JobClass.SHORT, 50
        ),
        short_p90_ratio=normalized_percentile(
            candidate, baseline, JobClass.SHORT, 90
        ),
        long_p50_ratio=normalized_percentile(candidate, baseline, JobClass.LONG, 50),
        long_p90_ratio=normalized_percentile(candidate, baseline, JobClass.LONG, 90),
        candidate=candidate,
        baseline=baseline,
    )


def _replica_traces(
    trace: Trace, seeds: tuple[int, ...], trace_factory: TraceFactory | None
) -> tuple[Trace, ...]:
    """One trace per replica; replica 0 keeps the given trace verbatim."""
    if trace_factory is None:
        return (trace,) * len(seeds)
    return (trace,) + tuple(trace_factory(seed) for seed in seeds[1:])


class _SweepFold:
    """Incremental aggregation of a streamed sweep.

    Consumes ``(local_index, RunResult)`` completions in *any* order and
    folds them into :class:`ReplicatedPoint` values as soon as their
    inputs are complete.  The pair layout mirrors the submission order of
    :func:`_sweep_pairs`: size ``i`` replica ``r`` occupies indices
    ``2*n_seeds*i + 2*r`` (candidate) and ``+1`` (baseline).  A replica's
    :class:`SweepPoint` is built the moment its candidate/baseline pair
    is matched, and a size's :class:`ReplicatedPoint` the moment its last
    replica lands — at which point ``on_point`` (if given) fires.  Only
    unmatched halves are held, so memory stays proportional to the
    in-flight window, not the grid.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        seeds: tuple[int, ...],
        on_point: Callable[[ReplicatedPoint], None] | None = None,
    ) -> None:
        self.sizes = tuple(sizes)
        self.seeds = seeds
        self.n_seeds = len(seeds)
        self.on_point = on_point
        self.points: list[ReplicatedPoint | None] = [None] * len(self.sizes)
        self._halves: dict[tuple[int, int], list[RunResult | None]] = {}
        self._replicas: list[list[SweepPoint | None]] = [
            [None] * self.n_seeds for _ in self.sizes
        ]
        self._landed = [0] * len(self.sizes)

    def __len__(self) -> int:
        return 2 * self.n_seeds * len(self.sizes)

    def add(self, index: int, result: RunResult) -> None:
        i, rem = divmod(index, 2 * self.n_seeds)
        r, side = divmod(rem, 2)  # side 0 = candidate, 1 = baseline
        half = self._halves.setdefault((i, r), [None, None])
        half[side] = result
        if half[0] is None or half[1] is None:
            return
        del self._halves[(i, r)]
        self._replicas[i][r] = _build_point(self.sizes[i], half[0], half[1])
        self._landed[i] += 1
        if self._landed[i] == self.n_seeds:
            point = ReplicatedPoint(
                n_workers=self.sizes[i],
                seeds=self.seeds,
                replicas=tuple(self._replicas[i]),
            )
            self.points[i] = point
            if self.on_point is not None:
                self.on_point(point)


def _sweep_pairs(
    trace: Trace,
    sizes: Sequence[int],
    candidate_spec: RunSpec,
    baseline_spec: RunSpec,
    n_seeds: int,
    trace_factory: TraceFactory | None,
):
    """Yield one sweep's (spec, trace) pairs in the :class:`_SweepFold` layout."""
    seeds = replica_seeds(candidate_spec.seed, n_seeds)
    traces = _replica_traces(trace, seeds, trace_factory)
    candidates = candidate_spec.replicas(n_seeds)
    baselines = baseline_spec.replicas(n_seeds)
    for n in sizes:
        for r in range(n_seeds):
            yield candidates[r].with_(n_workers=n), traces[r]
            yield baselines[r].with_(n_workers=n), traces[r]


@dataclass(frozen=True, slots=True)
class SweepJob:
    """One candidate-vs-baseline sweep inside a :func:`multi_sweep` stream.

    A :class:`~repro.workloads.registry.WorkloadSpec` in place of the
    trace materializes lazily — only when the stream actually reaches
    this job — at the candidate spec's seed, and serves as the
    per-replica trace factory unless one is given.
    """

    trace: Trace | WorkloadSpec
    sizes: tuple[int, ...]
    candidate_spec: RunSpec
    baseline_spec: RunSpec
    trace_factory: TraceFactory | None = None


def multi_sweep(
    jobs: Sequence[SweepJob],
    executor: SweepExecutor | None = None,
    n_seeds: int = 1,
    on_point: Callable[[int, ReplicatedPoint], None] | None = None,
) -> list[list[ReplicatedPoint]]:
    """Run several sweeps as ONE continuous executor stream.

    Returns one points list per job, in job order — element ``j`` equals
    ``sweep(*jobs[j])`` exactly.  The difference is wall-clock shape:
    chaining ``sweep`` calls joins on every grid before starting the
    next (each batch serializes behind its slowest run), whereas here
    the pairs of all jobs feed one stream, so workers move on to job
    ``j+1``'s runs while job ``j``'s stragglers finish.  ``on_point``
    (if given) observes ``(job_index, point)`` as each point completes,
    which may interleave across jobs.
    """
    executor = executor or get_executor()
    jobs = list(jobs)
    folds: list[_SweepFold] = []
    offsets: list[int] = []
    offset = 0
    for j, job in enumerate(jobs):
        seeds = replica_seeds(job.candidate_spec.seed, n_seeds)
        hook = (
            None
            if on_point is None
            else (lambda point, j=j: on_point(j, point))
        )
        folds.append(_SweepFold(job.sizes, seeds, hook))
        offsets.append(offset)
        offset += 2 * n_seeds * len(job.sizes)

    def chained_pairs():
        for job in jobs:
            trace, factory = job.trace, job.trace_factory
            if isinstance(trace, WorkloadSpec):
                factory = factory or trace
                trace = trace.trace(job.candidate_spec.seed)
            yield from _sweep_pairs(
                trace,
                job.sizes,
                job.candidate_spec,
                job.baseline_spec,
                n_seeds,
                factory,
            )

    for index, _key, result in executor.run_stream(chained_pairs(), total=offset):
        j = bisect_right(offsets, index) - 1
        folds[j].add(index - offsets[j], result)
    return [fold.points for fold in folds]


def compare_at_size(
    trace: Trace | WorkloadSpec,
    n_workers: int,
    candidate_spec: RunSpec,
    baseline_spec: RunSpec,
    executor: SweepExecutor | None = None,
    n_seeds: int = 1,
    trace_factory: TraceFactory | None = None,
) -> ReplicatedPoint:
    points = sweep(
        trace,
        (n_workers,),
        candidate_spec,
        baseline_spec,
        executor=executor,
        n_seeds=n_seeds,
        trace_factory=trace_factory,
    )
    return points[0]


def sweep(
    trace: Trace | WorkloadSpec,
    sizes,
    candidate_spec: RunSpec,
    baseline_spec: RunSpec,
    executor: SweepExecutor | None = None,
    n_seeds: int = 1,
    trace_factory: TraceFactory | None = None,
    on_point: Callable[[ReplicatedPoint], None] | None = None,
) -> list[ReplicatedPoint]:
    """Compare the two schedulers at every cluster size.

    The whole sweep — candidate and baseline, every size, every replica
    seed — is one executor stream, so independent runs execute
    concurrently when the pool has more than one worker, and points fold
    incrementally as their replicas complete (``on_point`` observes each
    one right then; the returned list is unchanged).  Replica seeds
    derive from the candidate spec's seed (drivers give candidate and
    baseline the same base seed; each spec's own base is offset
    per-replica, keeping the pairing matched either way).

    A :class:`~repro.workloads.registry.WorkloadSpec` is accepted in
    place of the trace: it materializes at the candidate spec's seed and
    serves as the per-replica trace factory unless one is given.
    """
    if isinstance(trace, WorkloadSpec):
        trace_factory = trace_factory or trace
        trace = trace.trace(candidate_spec.seed)
    executor = executor or get_executor()
    sizes = tuple(sizes)
    seeds = replica_seeds(candidate_spec.seed, n_seeds)
    fold = _SweepFold(sizes, seeds, on_point)
    pairs = _sweep_pairs(
        trace, sizes, candidate_spec, baseline_spec, n_seeds, trace_factory
    )
    for index, _key, result in executor.run_stream(pairs, total=len(fold)):
        fold.add(index, result)
    return fold.points


def extra_metrics(
    point: ReplicatedPoint | SweepPoint, job_class: JobClass
) -> tuple[float, float]:
    """Figure 5c metrics: (fraction improved-or-equal, avg runtime ratio).

    For a replicated point these are matched-seed replica means; with a
    single replica, the historical per-run values bit-for-bit.
    """
    replicas = point.replicas if isinstance(point, ReplicatedPoint) else (point,)
    return (
        mean(
            [
                fraction_improved(r.candidate, r.baseline, job_class)
                for r in replicas
            ]
        ),
        mean(
            [
                average_runtime_ratio(r.candidate, r.baseline, job_class)
                for r in replicas
            ]
        ),
    )
