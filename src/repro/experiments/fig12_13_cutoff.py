"""Figures 12-13: sensitivity to the long/short cutoff threshold.

Hawk-vs-Sparrow ratios at the high-load cluster size while the cutoff
sweeps the paper's values (750 .. 2000 s).  Reporting note: as in the
paper, the job population counted as "long"/"short" changes with the
cutoff — more jobs are short at higher cutoffs.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import HIGH_LOAD_TARGET, RunSpec, high_load_size
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.experiments.traces import google_workload
from repro.metrics.comparison import normalized_percentile
from repro.metrics.stats import mean, paired_cell
from repro.workloads.replication import replica_seeds

#: The paper's x-axis (seconds); 1129 is Hawk's default Google cutoff.
PAPER_CUTOFFS = (750.0, 1000.0, 1129.0, 1300.0, 1500.0, 2000.0)


def run(
    scale: str = "full",
    seed: int = 0,
    cutoffs=PAPER_CUTOFFS,
    load_target: float = HIGH_LOAD_TARGET,
    n_seeds: int = 1,
) -> FigureResult:
    workload = google_workload(scale)
    n = high_load_size(workload.trace(seed), load_target)
    seeds = replica_seeds(seed, n_seeds)
    traces = [workload.trace(s) for s in seeds]
    result = FigureResult(
        figure_id="Figures 12-13",
        title=f"Cutoff sensitivity, Hawk normalized to Sparrow ({n} nodes)",
        headers=(
            "cutoff (s)",
            "% jobs long",
            "long p50",
            "long p90",
            "short p50",
            "short p90",
        ),
    )
    # One batch: the matched Hawk/Sparrow pair at every cutoff, per
    # replica seed.
    pairs = []
    for cutoff in cutoffs:
        for r, s in enumerate(seeds):
            hawk = RunSpec(
                scheduler="hawk",
                n_workers=n,
                cutoff=cutoff,
                short_partition_fraction=workload.short_partition_fraction,
                seed=s,
            )
            sparrow = RunSpec(
                scheduler="sparrow", n_workers=n, cutoff=cutoff, seed=s
            )
            pairs.extend([(hawk, traces[r]), (sparrow, traces[r])])
    results = get_executor().run_many(pairs)
    for i, cutoff in enumerate(cutoffs):
        base = 2 * n_seeds * i
        hawk_runs = [results[base + 2 * r] for r in range(n_seeds)]
        sparrow_runs = [results[base + 2 * r + 1] for r in range(n_seeds)]
        long_fraction = mean(
            [
                sum(1 for j in t if j.is_long(cutoff)) / len(t)
                for t in traces
            ]
        )

        def ratio_cell(job_class, p):
            return paired_cell(
                lambda h, s: normalized_percentile(h, s, job_class, p),
                hawk_runs,
                sparrow_runs,
            )

        result.add_row(
            cutoff,
            100.0 * long_fraction,
            ratio_cell(JobClass.LONG, 50),
            ratio_cell(JobClass.LONG, 90),
            ratio_cell(JobClass.SHORT, 50),
            ratio_cell(JobClass.SHORT, 90),
        )
    result.add_note(
        "Figure 12 = long columns, Figure 13 = short columns; Hawk should "
        "keep its benefits across the whole cutoff range"
    )
    if n_seeds > 1:
        result.add_note(
            f"aggregated over {n_seeds} matched seed replicas; "
            "ratio cells are mean±95% CI half-width (p: paired t vs ratio 1)"
        )
    return result
