"""Figures 12-13: sensitivity to the long/short cutoff threshold.

Hawk-vs-Sparrow ratios at the high-load cluster size while the cutoff
sweeps the paper's values (750 .. 2000 s).  Reporting note: as in the
paper, the job population counted as "long"/"short" changes with the
cutoff — more jobs are short at higher cutoffs.
"""

from __future__ import annotations

from repro.cluster.job import JobClass
from repro.experiments.config import HIGH_LOAD_TARGET, RunSpec, high_load_size
from repro.experiments.parallel import get_executor
from repro.experiments.report import FigureResult
from repro.experiments.traces import google_short_fraction, google_trace
from repro.metrics.comparison import normalized_percentile

#: The paper's x-axis (seconds); 1129 is Hawk's default Google cutoff.
PAPER_CUTOFFS = (750.0, 1000.0, 1129.0, 1300.0, 1500.0, 2000.0)


def run(
    scale: str = "full",
    seed: int = 0,
    cutoffs=PAPER_CUTOFFS,
    load_target: float = HIGH_LOAD_TARGET,
) -> FigureResult:
    trace = google_trace(scale, seed)
    n = high_load_size(trace, load_target)
    result = FigureResult(
        figure_id="Figures 12-13",
        title=f"Cutoff sensitivity, Hawk normalized to Sparrow ({n} nodes)",
        headers=(
            "cutoff (s)",
            "% jobs long",
            "long p50",
            "long p90",
            "short p50",
            "short p90",
        ),
    )
    # One batch: the Hawk/Sparrow pair at every cutoff.
    pairs = []
    for cutoff in cutoffs:
        hawk = RunSpec(
            scheduler="hawk",
            n_workers=n,
            cutoff=cutoff,
            short_partition_fraction=google_short_fraction(),
            seed=seed,
        )
        sparrow = RunSpec(
            scheduler="sparrow", n_workers=n, cutoff=cutoff, seed=seed
        )
        pairs.extend([(hawk, trace), (sparrow, trace)])
    results = get_executor().run_many(pairs)
    for i, cutoff in enumerate(cutoffs):
        hawk_res, sparrow_res = results[2 * i], results[2 * i + 1]
        long_fraction = sum(
            1 for j in trace if j.is_long(cutoff)
        ) / len(trace)
        result.add_row(
            cutoff,
            100.0 * long_fraction,
            normalized_percentile(hawk_res, sparrow_res, JobClass.LONG, 50),
            normalized_percentile(hawk_res, sparrow_res, JobClass.LONG, 90),
            normalized_percentile(hawk_res, sparrow_res, JobClass.SHORT, 50),
            normalized_percentile(hawk_res, sparrow_res, JobClass.SHORT, 90),
        )
    result.add_note(
        "Figure 12 = long columns, Figure 13 = short columns; Hawk should "
        "keep its benefits across the whole cutoff range"
    )
    return result
