"""Scenario workloads registered purely through the workload registry.

Neither generator below is referenced anywhere in the experiment layer:
they are constructed, validated, materialized and swept solely through
their registry registrations — ``WorkloadSpec("pareto-heavy")`` works in
every figure driver and sweep without touching
:mod:`repro.experiments.traces`.  They exist to prove the trace zoo is
open (the workload-axis mirror of ``schedulers/scenarios.py``) and to
stress the schedulers outside the paper's four calibrated traces:

* ``pareto-heavy`` — job mean task durations drawn from a Pareto
  distribution: a genuinely heavy tail, unlike the log-normal Google
  body.  Most jobs are tiny, a few are enormous, and the long/short
  boundary cuts much deeper into the tail; stealing and the partition
  have to absorb rare-but-huge long jobs instead of a stable 10% long
  class.
* ``bursty-diurnal`` — a two-class job mix arriving through a
  sinusoidally-modulated Poisson process (Lewis-Shedler thinning): load
  swings between trough and peak within one trace, so a scheduler sees
  both an overloaded and a mostly-idle cluster across a single run —
  the diurnal pattern production clusters actually face.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.params import Param
from repro.core.rng import make_rng
from repro.workloads.arrivals import poisson_arrival_times
from repro.workloads.durations import spread_durations
from repro.workloads.registry import register_workload
from repro.workloads.spec import JobSpec, Trace

#: Reporting boundaries (registry metadata; see each generator).
PARETO_CUTOFF_S = 600.0
BURSTY_CUTOFF_S = 500.0


@register_workload(
    "pareto-heavy",
    params=(
        Param("n_jobs", int, default=900, minimum=10, maximum=1_000_000,
              doc="jobs in the generated trace"),
        Param("mean_interarrival", float, default=20.0, minimum=0.001,
              maximum=1e6,
              doc="mean Poisson job inter-arrival gap (s)"),
        Param("alpha", float, default=1.3, minimum=1.01, maximum=10.0,
              doc="Pareto tail index of job mean durations (lower = heavier)"),
        Param("duration_floor", float, default=40.0, minimum=0.001,
              maximum=1e6,
              doc="Pareto scale x_m: the smallest job mean duration (s)"),
        Param("duration_max", float, default=50000.0, minimum=1.0, maximum=1e7,
              doc="clamp on the heavy tail (keeps simulations bounded)"),
        Param("tasks_centroid", float, default=30.0, minimum=1.0, maximum=1e5,
              doc="exponential mean of per-job task counts"),
    ),
    cutoff=PARETO_CUTOFF_S,
    short_partition_fraction=0.1,
    quick_params={"n_jobs": 240},
)
def pareto_heavy_trace(params, seed: int) -> Trace:
    """Heavy-tail workload: Pareto job mean durations, exponential sizes."""
    rng = make_rng(seed, "pareto-heavy")
    arrival_rng = make_rng(seed, "pareto-heavy-arrivals")
    n_jobs = params["n_jobs"]
    alpha = params["alpha"]
    floor = params["duration_floor"]
    # numpy's pareto draws the Lomax tail; 1 + draw is Pareto-I at x_m=1,
    # so `floor * (1 + draw)` has P(mean >= c) = (floor / c) ** alpha.
    means = floor * (1.0 + rng.pareto(alpha, size=n_jobs))
    means = np.clip(means, None, params["duration_max"])
    counts = np.clip(
        np.round(rng.exponential(params["tasks_centroid"], size=n_jobs)),
        1,
        None,
    ).astype(int)
    arrivals = poisson_arrival_times(
        arrival_rng, n_jobs, params["mean_interarrival"]
    )
    jobs = [
        JobSpec(
            job_id,
            submit,
            spread_durations(rng, int(counts[job_id]), float(means[job_id]), 0.5),
        )
        for job_id, submit in enumerate(arrivals)
    ]
    return Trace(jobs, name="pareto-heavy")


def _thinned_sinusoidal_arrivals(
    rng: np.random.Generator,
    n_jobs: int,
    mean_interarrival: float,
    amplitude: float,
    period: float,
) -> list[float]:
    """Lewis-Shedler thinning of rate(t) = base * (1 + A sin(2πt/period)).

    The accepted points form a non-homogeneous Poisson process whose
    intensity swings between ``base * (1 - A)`` and ``base * (1 + A)``
    — the trough/peak of one diurnal cycle every ``period`` seconds.
    """
    base_rate = 1.0 / mean_interarrival
    max_rate = base_rate * (1.0 + amplitude)
    times: list[float] = []
    t = 0.0
    while len(times) < n_jobs:
        t += float(rng.exponential(1.0 / max_rate))
        rate = base_rate * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period))
        if float(rng.uniform()) * max_rate < rate:
            times.append(t)
    return times


@register_workload(
    "bursty-diurnal",
    params=(
        Param("n_jobs", int, default=900, minimum=10, maximum=1_000_000,
              doc="jobs in the generated trace"),
        Param("mean_interarrival", float, default=20.0, minimum=0.001,
              maximum=1e6,
              doc="mean gap of the *average* arrival rate (s)"),
        Param("amplitude", float, default=0.8, minimum=0.0, maximum=0.99,
              doc="peak-to-mean rate swing: rate in base*(1±A)"),
        Param("period", float, default=4000.0, minimum=1.0, maximum=1e7,
              doc="length of one load cycle (s)"),
        Param("long_fraction", float, default=0.1, minimum=0.0, maximum=0.9,
              doc="fraction of jobs in the long class"),
    ),
    cutoff=BURSTY_CUTOFF_S,
    short_partition_fraction=0.12,
    quick_params={"n_jobs": 240},
)
def bursty_diurnal_trace(params, seed: int) -> Trace:
    """Two-class mix arriving through a sinusoidally-modulated Poisson."""
    rng = make_rng(seed, "bursty-diurnal")
    arrival_rng = make_rng(seed, "bursty-diurnal-arrivals")
    n_jobs = params["n_jobs"]
    arrivals = _thinned_sinusoidal_arrivals(
        arrival_rng,
        n_jobs,
        params["mean_interarrival"],
        params["amplitude"],
        params["period"],
    )
    long_draws = rng.uniform(size=n_jobs) < params["long_fraction"]
    jobs: list[JobSpec] = []
    for job_id, submit in enumerate(arrivals):
        if long_draws[job_id]:
            tasks = int(np.clip(round(rng.exponential(120.0)), 1, 2000))
            mean = float(
                np.clip(
                    math.exp(math.log(1500.0) + 0.5 * rng.standard_normal()),
                    BURSTY_CUTOFF_S,
                    30000.0,
                )
            )
        else:
            tasks = int(np.clip(round(rng.exponential(18.0)), 1, 200))
            mean = float(
                np.clip(
                    math.exp(math.log(80.0) + 0.8 * rng.standard_normal()),
                    1.0,
                    0.98 * BURSTY_CUTOFF_S,
                )
            )
        jobs.append(
            JobSpec(job_id, submit, spread_durations(rng, tasks, mean, 0.5))
        )
    return Trace(jobs, name="bursty-diurnal")
