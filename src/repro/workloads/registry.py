"""Pluggable workload registry: the open construction API for traces.

The mirror image of :mod:`repro.schedulers.registry` on the workload
axis.  Every trace generator registers itself here with a *name*, a
typed *parameter schema* (shared :class:`~repro.core.params.Param`
machinery) and a ``(params, seed) -> Trace`` factory; experiment code
names its input workload as a :class:`WorkloadSpec` — registered name
plus frozen, schema-validated params — instead of calling a generator
module directly.  Adding a workload — including one living entirely
outside this package — therefore never touches the experiment layer:
register it and every sweep, figure driver, cache key and CLI listing
picks it up.

A registration consists of

* ``name`` — the string accepted by ``WorkloadSpec.name``;
* ``params`` — a tuple of :class:`~repro.core.params.Param`
  declarations.  ``WorkloadSpec`` validates its ``params`` mapping at
  construction and canonicalizes it (defaults filled, keys sorted), so
  two specs that differ only in params-dict insertion order or in
  omitted-vs-explicit defaults are the *same* workload and materialize
  the *same* trace object;
* reporting metadata — ``cutoff`` (the workload's long/short boundary)
  and ``short_partition_fraction`` (Hawk's partition sizing for it), so
  drivers can build matched :class:`~repro.experiments.config.RunSpec`
  pairs without per-workload special cases;
* ``quick_params`` — the param overrides of the workload's cheap test
  scale, letting smoke jobs iterate the whole zoo generically.

Materialization is cached per process and keyed on the spec's canonical
digest plus the seed: ``WorkloadSpec("google").trace(0)`` is the same
:class:`~repro.workloads.spec.Trace` *object* everywhere in a session,
so the run cache and the shared-memory trace transport (both keyed on
``Trace.content_digest()``) see one trace per distinct
``(canonical params, seed)`` — this replaces the module-level ``_cache``
that :mod:`repro.experiments.traces` used to keep.

A ``WorkloadSpec`` is itself a ``seed -> Trace`` callable, i.e. a
:data:`~repro.workloads.replication.TraceFactory`: pass it wherever
seed-replicated machinery wants a factory.

Registering::

    from repro.workloads.registry import register_workload
    from repro.core.params import Param

    @register_workload(
        "my-trace",
        params=(Param("n_jobs", int, default=500, minimum=1),),
        cutoff=900.0,
        short_partition_fraction=0.1,
        quick_params={"n_jobs": 50},
    )
    def my_trace(params, seed):
        return Trace([...], name="my-trace")
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable

from repro.core.errors import ConfigurationError
from repro.core.params import FrozenParams, Param, check_schema, validate_against
from repro.workloads.spec import Trace

#: A registered factory: validated params plus seed in, trace out.
WorkloadBuilder = Callable[[Mapping, int], Trace]


@dataclass(frozen=True, slots=True)
class WorkloadEntry:
    """One registered workload: builder plus schema plus metadata."""

    name: str
    builder: WorkloadBuilder = field(compare=False)
    params: tuple[Param, ...] = ()
    #: Long/short boundary the paper-style reporting uses for this trace.
    cutoff: float = 0.0
    #: Hawk's short-partition sizing when run on this trace.
    short_partition_fraction: float = 0.0
    #: Param overrides of the cheap (test/CI smoke) scale.
    quick_params: Mapping = FrozenParams()
    doc: str = ""

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def defaults(self) -> FrozenParams:
        return FrozenParams({p.name: p.default for p in self.params})


_REGISTRY: dict[str, WorkloadEntry] = {}


def _ensure_builtins() -> None:
    """Import the package so built-in generator modules register themselves."""
    import repro.workloads  # noqa: F401  (idempotent side-effect import)


def register_workload(
    name: str,
    *,
    params: Iterable[Param] = (),
    cutoff: float,
    short_partition_fraction: float = 0.0,
    quick_params: Mapping | None = None,
    doc: str | None = None,
):
    """Function decorator adding one workload to the registry.

    The decorated function is the builder: it receives the validated
    params mapping and the seed, and returns the generated trace.
    Registration fails loudly on duplicate names, duplicate param names
    and quick-scale overrides that do not themselves validate.
    """
    params = tuple(params)
    if name in _REGISTRY:
        raise ConfigurationError(f"workload {name!r} is already registered")
    check_schema(f"workload {name!r}", params)
    if cutoff <= 0.0:
        raise ConfigurationError(
            f"workload {name!r} needs a positive long/short cutoff, "
            f"got {cutoff}"
        )
    if not 0.0 <= short_partition_fraction < 1.0:
        raise ConfigurationError(
            f"workload {name!r} short_partition_fraction must be in "
            f"[0, 1), got {short_partition_fraction}"
        )
    # quick_params must be a valid (partial) assignment of the schema;
    # only the overrides themselves are stored, so describe() shows what
    # the quick scale actually changes.
    by_name = {p.name: p for p in params}
    quick = dict(quick_params or {})
    unknown = sorted(set(quick) - set(by_name))
    if unknown:
        raise ConfigurationError(
            f"workload {name!r} quick_params name(s) {unknown} are not "
            f"declared params: {sorted(by_name)}"
        )
    quick = {k: by_name[k].validate(v) for k, v in quick.items()}

    def decorate(builder: WorkloadBuilder) -> WorkloadBuilder:
        summary = doc
        if summary is None:
            lines = (builder.__doc__ or "").strip().splitlines()
            summary = lines[0] if lines else ""
        _REGISTRY[name] = WorkloadEntry(
            name=name,
            builder=builder,
            params=params,
            cutoff=cutoff,
            short_partition_fraction=short_partition_fraction,
            quick_params=FrozenParams(quick),
            doc=summary,
        )
        return builder

    return decorate


def unregister(name: str) -> None:
    """Remove one registration (test/plugin teardown helper).

    Also evicts the workload's materialized traces: the cache keys on
    (name, canonical params), not on the builder, so a later
    re-registration under the same name must not serve the old
    builder's traces.
    """
    _REGISTRY.pop(name, None)
    prefix = f"workload:{name};"
    for key in [k for k in _MATERIALIZED if k[0].startswith(prefix)]:
        del _MATERIALIZED[key]


def registered_names() -> tuple[str, ...]:
    """Every registered workload name, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def workload_entry(name: str) -> WorkloadEntry:
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; registered workloads: "
            f"{sorted(_REGISTRY)}"
        ) from None


def validate_params(name: str, params: Mapping | None = None) -> FrozenParams:
    """Schema-check one params mapping; returns it canonicalized."""
    entry = workload_entry(name)
    return validate_against(f"workload {name!r}", entry.params, params)


# -- per-process materialization cache ----------------------------------
#: Generated traces keyed on (canonical workload digest, seed).  Gives
#: object identity within a session — every figure asking for the same
#: workload at the same seed shares one Trace object, so the run cache
#: and the shared-memory transport (keyed on the trace's content digest)
#: serialize and publish it exactly once.
_MATERIALIZED: dict[tuple[str, int], Trace] = {}


def clear_materialized() -> None:
    """Drop the per-process trace cache (test isolation helper)."""
    _MATERIALIZED.clear()


def materialized_count() -> int:
    return len(_MATERIALIZED)


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """First-class trace identity: registered name + frozen params.

    The workload analogue of :class:`~repro.experiments.config.RunSpec`:
    ``params`` is validated against the registry schema at construction
    — unknown names, wrong types and out-of-range values fail fast —
    and stored canonically ordered with defaults filled, so equality,
    hashing and :meth:`digest` are independent of params-dict insertion
    order.  Calling the spec (``spec(seed)``) materializes the trace
    through the per-process cache, which makes a ``WorkloadSpec`` a
    drop-in :data:`~repro.workloads.replication.TraceFactory`.
    """

    name: str
    params: Mapping = FrozenParams()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", validate_params(self.name, self.params))

    @property
    def entry(self) -> WorkloadEntry:
        return workload_entry(self.name)

    @property
    def cutoff(self) -> float:
        """The workload's long/short reporting boundary."""
        return self.entry.cutoff

    @property
    def short_partition_fraction(self) -> float:
        """Hawk's short-partition sizing for this workload."""
        return self.entry.short_partition_fraction

    def param(self, name: str):
        """One validated param value (defaults filled in)."""
        return self.params[name]

    def with_(self, **changes) -> "WorkloadSpec":
        """A copy with dataclass fields replaced (``name=``/``params=``)."""
        return replace(self, **changes)

    def with_params(self, **overrides) -> "WorkloadSpec":
        """A copy with individual params overridden, the rest kept."""
        merged = dict(self.params)
        merged.update(overrides)
        return replace(self, params=merged)

    def digest(self) -> str:
        """Canonical identity string: name plus canonically-ordered params.

        Two specs with equal digests materialize byte-identical traces
        at every seed (the builder is a pure function of
        ``(params, seed)``), which is what lets run-cache entries and
        shared-memory segments key on the downstream trace digest
        without ever re-hashing trace bytes per call site.
        """
        return f"workload:{self.name};{self.params!r}"

    def trace(self, seed: int = 0) -> Trace:
        """The materialized trace, cached per ``(digest, seed)``."""
        key = (self.digest(), seed)
        trace = _MATERIALIZED.get(key)
        if trace is None:
            trace = self.entry.builder(self.params, seed)
            if not isinstance(trace, Trace):
                raise ConfigurationError(
                    f"workload {self.name!r} builder returned "
                    f"{type(trace).__name__}, expected Trace"
                )
            _MATERIALIZED[key] = trace
        return trace

    def __call__(self, seed: int) -> Trace:
        """TraceFactory protocol: ``seed -> Trace``."""
        return self.trace(seed)


def quick_spec(name: str, params: Mapping | None = None) -> WorkloadSpec:
    """The workload at its registered quick (test/smoke) scale.

    ``params`` overrides are applied on top of the entry's
    ``quick_params``.
    """
    entry = workload_entry(name)
    merged = dict(entry.quick_params)
    if params:
        merged.update(params)
    return WorkloadSpec(name, merged)


def describe() -> str:
    """Canonical schema listing (sorted by name) for drift detection.

    The CI workload-smoke job diffs this against a checked-in snapshot
    (``benchmarks/results/workload_schema.txt``); any change to workload
    names, metadata or param schemas shows up as a failing diff until
    the snapshot is regenerated on purpose.
    """
    _ensure_builtins()
    lines = []
    for name in sorted(_REGISTRY):
        entry = _REGISTRY[name]
        meta = [
            f"cutoff={entry.cutoff:g}",
            f"short-fraction={entry.short_partition_fraction:g}",
        ]
        lines.append(f"workload {name}  [{' '.join(meta)}]")
        for param in entry.params:
            quick = ""
            if param.name in entry.quick_params:
                quick = f"  quick {entry.quick_params[param.name]!r}"
            lines.append(f"  {param.describe()}{quick}")
    return "\n".join(lines) + "\n"
