"""Shared per-task duration spreading used by the trace generators."""

from __future__ import annotations

import numpy as np


def spread_durations(
    rng: np.random.Generator, n_tasks: int, mean: float, cv: float
) -> tuple[float, ...]:
    """Per-task durations: Gaussian spread, rescaled to the exact mean.

    Draws ``N(mean, cv * mean)`` per task, floors at 5% of the mean, and
    rescales so the job's realized mean is exactly the drawn one — the
    recipe the Google-like generator calibrates against (its published
    task-seconds share depends on the exact-mean property), shared by
    the scenario workloads so the generators cannot silently diverge.
    """
    if n_tasks == 1 or cv == 0.0:
        return (float(mean),) * n_tasks
    raw = rng.normal(mean, cv * mean, size=n_tasks)
    raw = np.clip(raw, 0.05 * mean, None)
    raw *= mean * n_tasks / float(raw.sum())
    return tuple(float(d) for d in raw)
