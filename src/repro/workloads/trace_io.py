"""Trace file I/O.

The on-disk format mirrors the simulator input of Section 4.1 — one job
per line::

    job_id <TAB> submit_time <TAB> dur_1,dur_2,...,dur_t

Files ending in ``.gz`` are transparently compressed.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterable

from repro.core.errors import ConfigurationError
from repro.workloads.spec import JobSpec, Trace


def _open(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")  # type: ignore[return-value]
    return open(path, mode)


def write_trace(trace: Iterable[JobSpec], path: str | Path) -> None:
    """Serialize a trace; durations keep full float precision."""
    path = Path(path)
    with _open(path, "w") as f:
        for job in trace:
            durations = ",".join(repr(d) for d in job.task_durations)
            f.write(f"{job.job_id}\t{job.submit_time!r}\t{durations}\n")


def read_trace(path: str | Path, name: str | None = None) -> Trace:
    """Parse a trace file written by :func:`write_trace`."""
    path = Path(path)
    jobs: list[JobSpec] = []
    with _open(path, "r") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ConfigurationError(
                    f"{path}:{lineno}: expected 3 tab-separated fields, "
                    f"got {len(parts)}"
                )
            job_id = int(parts[0])
            submit = float(parts[1])
            durations = tuple(float(d) for d in parts[2].split(","))
            jobs.append(JobSpec(job_id, submit, durations))
    if not jobs:
        raise ConfigurationError(f"{path}: empty trace file")
    return Trace(jobs, name=name or path.stem)
