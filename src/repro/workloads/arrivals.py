"""Job arrival processes.

The paper derives job submission times from a Poisson process
(Sections 2.3 and 4.1): exponentially distributed inter-arrival gaps.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigurationError


def poisson_arrival_times(
    rng: np.random.Generator, n: int, mean_interarrival: float
) -> list[float]:
    """Submission times for ``n`` jobs with the given mean gap (seconds)."""
    if n <= 0:
        raise ConfigurationError(f"need at least one arrival, got {n}")
    if mean_interarrival <= 0:
        raise ConfigurationError(
            f"mean inter-arrival must be positive, got {mean_interarrival}"
        )
    gaps = rng.exponential(mean_interarrival, size=n)
    return [float(t) for t in np.cumsum(gaps)]
