"""Cloudera / Facebook / Yahoo workloads from k-means cluster descriptions.

Section 4.1 of the paper: "In [4, 5] the workloads are described as
k-means clusters, and the first cluster is deemed composed of short jobs.
[...] We then use the derived centroid values as the scale parameter in an
exponential distribution in order to obtain the number of tasks and the
mean task duration for each job.  Given the mean task duration we derive
task runtimes using a Gaussian distribution with standard deviation twice
the mean, excluding negative values."

We follow that recipe literally.  The centroid tables themselves are our
reconstruction (the originals are only summarized in the cited papers);
they are tuned so the generated workloads land near the Table 1/Table 2
statistics, which the Table 1 benchmark reports measured-vs-paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.params import Param
from repro.core.rng import make_rng
from repro.workloads.arrivals import poisson_arrival_times
from repro.workloads.registry import register_workload
from repro.workloads.spec import JobSpec, Trace


@dataclass(frozen=True, slots=True)
class KMeansCluster:
    """One k-means cluster: population weight and centroid values."""

    weight: float
    tasks_centroid: float
    duration_centroid: float


@dataclass(frozen=True, slots=True)
class KMeansWorkloadSpec:
    """A workload described as k-means clusters (first cluster = short)."""

    name: str
    clusters: tuple[KMeansCluster, ...]
    cutoff: float
    short_partition_fraction: float
    paper_long_fraction: float
    paper_task_seconds_share: float
    paper_total_jobs: int

    def __post_init__(self) -> None:
        total = sum(c.weight for c in self.clusters)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"{self.name}: cluster weights sum to {total}, expected 1.0"
            )


#: Cloudera-C 2011 (paper: 5.02% long jobs, 92.79% task-seconds, 21030 jobs).
CLOUDERA_C = KMeansWorkloadSpec(
    name="cloudera-c",
    clusters=(
        KMeansCluster(weight=0.9498, tasks_centroid=20.0, duration_centroid=90.0),
        KMeansCluster(weight=0.0320, tasks_centroid=120.0, duration_centroid=900.0),
        KMeansCluster(weight=0.0130, tasks_centroid=300.0, duration_centroid=2500.0),
        KMeansCluster(weight=0.0052, tasks_centroid=600.0, duration_centroid=3500.0),
    ),
    cutoff=700.0,
    short_partition_fraction=0.09,
    paper_long_fraction=0.0502,
    paper_task_seconds_share=0.9279,
    paper_total_jobs=21030,
)

#: Facebook 2010 (paper: 2.01% long jobs, 99.79% task-seconds, 1169184 jobs).
FACEBOOK_2010 = KMeansWorkloadSpec(
    name="facebook-2010",
    clusters=(
        KMeansCluster(weight=0.9799, tasks_centroid=5.0, duration_centroid=30.0),
        KMeansCluster(weight=0.0120, tasks_centroid=200.0, duration_centroid=1500.0),
        KMeansCluster(weight=0.0060, tasks_centroid=800.0, duration_centroid=4000.0),
        KMeansCluster(weight=0.0021, tasks_centroid=2500.0, duration_centroid=8000.0),
    ),
    cutoff=400.0,
    short_partition_fraction=0.02,
    paper_long_fraction=0.0201,
    paper_task_seconds_share=0.9979,
    paper_total_jobs=1169184,
)

#: Yahoo 2011 (paper: 9.41% long jobs, 98.31% task-seconds, 24262 jobs).
YAHOO_2011 = KMeansWorkloadSpec(
    name="yahoo-2011",
    clusters=(
        KMeansCluster(weight=0.8959, tasks_centroid=25.0, duration_centroid=60.0),
        KMeansCluster(weight=0.0700, tasks_centroid=150.0, duration_centroid=1200.0),
        KMeansCluster(weight=0.0250, tasks_centroid=400.0, duration_centroid=3000.0),
        KMeansCluster(weight=0.0091, tasks_centroid=1200.0, duration_centroid=7000.0),
    ),
    cutoff=800.0,
    short_partition_fraction=0.02,
    paper_long_fraction=0.0941,
    paper_task_seconds_share=0.9831,
    paper_total_jobs=24262,
)

ALL_KMEANS_WORKLOADS = (CLOUDERA_C, FACEBOOK_2010, YAHOO_2011)


def _positive_gaussian_durations(
    rng: np.random.Generator, n_tasks: int, mean: float
) -> tuple[float, ...]:
    """N(mean, 2*mean) excluding non-positive values (the paper's recipe)."""
    out = np.empty(n_tasks)
    filled = 0
    while filled < n_tasks:
        draw = rng.normal(mean, 2.0 * mean, size=n_tasks - filled)
        draw = draw[draw > 0.0]
        out[filled : filled + len(draw)] = draw
        filled += len(draw)
    return tuple(float(d) for d in out)


def kmeans_trace(
    spec: KMeansWorkloadSpec,
    n_jobs: int,
    mean_interarrival: float,
    seed: int = 0,
    max_tasks_per_job: int = 8000,
) -> Trace:
    """Generate ``n_jobs`` jobs following the workload's cluster mixture."""
    if n_jobs <= 0:
        raise ConfigurationError(f"n_jobs must be positive, got {n_jobs}")
    rng = make_rng(seed, f"kmeans-{spec.name}")
    arrival_rng = make_rng(seed, f"kmeans-arrivals-{spec.name}")
    arrivals = poisson_arrival_times(arrival_rng, n_jobs, mean_interarrival)

    # Stratified assignment: each cluster gets round(weight * n) jobs
    # (largest-remainder method), so small long-job clusters are always
    # represented even in downscaled traces; order is then shuffled.
    quotas = [c.weight * n_jobs for c in spec.clusters]
    counts = [int(q) for q in quotas]
    remainders = sorted(
        range(len(quotas)), key=lambda i: quotas[i] - counts[i], reverse=True
    )
    for i in range(n_jobs - sum(counts)):
        counts[remainders[i % len(remainders)]] += 1
    cluster_ids = np.repeat(np.arange(len(spec.clusters)), counts)
    rng.shuffle(cluster_ids)

    jobs: list[JobSpec] = []
    for job_id, submit in enumerate(arrivals):
        cluster = spec.clusters[int(cluster_ids[job_id])]
        n_tasks = int(
            np.clip(
                round(rng.exponential(cluster.tasks_centroid)),
                1,
                max_tasks_per_job,
            )
        )
        mean_duration = max(1.0, float(rng.exponential(cluster.duration_centroid)))
        durations = _positive_gaussian_durations(rng, n_tasks, mean_duration)
        jobs.append(JobSpec(job_id, submit, durations))
    return Trace(jobs, name=spec.name)


# -- registry entries ----------------------------------------------------
def _register_kmeans(spec: KMeansWorkloadSpec) -> None:
    """One registry entry per k-means-described workload."""

    @register_workload(
        spec.name,
        params=(
            Param("n_jobs", int, default=900, minimum=1, maximum=1_000_000,
                  doc="jobs in the generated trace"),
            Param("mean_interarrival", float, default=20.0, minimum=0.001,
                  maximum=1e6,
                  doc="mean Poisson job inter-arrival gap (s)"),
            Param("max_tasks_per_job", int, default=8000, minimum=1,
                  maximum=1_000_000,
                  doc="clamp on the exponential task-count draw"),
        ),
        cutoff=spec.cutoff,
        short_partition_fraction=spec.short_partition_fraction,
        quick_params={"n_jobs": 240},
        doc=f"{spec.name} workload from its k-means cluster description",
    )
    def _build(params, seed: int, _spec=spec) -> Trace:
        return kmeans_trace(
            _spec,
            n_jobs=params["n_jobs"],
            mean_interarrival=params["mean_interarrival"],
            seed=seed,
            max_tasks_per_job=params["max_tasks_per_job"],
        )


for _spec in ALL_KMEANS_WORKLOADS:
    _register_kmeans(_spec)
del _spec
