"""Seeded trace replication: independent workload draws per replica.

Every generator in this package is a pure function of ``(config, seed)``,
so an experiment can be replicated by re-running it over a family of
seeds.  This module fixes the seed-derivation convention in one place:

* replica ``r`` of base seed ``s`` uses seed ``s + r`` — replica 0 *is*
  the base seed, which is what keeps the single-seed experiment path
  bit-identical to the historical one;
* candidate and baseline runs of the same replica share the seed (and
  therefore the regenerated trace), so paired comparisons cancel the
  trace-level noise ("matched-seed pairing", see
  :mod:`repro.metrics.stats`).

Overlap between seed families (base 0 and base 1 share seeds ``1..``) is
deliberate: replicas are content-addressed in the run cache, so shared
seeds mean shared cached runs.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.errors import ConfigurationError
from repro.workloads.spec import Trace

#: A seeded trace generator: ``seed -> Trace``, deterministic per seed.
TraceFactory = Callable[[int], Trace]


def replica_seeds(base_seed: int, n_seeds: int) -> tuple[int, ...]:
    """The seed family for ``n_seeds`` replicas of ``base_seed``.

    ``replica_seeds(s, 1) == (s,)``: a single replica is exactly the
    base experiment.
    """
    if n_seeds <= 0:
        raise ConfigurationError(f"n_seeds must be positive, got {n_seeds}")
    return tuple(base_seed + r for r in range(n_seeds))


def replicate_trace(
    factory: TraceFactory, base_seed: int, n_seeds: int
) -> tuple[Trace, ...]:
    """One independent trace draw per replica seed."""
    return tuple(factory(s) for s in replica_seeds(base_seed, n_seeds))


def assert_independent(traces: Sequence[Trace]) -> None:
    """Guard: replicated traces must be distinct draws.

    A factory that ignores its seed argument would silently turn a
    replicated experiment into ``n`` copies of one sample; digests catch
    that at generation time.  (Called by tests and available to drivers;
    identical seeds legitimately produce identical traces, so only use
    this on traces generated from *distinct* seeds.)
    """
    digests = [t.content_digest() for t in traces]
    if len(set(digests)) != len(digests):
        raise ConfigurationError(
            "replicated traces are not independent draws: a trace factory "
            "ignored its seed (duplicate content digests)"
        )
