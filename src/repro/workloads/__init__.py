"""Workload generators, the workload registry, trace analysis and I/O.

Importing this package registers every built-in workload with
:mod:`repro.workloads.registry` (each generator module self-registers at
import time), so ``WorkloadSpec(name)`` works for the whole zoo after a
plain ``import repro.workloads``.
"""

from repro.workloads.analysis import (
    cdf_points,
    long_job_fraction,
    mean_duration_ratio,
    task_seconds_share,
    tasks_share,
    workload_summary,
)
from repro.workloads.arrivals import poisson_arrival_times
from repro.workloads.google import GOOGLE_CUTOFF_S, GoogleTraceConfig, google_like_trace
from repro.workloads.kmeans import (
    CLOUDERA_C,
    FACEBOOK_2010,
    YAHOO_2011,
    KMeansWorkloadSpec,
    kmeans_trace,
)
from repro.workloads.motivation import MotivationConfig, motivation_trace
from repro.workloads.registry import (
    WorkloadEntry,
    WorkloadSpec,
    quick_spec,
    register_workload,
)
from repro.workloads.replication import (
    TraceFactory,
    replica_seeds,
    replicate_trace,
)
from repro.workloads.scaling import scale_trace_for_prototype

# Imported for the registration side effect: the scenario workloads are
# constructed through WorkloadSpec("pareto-heavy"/"bursty-diurnal"), not
# by calling their (params, seed) builders directly.
import repro.workloads.scenarios  # noqa: F401  isort: skip
from repro.workloads.spec import JobSpec, Trace
from repro.workloads.trace_io import read_trace, write_trace

__all__ = [
    "CLOUDERA_C",
    "FACEBOOK_2010",
    "GOOGLE_CUTOFF_S",
    "GoogleTraceConfig",
    "JobSpec",
    "KMeansWorkloadSpec",
    "MotivationConfig",
    "Trace",
    "TraceFactory",
    "WorkloadEntry",
    "WorkloadSpec",
    "YAHOO_2011",
    "cdf_points",
    "google_like_trace",
    "kmeans_trace",
    "long_job_fraction",
    "mean_duration_ratio",
    "motivation_trace",
    "poisson_arrival_times",
    "quick_spec",
    "read_trace",
    "register_workload",
    "replica_seeds",
    "replicate_trace",
    "scale_trace_for_prototype",
    "task_seconds_share",
    "tasks_share",
    "workload_summary",
    "write_trace",
]
