"""Trace scaling for the prototype runtime (Section 4.1, "Real cluster run").

The paper scales its 3300-job Google sample to a 100-node cluster:

* task durations are divided by 1000 (seconds become milliseconds) and run
  as sleep tasks;
* the number of tasks per job is scaled down keeping the ratio between the
  cluster size and the largest job constant, compensating by increasing
  the duration of the remaining tasks so task-seconds are preserved;
* cluster load is varied through the mean job inter-arrival time expressed
  as a multiple of the mean task runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.params import Param
from repro.workloads.google import (
    GOOGLE_CUTOFF_S,
    GoogleTraceConfig,
    google_like_trace,
)
from repro.workloads.registry import register_workload
from repro.workloads.spec import JobSpec, Trace


@dataclass(frozen=True, slots=True)
class PrototypeScaledTrace:
    """A time/size-scaled trace plus the factors needed to interpret it."""

    trace: Trace
    time_scale: float
    #: The long/short cutoff expressed in scaled seconds.
    cutoff: float
    #: Jobs classified long on the *original* trace.  Task-count
    #: compensation perturbs per-job mean durations, so classification is
    #: decided before scaling and carried through (the paper's estimates
    #: come from previous runs of the same jobs, i.e. pre-scaling data).
    long_job_ids: frozenset[int]


def scale_trace_for_prototype(
    trace: Trace,
    cluster_size: int,
    cutoff: float,
    time_scale: float | None = None,
    target_mean_task_runtime: float = 0.05,
    reference_cluster_size: int | None = None,
) -> PrototypeScaledTrace:
    """Scale a trace the way the paper prepares its prototype runs.

    ``reference_cluster_size`` is the cluster the trace was sized for; by
    default the largest job defines it (largest job == reference size, as
    keeping "the ratio between the cluster size and the largest number of
    tasks in a job" constant implies).

    The paper divides durations by a fixed 1000 (seconds to milliseconds);
    here ``time_scale=None`` instead picks the factor that makes the
    task-weighted mean task runtime equal ``target_mean_task_runtime``
    seconds, so a benchmark can bound its wall-clock cost explicitly.
    """
    if cluster_size <= 0:
        raise ConfigurationError(f"cluster_size must be positive, got {cluster_size}")
    if time_scale is not None and time_scale <= 0:
        raise ConfigurationError(f"time_scale must be positive, got {time_scale}")
    if target_mean_task_runtime <= 0:
        raise ConfigurationError("target_mean_task_runtime must be positive")
    largest = max(job.num_tasks for job in trace)
    reference = reference_cluster_size or largest
    task_factor = cluster_size / reference
    sized: list[tuple[JobSpec, int, float]] = []
    for job in trace:
        new_tasks = max(1, int(round(job.num_tasks * task_factor)))
        # Preserve task-seconds: stretch remaining tasks proportionally.
        mean = job.mean_task_duration * job.num_tasks / new_tasks
        sized.append((job, new_tasks, mean))
    if time_scale is None:
        total_ts = sum(tasks * mean for _, tasks, mean in sized)
        total_tasks = sum(tasks for _, tasks, mean in sized)
        time_scale = target_mean_task_runtime * total_tasks / total_ts
    scaled = [
        JobSpec(
            job.job_id,
            job.submit_time * time_scale,
            (mean * time_scale,) * new_tasks,
        )
        for job, new_tasks, mean in sized
    ]
    return PrototypeScaledTrace(
        trace=Trace(scaled, name=f"{trace.name}-prototype"),
        time_scale=time_scale,
        cutoff=cutoff * time_scale,
        long_job_ids=frozenset(
            job.job_id for job in trace if job.is_long(cutoff)
        ),
    )


def mean_task_runtime(trace: Trace) -> float:
    """Task-weighted mean task duration of a trace."""
    total_ts = trace.total_task_seconds
    total_tasks = trace.total_tasks
    return total_ts / total_tasks


def with_interarrival(trace: Trace, mean_interarrival: float, seed: int = 0) -> Trace:
    """Re-draw Poisson submission times with a new mean gap.

    Used by the load sweep of Figures 16-17, where load is controlled via
    the inter-arrival / mean-task-runtime ratio.
    """
    from repro.core.rng import make_rng
    from repro.workloads.arrivals import poisson_arrival_times

    rng = make_rng(seed, "rearrival")
    times = poisson_arrival_times(rng, len(trace), mean_interarrival)
    jobs = [
        JobSpec(job.job_id, t, job.task_durations)
        for job, t in zip(trace, times)
    ]
    return Trace(jobs, name=trace.name)


#: The paper's fixed seconds-to-milliseconds prototype scaling.  Fixed
#: (not a param) so the entry's scaled cutoff metadata stays truthful.
_PROTOTYPE_TIME_SCALE = 0.001


@register_workload(
    "google-prototype",
    params=(
        Param("n_jobs", int, default=3300, minimum=10, maximum=1_000_000,
              doc="jobs sampled from the Google-like generator"),
        Param("cluster_size", int, default=100, minimum=1, maximum=100_000,
              doc="target cluster the task counts are rescaled for"),
    ),
    cutoff=GOOGLE_CUTOFF_S * _PROTOTYPE_TIME_SCALE,
    short_partition_fraction=0.17,
    quick_params={"n_jobs": 80},
)
def _google_prototype_workload(params, seed: int) -> Trace:
    """Google-like sample scaled for prototype runs (Section 4.1 recipe)."""
    base = google_like_trace(GoogleTraceConfig(n_jobs=params["n_jobs"]), seed=seed)
    scaled = scale_trace_for_prototype(
        base,
        cluster_size=params["cluster_size"],
        cutoff=GOOGLE_CUTOFF_S,
        time_scale=_PROTOTYPE_TIME_SCALE,
    )
    return scaled.trace
