"""The Section 2.3 motivation workload.

"1000 jobs need to be scheduled in a cluster of 15000 servers.  95% of the
jobs are considered short.  Each short job has 100 tasks, and each task
takes 100s to complete.  5% of the jobs are long.  Each has 1000 tasks,
and each task takes 20000s.  The job submission times are derived from a
Poisson distribution with a mean of 50s."

A ``scale`` parameter shrinks jobs and the recommended cluster size
together so the same utilization regime can be explored cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.params import Param
from repro.core.rng import make_rng
from repro.workloads.arrivals import poisson_arrival_times
from repro.workloads.registry import register_workload
from repro.workloads.spec import JobSpec, Trace


@dataclass(frozen=True, slots=True)
class MotivationConfig:
    """Parameters of the Section 2.3 scenario (defaults = the paper's)."""

    n_jobs: int = 1000
    n_servers: int = 15000
    short_fraction: float = 0.95
    short_tasks: int = 100
    short_duration: float = 100.0
    long_tasks: int = 1000
    long_duration: float = 20000.0
    mean_interarrival: float = 50.0
    #: Cutoff separating the two classes for reporting (any value between
    #: the two durations works; the midpoint in log space is conventional).
    cutoff: float = 1414.0

    def scaled(self, scale: float) -> "MotivationConfig":
        """Shrink the scenario by ``scale`` (jobs and servers together)."""
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        return MotivationConfig(
            n_jobs=max(20, int(round(self.n_jobs * scale))),
            n_servers=max(30, int(round(self.n_servers * scale))),
            short_fraction=self.short_fraction,
            short_tasks=self.short_tasks,
            short_duration=self.short_duration,
            long_tasks=self.long_tasks,
            long_duration=self.long_duration,
            mean_interarrival=self.mean_interarrival / scale,
            cutoff=self.cutoff,
        )


def motivation_trace(config: MotivationConfig | None = None, seed: int = 0) -> Trace:
    """Build the motivation workload."""
    cfg = config or MotivationConfig()
    rng = make_rng(seed, "motivation")
    arrivals = poisson_arrival_times(rng, cfg.n_jobs, cfg.mean_interarrival)
    n_long = max(1, int(round(cfg.n_jobs * (1.0 - cfg.short_fraction))))
    # Spread long jobs evenly through the submission order, as a trace
    # sorted by arrival would interleave them.
    long_positions = {
        int(round(i * cfg.n_jobs / n_long)) for i in range(n_long)
    }
    jobs: list[JobSpec] = []
    for job_id, submit in enumerate(arrivals):
        if job_id in long_positions:
            durations = (cfg.long_duration,) * cfg.long_tasks
        else:
            durations = (cfg.short_duration,) * cfg.short_tasks
        jobs.append(JobSpec(job_id, submit, durations))
    return Trace(jobs, name="motivation")


@register_workload(
    "motivation",
    params=(
        Param("scale", float, default=1.0, minimum=0.001, maximum=1.0,
              doc="shrink factor: jobs and recommended servers together"),
    ),
    cutoff=MotivationConfig().cutoff,
    short_partition_fraction=0.17,
    quick_params={"scale": 0.02},
)
def _motivation_workload(params, seed: int) -> Trace:
    """The Section 2.3 motivation scenario (95% short / 5% long jobs)."""
    return motivation_trace(MotivationConfig().scaled(params["scale"]), seed=seed)
