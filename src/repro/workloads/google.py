"""Synthetic Google-2011-like trace generator.

The paper uses the public Google trace (506,460 jobs after cleaning).  The
trace itself is not redistributable inside this repository, so we generate
a synthetic workload calibrated to every statistic the paper publishes
about it (Section 2.1):

* 10% of jobs are long (top decile by average task duration),
* long jobs account for ~83.65% of task-seconds,
* long jobs contribute ~28% of all tasks,
* long jobs' average task duration is ~7.34x that of short jobs,
* the long/short cutoff is 1129 s (the default of Figure 12),
* task durations vary within a job.

Mechanism: job-level (num_tasks, mean_duration) pairs are drawn from
log-normal distributions — with positive correlation between size and
duration for long jobs, without which the published task-seconds share is
unreachable — and per-task durations are Gaussian around the job mean and
rescaled so the job's realized mean is exactly the drawn one.  A final
calibration pass scales long-job durations by a single factor so the
sample's task-seconds share matches the target exactly (up to the
cutoff-floor clamp).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.params import Param
from repro.core.rng import make_rng
from repro.workloads.arrivals import poisson_arrival_times
from repro.workloads.durations import spread_durations
from repro.workloads.registry import register_workload
from repro.workloads.spec import JobSpec, Trace

#: Default long/short cutoff for the Google workload (Figure 12's default).
GOOGLE_CUTOFF_S = 1129.0

#: Short partition sizing for the Google workload (Section 4.1).
GOOGLE_SHORT_PARTITION_FRACTION = 0.17


@dataclass(frozen=True, slots=True)
class GoogleTraceConfig:
    """Knobs of the synthetic Google-like generator."""

    n_jobs: int = 1200
    mean_interarrival: float = 20.0
    long_fraction: float = 0.10
    cutoff: float = GOOGLE_CUTOFF_S
    target_task_seconds_share: float = 0.8365
    target_duration_ratio: float = 7.34
    # Short-job distributions (log-normal medians and sigmas).
    short_tasks_median: float = 12.0
    short_tasks_sigma: float = 1.0
    short_tasks_max: int = 180
    short_duration_median: float = 250.0
    short_duration_sigma: float = 1.0
    # Long-job distributions: a shared latent size factor correlates task
    # count and duration.
    long_tasks_median: float = 42.0
    long_tasks_latent_coeff: float = 1.0
    long_tasks_noise_sigma: float = 0.4
    long_tasks_max: int = 1000
    long_duration_median: float = 1500.0
    long_duration_latent_coeff: float = 0.35
    long_duration_noise_sigma: float = 0.3
    long_duration_max: float = 25000.0
    # Within-job task-duration variation (coefficient of variation).
    within_job_cv: float = 0.5

    def __post_init__(self) -> None:
        if self.n_jobs < 10:
            raise ConfigurationError("need at least 10 jobs for a Google-like trace")
        if not 0.0 < self.long_fraction < 1.0:
            raise ConfigurationError("long_fraction must be in (0, 1)")
        if not 0.0 < self.target_task_seconds_share < 1.0:
            raise ConfigurationError("target share must be in (0, 1)")


def google_like_trace(
    config: GoogleTraceConfig | None = None, seed: int = 0
) -> Trace:
    """Generate a synthetic trace with the paper's Google-trace statistics."""
    cfg = config or GoogleTraceConfig()
    rng = make_rng(seed, "google-trace")
    n_long = int(round(cfg.n_jobs * cfg.long_fraction))
    n_short = cfg.n_jobs - n_long

    # -- draw job-level parameters ------------------------------------
    short_params: list[tuple[int, float]] = []
    for _ in range(n_short):
        tasks = int(
            np.clip(
                round(
                    math.exp(
                        math.log(cfg.short_tasks_median)
                        + cfg.short_tasks_sigma * rng.standard_normal()
                    )
                ),
                1,
                cfg.short_tasks_max,
            )
        )
        duration = float(
            np.clip(
                math.exp(
                    math.log(cfg.short_duration_median)
                    + cfg.short_duration_sigma * rng.standard_normal()
                ),
                1.0,
                0.98 * cfg.cutoff,
            )
        )
        short_params.append((tasks, duration))

    long_params: list[tuple[int, float]] = []
    for _ in range(n_long):
        latent = rng.standard_normal()
        tasks = int(
            np.clip(
                round(
                    math.exp(
                        math.log(cfg.long_tasks_median)
                        + cfg.long_tasks_latent_coeff * latent
                        + cfg.long_tasks_noise_sigma * rng.standard_normal()
                    )
                ),
                1,
                cfg.long_tasks_max,
            )
        )
        duration = float(
            np.clip(
                math.exp(
                    math.log(cfg.long_duration_median)
                    + cfg.long_duration_latent_coeff * latent
                    + cfg.long_duration_noise_sigma * rng.standard_normal()
                ),
                cfg.cutoff,
                cfg.long_duration_max,
            )
        )
        long_params.append((tasks, duration))

    # -- two-knob calibration to the published statistics ---------------
    # Knob 1: scale long durations so the job-level mean-duration ratio
    # hits the target (7.34x for the Google trace).
    mean_short_dur = sum(d for _, d in short_params) / len(short_params)
    mean_long_dur = sum(d for _, d in long_params) / len(long_params)
    dur_scale = cfg.target_duration_ratio * mean_short_dur / mean_long_dur
    long_params = [
        (t, max(cfg.cutoff, min(d * dur_scale, cfg.long_duration_max)))
        for t, d in long_params
    ]
    # Knob 2: scale long task counts so long jobs contribute the target
    # task-seconds share (83.65%); rounding leaves only a small residual.
    short_ts = sum(t * d for t, d in short_params)
    long_ts = sum(t * d for t, d in long_params)
    target = cfg.target_task_seconds_share
    task_scale = (target * short_ts) / ((1.0 - target) * long_ts)
    long_params = [
        (max(1, min(int(round(t * task_scale)), cfg.long_tasks_max)), d)
        for t, d in long_params
    ]
    # Residual repair: one final duration scale fixes rounding drift.
    long_ts = sum(t * d for t, d in long_params)
    repair = (target * short_ts) / ((1.0 - target) * long_ts)
    long_params = [
        (t, max(cfg.cutoff, min(d * repair, cfg.long_duration_max)))
        for t, d in long_params
    ]

    # -- materialize per-task durations and arrival times --------------
    arrival_rng = make_rng(seed, "google-arrivals")
    arrivals = poisson_arrival_times(arrival_rng, cfg.n_jobs, cfg.mean_interarrival)
    order = list(range(cfg.n_jobs))
    rng.shuffle(order)  # interleave long and short jobs over time

    params = short_params + long_params
    jobs: list[JobSpec] = []
    for job_id, submit in enumerate(arrivals):
        tasks, mean = params[order[job_id]]
        durations = spread_durations(rng, tasks, mean, cfg.within_job_cv)
        jobs.append(JobSpec(job_id, submit, durations))
    return Trace(jobs, name="google-like")


# -- registry entries ----------------------------------------------------
_GOOGLE_PARAMS = (
    Param("n_jobs", int, default=1200, minimum=10, maximum=1_000_000,
          doc="jobs in the generated trace"),
    Param("mean_interarrival", float, default=20.0, minimum=0.001,
          maximum=1e6,
          doc="mean Poisson job inter-arrival gap (s)"),
)


@register_workload(
    "google",
    params=_GOOGLE_PARAMS,
    cutoff=GOOGLE_CUTOFF_S,
    short_partition_fraction=GOOGLE_SHORT_PARTITION_FRACTION,
    quick_params={"n_jobs": 260},
)
def _google_workload(params, seed: int) -> Trace:
    """Synthetic Google-2011-like trace calibrated to the paper's statistics."""
    config = GoogleTraceConfig(
        n_jobs=params["n_jobs"], mean_interarrival=params["mean_interarrival"]
    )
    return google_like_trace(config, seed=seed)


@register_workload(
    "google-scale10k",
    params=(
        Param("n_jobs", int, default=3000, minimum=10, maximum=1_000_000,
              doc="jobs in the densified trace"),
        Param("mean_interarrival", float, default=3.2, minimum=0.001,
              maximum=1e6,
              doc="densified arrival gap: ~10k nodes at high load"),
    ),
    cutoff=GOOGLE_CUTOFF_S,
    short_partition_fraction=GOOGLE_SHORT_PARTITION_FRACTION,
    quick_params={"n_jobs": 300, "mean_interarrival": 16.0},
)
def _google_scale_workload(params, seed: int) -> Trace:
    """Densified Google-like trace for the 10k-worker scale point."""
    config = GoogleTraceConfig(
        n_jobs=params["n_jobs"], mean_interarrival=params["mean_interarrival"]
    )
    return google_like_trace(config, seed=seed)


@register_workload(
    "google-scale100k",
    params=(
        Param("n_jobs", int, default=3000, minimum=10, maximum=1_000_000,
              doc="jobs in the densified trace"),
        Param("mean_interarrival", float, default=0.32, minimum=0.001,
              maximum=1e6,
              doc="densified arrival gap: ~100k nodes at high load"),
    ),
    cutoff=GOOGLE_CUTOFF_S,
    short_partition_fraction=GOOGLE_SHORT_PARTITION_FRACTION,
    quick_params={"n_jobs": 300, "mean_interarrival": 1.6},
)
def _google_scale100k_workload(params, seed: int) -> Trace:
    """Densified Google-like trace for the 100k-worker scale point.

    Same generator and job population as ``google-scale10k``; the arrival
    process is 10x denser so one hundred thousand nodes sit at the same
    high-but-not-overloaded offered load (~1.18) as the 10k point.
    """
    config = GoogleTraceConfig(
        n_jobs=params["n_jobs"], mean_interarrival=params["mean_interarrival"]
    )
    return google_like_trace(config, seed=seed)
