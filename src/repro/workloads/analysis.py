"""Workload statistics: the numbers behind Tables 1-2 and Figure 4."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import ConfigurationError
from repro.workloads.spec import JobSpec


def long_job_fraction(trace: Iterable[JobSpec], cutoff: float) -> float:
    """Fraction of jobs whose mean task duration is >= cutoff (Table 1)."""
    total = 0
    long_count = 0
    for job in trace:
        total += 1
        if job.is_long(cutoff):
            long_count += 1
    if total == 0:
        raise ConfigurationError("empty trace")
    return long_count / total


def task_seconds_share(trace: Iterable[JobSpec], cutoff: float) -> float:
    """Share of total task-seconds contributed by long jobs (Table 1)."""
    long_ts = 0.0
    total_ts = 0.0
    for job in trace:
        ts = job.task_seconds
        total_ts += ts
        if job.is_long(cutoff):
            long_ts += ts
    if total_ts == 0:
        raise ConfigurationError("trace has zero work")
    return long_ts / total_ts


def tasks_share(trace: Iterable[JobSpec], cutoff: float) -> float:
    """Share of all tasks belonging to long jobs (Section 2.1: 28%)."""
    long_tasks = 0
    total_tasks = 0
    for job in trace:
        total_tasks += job.num_tasks
        if job.is_long(cutoff):
            long_tasks += job.num_tasks
    if total_tasks == 0:
        raise ConfigurationError("empty trace")
    return long_tasks / total_tasks


def mean_duration_ratio(trace: Iterable[JobSpec], cutoff: float) -> float:
    """Avg task duration of long jobs over short jobs (Section 2.1: 7.34x).

    Both averages are job-level means averaged over jobs, matching the
    paper's "average task duration ... of the remaining 90% of jobs".
    """
    long_means: list[float] = []
    short_means: list[float] = []
    for job in trace:
        (long_means if job.is_long(cutoff) else short_means).append(
            job.mean_task_duration
        )
    if not long_means or not short_means:
        raise ConfigurationError("trace lacks one of the two classes")
    long_avg = sum(long_means) / len(long_means)
    short_avg = sum(short_means) / len(short_means)
    return long_avg / short_avg


@dataclass(frozen=True, slots=True)
class WorkloadSummary:
    """The Table 1 / Table 2 row for one workload."""

    name: str
    total_jobs: int
    long_fraction: float
    task_seconds_share: float
    tasks_share: float
    duration_ratio: float


def workload_summary(trace, cutoff: float, name: str | None = None) -> WorkloadSummary:
    """Compute all Table 1 / 2 statistics in one pass-friendly call."""
    jobs = list(trace)
    return WorkloadSummary(
        name=name or getattr(trace, "name", "trace"),
        total_jobs=len(jobs),
        long_fraction=long_job_fraction(jobs, cutoff),
        task_seconds_share=task_seconds_share(jobs, cutoff),
        tasks_share=tasks_share(jobs, cutoff),
        duration_ratio=mean_duration_ratio(jobs, cutoff),
    )


def cdf_points(values: Sequence[float]) -> tuple[list[float], list[float]]:
    """Empirical CDF: sorted values and cumulative percentages (0-100].

    The return shape matches the paper's CDF plots (Figures 1 and 4):
    x = value, y = percent of population at or below it.
    """
    if not values:
        raise ConfigurationError("cannot build a CDF from no values")
    xs = sorted(values)
    n = len(xs)
    ys = [100.0 * (i + 1) / n for i in range(n)]
    return xs, ys


def cdf_at(values: Sequence[float], x: float) -> float:
    """Fraction (0-1) of values <= x."""
    if not values:
        raise ConfigurationError("cannot evaluate a CDF of no values")
    return sum(1 for v in values if v <= x) / len(values)
