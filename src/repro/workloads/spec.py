"""Immutable job specifications and the trace container.

The simulator's input format follows Section 4.1: tuples of
``(jobID, job submission time, number of tasks, duration of each task)``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from hashlib import blake2b
from typing import Iterable, Iterator, Sequence

from repro.core.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class JobSpec:
    """One job of a trace: submission time plus per-task durations."""

    job_id: int
    submit_time: float
    task_durations: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.task_durations:
            raise ConfigurationError(f"job {self.job_id} has no tasks")
        if self.submit_time < 0:
            raise ConfigurationError(
                f"job {self.job_id} has negative submit time {self.submit_time}"
            )
        if any(d <= 0 for d in self.task_durations):
            raise ConfigurationError(
                f"job {self.job_id} has a non-positive task duration"
            )

    @property
    def num_tasks(self) -> int:
        return len(self.task_durations)

    @property
    def mean_task_duration(self) -> float:
        return sum(self.task_durations) / len(self.task_durations)

    @property
    def task_seconds(self) -> float:
        """Work contributed by this job: number of tasks x mean duration."""
        return sum(self.task_durations)

    def is_long(self, cutoff: float) -> bool:
        return self.mean_task_duration >= cutoff


class Trace(Sequence[JobSpec]):
    """An ordered collection of job specs with summary helpers."""

    def __init__(self, jobs: Iterable[JobSpec], name: str = "trace") -> None:
        self._jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        if not self._jobs:
            raise ConfigurationError("a trace needs at least one job")
        self.name = name
        self._digest: str | None = None

    # Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._jobs)

    def __getitem__(self, index):  # type: ignore[override]
        return self._jobs[index]

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self._jobs)

    # Summary helpers ---------------------------------------------------
    @property
    def horizon(self) -> float:
        """Time of the last submission."""
        return self._jobs[-1].submit_time

    @property
    def total_task_seconds(self) -> float:
        return sum(j.task_seconds for j in self._jobs)

    @property
    def total_tasks(self) -> int:
        return sum(j.num_tasks for j in self._jobs)

    def long_jobs(self, cutoff: float) -> list[JobSpec]:
        return [j for j in self._jobs if j.is_long(cutoff)]

    def short_jobs(self, cutoff: float) -> list[JobSpec]:
        return [j for j in self._jobs if not j.is_long(cutoff)]

    def nodes_for_full_utilization(self) -> float:
        """Workers needed to absorb the offered load with zero slack.

        Total work divided by the submission horizon: the analogue of the
        paper's practice of varying cluster size to vary utilization.
        """
        if self.horizon == 0:
            return float(self.total_task_seconds)
        return self.total_task_seconds / self.horizon

    def content_digest(self) -> str:
        """Stable hash of the full trace content.

        Covers every job id, submit time and per-task duration (exact IEEE
        bit patterns, not rounded summaries), so two traces share a digest
        iff a run over them is guaranteed to produce the same result.  The
        name is deliberately excluded: the engine never reads it, so
        renamed copies of the same workload share cached runs.  Computed
        once and memoized (jobs are immutable after construction).
        """
        if self._digest is None:
            h = blake2b(digest_size=20)
            for job in self._jobs:
                # The task count delimits the variable-length duration
                # block, keeping the byte stream unambiguous.
                h.update(
                    struct.pack("<qdq", job.job_id, job.submit_time, job.num_tasks)
                )
                h.update(
                    struct.pack(f"<{len(job.task_durations)}d", *job.task_durations)
                )
            self._digest = h.hexdigest()
        return self._digest

    def subset(self, n_jobs: int, name: str | None = None) -> "Trace":
        """First ``n_jobs`` jobs by submission order (the paper's 3300-job
        sample of the Google trace is built this way)."""
        if n_jobs <= 0:
            raise ConfigurationError(f"subset size must be positive, got {n_jobs}")
        return Trace(self._jobs[:n_jobs], name=name or f"{self.name}-subset")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name}, jobs={len(self._jobs)})"
