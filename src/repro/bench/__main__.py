"""``python -m repro.bench`` entry point."""

import sys

from repro.bench import main

sys.exit(main())
