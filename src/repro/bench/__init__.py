"""Perf harness for the simulation core (``python -m repro.bench``).

Three measurements, all written to ``BENCH_core.json`` at the repo root
so every PR leaves a tracked trajectory instead of anecdotes:

* **events/sec** — the canonical mixed workload (the Google-like trace at
  the high-load cluster size) run through Hawk (centralized placement +
  batch probing + work stealing) and Sparrow (pure batch probing).  The
  numerator is the engine's *logical* event count (``events_fired``:
  message deliveries, round-trip legs, task completions), which is
  invariant under transport-level batching, so the metric stays
  comparable across core rewrites.  Wall time is best-of-``repeats``.
* **stealing events/sec** — Hawk on the Section 2.3 motivation workload
  at the scenario's recommended cluster size: long tasks occupy the
  cluster while streams of short jobs land, so idle workers spend the
  run in work-stealing rounds.  Stealing is the remaining hot loop
  (ROADMAP); tracking it as its own bench point means a stealing-path
  regression cannot hide inside the mixed-workload number, and
  ``--check`` gates it like the canonical events/sec.
* **sweep wall-times** — a two-point Figure-5 sweep through a fresh
  :class:`~repro.experiments.parallel.SweepExecutor` with an isolated
  disk cache: cold (every run executed) and warm (every run served from
  the disk tier), the repeated-figure-regeneration case.
* **sweep_stream** — chained batch barriers vs one continuous
  ``run_stream`` on a skewed synthetic grid (one deliberately slow point
  ahead of many fast ones, sleep-based so the comparison isolates
  orchestration, not simulation).  Joining every batch serializes the
  whole chain behind the slow point; the stream keeps the second worker
  fed across batch boundaries.  ``--check`` fails when the measured
  speedup drops below :data:`STREAM_SPEEDUP_FLOOR`.

A fourth, mode-independent measurement lives in the ``scale`` section
(``--scale``): the 10k-worker Figure 5 point (Hawk + Sparrow on the
densified Google trace) plus a steal-round microbench isolating the
victim-selection loop at cluster scale.  ``--scale --quick`` runs only
the microbench, cheap enough for CI smoke.

The JSON file keeps one section per mode (``quick``/``full``) and merges
on write, so a quick CI run never clobbers the committed full-scale
numbers.  ``--check`` compares a fresh run against the committed section
of the same mode and fails on a >1.5x events/sec regression.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.config import RunSpec, build_engine, high_load_size
from repro.experiments.traces import (
    google_cutoff,
    google_short_fraction,
    google_trace,
)
from repro.workloads.motivation import MotivationConfig
from repro.workloads.registry import WorkloadSpec
from repro.workloads.spec import Trace

#: Fail ``--check`` when fresh events/sec drop below committed/this.
REGRESSION_FACTOR = 1.5

#: Fail ``--check`` when the streaming executor's measured advantage over
#: chained batch barriers drops below this on the skewed grid.
STREAM_SPEEDUP_FLOOR = 1.3

#: Default output path: ``BENCH_core.json`` at the repo root (next to the
#: ``benchmarks/`` directory) for a src/ checkout, cwd otherwise.
def default_output() -> Path:
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "BENCH_core.json"
    return Path.cwd() / "BENCH_core.json"


def _specs(trace: Trace) -> dict[str, RunSpec]:
    n = high_load_size(trace)
    cutoff = google_cutoff()
    return {
        "hawk": RunSpec(
            scheduler="hawk",
            n_workers=n,
            cutoff=cutoff,
            short_partition_fraction=google_short_fraction(),
        ),
        "sparrow": RunSpec(scheduler="sparrow", n_workers=n, cutoff=cutoff),
    }


def bench_events(scale: str, repeats: int = 3) -> dict:
    """Events/sec of the canonical mixed workload, best-of-``repeats``."""
    trace = google_trace(scale, seed=0)
    out: dict = {
        "trace": {
            "scale": scale,
            "jobs": len(trace),
            "tasks": trace.total_tasks,
        },
        "policies": {},
    }
    total_events = 0
    total_best = 0.0
    for name, spec in _specs(trace).items():
        best = float("inf")
        events = 0
        for _ in range(repeats):
            engine = build_engine(spec)
            start = time.perf_counter()
            result = engine.run(trace)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            events = result.events_fired
        out["policies"][name] = {
            "n_workers": spec.n_workers,
            "events": events,
            "wall_s": round(best, 4),
            "events_per_sec": round(events / best),
        }
        total_events += events
        total_best += best
    out["events_per_sec"] = round(total_events / total_best)
    out["events"] = total_events
    return out


def bench_stealing(scale: str, repeats: int = 3) -> dict:
    """Events/sec of a stealing-heavy Hawk run, best-of-``repeats``.

    The Section 2.3 motivation scenario at the paper's recommended
    cluster size: 95% of jobs are 100-task shorts landing while 1000-task
    long jobs occupy the general partition, so short-partition workers go
    idle and drive continuous stealing rounds.  Returns the stealing
    counters alongside the timing so the deterministic half (rounds,
    entries stolen, logical events) can be pinned by tier-1.
    """
    motivation_scale = 0.1 if scale == "full" else 0.02
    workload = WorkloadSpec("motivation", {"scale": motivation_scale})
    trace = workload.trace(0)
    n_workers = MotivationConfig().scaled(motivation_scale).n_servers
    spec = RunSpec(
        scheduler="hawk",
        n_workers=n_workers,
        cutoff=workload.cutoff,
        short_partition_fraction=workload.short_partition_fraction,
    )
    best = float("inf")
    result = None
    for _ in range(repeats):
        engine = build_engine(spec)
        start = time.perf_counter()
        result = engine.run(trace)
        best = min(best, time.perf_counter() - start)
    return {
        "workload": {
            "name": "motivation",
            "scale": motivation_scale,
            "jobs": len(trace),
            "tasks": trace.total_tasks,
        },
        "n_workers": n_workers,
        "events": result.events_fired,
        "steal_rounds": result.stealing.rounds,
        "successful_rounds": result.stealing.successful_rounds,
        "entries_stolen": result.stealing.entries_stolen,
        "wall_s": round(best, 4),
        "events_per_sec": round(result.events_fired / best),
    }


def bench_steal_rounds(n_workers: int = 10_000, rounds: int = 200_000) -> dict:
    """Victim-selection cost of a failed stealing round at cluster scale.

    Builds a Hawk engine at ``n_workers`` with every queue empty, forces
    the policy past its parked fast-exit, and times ``rounds`` stealing
    rounds from a short-partition thief.  Every round probes ``cap``
    victims and fails — the overwhelmingly common round in a
    stealing-heavy run — so this isolates the flat-bitmap victim loop
    that the mixed-workload numbers dilute with engine work.  Cheap
    enough for CI quick mode (no trace is simulated).
    """
    spec = RunSpec(
        scheduler="hawk",
        n_workers=n_workers,
        cutoff=google_cutoff(),
        short_partition_fraction=google_short_fraction(),
    )
    engine = build_engine(spec)
    policy = engine.stealing
    cluster = engine.cluster
    # A nonzero tally is the round's entry condition; leaving every flag
    # and queue empty makes each round a representative failure.
    cluster.steal_hint_count = 1
    thief = cluster.workers[-1]
    attempt = policy._attempt_round
    start = time.perf_counter()
    for _ in range(rounds):
        attempt(thief)
    elapsed = time.perf_counter() - start
    return {
        "n_workers": n_workers,
        "rounds": rounds,
        "us_per_round": round(elapsed / rounds * 1e6, 3),
        "rounds_per_sec": round(rounds / elapsed),
    }


def bench_scale(repeats: int = 3) -> dict:
    """The 10k-worker Figure 5 scale point, best-of-``repeats``.

    Runs the exact engine configurations behind
    ``benchmarks/results/fig05_scale10k.txt`` (Hawk and Sparrow on the
    densified Google trace at 10,000 workers) and records wall time,
    logical events, and the deterministic stealing counters, plus the
    :func:`bench_steal_rounds` microbench.  The section's ``pre_pr``
    subkey preserves the same harness's numbers measured at the
    pre-flat-array core for the speedup trajectory.
    """
    workload = WorkloadSpec("google-scale10k")
    trace = workload.trace(0)
    out: dict = {
        "workload": {
            "name": "google-scale10k",
            "jobs": len(trace),
            "tasks": trace.total_tasks,
        },
        "n_workers": 10_000,
        "policies": {},
    }
    total_best = 0.0
    for name in ("hawk", "sparrow"):
        spec = RunSpec(
            scheduler=name,
            n_workers=10_000,
            cutoff=workload.cutoff,
            short_partition_fraction=(
                workload.short_partition_fraction if name == "hawk" else 0.0
            ),
        )
        best = float("inf")
        result = None
        for _ in range(repeats):
            engine = build_engine(spec)
            start = time.perf_counter()
            result = engine.run(trace)
            best = min(best, time.perf_counter() - start)
        entry = {
            "events": result.events_fired,
            "wall_s": round(best, 4),
            "events_per_sec": round(result.events_fired / best),
        }
        if result.stealing is not None:
            entry["steal_rounds"] = result.stealing.rounds
            entry["successful_rounds"] = result.stealing.successful_rounds
            entry["entries_stolen"] = result.stealing.entries_stolen
        out["policies"][name] = entry
        total_best += best
    out["total_wall_s"] = round(total_best, 4)
    out["steal_round"] = bench_steal_rounds()
    return out


def bench_sweep(scale: str) -> dict:
    """Cold vs warm wall time of a two-point fig05 sweep (isolated caches)."""
    # Imported here: experiments.parallel spins executor state on import.
    from repro.experiments import fig05_google
    from repro.experiments.parallel import DiskCache, SweepExecutor, set_executor

    targets = (1.0, 0.5)
    google_trace(scale, 0)  # exclude trace generation from both timings
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        timings = {}
        for label in ("cold", "warm"):
            executor = SweepExecutor(disk_cache=DiskCache(Path(tmp)))
            previous = set_executor(executor)
            try:
                start = time.perf_counter()
                fig05_google.run(scale, utilization_targets=targets)
                timings[f"{label}_s"] = round(time.perf_counter() - start, 4)
            finally:
                set_executor(previous)
                executor.close()
        return {"targets": list(targets), **timings}


def _synthetic_sleep_run(spec: RunSpec, trace: Trace):
    """Stand-in simulation for the streaming bench: sleep, don't compute.

    The point's cost is encoded as its only task's duration, so the grid
    shape fully determines the schedule.  Sleeps overlap across pool
    processes even on a single CPU, which keeps the barrier-vs-stream
    comparison about *orchestration* (who waits on whom) rather than
    about how much CPU the host happens to have.  Module-level so it
    pickles into pool submissions.
    """
    duration = next(iter(trace)).task_durations[0]
    time.sleep(duration)
    return (trace.name, duration)


def _skewed_grid(
    n_batches: int, batch_points: int, fast_s: float, slow_s: float
) -> list[list[tuple[RunSpec, Trace]]]:
    """A batched grid with one slow straggler at the front.

    Every point gets a content-distinct single-task trace (distinct job
    id), so nothing deduplicates and both arms execute every point.
    """
    from repro.workloads.spec import JobSpec

    spec = RunSpec(scheduler="sparrow", n_workers=1, cutoff=10.0)
    batches = []
    point = 0
    for b in range(n_batches):
        batch = []
        for k in range(batch_points):
            duration = slow_s if (b == 0 and k == 0) else fast_s
            trace = Trace(
                [JobSpec(point, 0.0, (duration,))], name=f"stream-{point}"
            )
            batch.append((spec, trace))
            point += 1
        batches.append(batch)
    return batches


def bench_sweep_stream(scale: str) -> dict:
    """Chained batch barriers vs one continuous stream on a skewed grid.

    The barrier arm runs each batch through ``run_many`` and joins before
    starting the next — the shape every multi-workload figure driver had
    before streaming — so batches 1..B-1 all wait behind batch 0's slow
    point.  The stream arm feeds the identical pairs through one
    ``run_stream``: the second worker chews through the fast points while
    the first sleeps on the straggler, and the makespan collapses to
    roughly the straggler itself.  Both arms use 2 pool workers, no
    caches, and the sleep-based synthetic run.
    """
    from repro.experiments.parallel import SweepExecutor

    if scale == "quick":
        n_batches, batch_points, fast_s, slow_s = 14, 5, 0.02, 1.5
    else:
        n_batches, batch_points, fast_s, slow_s = 16, 5, 0.03, 2.4
    batches = _skewed_grid(n_batches, batch_points, fast_s, slow_s)
    n_points = n_batches * batch_points

    def fresh_executor() -> SweepExecutor:
        return SweepExecutor(
            max_workers=2,
            disk_cache=None,
            trace_shm=False,
            run_fn=_synthetic_sleep_run,
        )

    barrier = fresh_executor()
    try:
        start = time.perf_counter()
        for batch in batches:
            barrier.run_many(batch)
        barrier_s = time.perf_counter() - start
    finally:
        barrier.close()

    stream = fresh_executor()
    try:
        start = time.perf_counter()
        for _ in stream.run_stream(
            pair for batch in batches for pair in batch
        ):
            pass
        stream_s = time.perf_counter() - start
    finally:
        stream.close()

    summary = stream.summary()
    # The executor's own accounting must agree with the grid: every point
    # executed exactly once, nothing served from a cache tier.
    assert summary["executions"] == n_points, summary
    assert summary["memo_hits"] == 0 and summary["disk_hits"] == 0, summary
    assert summary["max_inflight"] <= stream.inflight, summary
    return {
        "grid": {
            "batches": n_batches,
            "points_per_batch": batch_points,
            "fast_s": fast_s,
            "slow_s": slow_s,
            "total_points": n_points,
        },
        "workers": 2,
        "barrier_s": round(barrier_s, 4),
        "stream_s": round(stream_s, 4),
        "speedup": round(barrier_s / stream_s, 3),
        "executor": summary,
    }


def run_bench(quick: bool = False, repeats: int | None = None) -> dict:
    scale = "quick" if quick else "full"
    if repeats is None:
        repeats = 5 if quick else 3
    return {
        "scale": scale,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "events": bench_events(scale, repeats=repeats),
        "stealing": bench_stealing(scale, repeats=repeats),
        "sweep": bench_sweep(scale),
        "sweep_stream": bench_sweep_stream(scale),
    }


def merge_into(path: Path, section: str, payload: dict) -> dict:
    """Update one mode section of the JSON file, preserving the rest."""
    data: dict = {}
    if path.is_file():
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
    data.setdefault("schema", 1)
    data.setdefault(
        "workload",
        "google-like trace at the high-load cluster size; hawk + sparrow",
    )
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def check_regression(baseline_path: Path, section: str, fresh: dict) -> list[str]:
    """Compare a fresh run to the committed baseline; return failures."""
    if not baseline_path.is_file():
        return [f"no baseline file at {baseline_path}"]
    baseline = json.loads(baseline_path.read_text()).get(section)
    if not baseline:
        return [f"baseline {baseline_path} has no '{section}' section"]
    failures = []
    committed = baseline["events"]["events_per_sec"]
    measured = fresh["events"]["events_per_sec"]
    floor = committed / REGRESSION_FACTOR
    if measured < floor:
        failures.append(
            f"events/sec regression: measured {measured} < floor {floor:.0f} "
            f"(committed {committed} / {REGRESSION_FACTOR})"
        )
    # The stealing-heavy point is gated the same way (baselines written
    # before the point existed simply skip it).
    if "stealing" in baseline and "stealing" in fresh:
        committed = baseline["stealing"]["events_per_sec"]
        measured = fresh["stealing"]["events_per_sec"]
        floor = committed / REGRESSION_FACTOR
        if measured < floor:
            failures.append(
                f"stealing events/sec regression: measured {measured} < "
                f"floor {floor:.0f} (committed {committed} / "
                f"{REGRESSION_FACTOR})"
            )
    # The streaming executor must beat chained barriers outright on the
    # skewed grid — an absolute floor, not a baseline ratio, so losing
    # the producer/consumer overlap can never slip through.
    if "sweep_stream" in fresh:
        speedup = fresh["sweep_stream"]["speedup"]
        if speedup < STREAM_SPEEDUP_FLOOR:
            failures.append(
                f"sweep_stream speedup {speedup} < floor "
                f"{STREAM_SPEEDUP_FLOOR} (barrier "
                f"{fresh['sweep_stream']['barrier_s']}s vs stream "
                f"{fresh['sweep_stream']['stream_s']}s)"
            )
    return failures


def check_scale_regression(baseline_path: Path, fresh: dict) -> list[str]:
    """Gate a fresh scale-tier run against the committed ``scale`` section.

    Always gates the steal-round microbench; gates the 10k-point
    events/sec too when the fresh payload includes the engine runs
    (``--scale`` without ``--quick``).
    """
    if not baseline_path.is_file():
        return [f"no baseline file at {baseline_path}"]
    baseline = json.loads(baseline_path.read_text()).get("scale")
    if not baseline:
        return [f"baseline {baseline_path} has no 'scale' section"]
    failures = []
    committed = baseline["steal_round"]["rounds_per_sec"]
    measured = fresh["steal_round"]["rounds_per_sec"]
    floor = committed / REGRESSION_FACTOR
    if measured < floor:
        failures.append(
            f"steal rounds/sec regression: measured {measured} < floor "
            f"{floor:.0f} (committed {committed} / {REGRESSION_FACTOR})"
        )
    if "policies" in fresh:
        for name, numbers in baseline.get("policies", {}).items():
            committed = numbers["events_per_sec"]
            measured = fresh["policies"][name]["events_per_sec"]
            floor = committed / REGRESSION_FACTOR
            if measured < floor:
                failures.append(
                    f"scale point {name} events/sec regression: measured "
                    f"{measured} < floor {floor:.0f} (committed {committed} "
                    f"/ {REGRESSION_FACTOR})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure core simulator throughput and sweep wall-times.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="quick-scale trace (CI smoke); default is the full benchmark scale",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help=(
            "measure the 10k-worker fig05 scale tier instead of the "
            "quick/full workloads; with --quick, only the steal-round "
            "microbench runs (CI smoke)"
        ),
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="JSON file to merge results into (default: repo-root BENCH_core.json)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print results without touching the output file",
    )
    parser.add_argument(
        "--check",
        type=Path,
        nargs="?",
        const=None,
        default=False,
        metavar="BASELINE",
        help=(
            "fail (exit 1) on a >1.5x events/sec regression vs the committed "
            "baseline JSON (default: the output file itself)"
        ),
    )
    args = parser.parse_args(argv)
    output = args.output or default_output()
    if args.scale:
        section = "scale"
        if args.quick:
            payload = {"steal_round": bench_steal_rounds()}
        else:
            payload = bench_scale(repeats=args.repeats or 3)
        print(json.dumps({section: payload}, indent=2, sort_keys=True))
        if args.check is not False:
            baseline = args.check or output
            failures = check_scale_regression(baseline, payload)
            if failures:
                for failure in failures:
                    print(f"PERF CHECK FAILED: {failure}", file=sys.stderr)
                return 1
            print(
                f"perf check ok: {payload['steal_round']['rounds_per_sec']} "
                f"steal rounds/sec (baseline {baseline})"
            )
        if not args.no_write:
            # Partial scale runs (--quick) and fresh full runs both keep
            # whatever else the committed section carries (the pre_pr
            # reference in particular).
            existing: dict = {}
            if output.is_file():
                try:
                    existing = json.loads(output.read_text()).get(section, {})
                except (OSError, ValueError):
                    existing = {}
            merge_into(output, section, {**existing, **payload})
            print(f"wrote {output}")
        return 0
    section = "quick" if args.quick else "full"
    payload = run_bench(quick=args.quick, repeats=args.repeats)
    print(json.dumps({section: payload}, indent=2, sort_keys=True))
    if args.check is not False:
        baseline = args.check or output
        failures = check_regression(baseline, section, payload)
        if failures:
            for failure in failures:
                print(f"PERF CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            f"perf check ok: {payload['events']['events_per_sec']} events/sec "
            f"(baseline {baseline})"
        )
    if not args.no_write:
        merge_into(output, section, payload)
        print(f"wrote {output}")
    return 0
