"""Deterministic reprolint report rendering.

The report is committed (``benchmarks/results/reprolint_report.txt``)
and drift-checked by CI exactly like the registry schema snapshots: it
contains no timestamps, hostnames or absolute paths, so regenerating it
on an unchanged tree is byte-identical, and any change to the rule set,
the scopes, a suppression or a finding shows up as a failing diff until
the snapshot is regenerated on purpose.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.config import SCOPES
from repro.analysis.engine import AnalysisResult
from repro.analysis.rules import SYNTACTIC_RULES
from repro.analysis.semantic import SEMANTIC_RULES


def render_report(result: AnalysisResult) -> str:
    """The drift-checked report for one full scan (see module doc)."""
    lines = ["reprolint report", "================", ""]
    lines.append(f"files scanned: {result.files_scanned}")
    scope_counts = Counter(result.scopes_seen.values())
    for scope in SCOPES:
        lines.append(
            f"  scope {scope.name:<8} {scope_counts.get(scope.name, 0):>3} files"
            f"  rules: {','.join(scope.rules)}"
        )
    lines.append("")

    lines.append("findings per rule:")
    finding_counts = Counter(f.rule for f in result.findings)
    for rule in SYNTACTIC_RULES:
        lines.append(
            f"  {rule.rule_id}  {finding_counts.get(rule.rule_id, 0):>3}  {rule.title}"
        )
    for rule in SEMANTIC_RULES:
        lines.append(
            f"  {rule.rule_id}  {finding_counts.get(rule.rule_id, 0):>3}  {rule.title}"
        )
    for sup_rule, title in (
        ("SUP001", "suppression without a reason"),
        ("SUP002", "suppression matching no finding"),
    ):
        lines.append(f"  {sup_rule}  {finding_counts.get(sup_rule, 0):>3}  {title}")
    lines.append("")

    if result.findings:
        lines.append("findings:")
        for finding in result.findings:
            lines.append(f"  {finding.rule}  {finding.path}  {finding.message}")
    else:
        lines.append("findings: none")
    lines.append("")

    if result.suppressions:
        lines.append("suppressions (reviewed exceptions):")
        for sup in sorted(
            result.suppressions, key=lambda s: (s.path, s.rules, s.reason)
        ):
            lines.append(
                f"  {sup.path}  {','.join(sup.rules)}  -- {sup.reason}"
            )
    else:
        lines.append("suppressions: none")
    return "\n".join(lines) + "\n"
