"""Findings and inline suppressions for the reprolint analyzer.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.key` deliberately excludes the line number: baselines and
the committed report must survive unrelated edits that shift code up or
down a file, so identity is ``(rule, path, message)`` and messages name
the offending construct rather than its coordinates.

Suppressions are inline pragmas (spelled with a placeholder here so this
docstring is not itself parsed as one)::

    foo = hash(name)  # reprolint: disable=<RULE> -- identity map only, never ordered

The ``-- reason`` clause is mandatory (rule SUP001): a suppression is a
reviewed exception to the determinism contract, and the justification
must live next to the code it excuses.  A pragma that suppresses nothing
is itself an error (SUP002) so stale exceptions cannot accumulate.  A
pragma on a line holding only the comment applies to the next line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Suppression pragmas that are meta-rules, not AST rules.
SUP_NO_REASON = "SUP001"
SUP_UNUSED = "SUP002"

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Z]{3,4}\d{3}(?:\s*,\s*[A-Z]{3,4}\d{3})*)"
    r"(?P<reason>\s*--\s*\S.*)?\s*$"
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def key(self) -> str:
        """Line-number-free identity used by baselines (see module doc)."""
        return f"{self.rule}|{self.path}|{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(slots=True)
class Suppression:
    """One parsed ``reprolint: disable=`` pragma."""

    path: str
    line: int  # line the pragma textually sits on
    applies_to: int  # line whose findings it suppresses
    rules: tuple[str, ...]
    reason: str
    used_rules: set[str] = field(default_factory=set)


def parse_suppressions(source: str, path: str) -> list[Suppression]:
    """Extract every suppression pragma from one file's source.

    A pragma trailing code applies to its own line; a pragma on a
    comment-only line applies to the following line (the conventional
    place when the offending statement is long).
    """
    suppressions = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = tuple(r.strip() for r in match.group("rules").split(","))
        reason_clause = match.group("reason") or ""
        reason = reason_clause.split("--", 1)[1].strip() if reason_clause else ""
        comment_only = text.strip().startswith("#")
        suppressions.append(
            Suppression(
                path=path,
                line=lineno,
                applies_to=lineno + 1 if comment_only else lineno,
                rules=rules,
                reason=reason,
            )
        )
    return suppressions


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> list[Finding]:
    """Filter suppressed findings; emit SUP001/SUP002 meta-findings.

    Returns the surviving findings: unsuppressed originals, plus one
    SUP001 per reason-less pragma (its suppressions do **not** take
    effect) and one SUP002 per pragma rule that matched nothing.
    """
    by_line: dict[int, list[Suppression]] = {}
    for sup in suppressions:
        by_line.setdefault(sup.applies_to, []).append(sup)

    surviving = []
    for finding in findings:
        suppressed = False
        for sup in by_line.get(finding.line, ()):
            if finding.rule in sup.rules and sup.reason:
                sup.used_rules.add(finding.rule)
                suppressed = True
        if not suppressed:
            surviving.append(finding)

    for sup in suppressions:
        if not sup.reason:
            surviving.append(
                Finding(
                    rule=SUP_NO_REASON,
                    path=sup.path,
                    line=sup.line,
                    col=0,
                    message=(
                        f"suppression of {','.join(sup.rules)} carries no "
                        "reason; write '# reprolint: disable=RULE -- why'"
                    ),
                )
            )
            continue
        for rule in sup.rules:
            if rule not in sup.used_rules:
                surviving.append(
                    Finding(
                        rule=SUP_UNUSED,
                        path=sup.path,
                        line=sup.line,
                        col=0,
                        message=(
                            f"suppression of {rule} matches no finding on "
                            "its line; delete the stale pragma"
                        ),
                    )
                )
    return surviving
