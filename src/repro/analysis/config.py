"""Path-scoped rule configuration for reprolint.

The determinism contract is not uniform across the tree: the simulation
paths must be bit-reproducible, the metrics layer must accumulate in a
defined order, while the tool paths (benchmark harness, prototype
runtime, experiment drivers) legitimately read wall clocks and measure
things.  Each scope names directory prefixes (repo-relative, posix) and
the syntactic rules enforced under them; the first matching scope wins.

Semantic rules (REG001/REG002) are not path-scoped — they run once per
invocation against the live registries.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The full determinism ruleset of the simulation core.
SIM_RULES: tuple[str, ...] = (
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "DET005",
    "PURE001",
)

#: Tool paths: wall clocks and measurement are their job, but global RNG
#: state and frozen-instance mutation stay forbidden everywhere.
TOOL_RULES: tuple[str, ...] = ("DET002", "PURE001")


@dataclass(frozen=True, slots=True)
class Scope:
    """One path scope: directory prefixes plus the rules active there."""

    name: str
    prefixes: tuple[str, ...]
    rules: tuple[str, ...]

    def matches(self, relpath: str) -> bool:
        return any(
            relpath == p or relpath.startswith(p + "/") for p in self.prefixes
        )


#: First match wins; order sim scopes before the tool catch-all.
SCOPES: tuple[Scope, ...] = (
    Scope(
        "sim",
        (
            "src/repro/core",
            "src/repro/cluster",
            "src/repro/schedulers",
            "src/repro/workloads",
        ),
        SIM_RULES,
    ),
    Scope("metrics", ("src/repro/metrics",), SIM_RULES),
    Scope(
        "tool",
        (
            "src/repro/experiments",
            "src/repro/bench",
            "src/repro/runtime",
            "src/repro/analysis",
            # The scheduler service tracks the wall clock by design (its
            # virtual time *is* a function of it), but its RNG use must
            # stay seeded and frozen configs immutable.
            "src/repro/service",
        ),
        TOOL_RULES,
    ),
)


def scope_for(relpath: str) -> Scope:
    """The scope governing one repo-relative path.

    Paths outside every declared scope (a file handed to the CLI
    explicitly) get the full sim ruleset: when in doubt, strict.
    """
    for scope in SCOPES:
        if scope.matches(relpath):
            return scope
    return Scope("default", (), SIM_RULES)
