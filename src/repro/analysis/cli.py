"""reprolint command line: ``python -m repro.analysis``.

Exit codes: 0 — clean (no findings beyond the baseline, no stale
baseline entries); 1 — violations or baseline drift; 2 — usage error.

Examples::

    python -m repro.analysis                      # scan src/repro, gate
    python -m repro.analysis --explain DET003     # why a rule exists
    python -m repro.analysis --list-rules
    python -m repro.analysis src/repro/cluster    # scan a subtree
    python -m repro.analysis --report out.txt     # write the drift report
    python -m repro.analysis --write-baseline     # accept current findings
"""

from __future__ import annotations

import argparse
import sys
import textwrap
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import (
    DEFAULT_BASELINE,
    DEFAULT_REPORT,
    Baseline,
    analyze_paths,
    diff_baseline,
    repo_root,
)
from repro.analysis.report import render_report
from repro.analysis.rules import RULES_BY_ID, SYNTACTIC_RULES
from repro.analysis.semantic import SEMANTIC_RULES

_ALL_EXPLAINABLE = {
    **RULES_BY_ID,
    **{r.rule_id: r for r in SEMANTIC_RULES},
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: determinism & purity static analysis for the "
            "simulation core"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print a rule's rationale and fix guidance, then exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list every rule id and title"
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report raw findings",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="also write the deterministic drift-checked report here",
    )
    parser.add_argument(
        "--no-semantic",
        action="store_true",
        help="skip the registry-importing rules (REG001/REG002)",
    )
    return parser


def _explain(rule_id: str) -> int:
    rule = _ALL_EXPLAINABLE.get(rule_id)
    if rule is None:
        print(
            f"unknown rule {rule_id!r}; known: "
            f"{', '.join(sorted(_ALL_EXPLAINABLE))}",
            file=sys.stderr,
        )
        return 2
    print(f"{rule.rule_id} — {rule.title}")
    print()
    print(textwrap.dedent(rule.explain).strip())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        for rule in (*SYNTACTIC_RULES, *SEMANTIC_RULES):
            print(f"{rule.rule_id}  {rule.title}")
        print("SUP001  suppression without a reason (meta)")
        print("SUP002  suppression matching no finding (meta)")
        return 0

    root = repo_root()
    result = analyze_paths(
        args.paths or None, root=root, semantic=not args.no_semantic
    )

    baseline_path = (
        root / (args.baseline or DEFAULT_BASELINE)
        if not args.no_baseline
        else None
    )
    if args.write_baseline:
        target = baseline_path or root / DEFAULT_BASELINE
        Baseline.from_findings(result.findings).dump(
            target,
            header=(
                "reprolint baseline: accepted findings (rule, path, message)\n"
                "Empty is the goal state.  Regenerate deliberately with\n"
                "`python -m repro.analysis --write-baseline`."
            ),
        )
        print(f"wrote {len(result.findings)} baseline entries to {target}")
        return 0

    baseline = (
        Baseline.load(baseline_path)
        if baseline_path is not None and baseline_path.is_file()
        else Baseline()
    )
    new, stale = diff_baseline(result.findings, baseline)

    if args.report:
        Path(args.report).write_text(render_report(result), encoding="utf-8")

    for finding in new:
        print(finding.render())
    for key in stale:
        print(f"stale baseline entry (fixed? remove it): {key}")
    status = "FAIL" if (new or stale) else "ok"
    print(
        f"reprolint: {result.files_scanned} files, "
        f"{len(result.findings)} finding(s), {len(baseline)} baselined, "
        f"{len(new)} new, {len(stale)} stale -> {status}"
    )
    return 1 if (new or stale) else 0
