"""reprolint — determinism & purity static analysis for the sim core.

Every figure of this reproduction rests on byte-identical determinism:
the run cache, the shared-memory trace transport and matched-seed
replication all silently corrupt results if nondeterminism (wall-clock
reads, unseeded RNG, hash-ordered iteration, PYTHONHASHSEED-sensitive
values) leaks into a simulation path.  This package enforces that
invariant as a tool instead of a review habit: an AST-based, plugin-rule
analyzer with path-scoped configs (sim paths get the full ruleset, tool
paths a relaxed one), reason-required inline suppressions, a committed
baseline ratchet and a drift-checked report.

CLI: ``python -m repro.analysis [--explain RULE] [--baseline PATH]``.
Rules: DET001 wall clock, DET002 global/unseeded RNG, DET003 unordered
iteration, DET004 id()/hash() in ordering/digests, DET005 unordered
accumulation, PURE001 frozen mutation, REG001 registry schema
completeness, REG002 cache-key completeness, SUP001/002 suppression
hygiene.
"""

from repro.analysis.config import SCOPES, Scope, scope_for
from repro.analysis.engine import (
    DEFAULT_BASELINE,
    DEFAULT_REPORT,
    AnalysisResult,
    Baseline,
    analyze_paths,
    analyze_source,
    diff_baseline,
    repo_root,
)
from repro.analysis.findings import Finding, Suppression, parse_suppressions
from repro.analysis.report import render_report
from repro.analysis.rules import RULES_BY_ID, SYNTACTIC_RULES, Rule
from repro.analysis.semantic import SEMANTIC_RULES

__all__ = [
    "AnalysisResult",
    "Baseline",
    "DEFAULT_BASELINE",
    "DEFAULT_REPORT",
    "Finding",
    "RULES_BY_ID",
    "Rule",
    "SCOPES",
    "SEMANTIC_RULES",
    "SYNTACTIC_RULES",
    "Scope",
    "Suppression",
    "analyze_paths",
    "analyze_source",
    "diff_baseline",
    "parse_suppressions",
    "render_report",
    "repo_root",
    "scope_for",
]
