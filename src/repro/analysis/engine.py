"""The reprolint scan engine: files -> findings -> baseline verdict.

:func:`analyze_source` checks one source string (the unit the fixture
tests drive); :func:`analyze_paths` walks directories, applies the path
scopes, runs the semantic registry rules, and returns an
:class:`AnalysisResult`.  :class:`Baseline` holds the committed list of
accepted findings — identity is the line-number-free
:meth:`~repro.analysis.findings.Finding.key`, so baselines survive
unrelated edits — and :func:`diff_baseline` classifies a scan into new
findings (violations) and stale entries (fixed code whose baseline entry
must be removed).  Both directions are failures: the baseline is a
ratchet, not a landfill.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import scope_for
from repro.analysis.findings import (
    Finding,
    Suppression,
    apply_suppressions,
    parse_suppressions,
)
from repro.analysis.rules import RULES_BY_ID, SYNTACTIC_RULES, Rule
from repro.analysis.semantic import SEMANTIC_RULES, SemanticRule


def repo_root() -> Path:
    """The checkout root for a src/ layout (three levels above here)."""
    return Path(__file__).resolve().parents[3]


#: Default committed baseline location.
DEFAULT_BASELINE = "benchmarks/results/reprolint_baseline.txt"
#: Default committed drift-checked report location.
DEFAULT_REPORT = "benchmarks/results/reprolint_report.txt"


def _sort_key(finding: Finding) -> tuple:
    return (finding.path, finding.line, finding.col, finding.rule, finding.message)


@dataclass(slots=True)
class AnalysisResult:
    """Everything one scan produced, before the baseline verdict."""

    findings: list[Finding] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    files_scanned: int = 0
    #: (path, rule ids) actually applied per file, for the report.
    scopes_seen: dict[str, str] = field(default_factory=dict)


def rules_for(rule_ids: Iterable[str]) -> list[Rule]:
    unknown = sorted(set(rule_ids) - set(RULES_BY_ID))
    if unknown:
        raise ValueError(f"unknown rule id(s): {unknown}")
    return [RULES_BY_ID[rid] for rid in rule_ids]


def analyze_source(
    source: str, path: str, rule_ids: Sequence[str] | None = None
) -> list[Finding]:
    """Scan one source string with the given rules (or its scope's).

    Suppression pragmas are honored; SUP001/SUP002 meta-findings are
    included in the return.  ``path`` is the repo-relative posix path
    used for scope lookup and reporting.
    """
    if rule_ids is None:
        rule_ids = scope_for(path).rules
    tree = ast.parse(source, filename=path)
    findings: list[Finding] = []
    for rule in rules_for(rule_ids):
        findings.extend(rule.check(tree, source, path))
    suppressions = parse_suppressions(source, path)
    surviving = apply_suppressions(findings, suppressions)
    return sorted(surviving, key=_sort_key)


def _python_files(paths: Sequence[Path], root: Path) -> list[Path]:
    files: set[Path] = set()
    for path in paths:
        path = path if path.is_absolute() else root / path
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def analyze_paths(
    paths: Sequence[Path | str] | None = None,
    root: Path | None = None,
    semantic: bool = True,
) -> AnalysisResult:
    """Scan a file tree plus (optionally) the live registries."""
    root = root or repo_root()
    targets = [Path(p) for p in (paths or ["src/repro"])]
    result = AnalysisResult()
    for file in _python_files(targets, root):
        try:
            rel = file.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file.as_posix()
        scope = scope_for(rel)
        source = file.read_text(encoding="utf-8")
        suppressions = parse_suppressions(source, rel)
        tree = ast.parse(source, filename=rel)
        findings: list[Finding] = []
        for rule in rules_for(scope.rules):
            findings.extend(rule.check(tree, source, rel))
        result.findings.extend(apply_suppressions(findings, suppressions))
        result.suppressions.extend(s for s in suppressions if s.reason)
        result.files_scanned += 1
        result.scopes_seen[rel] = scope.name
    if semantic:
        for rule in SEMANTIC_RULES:
            result.findings.extend(rule.run(root))
    result.findings.sort(key=_sort_key)
    return result


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
class Baseline:
    """The committed set of accepted finding keys.

    File format: one ``rule<TAB>path<TAB>message`` per line, sorted;
    ``#`` comment lines and blanks ignored.  An empty baseline is the
    goal state — it asserts the scanned tree is violation-free.
    """

    def __init__(self, keys: Iterable[str] = ()) -> None:
        self.keys = set(keys)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(f.key() for f in findings)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        keys = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            rule, rel, message = line.split("\t", 2)
            keys.append(f"{rule}|{rel}|{message}")
        return cls(keys)

    def dump(self, path: Path, header: str = "") -> None:
        lines = []
        if header:
            lines.extend(f"# {h}" for h in header.splitlines())
        for key in sorted(self.keys):
            rule, rel, message = key.split("|", 2)
            lines.append(f"{rule}\t{rel}\t{message}")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def __len__(self) -> int:
        return len(self.keys)


def diff_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> tuple[list[Finding], list[str]]:
    """(new findings, stale baseline keys) for one scan.

    New findings are violations; stale keys are baseline entries whose
    code was fixed — both fail the gate, because a stale entry would let
    the same violation quietly return later.
    """
    new = [f for f in findings if f.key() not in baseline.keys]
    found_keys = {f.key() for f in findings}
    stale = sorted(k for k in baseline.keys if k not in found_keys)
    return new, stale
