"""AST rules of the reprolint determinism & purity analyzer.

Each rule is a plugin: a subclass of :class:`Rule` with an id, a one-line
title, a long ``explain`` text (shown by ``--explain RULE``) and a
``check(tree, source, path)`` returning :class:`Finding` objects.  Rules
are registered in :data:`ALL_RULES`; which rules run on which file is
decided by the path scopes in :mod:`repro.analysis.config`.

All syntactic rules share :class:`ImportResolver`: local names are
expanded through the file's imports to canonical dotted paths
(``np.random.default_rng`` -> ``numpy.random.default_rng``,
``from time import perf_counter as pc; pc()`` -> ``time.perf_counter``),
so aliasing cannot dodge a rule.

The two semantic rules (REG001/REG002) live in
:mod:`repro.analysis.semantic` — they import the live registries instead
of reading source.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.findings import Finding


class Rule:
    """Base class: one statically-checkable determinism/purity invariant."""

    rule_id: str = ""
    title: str = ""
    explain: str = ""

    def check(
        self, tree: ast.AST, source: str, path: str
    ) -> Iterable[Finding]:  # pragma: no cover - interface
        raise NotImplementedError

    def finding(self, node: ast.AST, path: str, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ImportResolver(ast.NodeVisitor):
    """Maps local names to canonical dotted module paths for one file."""

    #: Module aliases treated as canonical regardless of the alias used.
    _CANONICAL = {"np": "numpy"}

    def __init__(self, tree: ast.AST) -> None:
        self.names: dict[str, str] = {}
        self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.names[local] = self._CANONICAL.get(target, target)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return  # relative imports never alias stdlib RNG/clock modules
        base = self._CANONICAL.get(node.module, node.module)
        for alias in node.names:
            self.names[alias.asname or alias.name] = f"{base}.{alias.name}"

    def resolve(self, func: ast.expr) -> str | None:
        """Canonical dotted path of a call target, or ``None``."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.names.get(node.id, node.id)
        root = self._CANONICAL.get(root, root)
        parts.append(root)
        return ".".join(reversed(parts))


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _describe(func: ast.expr) -> str:
    try:
        return ast.unparse(func)
    except Exception:  # pragma: no cover - unparse never fails on parsed code
        return "<call>"


# ----------------------------------------------------------------------
# DET001 — wall-clock reads
# ----------------------------------------------------------------------
class WallClockRule(Rule):
    rule_id = "DET001"
    title = "wall-clock read in a simulation path"
    explain = """\
Simulation time is `Simulation.now`; wall-clock reads (`time.time`,
`time.perf_counter`, `datetime.now`, ...) make a run's behaviour depend
on when and on what machine it executes, which breaks byte-identical
figure regeneration, the content-addressed run cache, and matched-seed
replication.  Tool paths (bench/, runtime/, experiments/) may time
things; simulation paths (core/, cluster/, schedulers/, workloads/)
must not.  Fix: thread simulated time or delete the read; suppress only
for genuinely diagnostic output that never feeds a result."""

    _CLOCKS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "time.clock_gettime",
            "time.localtime",
            "time.gmtime",
            "time.strftime",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, tree, source, path):
        resolver = ImportResolver(tree)
        for call in walk_calls(tree):
            name = resolver.resolve(call.func)
            if name in self._CLOCKS:
                yield self.finding(
                    call, path, f"wall-clock call {name}() in a sim path"
                )


# ----------------------------------------------------------------------
# DET002 — global / unseeded RNG
# ----------------------------------------------------------------------
class GlobalRngRule(Rule):
    rule_id = "DET002"
    title = "module-level or unseeded RNG"
    explain = """\
All randomness must flow from the run seed: a seeded instance
(`repro.core.rng.make_rng(seed, stream)` or `random.Random(seed)`)
threaded from the spec.  The module-level `random.*` / `numpy.random.*`
functions draw from interpreter-global state shared across every caller
and import order, and `random.Random()` / `np.random.default_rng()`
without arguments seed from the OS — both make runs irreproducible.
Fix: accept an rng/seed argument and derive a named stream."""

    _STATEFUL_SUFFIXES = frozenset(
        {
            "random",
            "randint",
            "randrange",
            "randbytes",
            "getrandbits",
            "choice",
            "choices",
            "shuffle",
            "sample",
            "uniform",
            "triangular",
            "gauss",
            "normalvariate",
            "lognormvariate",
            "expovariate",
            "vonmisesvariate",
            "gammavariate",
            "betavariate",
            "paretovariate",
            "weibullvariate",
            "binomialvariate",
            "seed",
        }
    )
    _NUMPY_GLOBAL = frozenset(
        {
            "seed",
            "random",
            "rand",
            "randn",
            "randint",
            "random_sample",
            "random_integers",
            "choice",
            "shuffle",
            "permutation",
            "uniform",
            "normal",
            "standard_normal",
            "exponential",
            "poisson",
            "pareto",
            "beta",
            "gamma",
            "binomial",
            "bytes",
        }
    )

    def check(self, tree, source, path):
        resolver = ImportResolver(tree)
        for call in walk_calls(tree):
            name = resolver.resolve(call.func)
            if name is None:
                continue
            if (
                name.startswith("random.")
                and name.split(".", 1)[1] in self._STATEFUL_SUFFIXES
            ):
                yield self.finding(
                    call,
                    path,
                    f"{name}() draws from the interpreter-global RNG; "
                    "use a seeded instance threaded from the spec",
                )
            elif name == "random.Random" and not call.args:
                yield self.finding(
                    call,
                    path,
                    "random.Random() without a seed draws entropy from "
                    "the OS; pass a seed derived from the run spec",
                )
            elif (
                name.startswith("numpy.random.")
                and name.split(".")[2] in self._NUMPY_GLOBAL
            ):
                yield self.finding(
                    call,
                    path,
                    f"{name}() uses numpy's global RNG state; "
                    "use repro.core.rng.make_rng(seed, stream)",
                )
            elif name == "numpy.random.default_rng" and not call.args:
                yield self.finding(
                    call,
                    path,
                    "numpy.random.default_rng() without a seed is "
                    "OS-entropy seeded; derive the seed from the spec",
                )


# ----------------------------------------------------------------------
# DET003 — unordered iteration feeding order-sensitive sinks
# ----------------------------------------------------------------------
#: Call names that consume their inputs order-sensitively: event
#: scheduling, heap pushes and RNG draws all change downstream behaviour
#: when fed in a different order.
ORDER_SENSITIVE_SINKS = frozenset(
    {
        "schedule",
        "schedule_at",
        "schedule_cancellable",
        "heappush",
        "heappushpop",
        "heapreplace",
        "shuffle",
        "sample",
        "choice",
        "choices",
        "randint",
        "randrange",
        "integers",
        "random",
        "uniform",
        "normal",
        "exponential",
    }
)


def _call_sink_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def is_set_like(node: ast.expr, resolver: ImportResolver) -> bool:
    """Is this expression a set (hash-ordered, PYTHONHASHSEED-sensitive)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return resolver.resolve(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # a | b etc. over sets; only claim it when one side is clearly a set.
        return is_set_like(node.left, resolver) or is_set_like(
            node.right, resolver
        )
    return False


def is_dict_view(node: ast.expr) -> bool:
    """Is this expression a ``.keys()/.values()/.items()`` mapping view?"""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and not node.keywords
    )


class UnorderedIterationRule(Rule):
    rule_id = "DET003"
    title = "iteration over an unordered collection"
    explain = """\
Set iteration order is hash order, which varies with PYTHONHASHSEED and
the interning history of the process: two runs of the same seed can
visit elements differently and diverge wherever order matters.  Any
iteration over a set in a sim path is flagged — wrap it in `sorted()`.
Mapping views (`.keys()/.values()/.items()`) are insertion-ordered, so
they are flagged only when the loop body feeds an order-sensitive sink
(event scheduling, heap pushes, RNG draws, `+=` accumulation): there
the *insertion* history silently becomes part of the result, which is
exactly the coupling `sorted()` severs."""

    def check(self, tree, source, path):
        resolver = ImportResolver(tree)
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(
                    node.iter, node.body, resolver, path
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if is_set_like(comp.iter, resolver):
                        yield self.finding(
                            comp.iter,
                            path,
                            f"comprehension iterates the set "
                            f"`{_describe(comp.iter)}` in hash order; "
                            "wrap it in sorted()",
                        )

    def _check_iter(self, iter_node, body, resolver, path):
        if is_set_like(iter_node, resolver):
            yield self.finding(
                iter_node,
                path,
                f"loop iterates the set `{_describe(iter_node)}` in hash "
                "order; wrap it in sorted()",
            )
            return
        if is_dict_view(iter_node) and self._body_has_sink(body):
            yield self.finding(
                iter_node,
                path,
                f"loop over the mapping view `{_describe(iter_node)}` "
                "feeds an order-sensitive sink; iterate sorted() items "
                "or make the ordering explicit",
            )

    @staticmethod
    def _body_has_sink(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and _call_sink_name(node) in ORDER_SENSITIVE_SINKS
                ):
                    return True
                if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# DET004 — id()/hash() feeding ordering or digests
# ----------------------------------------------------------------------
class HashOrderingRule(Rule):
    rule_id = "DET004"
    title = "id()/hash() used in ordering or digests"
    explain = """\
Builtin `hash()` of strings and bytes is salted by PYTHONHASHSEED and
`id()` is an address: both differ between interpreter launches.  Using
either inside `sorted()`/`min()`/`max()` keys, comparisons, or digest
material (`.update()`, `struct.pack`, hashlib constructors) bakes a
per-process accident into results.  Identity-keyed *lookups*
(`d[id(task)]`) are fine — the hazard is ordering and content.  Fix:
order by stable ids (job_id, worker_id, seq) and digest canonical
reprs; `Trace.content_digest` is the model."""

    _ORDER_FUNCS = frozenset({"sorted", "min", "max", "sort", "heappush", "nsmallest", "nlargest"})
    _DIGEST_FUNCS = frozenset(
        {"update", "pack", "blake2b", "blake2s", "sha1", "sha256", "sha512", "md5", "crc32"}
    )

    def check(self, tree, source, path):
        yield from self._visit(tree, path, in_sink=False)

    def _visit(self, node: ast.AST, path: str, in_sink: bool):
        for child in ast.iter_child_nodes(node):
            child_in_sink = in_sink
            if isinstance(child, ast.Call):
                name = _call_sink_name(child)
                if name in ("hash", "id") and in_sink:
                    yield self.finding(
                        child,
                        path,
                        f"{name}() feeds an ordering/digest computation; "
                        "its value differs across interpreter launches",
                    )
                if name in self._ORDER_FUNCS or name in self._DIGEST_FUNCS:
                    child_in_sink = True
                for kw in child.keywords:
                    if kw.arg == "key" and isinstance(kw.value, ast.Name) and kw.value.id in ("hash", "id"):
                        yield self.finding(
                            kw.value,
                            path,
                            f"key={kw.value.id} orders by a per-process "
                            "value; use a stable key",
                        )
            elif isinstance(child, ast.Compare) and any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in child.ops
            ):
                child_in_sink = True
            yield from self._visit(child, path, child_in_sink)


# ----------------------------------------------------------------------
# DET005 — accumulation over unordered collections
# ----------------------------------------------------------------------
class UnorderedAccumulationRule(Rule):
    rule_id = "DET005"
    title = "sum()/accumulation over an unordered collection"
    explain = """\
Float addition is not associative: `sum()` over a set (hash order) or a
mapping view (insertion order) yields different last-ulp results when
the visit order changes, and last-ulp drift is a full drift for a
byte-identical reproduction.  Every reduction in `repro.metrics` and
the sim paths must consume an explicitly ordered sequence — a list, a
tuple, or `sorted(...)`."""

    _REDUCERS = frozenset({"sum", "fsum", "math.fsum"})

    def check(self, tree, source, path):
        resolver = ImportResolver(tree)
        for call in walk_calls(tree):
            name = resolver.resolve(call.func)
            if name not in self._REDUCERS or not call.args:
                continue
            arg = call.args[0]
            unordered = self._unordered_source(arg, resolver)
            if unordered is not None:
                yield self.finding(
                    call,
                    path,
                    f"{name}() accumulates over the unordered "
                    f"`{unordered}`; impose an explicit order first",
                )

    @staticmethod
    def _unordered_source(arg: ast.expr, resolver: ImportResolver) -> str | None:
        if is_set_like(arg, resolver) or is_dict_view(arg):
            return _describe(arg)
        if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            iter_node = arg.generators[0].iter
            if is_set_like(iter_node, resolver) or is_dict_view(iter_node):
                return _describe(iter_node)
        return None


# ----------------------------------------------------------------------
# PURE001 — frozen-instance mutation outside constructors
# ----------------------------------------------------------------------
class FrozenMutationRule(Rule):
    rule_id = "PURE001"
    title = "mutation of a frozen instance outside its constructor"
    explain = """\
Frozen dataclasses (RunSpec, WorkloadSpec, Param, EngineConfig, the
record types) and FrozenParams are the immutability backbone of the
cache keys: their reprs are content.  `object.__setattr__` is the only
way to mutate them, and it is legitimate only inside construction
(`__init__`/`__post_init__`/`__new__`/`__setstate__`).  Anywhere else
it silently changes an object whose digest was already taken.  Fix:
build a new instance (`with_`, `dataclasses.replace`) instead."""

    _CONSTRUCTORS = frozenset(
        {"__init__", "__post_init__", "__new__", "__setstate__"}
    )

    def check(self, tree, source, path):
        yield from self._scan_setattr(tree, path)
        yield from self._scan_frozen_classes(tree, path)

    def _scan_setattr(self, tree, path):
        for call in walk_calls(tree):
            func = call.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                continue
            where = self._enclosing_function(tree, call)
            if where not in self._CONSTRUCTORS:
                yield self.finding(
                    call,
                    path,
                    f"object.__setattr__ in {where or 'module scope'!r} "
                    "mutates a frozen instance outside a constructor; "
                    "build a new one instead",
                )

    @staticmethod
    def _enclosing_function(tree: ast.AST, target: ast.AST) -> str | None:
        """Name of the innermost function containing ``target``."""
        found: list[str] = []

        def descend(node: ast.AST, stack: tuple[str, ...]) -> bool:
            if node is target:
                found.append(stack[-1] if stack else "")
                return True
            for child in ast.iter_child_nodes(node):
                child_stack = stack
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_stack = stack + (child.name,)
                if descend(child, child_stack):
                    return True
            return False

        descend(tree, ())
        return found[0] if found else None

    def _scan_frozen_classes(self, tree, path):
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and self._is_frozen_dataclass(node):
                yield from self._scan_methods(node, path)

    @staticmethod
    def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call):
                name = _call_sink_name(deco)
                if name == "dataclass":
                    for kw in deco.keywords:
                        if (
                            kw.arg == "frozen"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            return True
        return False

    def _scan_methods(self, cls: ast.ClassDef, path: str):
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in self._CONSTRUCTORS:
                continue
            self_name = (
                method.args.args[0].arg if method.args.args else "self"
            )
            for node in ast.walk(method):
                target = None
                if isinstance(node, (ast.Assign,)):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                else:
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        yield self.finding(
                            node,
                            path,
                            f"frozen dataclass {cls.name} mutates "
                            f"self.{target.attr} in {method.name}(); "
                            "frozen instances are immutable after "
                            "construction",
                        )


#: Every syntactic rule, in report order.  The semantic rules (REG001,
#: REG002) are appended by :mod:`repro.analysis.engine` at scan time.
SYNTACTIC_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    GlobalRngRule(),
    UnorderedIterationRule(),
    HashOrderingRule(),
    UnorderedAccumulationRule(),
    FrozenMutationRule(),
)

RULES_BY_ID: dict[str, Rule] = {r.rule_id: r for r in SYNTACTIC_RULES}
