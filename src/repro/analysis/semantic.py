"""Semantic cross-module rules: they import the live registries.

Unlike the syntactic rules, REG001 and REG002 do not read source text —
they interrogate the actual policy and workload registries and the
actual cache-key functions, so a schema hole or a cache-key gap is
caught no matter which module introduced it.  Findings point at the
registered builder's definition site via ``inspect``.

REG001 — registry schema completeness.  Every :class:`Param` of every
``@register_policy`` / ``@register_workload`` entry must carry a
description and closed bounds (numeric params need both ends or
choices; string params need choices), ``ablation_of`` must resolve to a
registered policy, and ``quick_params`` must validate against the
entry's own schema.  A schema is documentation, a fuzz domain and a
validation gate at once; an unbounded or undescribed param is a hole in
all three.

REG002 — cache-key completeness.  The run cache and the trace
materialization cache key on ``spec_digest(RunSpec)`` and
``WorkloadSpec.digest()``.  A field or param that does not move the
digest silently aliases distinct experiments to one cached result — the
worst failure mode a cache can have.  The rule perturbs every compared
``RunSpec`` field and every declared param of every registered policy
and workload, and requires each perturbation to change the digest; it
also pins the documented exemption list (``estimate``, stood in for by
``estimate_tag``) so a new non-compared field cannot appear unnoticed.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.analysis.findings import Finding
from repro.core.params import Param

#: RunSpec fields excluded from comparison/digest on purpose, with the
#: compared field standing in for each.  REG002 fails if the actual
#: exclusion set drifts from this contract.
RUNSPEC_DIGEST_EXEMPTIONS = {"estimate": "estimate_tag"}


def _location(obj: Any, root: Path, fallback: str) -> tuple[str, int]:
    """(repo-relative path, line) of a registered builder's definition."""
    try:
        func = inspect.unwrap(getattr(obj, "__func__", obj))
        source_file = inspect.getsourcefile(func)
        line = func.__code__.co_firstlineno
    except (TypeError, AttributeError, OSError):
        return fallback, 1
    if source_file is None:
        return fallback, 1
    try:
        rel = Path(source_file).resolve().relative_to(root.resolve())
    except ValueError:
        return fallback, 1
    return rel.as_posix(), line


def _param_schema_holes(owner: str, param: Param) -> Iterable[str]:
    if not param.doc.strip():
        yield (
            f"{owner} param '{param.name}' has no doc; every registered "
            "param needs a description"
        )
    if param.type in (int, float):
        if param.choices is None and (
            param.minimum is None or param.maximum is None
        ):
            yield (
                f"{owner} param '{param.name}' ({param.type.__name__}) is "
                "unbounded; declare minimum and maximum (or choices)"
            )
    elif param.type is str and param.choices is None:
        yield (
            f"{owner} param '{param.name}' (str) declares no choices; "
            "an open string param cannot be validated or enumerated"
        )


def _perturbed(param: Param) -> Any | None:
    """A valid value different from the default, or ``None`` if pinned."""
    candidates: list[Any]
    if param.choices is not None:
        candidates = [c for c in param.choices if c != param.default]
    elif param.type is bool:
        candidates = [not param.default]
    elif param.type in (int, float):
        step = 1 if param.type is int else 0.5
        candidates = [param.default + step, param.default - step]
        if param.maximum is not None:
            candidates.append(param.maximum)
        if param.minimum is not None:
            candidates.append(param.minimum)
        candidates = [c for c in candidates if c != param.default]
    else:
        candidates = [param.default + "-x"]
    for candidate in candidates:
        try:
            value = param.validate(candidate)
        except Exception:
            continue
        if value != param.default:
            return value
    return None


def check_registry_schemas(root: Path) -> list[Finding]:
    """REG001: every registered Param documented, bounded, resolvable."""
    from repro.schedulers import registry as policies
    from repro.workloads import registry as workloads

    findings: list[Finding] = []

    def add(obj: Any, fallback: str, message: str) -> None:
        path, line = _location(obj, root, fallback)
        findings.append(
            Finding(rule="REG001", path=path, line=line, col=0, message=message)
        )

    policy_fallback = "src/repro/schedulers/registry.py"
    registered_policies = set(policies.registered_names())
    for name in sorted(registered_policies):
        entry = policies.policy_entry(name)
        owner = f"policy '{name}'"
        if not entry.doc.strip():
            add(entry.builder, policy_fallback, f"{owner} has no doc summary")
        for param in entry.params:
            for hole in _param_schema_holes(owner, param):
                add(entry.builder, policy_fallback, hole)
        if entry.ablation_of and entry.ablation_of not in registered_policies:
            add(
                entry.builder,
                policy_fallback,
                f"{owner} declares ablation_of={entry.ablation_of!r}, "
                "which is not a registered policy",
            )

    workload_fallback = "src/repro/workloads/registry.py"
    for name in sorted(workloads.registered_names()):
        entry = workloads.workload_entry(name)
        owner = f"workload '{name}'"
        if not entry.doc.strip():
            add(entry.builder, workload_fallback, f"{owner} has no doc summary")
        for param in entry.params:
            for hole in _param_schema_holes(owner, param):
                add(entry.builder, workload_fallback, hole)
        try:
            workloads.validate_params(name, dict(entry.quick_params))
        except Exception as exc:
            add(
                entry.builder,
                workload_fallback,
                f"{owner} quick_params do not validate against its own "
                f"schema: {exc}",
            )
    return findings


def _runspec_field_variants() -> dict[str, Callable]:
    """One digest-moving perturbation per compared RunSpec field."""
    return {
        "scheduler": lambda spec: spec.with_(
            scheduler="sparrow", params={"probe_ratio": 2}
        ),
        "n_workers": lambda spec: spec.with_(n_workers=spec.n_workers + 1),
        "cutoff": lambda spec: spec.with_(cutoff=spec.cutoff + 1.0),
        "short_partition_fraction": lambda spec: spec.with_(
            short_partition_fraction=spec.short_partition_fraction + 0.01
        ),
        "seed": lambda spec: spec.with_(seed=spec.seed + 1),
        "params": lambda spec: spec.with_(
            params={**spec.params, "probe_ratio": spec.params["probe_ratio"] + 1}
        ),
        "estimate_tag": lambda spec: spec.with_(estimate_tag="reg002-variant"),
        "faults": _faults_variant,
    }


def _faults_variant(spec):
    """A non-empty FaultPlan (empty plans normalize to None by design)."""
    from repro.cluster.faults import FaultPlan

    return spec.with_(faults=FaultPlan.of(crash_fraction=0.1))


def check_cache_key_completeness(root: Path) -> list[Finding]:
    """REG002: every spec field/param moves its cache digest."""
    from dataclasses import fields

    from repro.experiments.config import RunSpec
    from repro.experiments.parallel import spec_digest
    from repro.schedulers import registry as policies
    from repro.workloads import registry as workloads
    from repro.workloads.registry import WorkloadSpec

    findings: list[Finding] = []
    config_path = "src/repro/experiments/config.py"
    parallel_path = "src/repro/experiments/parallel.py"

    def add(path: str, message: str) -> None:
        findings.append(
            Finding(rule="REG002", path=path, line=1, col=0, message=message)
        )

    # -- RunSpec field coverage -----------------------------------------
    base = RunSpec(scheduler="hawk", n_workers=10, cutoff=100.0)
    base_digest = spec_digest(base)
    variants = _runspec_field_variants()
    for field in fields(RunSpec):
        if not field.compare:
            stand_in = RUNSPEC_DIGEST_EXEMPTIONS.get(field.name)
            if stand_in is None:
                add(
                    config_path,
                    f"RunSpec.{field.name} is excluded from comparison "
                    "and the cache digest with no registered exemption; "
                    "either compare it or document its stand-in in "
                    "RUNSPEC_DIGEST_EXEMPTIONS",
                )
            elif stand_in not in {f.name for f in fields(RunSpec) if f.compare}:
                add(
                    config_path,
                    f"RunSpec.{field.name}'s digest stand-in "
                    f"{stand_in!r} is not a compared field",
                )
            continue
        variant = variants.get(field.name)
        if variant is None:
            add(
                config_path,
                f"RunSpec gained the compared field {field.name!r} that "
                "REG002 does not know how to perturb; extend "
                "_runspec_field_variants so its digest coverage is checked",
            )
            continue
        if spec_digest(variant(base)) == base_digest:
            add(
                parallel_path,
                f"perturbing RunSpec.{field.name} does not change "
                "spec_digest(); distinct runs would share a cache entry",
            )

    # -- policy params coverage -----------------------------------------
    for name in sorted(policies.registered_names()):
        entry = policies.policy_entry(name)
        spec = RunSpec(scheduler=name, n_workers=10, cutoff=100.0)
        reference = spec_digest(spec)
        for param in entry.params:
            value = _perturbed(param)
            if value is None:
                continue  # pinned by its own bounds; nothing to alias
            varied = spec.with_(params={**spec.params, param.name: value})
            if spec_digest(varied) == reference:
                add(
                    parallel_path,
                    f"policy '{name}' param '{param.name}' does not move "
                    "spec_digest(); its values would alias in the run cache",
                )

    # -- workload params coverage ---------------------------------------
    names = sorted(workloads.registered_names())
    digests = {n: WorkloadSpec(n).digest() for n in names}
    if len(set(digests.values())) != len(names):
        add(
            "src/repro/workloads/registry.py",
            "two registered workloads share a WorkloadSpec digest",
        )
    for name in names:
        entry = workloads.workload_entry(name)
        spec = WorkloadSpec(name)
        reference = spec.digest()
        for param in entry.params:
            value = _perturbed(param)
            if value is None:
                continue
            if spec.with_params(**{param.name: value}).digest() == reference:
                add(
                    "src/repro/workloads/registry.py",
                    f"workload '{name}' param '{param.name}' does not move "
                    "WorkloadSpec.digest(); distinct traces would alias",
                )
    return findings


class SemanticRule:
    """Adapter giving the semantic checks the Rule explain/id surface."""

    def __init__(
        self,
        rule_id: str,
        title: str,
        explain: str,
        runner: Callable[[Path], list[Finding]],
    ) -> None:
        self.rule_id = rule_id
        self.title = title
        self.explain = explain
        self._runner = runner

    def run(self, root: Path) -> list[Finding]:
        return self._runner(root)


SEMANTIC_RULES: tuple[SemanticRule, ...] = (
    SemanticRule(
        "REG001",
        "registry param schemas complete and resolvable",
        """\
Every Param of every @register_policy / @register_workload entry must
carry a description and closed bounds (numeric params need both ends or
choices; string params need choices), every entry needs a doc summary,
`ablation_of` must resolve to a registered policy, and `quick_params`
must validate against the entry's own schema.  A schema is
documentation, a fuzz domain and a validation gate at once; an
unbounded or undescribed param is a hole in all three.  The rule runs
against the *live* registries, so it covers out-of-tree registrations
too.""",
        check_registry_schemas,
    ),
    SemanticRule(
        "REG002",
        "cache-key completeness over spec fields and params",
        """\
The run cache keys on spec_digest(RunSpec) + Trace.content_digest(),
and trace materialization keys on WorkloadSpec.digest().  A field or
param that does not move its digest silently aliases distinct
experiments to one cached result — the worst failure mode a cache can
have.  The rule perturbs every compared RunSpec field, every declared
param of every registered policy and workload, and requires each
perturbation to change the digest; non-compared fields must appear in
RUNSPEC_DIGEST_EXEMPTIONS with a compared stand-in (estimate ->
estimate_tag), so a new uncompared field cannot slip in unnoticed.""",
        check_cache_key_completeness,
    ),
)
