"""Split-cluster baseline (Section 4.6).

A split cluster has *disjoint* partitions: the long partition runs only
long jobs (scheduled centrally) and the short partition runs only short
jobs (scheduled distributed).  There is no general partition and no work
stealing, so short jobs can never use idle servers on the long side.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.cluster import Partition
from repro.cluster.job import JobClass
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.centralized import CentralizedScheduler
from repro.schedulers.registry import Param, register_policy
from repro.schedulers.sparrow import SparrowScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.job import Job


@register_policy(
    "split",
    params=(
        Param("probe_ratio", int, default=2, minimum=1, maximum=64,
              doc="probes per task for the short-partition component"),
    ),
    uses_partition=True,
)
class SplitScheduler(SchedulerPolicy):
    """Disjoint long/short partitions; no sharing, no stealing."""

    name = "split"

    @classmethod
    def from_params(cls, params) -> "SplitScheduler":
        return cls(probe_ratio=params["probe_ratio"])

    def __init__(self, probe_ratio: int = 2) -> None:
        super().__init__()
        self._long = CentralizedScheduler(partition=Partition.GENERAL)
        self._short = SparrowScheduler(
            probe_ratio=probe_ratio,
            partition=Partition.SHORT_RESERVED,
            rng_stream="split-short",
        )

    def on_bind(self) -> None:
        assert self.engine is not None
        self._long.bind(self.engine)
        self._short.bind(self.engine)

    def on_job_submit(self, job: "Job") -> None:
        if job.scheduled_class is JobClass.LONG:
            self._long.on_job_submit(job)
        else:
            self._short.on_job_submit(job)

    def on_task_finish(self, task) -> None:
        self._long.on_task_finish(task)
