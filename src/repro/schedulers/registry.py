"""Pluggable policy registry: the open construction API for schedulers.

Every scheduler policy registers itself here with a *name*, a typed
*parameter schema* and *capability flags*; experiment construction
(:func:`build_engine`) is a pure registry lookup.  Adding a policy —
including one living entirely outside this package — therefore never
touches the experiment layer: register it and every sweep, figure driver
and cache key picks it up.

A registration consists of

* ``name`` — the string accepted by ``RunSpec.scheduler``;
* ``params`` — a tuple of :class:`Param` declarations (name, type,
  default, validation range/choices).  ``RunSpec`` validates its
  ``params`` mapping against this schema at construction time and
  canonicalizes it (defaults filled, keys sorted), which is what makes
  the run-cache key independent of params-dict insertion order.  The
  ``Param``/``FrozenParams`` machinery lives in :mod:`repro.core.params`
  and is shared with the workload registry
  (:mod:`repro.workloads.registry`); this module re-exports it;
* capability flags — ``uses_stealing`` (the engine attaches the
  :class:`~repro.schedulers.stealing.WorkStealing` mechanism, configured
  from the policy's declared ``steal_cap`` param) and ``uses_partition``
  (the cluster reserves ``RunSpec.short_partition_fraction`` of its
  workers for short tasks).  These replace the closed ``_STEALING`` /
  ``_PARTITIONED`` name sets that predated the registry.  A third flag,
  ``serves_online`` (default ``True``), declares that the policy can be
  driven one submission at a time by the long-running scheduler service
  (:mod:`repro.service`): policies whose decisions depend on
  whole-trace knowledge no online client could supply (the
  ``omniscient`` oracle) opt out and the service rejects submissions
  targeting them;
* ``ablation_of`` — the base policy this entry is an ablation of
  (e.g. the ``hawk-no-*`` family names ``"hawk"``), letting drivers such
  as Figure 7 enumerate an ablation family from the registry.

Policies in an ablation family share one param schema so a spec can hop
between family members (``spec.with_(scheduler=variant)``) without
re-declaring params.  A declared-but-inert param (``steal_cap`` on
``hawk-no-stealing``) is accepted for exactly this reason; keep such
params at their defaults or the cache key will distinguish runs that are
semantically identical.

Registering::

    from repro.schedulers.registry import Param, register_policy

    @register_policy(
        "my-policy",
        params=(Param("fanout", int, default=4, minimum=1),),
    )
    class MyPolicy(SchedulerPolicy):
        @classmethod
        def from_params(cls, params):
            return cls(fanout=params["fanout"])

A class registration uses its ``from_params`` classmethod as the
builder; a function registration is the builder itself (it receives the
validated params mapping and returns a policy instance) — used when one
class backs several registered names, like the Hawk ablations.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.cluster import Cluster, ClusterEngine, EngineConfig
from repro.core.errors import ConfigurationError
from repro.core.params import (  # noqa: F401  (re-exported: the public API)
    PARAM_TYPES,
    FrozenParams,
    Param,
    check_schema,
    validate_against,
)
from repro.schedulers.stealing import WorkStealing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.schedulers.base import SchedulerPolicy


@dataclass(frozen=True, slots=True)
class PolicyEntry:
    """One registered policy: builder plus schema plus capabilities."""

    name: str
    builder: Callable[[Mapping], "SchedulerPolicy"] = field(compare=False)
    params: tuple[Param, ...] = ()
    uses_stealing: bool = False
    uses_partition: bool = False
    serves_online: bool = True
    ablation_of: str | None = None
    doc: str = ""

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def defaults(self) -> FrozenParams:
        return FrozenParams({p.name: p.default for p in self.params})


_REGISTRY: dict[str, PolicyEntry] = {}


def _ensure_builtins() -> None:
    """Import the package so built-in policy modules register themselves."""
    import repro.schedulers  # noqa: F401  (idempotent side-effect import)


def register_policy(
    name: str,
    *,
    params: Iterable[Param] = (),
    uses_stealing: bool = False,
    uses_partition: bool = False,
    serves_online: bool = True,
    ablation_of: str | None = None,
    doc: str | None = None,
):
    """Class/function decorator adding one policy to the registry.

    On a class, the class's ``from_params(params)`` classmethod becomes
    the builder; on a function, the function itself is the builder.
    Registration fails loudly on duplicate names, duplicate param names,
    and a stealing-capable policy that forgets to declare ``steal_cap``
    (the engine reads it to configure the stealing mechanism).
    """
    params = tuple(params)
    if name in _REGISTRY:
        raise ConfigurationError(f"policy {name!r} is already registered")
    check_schema(f"policy {name!r}", params)
    if uses_stealing and "steal_cap" not in {p.name for p in params}:
        raise ConfigurationError(
            f"policy {name!r} uses stealing but declares no 'steal_cap' param"
        )

    def decorate(obj):
        if isinstance(obj, type):
            builder = getattr(obj, "from_params", None)
            if builder is None:
                raise ConfigurationError(
                    f"class {obj.__name__} registered as {name!r} needs a "
                    "from_params(params) classmethod"
                )
        else:
            builder = obj
        summary = doc
        if summary is None:
            lines = (obj.__doc__ or "").strip().splitlines()
            summary = lines[0] if lines else ""
        _REGISTRY[name] = PolicyEntry(
            name=name,
            builder=builder,
            params=params,
            uses_stealing=uses_stealing,
            uses_partition=uses_partition,
            serves_online=serves_online,
            ablation_of=ablation_of,
            doc=summary,
        )
        return obj

    return decorate


def unregister(name: str) -> None:
    """Remove one registration (test/plugin teardown helper)."""
    _REGISTRY.pop(name, None)


def registered_names() -> tuple[str, ...]:
    """Every registered policy name, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def policy_entry(name: str) -> PolicyEntry:
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; registered policies: "
            f"{sorted(_REGISTRY)}"
        ) from None


def ablations_of(base: str) -> tuple[str, ...]:
    """Names registered as ablations of ``base``, in registration order."""
    _ensure_builtins()
    return tuple(
        e.name for e in _REGISTRY.values() if e.ablation_of == base
    )


def validate_params(name: str, params: Mapping | None = None) -> FrozenParams:
    """Schema-check one params mapping; returns it canonicalized.

    Unknown names, wrong types and out-of-range values raise
    :class:`~repro.core.errors.ConfigurationError`; undeclared entries
    are filled with their schema defaults.
    """
    entry = policy_entry(name)
    return validate_against(f"policy {name!r}", entry.params, params)


def build_policy(name: str, params: Mapping | None = None) -> "SchedulerPolicy":
    """Construct a policy instance from its registered builder."""
    entry = policy_entry(name)
    return entry.builder(validate_params(name, params))


def build_engine(spec) -> ClusterEngine:
    """Registry-driven engine construction for one ``RunSpec``.

    Everything the engine needs is read off the spec and the policy's
    registry entry: the partition fraction applies only when the policy
    declares ``uses_partition``, and the work-stealing mechanism is
    attached (configured from the ``steal_cap`` param) only when it
    declares ``uses_stealing``.
    """
    entry = policy_entry(spec.scheduler)
    # RunSpec validated and canonicalized params at construction; specs
    # arriving over a process boundary carry that same frozen mapping.
    params = spec.params
    partition_fraction = (
        spec.short_partition_fraction if entry.uses_partition else 0.0
    )
    cluster = Cluster(spec.n_workers, short_partition_fraction=partition_fraction)
    scheduler = entry.builder(params)
    stealing = (
        WorkStealing(cap=params["steal_cap"]) if entry.uses_stealing else None
    )
    config = EngineConfig(cutoff=spec.cutoff, seed=spec.seed)
    engine = ClusterEngine(
        cluster, scheduler, config, stealing=stealing, estimate=spec.estimate
    )
    faults = getattr(spec, "faults", None)
    if faults is not None:
        engine.attach_faults(faults)
    return engine


def describe() -> str:
    """Canonical schema listing (sorted by name) for drift detection.

    The CI registry smoke job diffs this against a checked-in snapshot
    (``benchmarks/results/registry_schema.txt``); any change to policy
    names, flags or param schemas shows up as a failing diff until the
    snapshot is regenerated on purpose.
    """
    _ensure_builtins()
    lines = []
    for name in sorted(_REGISTRY):
        entry = _REGISTRY[name]
        flags = [
            f"stealing={'yes' if entry.uses_stealing else 'no'}",
            f"partition={'yes' if entry.uses_partition else 'no'}",
            f"online={'yes' if entry.serves_online else 'no'}",
        ]
        if entry.ablation_of:
            flags.append(f"ablation-of={entry.ablation_of}")
        lines.append(f"policy {name}  [{' '.join(flags)}]")
        for param in entry.params:
            lines.append(f"  {param.describe()}")
    return "\n".join(lines) + "\n"
