"""Sparrow: fully distributed batch probing with late binding.

This is the paper's primary baseline (Section 2.3) and also the building
block Hawk uses for its short jobs (Section 3.5).  Each job gets
``probe_ratio * t`` probes placed on randomly chosen servers; the paper
follows the Sparrow authors in fixing the ratio at 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.cluster import Partition
from repro.core.errors import ConfigurationError
from repro.core.rng import make_rng, spread_sample
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.frontend import ProbeFrontend
from repro.schedulers.registry import Param, register_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.job import Job


@register_policy(
    "sparrow",
    params=(
        Param("probe_ratio", int, default=2, minimum=1, maximum=64,
              doc="probes per task (2 throughout the paper)"),
    ),
)
class SparrowScheduler(SchedulerPolicy):
    """Distributed batch-probing scheduler over a partition of the cluster.

    Parameters
    ----------
    probe_ratio:
        Probes per task; 2 throughout the paper.
    partition:
        The server set probes may land on.  ``ALL`` for the Sparrow
        baseline; Hawk instantiates this class with other scopes.
    rng_stream:
        Name of the random stream (so two probing components inside one
        run, e.g. Hawk's ablation, stay independent).
    """

    name = "sparrow"

    def __init__(
        self,
        probe_ratio: int = 2,
        partition: Partition = Partition.ALL,
        rng_stream: str = "sparrow",
    ) -> None:
        super().__init__()
        if probe_ratio < 1:
            raise ConfigurationError(f"probe_ratio must be >= 1, got {probe_ratio}")
        self.probe_ratio = probe_ratio
        self.partition = partition
        self._rng_stream = rng_stream
        self._rng = None
        self.jobs_scheduled = 0
        self.probes_sent = 0

    def on_bind(self) -> None:
        assert self.engine is not None
        self._rng = make_rng(self.engine.config.seed, self._rng_stream)
        if len(self.engine.cluster.ids(self.partition)) == 0:
            raise ConfigurationError(
                f"partition {self.partition.value} has no workers"
            )

    @classmethod
    def from_params(cls, params) -> "SparrowScheduler":
        return cls(probe_ratio=params["probe_ratio"])

    def _n_probes(self, job: "Job") -> int:
        """Probe budget for one job; subclasses override (batch sampling)."""
        return self.probe_ratio * job.num_tasks

    def on_job_submit(self, job: "Job") -> None:
        assert self.engine is not None and self._rng is not None
        frontend = ProbeFrontend(job)
        ids = self.engine.cluster.ids(self.partition)
        n_probes = self._n_probes(job)
        targets = spread_sample(self._rng, ids, n_probes)
        # One batched send: all probes of a job arrive at the same
        # timestamp in target order (the engine falls back to per-probe
        # events under a jittered network model).
        self.engine.place_probes(targets, job, frontend)
        self.jobs_scheduled += 1
        self.probes_sent += n_probes
