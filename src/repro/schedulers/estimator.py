"""Task-runtime estimation models (Sections 3.3 and 4.8).

Hawk estimates a job's task runtime as the mean of its task durations,
informed by previous runs of recurring jobs.  The mis-estimation model of
Section 4.8 multiplies the correct estimate by a random value chosen
uniformly within a configurable range (e.g. 0.1-1.9).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.errors import ConfigurationError
from repro.core.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.spec import JobSpec


class ExactEstimation:
    """Perfect estimates: the true mean task duration."""

    def __call__(self, spec: "JobSpec") -> float:
        return spec.mean_task_duration


class UniformMisestimation:
    """Multiply the correct estimate by Uniform(low, high).

    The paper's ranges are symmetric around 1 (0.1-1.9 ... 0.7-1.3), but
    any valid range is accepted.  A given ``(seed, run_seed, job_id)``
    triple always produces the same factor, so two schedulers compared
    on the same trace and seed see identical mis-estimations.

    The estimator implements the engine's ``seeded(run_seed)`` hook:
    at engine construction it is specialized to the run seed, so seed
    *replicas* of one spec draw independent mis-estimations — which is
    what lets Figure 14 average over estimator noise through the
    ordinary ``run_replicated`` machinery instead of a bespoke loop.
    """

    def __init__(
        self,
        low: float,
        high: float,
        seed: int = 0,
        run_seed: int | None = None,
    ) -> None:
        if low <= 0 or high < low:
            raise ConfigurationError(
                f"mis-estimation range must satisfy 0 < low <= high, "
                f"got [{low}, {high}]"
            )
        self.low = low
        self.high = high
        self.seed = seed
        self.run_seed = run_seed

    def seeded(self, run_seed: int) -> "UniformMisestimation":
        """Engine hook: bind the mis-estimation stream to one run seed."""
        return UniformMisestimation(
            self.low, self.high, seed=self.seed, run_seed=run_seed
        )

    def __call__(self, spec: "JobSpec") -> float:
        stream = (
            f"misestimate-{spec.job_id}"
            if self.run_seed is None
            else f"misestimate-{self.run_seed}-{spec.job_id}"
        )
        rng = make_rng(self.seed, stream)
        factor = float(rng.uniform(self.low, self.high))
        return spec.mean_task_duration * factor

    @property
    def magnitude_label(self) -> str:
        """The paper's x-axis label, e.g. ``0.1-1.9``."""
        return f"{self.low:g}-{self.high:g}"
