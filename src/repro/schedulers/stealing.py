"""Randomized work stealing (Section 3.6).

Whenever a server runs out of work it contacts up to ``cap`` (default 10)
randomly chosen servers and steals the first consecutive group of short
entries queued behind a long entry from the first victim that has one.
Both general- and short-partition servers steal, but only servers in the
*general* partition can be victims — that is where long tasks cause
head-of-line blocking.

The paper's simulator assigns zero cost to stealing (Section 4.1).  With
zero-cost rounds, a purely transition-triggered policy would let a server
that went idle *before* blocked work appeared stay idle forever, so the
policy retries with exponential backoff while a server remains idle.  The
backoff bounds the event overhead of retries in lightly loaded clusters
(where stealing is irrelevant) while preserving the paper's randomized
pull semantics, including the cap sensitivity of Figure 15.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.cluster.records import StealingStats
from repro.cluster.worker import Worker, WorkerState
from repro.core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.engine import ClusterEngine


class WorkStealing:
    """Randomized stealing with idle-retry backoff.

    Parameters
    ----------
    cap:
        Maximum number of random servers contacted per stealing round
        (the x-axis of Figure 15; default 10 per Section 4.1).
    retry_initial / retry_max:
        Backoff window for re-attempting while idle, in simulated seconds.
    """

    #: Upper bound on parked workers woken per work-appearance event; the
    #: first wake that succeeds flips the hint tally back to zero and the
    #: rest fail in O(1), so a small constant keeps fidelity and bounds cost.
    WAKE_LIMIT = 64

    def __init__(
        self,
        cap: int = 10,
        retry_initial: float = 1.0,
        retry_max: float = 64.0,
    ) -> None:
        if cap < 1:
            raise ConfigurationError(f"steal cap must be >= 1, got {cap}")
        if retry_initial <= 0 or retry_max < retry_initial:
            raise ConfigurationError(
                f"invalid retry window [{retry_initial}, {retry_max}]"
            )
        self.cap = cap
        self.retry_initial = retry_initial
        self.retry_max = retry_max
        self.engine: "ClusterEngine | None" = None
        self._rng: random.Random | None = None
        self._getrandbits = None  # bound rng.getrandbits, set in bind()
        self._victim_bits = 1
        # Insertion-ordered so wake order is deterministic across
        # processes (a set would pop in address order).
        self._parked: dict[Worker, None] = {}
        self._rounds = 0
        self._successes = 0
        self._victims_probed = 0
        self._entries_stolen = 0

    def bind(self, engine: "ClusterEngine") -> None:
        if self.engine is not None:
            raise RuntimeError("stealing policy bound twice")
        self.engine = engine
        # stdlib RNG: this is the hottest random stream in a run and
        # numpy's per-call scalar overhead dominates otherwise.  Victim
        # draws go through ``getrandbits`` directly using the same
        # rejection sampling as ``Random.randrange`` (see
        # ``_randbelow_with_getrandbits``), consuming the Mersenne stream
        # identically while skipping the per-call range bookkeeping —
        # this loop draws >1M victims in a full-trace run.
        self._rng = random.Random(engine.config.seed ^ 0x5EA15EA1)
        self._getrandbits = self._rng.getrandbits
        self._victim_bits = max(1, engine.cluster.n_general).bit_length()

    # ------------------------------------------------------------------
    def on_worker_idle(self, worker: Worker) -> None:
        """One stealing round; schedules a backoff retry on failure."""
        assert self.engine is not None and self._rng is not None
        self._parked.pop(worker, None)
        if worker.pending_steal_retry is not None:
            worker.pending_steal_retry.cancel()
            worker.pending_steal_retry = None
        if self._attempt_round(worker):
            worker.steal_backoff = 0.0
            return
        self._schedule_retry(worker)

    def _attempt_round(self, thief: Worker) -> bool:
        assert self.engine is not None and self._rng is not None
        cluster = self.engine.cluster
        # Fast fail: stealing needs a possibly-eligible general queue.
        if cluster.steal_hint_count == 0:
            return False
        n = cluster.n_general
        if n == 0 or (n == 1 and not thief.in_short_partition):
            return False
        self._rounds += 1
        attempts = min(self.cap, n - (0 if thief.in_short_partition else 1))
        probed = 0
        seen: set[int] = set()
        getrandbits = self._getrandbits
        bits = self._victim_bits
        workers = cluster.workers
        thief_id = thief.worker_id
        while probed < attempts:
            # Inlined randrange(n): rejection-sample bit_length(n) bits,
            # exactly the draws Random.randrange would consume.
            victim_id = getrandbits(bits)
            if victim_id >= n or victim_id == thief_id or victim_id in seen:
                continue
            seen.add(victim_id)
            probed += 1
            victim = workers[victim_id]
            # Cheap pre-filter (not a copy of the Figure-3 rule): a
            # victim with no queued short entries can never be eligible,
            # and that is the overwhelmingly common miss in this loop.
            # Eligibility itself stays in Worker.eligible_steal_range().
            if not victim._short_seqs:
                continue
            span = victim.eligible_steal_range()
            if span is None:
                continue
            self._victims_probed += probed
            stolen = self.engine.transfer_stolen_entries(
                victim, thief, span[0], span[1]
            )
            self._successes += 1
            self._entries_stolen += stolen
            return True
        self._victims_probed += probed
        return False

    def _schedule_retry(self, worker: Worker) -> None:
        """Back off and retry while idle; park when no steal can succeed."""
        engine = self.engine
        assert engine is not None
        if engine._done:
            return
        if engine.cluster.steal_hint_count == 0:
            # Nothing in the whole cluster is stealable: sleep until the
            # engine reports eligible work instead of polling.
            self._parked[worker] = None
            return
        backoff = worker.steal_backoff
        if backoff == 0.0:
            backoff = self.retry_initial
        else:
            backoff *= 2.0
            if backoff > self.retry_max:
                backoff = self.retry_max
        worker.steal_backoff = backoff
        worker.pending_steal_retry = engine.sim.schedule_cancellable(
            backoff, self._retry_fires, worker
        )

    def _retry_fires(self, worker: Worker) -> None:
        worker.pending_steal_retry = None
        assert self.engine is not None
        if self.engine._done:
            return
        if worker.state is not WorkerState.IDLE or worker.queue:
            return
        if self._attempt_round(worker):
            worker.steal_backoff = 0.0
            return
        self._schedule_retry(worker)

    def on_steal_work_appeared(self) -> None:
        """Engine callback: the cluster steal-hint tally went 0 -> 1.

        Wake up to :data:`WAKE_LIMIT` parked workers.  Wakes are scheduled
        (not run inline) so the engine finishes its current transition
        before thieves inspect queues.
        """
        assert self.engine is not None
        if not self._parked or self.engine.all_jobs_done:
            return
        for _ in range(min(self.WAKE_LIMIT, len(self._parked))):
            worker, _ = self._parked.popitem()
            worker.pending_steal_retry = self.engine.sim.schedule_cancellable(
                0.0, self._retry_fires, worker
            )

    def stats(self) -> StealingStats:
        return StealingStats(
            rounds=self._rounds,
            successful_rounds=self._successes,
            victims_probed=self._victims_probed,
            entries_stolen=self._entries_stolen,
        )
