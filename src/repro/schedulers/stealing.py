"""Randomized work stealing (Section 3.6).

Whenever a server runs out of work it contacts up to ``cap`` (default 10)
randomly chosen servers and steals the first consecutive group of short
entries queued behind a long entry from the first victim that has one.
Both general- and short-partition servers steal, but only servers in the
*general* partition can be victims — that is where long tasks cause
head-of-line blocking.

The paper's simulator assigns zero cost to stealing (Section 4.1).  With
zero-cost rounds, a purely transition-triggered policy would let a server
that went idle *before* blocked work appeared stay idle forever, so the
policy retries with exponential backoff while a server remains idle.  The
backoff bounds the event overhead of retries in lightly loaded clusters
(where stealing is irrelevant) while preserving the paper's randomized
pull semantics, including the cap sensitivity of Figure 15.

Flat-array hot loop
-------------------
A stealing-heavy run executes hundreds of thousands of rounds, nearly all
of which probe ``cap`` victims and fail.  Two structures make the failing
round cheap without touching ``Worker`` objects or changing a single
observable draw:

* **Buffered victim draws.**  ``Random.getrandbits(32 * k)`` consumes
  exactly the same ``k`` MT19937 output words as ``k`` scalar
  ``getrandbits(bits)`` calls (one 32-bit word each, assembled
  little-endian), so the policy prefetches a chunk, extracts each word's
  top ``bits`` via numpy, and serves the draws in order — draw-for-draw
  identical to the per-call loop.  Out-of-range draws (``>= n``) are
  dropped at refill time: the scalar loop rejects them unconditionally,
  before any thief- or duplicate-dependent test, so no round can observe
  them.
* **Flat eligibility bitmap.**  ``Cluster.steal_flags`` mirrors each
  general worker's steal hint (exact, PR 1: hint ⇔ an eligible range
  exists), maintained by the engine's hint sync.  A round whose next
  ``cap`` buffered draws are pairwise distinct, miss the thief, and all
  index zero bytes of the bitmap is *proven* to fail: it consumes the
  draws and updates the counters as a block.  Any other round falls
  back to the exact per-draw loop.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.records import StealingStats
from repro.cluster.worker import Worker, WorkerState
from repro.core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.cluster.engine import ClusterEngine
    from repro.core.simulation import Simulation

_IDLE = WorkerState.IDLE


class WorkStealing:
    """Randomized stealing with idle-retry backoff.

    Parameters
    ----------
    cap:
        Maximum number of random servers contacted per stealing round
        (the x-axis of Figure 15; default 10 per Section 4.1).
    retry_initial / retry_max:
        Backoff window for re-attempting while idle, in simulated seconds.
    """

    #: Upper bound on parked workers woken per work-appearance event; the
    #: first wake that succeeds flips the hint tally back to zero and the
    #: rest fail in O(1), so a small constant keeps fidelity and bounds cost.
    WAKE_LIMIT = 64

    #: 32-bit Mersenne words drawn per victim-buffer refill.
    REFILL_WORDS = 4096

    def __init__(
        self,
        cap: int = 10,
        retry_initial: float = 1.0,
        retry_max: float = 64.0,
    ) -> None:
        if cap < 1:
            raise ConfigurationError(f"steal cap must be >= 1, got {cap}")
        if retry_initial <= 0 or retry_max < retry_initial:
            raise ConfigurationError(
                f"invalid retry window [{retry_initial}, {retry_max}]"
            )
        self.cap = cap
        self.retry_initial = retry_initial
        self.retry_max = retry_max
        self.engine: "ClusterEngine | None" = None
        self._rng: random.Random | None = None
        self._getrandbits = None  # bound rng.getrandbits, set in bind()
        self._victim_bits = 1
        self._n_general = 0
        # Victim-draw buffer (see module docstring).  ``_buf`` holds the
        # in-range draws still to be served, ``_pos`` the next index.
        self._buffered = False
        self._window = 0
        self._buf: list[int] = []
        self._pos = 0
        # Bind-time caches for the per-round hot path.
        self._sim: "Simulation | None" = None
        self._cluster: "Cluster | None" = None
        self._flags: bytearray = bytearray()
        self._flags_get = self._flags.__getitem__
        self._workers: list[Worker] = []
        # Parked-worker stack with lazy deletion: ``cluster.parked`` is
        # the membership column; stale stack entries (flag already 0)
        # are skipped on pop and squeezed out when they pile up.
        self._park_stack: list[Worker] = []
        self._parked_count = 0
        self._batch_wakes = False
        self._rounds = 0
        self._successes = 0
        self._victims_probed = 0
        self._entries_stolen = 0

    def bind(self, engine: "ClusterEngine") -> None:
        if self.engine is not None:
            raise RuntimeError("stealing policy bound twice")
        self.engine = engine
        # stdlib RNG: this is the hottest random stream in a run and
        # numpy's per-call scalar overhead dominates otherwise.  Victim
        # draws use the same rejection sampling as ``Random.randrange``
        # (see ``_randbelow_with_getrandbits``), consuming the Mersenne
        # stream identically — prefetched in chunks when the draw width
        # fits one 32-bit word (always, for any real cluster size).
        self._rng = random.Random(engine.config.seed ^ 0x5EA15EA1)
        self._getrandbits = self._rng.getrandbits
        n = engine.cluster.n_general
        self._n_general = n
        self._victim_bits = max(1, n).bit_length()
        self._buffered = self._victim_bits <= 32
        # The proven-failure block requires every round to probe exactly
        # ``cap`` victims, which holds for both partitions when n > cap.
        self._window = self.cap if (self._buffered and n > self.cap) else 0
        self._sim = engine.sim
        self._cluster = engine.cluster
        self._flags = engine.cluster.steal_flags
        self._flags_get = self._flags.__getitem__
        self._workers = engine.cluster.workers
        # Waking parked workers through one batched heap event is
        # order-identical only when no message leg can complete in zero
        # time (with a positive delay, a worker woken at t cannot bounce
        # through WAITING back to IDLE — and cancel its wake — within t).
        self._batch_wakes = engine.network.delay > 0.0

    # ------------------------------------------------------------------
    # Victim-draw buffer.
    # ------------------------------------------------------------------
    def _refill(self) -> None:
        """Extend the buffer with one chunk of prefetched victim draws."""
        words = self._getrandbits(32 * self.REFILL_WORDS)
        raw = np.frombuffer(
            words.to_bytes(4 * self.REFILL_WORDS, "little"), dtype="<u4"
        )
        ids = (raw >> np.uint32(32 - self._victim_bits)).astype(np.int64)
        valid = ids[ids < self._n_general]
        tail = self._buf[self._pos :]
        self._buf = tail + valid.tolist() if tail else valid.tolist()
        self._pos = 0

    # ------------------------------------------------------------------
    def on_worker_idle(self, worker: Worker) -> None:
        """One stealing round; schedules a backoff retry on failure."""
        engine = self.engine
        assert engine is not None
        parked = engine.cluster.parked
        wid = worker.worker_id
        if parked[wid]:
            parked[wid] = 0
            self._parked_count -= 1
        if worker.pending_steal_retry is not None:
            worker.pending_steal_retry.cancel()
            worker.pending_steal_retry = None
        if self._attempt_round(worker):
            worker.steal_backoff = 0.0
            return
        self._schedule_retry(worker)

    def _attempt_round(self, thief: Worker) -> bool:
        cluster = self._cluster
        assert cluster is not None
        # Fast fail: stealing needs a possibly-eligible general queue.
        if cluster.steal_hint_count == 0:
            return False
        n = self._n_general
        if n == 0 or (n == 1 and not thief.in_short_partition):
            return False
        self._rounds += 1
        w = self._window
        if w:
            pos = self._pos
            buf = self._buf
            end = pos + w
            if end > len(buf):
                self._refill()
                while len(self._buf) < w:  # pragma: no cover - 2^-4096
                    self._refill()
                pos = 0
                buf = self._buf
                end = w
            window = buf[pos:end]
            # Equivalent to: no draw is flagged, none equals the thief,
            # and all are pairwise distinct (the single set covers the
            # last two).  Pure condition — order is free.
            if (
                not any(map(self._flags_get, window))
                and len({thief.worker_id, *window}) == w + 1
            ):
                # Proven failure: the per-draw loop would probe exactly
                # these ``w`` distinct, hint-free victims and reject
                # each (the hint is exact, so flag 0 ⇒ nothing eligible).
                self._pos = end
                self._victims_probed += w
                return False
        if self._buffered:
            return self._slow_round(thief, n)
        return self._slow_round_percall(thief, n)  # pragma: no cover - n >= 2**32

    def _slow_round(self, thief: Worker, n: int) -> bool:
        """The exact per-draw round, served from the prefetch buffer."""
        engine = self.engine
        workers = self._workers
        thief_id = thief.worker_id
        attempts = min(self.cap, n - (0 if thief.in_short_partition else 1))
        probed = 0
        seen: set[int] = set()
        buf = self._buf
        pos = self._pos
        size = len(buf)
        while probed < attempts:
            if pos == size:
                self._pos = pos
                self._refill()
                buf = self._buf
                pos = 0
                size = len(buf)
                continue
            victim_id = buf[pos]
            pos += 1
            if victim_id == thief_id or victim_id in seen:
                continue
            seen.add(victim_id)
            probed += 1
            victim = workers[victim_id]
            # Cheap pre-filter (not a copy of the Figure-3 rule): a
            # victim with no queued short entries can never be eligible,
            # and that is the overwhelmingly common miss in this loop.
            # Eligibility itself stays in Worker.eligible_steal_range().
            if not victim._short_seqs:
                continue
            span = victim.eligible_steal_range()
            if span is None:
                continue
            self._pos = pos
            self._victims_probed += probed
            stolen = engine.transfer_stolen_entries(victim, thief, span[0], span[1])
            self._successes += 1
            self._entries_stolen += stolen
            return True
        self._pos = pos
        self._victims_probed += probed
        return False

    def _slow_round_percall(
        self, thief: Worker, n: int
    ) -> bool:  # pragma: no cover - clusters past the 32-bit draw width
        """Per-call fallback for draw widths beyond one Mersenne word."""
        engine = self.engine
        workers = engine.cluster.workers
        thief_id = thief.worker_id
        attempts = min(self.cap, n - (0 if thief.in_short_partition else 1))
        probed = 0
        seen: set[int] = set()
        getrandbits = self._getrandbits
        bits = self._victim_bits
        while probed < attempts:
            victim_id = getrandbits(bits)
            if victim_id >= n or victim_id == thief_id or victim_id in seen:
                continue
            seen.add(victim_id)
            probed += 1
            victim = workers[victim_id]
            if not victim._short_seqs:
                continue
            span = victim.eligible_steal_range()
            if span is None:
                continue
            self._victims_probed += probed
            stolen = engine.transfer_stolen_entries(victim, thief, span[0], span[1])
            self._successes += 1
            self._entries_stolen += stolen
            return True
        self._victims_probed += probed
        return False

    def _schedule_retry(self, worker: Worker) -> None:
        """Back off and retry while idle; park when no steal can succeed."""
        engine = self.engine
        assert engine is not None
        if engine._done:
            return
        cluster = engine.cluster
        if cluster.steal_hint_count == 0:
            # Nothing in the whole cluster is stealable: sleep until the
            # engine reports eligible work instead of polling.  Parking
            # ends the contention period, so the backoff ladder restarts
            # from retry_initial at the next wake — without the reset a
            # woken worker resumed at its stale pre-park maximum.
            worker.steal_backoff = 0.0
            cluster.parked[worker.worker_id] = 1
            self._park_stack.append(worker)
            self._parked_count += 1
            if len(self._park_stack) > 2 * self._parked_count + 64:
                self._compact_stack(cluster.parked)
            return
        backoff = worker.steal_backoff
        if backoff == 0.0:
            backoff = self.retry_initial
        else:
            backoff *= 2.0
            if backoff > self.retry_max:
                backoff = self.retry_max
        worker.steal_backoff = backoff
        worker.pending_steal_retry = engine.sim.schedule_cancellable(
            backoff, self._retry_fires, worker
        )

    def _compact_stack(self, parked: bytearray) -> None:
        """Drop lazily-deleted park-stack entries, preserving wake order.

        Keeps each parked worker's most recent entry (scanning from the
        top so re-parked workers lose their stale older duplicates).
        """
        seen: set[int] = set()
        kept: list[Worker] = []
        for worker in reversed(self._park_stack):
            wid = worker.worker_id
            if parked[wid] and wid not in seen:
                seen.add(wid)
                kept.append(worker)
        kept.reverse()
        self._park_stack = kept

    def _retry_fires(self, worker: Worker) -> None:
        handle = worker.pending_steal_retry
        worker.pending_steal_retry = None
        engine = self.engine
        assert engine is not None
        if engine._done:
            return
        if worker.state is not _IDLE or worker.queue:
            return
        if self._attempt_round(worker):
            worker.steal_backoff = 0.0
            return
        # Fused copy of _schedule_retry for the hottest path, reusing the
        # handle that just fired (a live fire means ``handle`` was this
        # worker's pending retry and its heap entry is gone, so re-arming
        # the object cannot alias a stale entry).
        cluster = engine.cluster
        if cluster.steal_hint_count == 0:
            worker.steal_backoff = 0.0  # parking resets the ladder
            cluster.parked[worker.worker_id] = 1
            self._park_stack.append(worker)
            self._parked_count += 1
            if len(self._park_stack) > 2 * self._parked_count + 64:
                self._compact_stack(cluster.parked)
            return
        backoff = worker.steal_backoff
        if backoff == 0.0:
            backoff = self.retry_initial
        else:
            backoff *= 2.0
            if backoff > self.retry_max:
                backoff = self.retry_max
        worker.steal_backoff = backoff
        if handle is not None:
            self._sim.reschedule_fired(handle, backoff)  # type: ignore[union-attr]
            worker.pending_steal_retry = handle
        else:  # pragma: no cover - _retry_fires is only reachable via a handle
            worker.pending_steal_retry = engine.sim.schedule_cancellable(
                backoff, self._retry_fires, worker
            )

    def on_worker_dead(self, worker: Worker) -> None:
        """Engine callback: fault injection crashed ``worker``.

        Drop it from the stealing machinery — cancel a pending retry and
        unpark it, keeping the park-stack invariant (live flags on the
        stack ≥ ``_parked_count``) intact so wake scans cannot underflow.
        Its steal hint is cleared by the engine's hint sync after the
        queue is drained, so it cannot be selected as a victim either.
        """
        if worker.pending_steal_retry is not None:
            worker.pending_steal_retry.cancel()
            worker.pending_steal_retry = None
        cluster = self._cluster
        assert cluster is not None
        if cluster.parked[worker.worker_id]:
            cluster.parked[worker.worker_id] = 0
            self._parked_count -= 1

    def on_steal_work_appeared(self) -> None:
        """Engine callback: the cluster steal-hint tally went 0 -> 1.

        Wake up to :data:`WAKE_LIMIT` parked workers.  Wakes are scheduled
        (not run inline) so the engine finishes its current transition
        before thieves inspect queues.  With a positive network delay the
        whole group rides one heap event (see :meth:`_wake_fires`); the
        zero-delay path keeps one cancellable event per worker, because
        only there can a woken worker re-idle — and revoke its own wake —
        before the wake fires.
        """
        engine = self.engine
        assert engine is not None
        if self._parked_count == 0 or engine.all_jobs_done:
            return
        stack = self._park_stack
        parked = engine.cluster.parked
        limit = min(self.WAKE_LIMIT, self._parked_count)
        woken: list[Worker] = []
        while len(woken) < limit:
            worker = stack.pop()
            if parked[worker.worker_id]:
                parked[worker.worker_id] = 0
                woken.append(worker)
        self._parked_count -= len(woken)
        if self._batch_wakes:
            engine.sim.schedule_cancellable(0.0, self._wake_fires, woken)
        else:
            for worker in woken:
                worker.pending_steal_retry = engine.sim.schedule_cancellable(
                    0.0, self._retry_fires, worker
                )

    def _wake_fires(self, woken: list[Worker]) -> None:
        """One batched wake: each entry is one logical wake event."""
        engine = self.engine
        assert engine is not None
        engine.sim.add_logical_events(len(woken) - 1)
        if engine._done:
            return
        for worker in woken:
            if worker.state is not _IDLE or worker.queue:
                continue
            if self._attempt_round(worker):
                worker.steal_backoff = 0.0
            else:
                self._schedule_retry(worker)

    def stats(self) -> StealingStats:
        return StealingStats(
            rounds=self._rounds,
            successful_rounds=self._successes,
            victims_probed=self._victims_probed,
            entries_stolen=self._entries_stolen,
        )
