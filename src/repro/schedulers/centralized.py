"""Centralized least-waiting-time scheduler (Section 3.7).

The centralized component keeps a priority queue of
``<server, waiting time>`` tuples sorted by waiting time, where the waiting
time is "the sum of the estimated execution time for all long tasks in
that server's queue plus the remaining estimated execution time of any
long task that currently may be executing".  Each task of an incoming job
goes to the server at the head of the queue (smallest waiting time), and
the queue is updated after every assignment.

Waiting times therefore track the *live* queue: tasks leave it when they
finish (the scheduler receives node status updates), and the estimates —
not the true durations — drive every decision.  The implementation keeps a
per-worker pending-estimate sum and a lazy-deletion heap: every change
pushes a fresh ``(pending, version, worker)`` entry and stale entries are
discarded on pop, giving O(log n) per assignment and per completion.

Short tasks are invisible to this component (it does "not know the
location of the many short jobs"), which is why its view is accurate only
to the extent that long jobs dominate resource usage — exactly the
trade-off the paper describes.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.cluster.cluster import Partition
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.registry import register_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.job import Job
    from repro.cluster.task import Task


@register_policy("centralized")
class CentralizedScheduler(SchedulerPolicy):
    """Greedy least-waiting-time placement over a partition."""

    name = "centralized"

    @classmethod
    def from_params(cls, params) -> "CentralizedScheduler":
        return cls()

    def __init__(self, partition: Partition = Partition.ALL) -> None:
        super().__init__()
        self.partition = partition
        self._pending: dict[int, float] = {}
        self._version: dict[int, int] = {}
        self._heap: list[tuple[float, int, int]] = []
        self._estimate_of_task: dict[int, float] = {}  # id(task) -> estimate
        self._deferred: list["Job"] = []
        self.jobs_scheduled = 0
        self.tasks_placed = 0
        self.jobs_deferred = 0

    def on_bind(self) -> None:
        assert self.engine is not None
        ids = self.engine.cluster.ids(self.partition)
        self._pending = {worker_id: 0.0 for worker_id in ids}
        self._version = {worker_id: 0 for worker_id in ids}
        self._heap = [(0.0, 0, worker_id) for worker_id in ids]
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    def waiting_time(self, worker_id: int) -> float:
        """Estimated queueing delay at a worker, as the scheduler sees it."""
        return self._pending[worker_id]

    def _update(self, worker_id: int, delta: float) -> None:
        pending = max(0.0, self._pending[worker_id] + delta)
        self._pending[worker_id] = pending
        version = self._version[worker_id] + 1
        self._version[worker_id] = version
        heapq.heappush(self._heap, (pending, version, worker_id))

    def _pop_least_loaded(self) -> int:
        heap = self._heap
        while True:
            pending, version, worker_id = heap[0]
            if version == self._version[worker_id]:
                return worker_id
            heapq.heappop(heap)  # stale entry

    # ------------------------------------------------------------------
    def on_job_submit(self, job: "Job") -> None:
        assert self.engine is not None
        if self.engine.centralized_down:
            # Injected outage (repro.cluster.faults): the scheduler process
            # is down, so submissions queue at it and are placed in arrival
            # order the instant it comes back.
            self._deferred.append(job)
            self.jobs_deferred += 1
            return
        self._place(job)

    def on_centralized_restored(self) -> None:
        deferred, self._deferred = self._deferred, []
        for job in deferred:
            self._place(job)

    def _place(self, job: "Job") -> None:
        assert self.engine is not None
        estimate = job.estimated_task_duration
        assignments = []
        for task in job.tasks:
            worker_id = self._pop_least_loaded()
            self._update(worker_id, estimate)
            self._estimate_of_task[id(task)] = estimate
            assignments.append((worker_id, task))
        # All of a job's placements leave at the same instant; the engine
        # delivers the group in assignment order on one heap event.
        self.engine.place_tasks(assignments)
        self.tasks_placed += len(assignments)
        self.jobs_scheduled += 1

    def on_task_finish(self, task: "Task") -> None:
        """Node status report: drop the finished task from its queue view."""
        estimate = self._estimate_of_task.pop(id(task), None)
        if estimate is None:
            return  # not one of ours (e.g. a short task in a hybrid setup)
        assert task.worker_id is not None
        self._update(task.worker_id, -estimate)

    def snapshot(self) -> list[tuple[float, int]]:
        """Sorted (waiting_time, worker_id) view — for tests and debugging."""
        return sorted((p, w) for w, p in self._pending.items())
