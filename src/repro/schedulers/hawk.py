"""Hawk: the hybrid scheduler (Section 3).

* Long jobs (estimate >= cutoff) go to a centralized least-waiting-time
  scheduler restricted to the *general* partition.
* Short jobs are probed Sparrow-style over the *entire* cluster.
* Work stealing is a separate runtime mechanism configured on the engine
  (:class:`repro.schedulers.stealing.WorkStealing`); it is not part of this
  policy object.

The ``centralize_long`` flag supports the Figure 7 ablation "Hawk without
centralized": long jobs are then batch-probed over the general partition
instead of centrally placed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.cluster import Partition
from repro.cluster.job import JobClass
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.centralized import CentralizedScheduler
from repro.schedulers.registry import Param, register_policy
from repro.schedulers.sparrow import SparrowScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.job import Job

#: Shared schema of the Hawk ablation family: every member declares both
#: params so a spec can hop between variants (``with_(scheduler=...)``)
#: without re-declaring its params.  ``steal_cap`` is inert on
#: ``hawk-no-stealing`` (no stealing mechanism is attached).
HAWK_PARAMS = (
    Param("probe_ratio", int, default=2, minimum=1, maximum=64,
          doc="probes per task for the short-job component"),
    Param("steal_cap", int, default=10, minimum=1, maximum=1000,
          doc="random victims contacted per stealing round (Figure 15)"),
)


@register_policy(
    "hawk",
    params=HAWK_PARAMS,
    uses_stealing=True,
    uses_partition=True,
)
class HawkScheduler(SchedulerPolicy):
    """Hybrid centralized/distributed scheduling."""

    name = "hawk"

    @classmethod
    def from_params(cls, params) -> "HawkScheduler":
        return cls(probe_ratio=params["probe_ratio"])

    def __init__(
        self,
        probe_ratio: int = 2,
        centralize_long: bool = True,
    ) -> None:
        super().__init__()
        self.centralize_long = centralize_long
        self._short = SparrowScheduler(
            probe_ratio=probe_ratio,
            partition=Partition.ALL,
            rng_stream="hawk-short",
        )
        if centralize_long:
            self._long: SchedulerPolicy = CentralizedScheduler(
                partition=Partition.GENERAL
            )
            # Degraded mode for injected centralized outages
            # (repro.cluster.faults): long jobs fall back to distributed
            # probes over the general partition instead of stalling behind
            # the dead scheduler.  Constructed unconditionally — its named
            # RNG stream is independent, so binding it is unobservable in
            # fault-free runs.
            self._long_fallback: SparrowScheduler | None = SparrowScheduler(
                probe_ratio=probe_ratio,
                partition=Partition.GENERAL,
                rng_stream="hawk-long-degraded",
            )
        else:
            self._long = SparrowScheduler(
                probe_ratio=probe_ratio,
                partition=Partition.GENERAL,
                rng_stream="hawk-long",
            )
            self._long_fallback = None
        self.short_jobs = 0
        self.long_jobs = 0
        self.degraded_long_jobs = 0

    def on_bind(self) -> None:
        assert self.engine is not None
        self._short.bind(self.engine)
        self._long.bind(self.engine)
        if self._long_fallback is not None:
            self._long_fallback.bind(self.engine)

    def on_job_submit(self, job: "Job") -> None:
        if job.scheduled_class is JobClass.LONG:
            self.long_jobs += 1
            if (
                self._long_fallback is not None
                and self.engine is not None
                and self.engine.centralized_down
            ):
                self.degraded_long_jobs += 1
                self._long_fallback.on_job_submit(job)
            else:
                self._long.on_job_submit(job)
        else:
            self.short_jobs += 1
            self._short.on_job_submit(job)

    def on_task_finish(self, task) -> None:
        # Status updates feed the centralized component's waiting times;
        # it ignores tasks it did not place (all short tasks).
        self._long.on_task_finish(task)

    def on_centralized_restored(self) -> None:
        self._long.on_centralized_restored()

    @property
    def long_component(self) -> SchedulerPolicy:
        return self._long

    @property
    def short_component(self) -> SparrowScheduler:
        return self._short


# -- Figure 7 ablation family ------------------------------------------------
@register_policy(
    "hawk-no-centralized",
    params=HAWK_PARAMS,
    uses_stealing=True,
    uses_partition=True,
    ablation_of="hawk",
    doc="Hawk with long jobs batch-probed instead of centrally placed",
)
def _hawk_no_centralized(params) -> HawkScheduler:
    return HawkScheduler(
        probe_ratio=params["probe_ratio"], centralize_long=False
    )


@register_policy(
    "hawk-no-partition",
    params=HAWK_PARAMS,
    uses_stealing=True,
    uses_partition=False,
    ablation_of="hawk",
    doc="Hawk without the reserved short partition",
)
def _hawk_no_partition(params) -> HawkScheduler:
    return HawkScheduler(probe_ratio=params["probe_ratio"])


@register_policy(
    "hawk-no-stealing",
    params=HAWK_PARAMS,
    uses_stealing=False,
    uses_partition=True,
    ablation_of="hawk",
    doc="Hawk without the work-stealing mechanism",
)
def _hawk_no_stealing(params) -> HawkScheduler:
    return HawkScheduler(probe_ratio=params["probe_ratio"])
