"""Hawk: the hybrid scheduler (Section 3).

* Long jobs (estimate >= cutoff) go to a centralized least-waiting-time
  scheduler restricted to the *general* partition.
* Short jobs are probed Sparrow-style over the *entire* cluster.
* Work stealing is a separate runtime mechanism configured on the engine
  (:class:`repro.schedulers.stealing.WorkStealing`); it is not part of this
  policy object.

The ``centralize_long`` flag supports the Figure 7 ablation "Hawk without
centralized": long jobs are then batch-probed over the general partition
instead of centrally placed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.cluster import Partition
from repro.cluster.job import JobClass
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.centralized import CentralizedScheduler
from repro.schedulers.sparrow import SparrowScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.job import Job


class HawkScheduler(SchedulerPolicy):
    """Hybrid centralized/distributed scheduling."""

    name = "hawk"

    def __init__(
        self,
        probe_ratio: int = 2,
        centralize_long: bool = True,
    ) -> None:
        super().__init__()
        self.centralize_long = centralize_long
        self._short = SparrowScheduler(
            probe_ratio=probe_ratio,
            partition=Partition.ALL,
            rng_stream="hawk-short",
        )
        if centralize_long:
            self._long: SchedulerPolicy = CentralizedScheduler(
                partition=Partition.GENERAL
            )
        else:
            self._long = SparrowScheduler(
                probe_ratio=probe_ratio,
                partition=Partition.GENERAL,
                rng_stream="hawk-long",
            )
        self.short_jobs = 0
        self.long_jobs = 0

    def on_bind(self) -> None:
        assert self.engine is not None
        self._short.bind(self.engine)
        self._long.bind(self.engine)

    def on_job_submit(self, job: "Job") -> None:
        if job.scheduled_class is JobClass.LONG:
            self.long_jobs += 1
            self._long.on_job_submit(job)
        else:
            self.short_jobs += 1
            self._short.on_job_submit(job)

    def on_task_finish(self, task) -> None:
        # Status updates feed the centralized component's waiting times;
        # it ignores tasks it did not place (all short tasks).
        self._long.on_task_finish(task)

    @property
    def long_component(self) -> SchedulerPolicy:
        return self._long

    @property
    def short_component(self) -> SparrowScheduler:
        return self._short
