"""Late-binding job frontend shared by all distributed policies.

In Sparrow's "batch probing" (Section 2.3/3.5), a scheduler sends 2t probes
for a job with t tasks and hands tasks out on demand: when a probe reaches
the head of a worker's queue the worker requests a task, and the frontend
replies with the next unassigned task — or a cancel once all t tasks are
gone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.job import Job
    from repro.cluster.task import Task


class ProbeFrontend:
    """Per-job late-binding state: which tasks are still unassigned."""

    __slots__ = ("job", "_next", "cancels_sent")

    def __init__(self, job: "Job") -> None:
        self.job = job
        self._next = 0
        self.cancels_sent = 0

    @property
    def remaining(self) -> int:
        return self.job.num_tasks - self._next

    def next_task(self) -> "Task | None":
        """Hand out the next unassigned task, or None (cancel)."""
        if self._next >= self.job.num_tasks:
            self.cancels_sent += 1
            return None
        task = self.job.tasks[self._next]
        self._next += 1
        return task
