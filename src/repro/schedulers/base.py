"""Common interface for scheduler policies."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.engine import ClusterEngine
    from repro.cluster.job import Job
    from repro.cluster.task import Task


class SchedulerPolicy(abc.ABC):
    """Decides where probes and tasks are placed.

    A policy is bound to exactly one engine for exactly one run; the engine
    calls :meth:`on_job_submit` at each job's submission time.
    """

    #: Human-readable policy name, used in results and reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self.engine: "ClusterEngine | None" = None

    def bind(self, engine: "ClusterEngine") -> None:
        if self.engine is not None:
            raise RuntimeError(f"policy {self.name} bound twice")
        self.engine = engine
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for policies that need cluster-dependent setup."""

    @abc.abstractmethod
    def on_job_submit(self, job: "Job") -> None:
        """Place the job's probes/tasks via the engine's placement API."""

    def on_centralized_restored(self) -> None:
        """Hook: an injected centralized-scheduler outage just ended.

        Policies with a centralized component flush whatever they deferred
        while the engine reported ``centralized_down``; purely distributed
        policies (which never consult the flag) ignore it.
        """

    def on_task_finish(self, task: "Task") -> None:
        """Status update: a task completed somewhere in the cluster.

        Centralized components use this to keep their per-server waiting
        times in sync with reality (the paper's node status reports);
        distributed components ignore it by design — they "have no
        knowledge of the current cluster state" (Section 3.5).
        """
