"""Scheduler policies: Hawk, every baseline the paper compares against,
and registry-only scenario policies.

Importing this package registers every built-in policy with
:mod:`repro.schedulers.registry`; new policies register themselves the
same way (see the registry module docstring) and need no edits here or
in the experiment layer.
"""

from repro.schedulers import registry
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.centralized import CentralizedScheduler
from repro.schedulers.estimator import ExactEstimation, UniformMisestimation
from repro.schedulers.frontend import ProbeFrontend
from repro.schedulers.hawk import HawkScheduler
from repro.schedulers.registry import FrozenParams, Param, register_policy
from repro.schedulers.scenarios import BatchSamplingScheduler, OmniscientScheduler
from repro.schedulers.sparrow import SparrowScheduler
from repro.schedulers.split import SplitScheduler
from repro.schedulers.stealing import WorkStealing

__all__ = [
    "BatchSamplingScheduler",
    "CentralizedScheduler",
    "ExactEstimation",
    "FrozenParams",
    "HawkScheduler",
    "OmniscientScheduler",
    "Param",
    "ProbeFrontend",
    "SchedulerPolicy",
    "SparrowScheduler",
    "SplitScheduler",
    "UniformMisestimation",
    "WorkStealing",
    "register_policy",
    "registry",
]
