"""Scheduler policies: Hawk and every baseline the paper compares against."""

from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.centralized import CentralizedScheduler
from repro.schedulers.estimator import ExactEstimation, UniformMisestimation
from repro.schedulers.frontend import ProbeFrontend
from repro.schedulers.hawk import HawkScheduler
from repro.schedulers.sparrow import SparrowScheduler
from repro.schedulers.split import SplitScheduler
from repro.schedulers.stealing import WorkStealing

__all__ = [
    "CentralizedScheduler",
    "ExactEstimation",
    "HawkScheduler",
    "ProbeFrontend",
    "SchedulerPolicy",
    "SparrowScheduler",
    "SplitScheduler",
    "UniformMisestimation",
    "WorkStealing",
]
