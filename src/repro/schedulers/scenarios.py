"""Scenario policies registered purely through the policy registry.

Neither policy below is wired anywhere in the experiment layer: they are
constructed, validated, cached and swept solely through their registry
registrations, which is the contract that keeps the scheduler zoo open —
``RunSpec(scheduler="sparrow-batch", ..., params={"batch_size": 8})``
works in every figure driver and sweep without touching
``repro.experiments.config``.

* ``sparrow-batch`` — Sparrow with a per-job probe *budget*: instead of
  always sending ``probe_ratio * tasks`` probes, the total is capped at
  ``batch_size`` (never below the task count, which late binding needs
  to hand every task out).  Models the constrained batch sampling of the
  Sparrow line of work, where probe traffic per job is bounded.
* ``omniscient`` — an idealized placement baseline with perfect
  knowledge: each task goes to the worker with the least *true* pending
  work (true durations, all classes visible, whole cluster, zero probe
  traffic).  Section 2.3's "an omniscient scheduler would yield job
  runtimes of 100s for the majority of the short jobs" made concrete —
  a lower-bound companion to the realistic policies.  Registered with
  ``serves_online=False``: an oracle has no online counterpart (its
  whole point is perfect knowledge a live client cannot certify), so
  the scheduler service refuses to serve it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.cluster import Partition
from repro.core.errors import ConfigurationError
from repro.schedulers.centralized import CentralizedScheduler
from repro.schedulers.registry import Param, register_policy
from repro.schedulers.sparrow import SparrowScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.job import Job


@register_policy(
    "sparrow-batch",
    params=(
        Param("probe_ratio", int, default=2, minimum=1, maximum=64,
              doc="probes per task before the budget cap applies"),
        Param("batch_size", int, default=16, minimum=1, maximum=4096,
              doc="per-job probe budget (floored at the job's task count)"),
    ),
)
class BatchSamplingScheduler(SparrowScheduler):
    """Sparrow batch sampling with a bounded per-job probe budget."""

    name = "sparrow-batch"

    def __init__(
        self,
        probe_ratio: int = 2,
        batch_size: int = 16,
        partition: Partition = Partition.ALL,
        rng_stream: str = "sparrow-batch",
    ) -> None:
        super().__init__(
            probe_ratio=probe_ratio, partition=partition, rng_stream=rng_stream
        )
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.batch_size = batch_size

    @classmethod
    def from_params(cls, params) -> "BatchSamplingScheduler":
        return cls(
            probe_ratio=params["probe_ratio"], batch_size=params["batch_size"]
        )

    def _n_probes(self, job: "Job") -> int:
        # Late binding needs at least one probe per task or leftover
        # tasks would never be pulled; above that floor the budget caps
        # the proportional probe count.
        return max(job.num_tasks, min(self.probe_ratio * job.num_tasks,
                                      self.batch_size))


@register_policy("omniscient", serves_online=False)
class OmniscientScheduler(CentralizedScheduler):
    """Idealized least-true-backlog placement (perfect knowledge)."""

    name = "omniscient"

    @classmethod
    def from_params(cls, params) -> "OmniscientScheduler":
        return cls()

    def on_job_submit(self, job: "Job") -> None:
        assert self.engine is not None
        # Same least-waiting-time queue discipline as the centralized
        # scheduler, but driven by per-task *true* durations for every
        # job class — the oracle the paper's Section 2.3 gestures at.
        assignments = []
        for task in job.tasks:
            worker_id = self._pop_least_loaded()
            self._update(worker_id, task.duration)
            self._estimate_of_task[id(task)] = task.duration
            assignments.append((worker_id, task))
        self.engine.place_tasks(assignments)
        self.tasks_placed += len(assignments)
        self.jobs_scheduled += 1
