"""Seeded randomness helpers.

Every stochastic component in the reproduction receives its own named
stream derived from a single experiment seed, so that e.g. changing the
stealing policy's random choices does not perturb the workload generator.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

# Fixed, arbitrary constants that map stream names to distinct substreams.
_STREAM_SALT = 0x5F3759DF


def make_rng(seed: int, stream: str = "") -> np.random.Generator:
    """Create a deterministic generator for ``(seed, stream)``.

    Distinct ``stream`` names yield statistically independent generators
    for the same ``seed``.
    """
    material = [seed, _STREAM_SALT]
    material.extend(ord(c) for c in stream)
    return np.random.default_rng(np.random.SeedSequence(material))


def sample_without_replacement(
    rng: np.random.Generator, population: int, k: int
) -> list[int]:
    """Sample ``k`` distinct integers from ``range(population)``.

    Uses Floyd's algorithm: O(k) time and memory regardless of the
    population size, which matters when probing 2t servers out of tens of
    thousands.
    """
    if k > population:
        raise ValueError(f"cannot sample {k} items from population of {population}")
    # One vectorized call replaces the per-step scalar draws.  For an
    # array of bounds, ``Generator.integers`` applies Lemire rejection
    # per element in bound order — bit-stream identical to the scalar
    # ``integers(0, j + 1)`` loop it replaces (pinned by a test).
    draws = rng.integers(0, np.arange(population - k + 1, population + 1))
    selected: set[int] = set()
    result: list[int] = []
    j = population - k
    for t in draws.tolist():
        if t in selected:
            t = j
        selected.add(t)
        result.append(t)
        j += 1
    # Floyd's algorithm biases order; shuffle for a uniformly random order.
    rng.shuffle(result)  # type: ignore[arg-type]
    return result


def spread_sample(
    rng: np.random.Generator, population: Sequence[int], k: int
) -> list[int]:
    """Pick ``k`` items from ``population``, as evenly spread as possible.

    When ``k <= len(population)`` this is a plain sample without
    replacement.  When ``k`` exceeds the population (a job with more probes
    than eligible servers), items repeat, but no item is used ``n+1`` times
    before every item has been used ``n`` times.  This mirrors how a probe
    fan-out larger than the cluster must wrap around.
    """
    n = len(population)
    if n == 0:
        raise ValueError("cannot sample from an empty population")
    if k <= n:
        idx = sample_without_replacement(rng, n, k)
        return [population[i] for i in idx]
    result: list[int] = []
    full_rounds, remainder = divmod(k, n)
    for _ in range(full_rounds):
        order = list(range(n))
        rng.shuffle(order)
        result.extend(population[i] for i in order)
    if remainder:
        idx = sample_without_replacement(rng, n, remainder)
        result.extend(population[i] for i in idx)
    return result
