"""Minimal, fast discrete-event simulation engine.

The engine is a binary heap of timestamped callbacks.  Determinism matters
more than raw speed for a reproduction: two events scheduled for the same
timestamp always fire in the order they were scheduled (a monotonically
increasing sequence number breaks ties), so a fixed seed produces a
bit-identical run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.core.errors import SimulationError


class EventHandle:
    """A scheduled callback and its cancellation token.

    Instances are created by :meth:`Simulation.schedule` /
    :meth:`Simulation.schedule_at`; user code only ever needs
    :meth:`cancel` and the read-only attributes.  Heap ordering is done on
    ``(time, seq)`` tuples (C-level comparisons), not on handles.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call multiple times."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulation:
    """A discrete-event simulation clock and event heap."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._events_fired = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of events still on the heap, including cancelled ones."""
        return len(self._heap)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        return handle

    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if none remain."""
        heap = self._heap
        while heap:
            _, _, handle = heapq.heappop(heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            self._events_fired += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        """Run until the heap drains, ``until`` is reached, or the budget ends.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        ``max_events`` guards against runaway simulations and raises
        :class:`SimulationError` when exhausted.
        """
        if self._running:
            raise SimulationError("Simulation.run() is not reentrant")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        fired = 0
        try:
            while heap:
                time, _, handle = heap[0]
                if handle.cancelled:
                    heappop(heap)
                    continue
                if until is not None and time > until:
                    self._now = until
                    return
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"event budget exhausted after {fired} events at "
                        f"t={self._now:.3f}"
                    )
                heappop(heap)
                self._now = time
                self._events_fired += 1
                fired += 1
                handle.callback(*handle.args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
