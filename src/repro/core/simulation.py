"""Minimal, fast discrete-event simulation engine.

The engine is a binary heap of timestamped callbacks.  Determinism matters
more than raw speed for a reproduction: two events scheduled for the same
timestamp always fire in the order they were scheduled (a monotonically
increasing sequence number breaks ties), so a fixed seed produces a
bit-identical run.

Two scheduling paths share one heap:

* :meth:`Simulation.schedule` / :meth:`Simulation.schedule_at` — the fast
  path for the non-cancellable majority of events.  Entries are plain
  ``(time, seq, callback, args)`` tuples: no per-event object allocation,
  and heap ordering stays a C-level tuple comparison on ``(time, seq)``
  (seqs are unique, so comparisons never reach the callback).
* :meth:`Simulation.schedule_cancellable` — returns an
  :class:`EventHandle` for the few events that may need to be revoked
  (e.g. work-stealing retry timers).  Cancelled entries are skipped on
  pop, and when they outnumber the live half of the heap the heap is
  compacted in place, so churny cancel-heavy phases cannot grow the heap
  without bound.

A *logical* event is one message arrival / timer firing of the modelled
system.  Transport-level batching (one heap pop delivering many
same-timestamp messages) keeps the logical count intact via
:meth:`add_logical_events`, so :attr:`events_fired` — and the
``max_events`` budget, which counts logical events — are invariant under
such batching.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable

from repro.core.errors import SimulationError


class EventHandle:
    """A cancellable scheduled callback.

    Instances are created by :meth:`Simulation.schedule_cancellable`; user
    code only ever needs :meth:`cancel` and the read-only attributes.
    Heap ordering is done on ``(time, seq)`` tuples (C-level comparisons),
    not on handles.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        sim: "Simulation",
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self._sim = sim
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call multiple times."""
        if not self.cancelled:
            self.cancelled = True
            self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulation:
    """A discrete-event simulation clock and event heap."""

    __slots__ = ("_now", "_heap", "_seq", "_events_fired", "_running", "_cancelled")

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # (time, seq, callback, args) for plain events;
        # (time, seq, None, EventHandle) for cancellable ones.
        self._heap: list[tuple] = []
        self._seq = 0
        self._events_fired = 0
        self._running = False
        self._cancelled = 0  # cancelled-but-unpopped handle entries

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Logical events executed so far (cancelled events excluded)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of entries still on the heap, including cancelled ones."""
        return len(self._heap)

    @property
    def next_event_time(self) -> float | None:
        """Timestamp of the earliest pending heap entry, or ``None``.

        Cancelled entries are not skipped, so the value is a lower bound
        on the next *firing* time — exactly what an online driver needs
        to size its sleep before the next :meth:`run` slice.
        """
        heap = self._heap
        if not heap:
            return None
        time: float = heap[0][0]
        return time

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past: delay={delay}")
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback, args))
        self._seq += 1

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` to fire at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    def schedule_cancellable(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Like :meth:`schedule`, but returns a cancellation handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past: delay={delay}")
        time = self._now + delay
        handle = EventHandle(self, time, self._seq, callback, args)
        heapq.heappush(self._heap, (time, self._seq, None, handle))
        self._seq += 1
        return handle

    def reschedule_fired(self, handle: EventHandle, delay: float) -> None:
        """Re-arm a handle whose event has already fired.

        Hot-path variant of :meth:`schedule_cancellable` that reuses the
        handle object instead of allocating a fresh one (work-stealing
        retry timers re-arm hundreds of thousands of times per run).  The
        caller must guarantee the previous heap entry for ``handle`` was
        popped because it *fired* — a cancelled handle still has a stale
        entry on the heap and must not be reused.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past: delay={delay}")
        time = self._now + delay
        seq = self._seq
        handle.time = time
        handle.seq = seq
        heapq.heappush(self._heap, (time, seq, None, handle))
        self._seq = seq + 1

    def add_logical_events(self, n: int) -> None:
        """Count ``n`` extra logical events delivered by the current event.

        Called by transport-level batching (one heap pop standing in for
        ``n + 1`` same-timestamp message deliveries) so that
        :attr:`events_fired` and the ``max_events`` budget keep their
        batching-independent meaning.
        """
        self._events_fired += n

    # ------------------------------------------------------------------
    # Cancelled-entry bookkeeping.
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        # Lazy compaction: once cancelled entries outnumber live ones,
        # rebuild the heap without them.  O(live) and amortized O(1) per
        # cancel, so churny park/cancel phases keep the heap bounded by
        # twice the live event count.
        if self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        # In place: run()/step() hold a reference to the heap list while
        # callbacks (which may cancel and trigger compaction) execute, so
        # rebinding self._heap here would strand their alias on a dead
        # list and silently drop every event scheduled afterwards.
        heap = self._heap
        heap[:] = [
            entry for entry in heap if entry[2] is not None or not entry[3].cancelled
        ]
        heapq.heapify(heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Event loop.
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if none remain."""
        heap = self._heap
        while heap:
            time, _, callback, args = heapq.heappop(heap)
            if callback is None:
                handle = args
                if handle.cancelled:
                    self._cancelled -= 1
                    continue
                callback, args = handle.callback, handle.args
            self._now = time
            self._events_fired += 1
            callback(*args)
            return True
        return False

    def run(
        self, until: float | None = None, max_events: int | None = None
    ) -> None:
        """Run until the heap drains, ``until`` is reached, or the budget ends.

        ``until`` is inclusive: events scheduled exactly at ``until`` fire.
        ``max_events`` guards against runaway simulations and raises
        :class:`SimulationError` when exhausted; it counts logical events,
        so a batched delivery of ``k`` messages spends ``k`` of the budget.
        """
        if self._running:
            raise SimulationError("Simulation.run() is not reentrant")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        # The event loop churns through millions of short-lived tuples,
        # handles, and windows whose lifetimes the cycle collector cannot
        # shorten (refcounting frees them); its periodic generation scans
        # only add overhead.  Suspend it for the duration of the run.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if until is None and max_events is None:
                # Fast path: the engine's production configuration.
                while heap:
                    time, _, callback, args = heappop(heap)
                    if callback is None:
                        handle = args
                        if handle.cancelled:
                            self._cancelled -= 1
                            continue
                        callback, args = handle.callback, handle.args
                    self._now = time
                    self._events_fired += 1
                    callback(*args)
                return
            base = self._events_fired
            while heap:
                time, _, callback, args = heap[0]
                if callback is None and args.cancelled:
                    heappop(heap)
                    self._cancelled -= 1
                    continue
                if until is not None and time > until:
                    self._now = until
                    return
                if (
                    max_events is not None
                    and self._events_fired - base >= max_events
                ):
                    raise SimulationError(
                        f"event budget exhausted after "
                        f"{self._events_fired - base} events at "
                        f"t={self._now:.3f}"
                    )
                heappop(heap)
                if callback is None:
                    callback, args = args.callback, args.args
                self._now = time
                self._events_fired += 1
                callback(*args)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()
