"""Network-delay model.

Section 4.1 of the paper: "Network delay is assumed to be 0.5ms.  The
scheduling decisions and the task stealing do not incur additional costs."
The model is therefore a constant one-way message latency, with an optional
jitter knob used only by the prototype-fidelity experiments.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigurationError

#: One-way network latency used throughout the paper's simulations (0.5 ms).
DEFAULT_NETWORK_DELAY_S = 0.0005


class NetworkModel:
    """Produces one-way message latencies.

    Parameters
    ----------
    delay:
        Mean one-way latency in seconds.
    jitter:
        Fractional uniform jitter; a value of 0.2 draws latencies uniformly
        from ``[0.8 * delay, 1.2 * delay]``.  The paper's simulator uses no
        jitter; the prototype-vs-simulation experiments enable it to model
        real message-timing noise.
    rng:
        Generator used when ``jitter > 0``.
    """

    def __init__(
        self,
        delay: float = DEFAULT_NETWORK_DELAY_S,
        jitter: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if delay < 0:
            raise ConfigurationError(f"network delay must be >= 0, got {delay}")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1), got {jitter}")
        if jitter > 0.0 and rng is None:
            raise ConfigurationError("jitter requires an rng")
        self.delay = float(delay)
        self.jitter = float(jitter)
        self._rng = rng

    def sample(self) -> float:
        """One-way latency for a single message, in seconds."""
        if self.jitter == 0.0:
            return self.delay
        assert self._rng is not None
        lo = self.delay * (1.0 - self.jitter)
        hi = self.delay * (1.0 + self.jitter)
        return float(self._rng.uniform(lo, hi))

    def round_trip(self) -> float:
        """Latency of a request/response pair."""
        return self.sample() + self.sample()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NetworkModel(delay={self.delay}, jitter={self.jitter})"
