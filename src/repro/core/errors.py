"""Exception hierarchy shared by the whole reproduction."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid state."""


class SchedulingError(ReproError):
    """A scheduler policy violated one of its invariants."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""
