"""Typed parameter schemas shared by the policy and workload registries.

Both registries (:mod:`repro.schedulers.registry` and
:mod:`repro.workloads.registry`) expose the same construction contract:
an entry declares a tuple of :class:`Param` schemas, callers supply a
plain mapping, and validation returns a :class:`FrozenParams` — an
immutable mapping in canonical (sorted-key) order with defaults filled.
That canonical form is what makes every downstream content key (run
cache, trace materialization, shared-memory transport) independent of
params-dict insertion order and of omitted-vs-explicit defaults.

This module is the single home of that machinery; the registries only
add their entry types and lookup tables on top.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.errors import ConfigurationError

#: Types a declared parameter may take.
PARAM_TYPES = (int, float, bool, str)


@dataclass(frozen=True, slots=True)
class Param:
    """One declared parameter: name, type, default, valid range."""

    name: str
    type: type
    default: Any
    minimum: float | None = None
    maximum: float | None = None
    choices: tuple | None = None
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ConfigurationError(
                f"param name must be an identifier, got {self.name!r}"
            )
        if self.type not in PARAM_TYPES:
            raise ConfigurationError(
                f"param {self.name!r} type must be one of "
                f"{[t.__name__ for t in PARAM_TYPES]}, got {self.type!r}"
            )
        # A schema with a bad default is a bug; also canonicalizes an
        # int default declared for a float param.
        object.__setattr__(self, "default", self.validate(self.default))

    def validate(self, value: Any) -> Any:
        """Check (and int->float coerce) one value; returns the value."""
        if self.type is float and type(value) is int:
            value = float(value)
        # bool subclasses int: an explicit check keeps True out of int params.
        ok = (
            type(value) is bool
            if self.type is bool
            else isinstance(value, self.type) and not isinstance(value, bool)
        )
        if not ok:
            raise ConfigurationError(
                f"param {self.name!r} expects {self.type.__name__}, "
                f"got {value!r} ({type(value).__name__})"
            )
        if self.minimum is not None and value < self.minimum:
            raise ConfigurationError(
                f"param {self.name!r} must be >= {self.minimum}, got {value!r}"
            )
        if self.maximum is not None and value > self.maximum:
            raise ConfigurationError(
                f"param {self.name!r} must be <= {self.maximum}, got {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise ConfigurationError(
                f"param {self.name!r} must be one of {self.choices}, "
                f"got {value!r}"
            )
        return value

    def describe(self) -> str:
        parts = [f"{self.name}: {self.type.__name__} = {self.default!r}"]
        if self.minimum is not None or self.maximum is not None:
            lo = "-inf" if self.minimum is None else f"{self.minimum:g}"
            hi = "+inf" if self.maximum is None else f"{self.maximum:g}"
            parts.append(f"range [{lo}, {hi}]")
        if self.choices is not None:
            parts.append(f"choices {self.choices!r}")
        return "  ".join(parts)


class FrozenParams(Mapping):
    """Immutable, hashable params mapping with a canonical order.

    Keys are sorted, so two mappings built from differently-ordered dicts
    are equal, hash alike and — crucially — ``repr()`` alike: content
    keys (the run cache, trace materialization) are derived from reprs
    and must not depend on insertion order.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Mapping | Iterable[tuple[str, Any]] = ()) -> None:
        pairs = items.items() if isinstance(items, Mapping) else items
        canonical = tuple(sorted((str(k), v) for k, v in pairs))
        names = [k for k, _ in canonical]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate param names in {names}")
        object.__setattr__(self, "_items", canonical)

    def __getitem__(self, key: str) -> Any:
        for k, v in self._items:
            if k == key:
                return v
        raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return (k for k, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return hash(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenParams):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"FrozenParams({inner})"

    def __reduce__(self) -> tuple[type, tuple[tuple[tuple[str, Any], ...]]]:
        return (FrozenParams, (self._items,))


def check_schema(owner: str, params: tuple[Param, ...]) -> None:
    """Reject a schema declaring the same param name twice."""
    names = [p.name for p in params]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"{owner} declares duplicate params: {names}")


def validate_against(
    owner: str, schema: tuple[Param, ...], params: Mapping | None = None
) -> FrozenParams:
    """Schema-check one params mapping; returns it canonicalized.

    Unknown names, wrong types and out-of-range values raise
    :class:`~repro.core.errors.ConfigurationError`; undeclared entries
    are filled with their schema defaults.  ``owner`` names the entry in
    error messages (e.g. ``"policy 'hawk'"``).
    """
    given = dict(params) if params else {}
    declared = {p.name for p in schema}
    unknown = sorted(set(given) - declared)
    if unknown:
        raise ConfigurationError(
            f"unknown param(s) {unknown} for {owner}; "
            f"declared: {sorted(declared)}"
        )
    return FrozenParams(
        {p.name: p.validate(given.get(p.name, p.default)) for p in schema}
    )
