"""Discrete-event simulation core.

This package provides the deterministic substrate every scheduler in the
reproduction runs on: an event heap with a monotonically advancing clock
(:mod:`repro.core.simulation`), seeded random-number utilities
(:mod:`repro.core.rng`) and the network-delay model from Section 4.1 of the
paper (:mod:`repro.core.network`).
"""

from repro.core.errors import ConfigurationError, SchedulingError, SimulationError
from repro.core.network import NetworkModel
from repro.core.rng import make_rng, sample_without_replacement, spread_sample
from repro.core.simulation import EventHandle, Simulation

__all__ = [
    "ConfigurationError",
    "EventHandle",
    "NetworkModel",
    "SchedulingError",
    "SimulationError",
    "Simulation",
    "make_rng",
    "sample_without_replacement",
    "spread_sample",
]
