"""Prototype runtime: a threaded mini-cluster with real concurrency.

The paper validates its simulation with a Spark/Sparrow plug-in on a
100-node cluster running sleep tasks (Section 3.8, Figures 16-17).  This
package is the in-process analogue: every node monitor is an OS thread
executing real ``time.sleep`` tasks, RPCs pay real (slept) network
latency, distributed frontends perform genuine late binding under locks,
and the coordinator runs the Section 3.7 algorithm behind a mutex.  The
point — identical to the paper's — is to confirm that the simulator's
trends survive real overheads: message exchanges, lock contention,
scheduling latency and sleep-time inaccuracy.
"""

from repro.runtime.coordinator import Coordinator
from repro.runtime.engine import PrototypeCluster, PrototypeConfig
from repro.runtime.frontend import DistributedFrontend
from repro.runtime.node_monitor import NodeMonitor

__all__ = [
    "Coordinator",
    "DistributedFrontend",
    "NodeMonitor",
    "PrototypeCluster",
    "PrototypeConfig",
]
