"""Queue items exchanged between prototype components."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.frontend import DistributedFrontend


@dataclass(slots=True)
class ProtoJob:
    """A job as the prototype sees it: id, class flag and task durations."""

    job_id: int
    submit_time: float  # trace-relative, seconds
    durations: tuple[float, ...]
    is_long: bool
    mean_duration: float


@dataclass(slots=True)
class ProtoTask:
    """A concrete task placed by the coordinator (or bound via a probe)."""

    job: ProtoJob
    index: int
    duration: float
    is_long: bool
    stolen: bool = False


@dataclass(slots=True)
class ProtoProbe:
    """A late-binding reservation pointing back at its job's frontend."""

    job: ProtoJob
    frontend: "DistributedFrontend"
    stolen: bool = False

    @property
    def is_long(self) -> bool:
        return self.job.is_long


QueueItem = ProtoTask | ProtoProbe
