"""Distributed scheduler frontends (prototype side).

Each frontend plays the role of one of the paper's 10 distributed
schedulers: it receives job submissions, fans out probes to random node
monitors, and answers task requests with late binding.  All state is
guarded by a lock because node monitors call in concurrently.
"""

from __future__ import annotations

import random
import threading
from typing import TYPE_CHECKING, Sequence

from repro.runtime.entries import ProtoJob, ProtoProbe, ProtoTask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.node_monitor import NodeMonitor


class DistributedFrontend:
    """One distributed scheduler: batch probing plus late binding."""

    def __init__(
        self,
        frontend_id: int,
        monitors: Sequence["NodeMonitor"],
        probe_ratio: int = 2,
        seed: int = 0,
    ) -> None:
        self.frontend_id = frontend_id
        self._monitors = monitors
        self._probe_ratio = probe_ratio
        self._rng = random.Random((seed << 8) ^ frontend_id)
        self._lock = threading.Lock()
        self._pending: dict[int, list[ProtoTask]] = {}
        self.jobs_submitted = 0
        self.cancels_sent = 0

    def submit(self, job: ProtoJob, scope: Sequence[int] | None = None) -> None:
        """Fan ``probe_ratio * t`` probes out to random monitors.

        ``scope`` restricts target monitor indices (e.g. Hawk's general
        partition for the no-centralized ablation, or the split cluster's
        short partition); ``None`` means the whole cluster.
        """
        tasks = [
            ProtoTask(job, i, d, job.is_long) for i, d in enumerate(job.durations)
        ]
        with self._lock:
            self._pending[job.job_id] = tasks[::-1]  # pop() takes index order
            self.jobs_submitted += 1
        ids = list(scope) if scope is not None else list(range(len(self._monitors)))
        n_probes = self._probe_ratio * len(tasks)
        targets: list[int] = []
        while len(targets) < n_probes:
            chunk = ids[:]
            self._rng.shuffle(chunk)
            targets.extend(chunk)
        probe_template = ProtoProbe(job, self)
        for monitor_id in targets[:n_probes]:
            self._monitors[monitor_id].deliver(
                ProtoProbe(probe_template.job, self)
            )

    def request_task(self, job: ProtoJob) -> ProtoTask | None:
        """Late binding: next unassigned task of the job, or cancel."""
        with self._lock:
            tasks = self._pending.get(job.job_id)
            if not tasks:
                self.cancels_sent += 1
                return None
            return tasks.pop()
