"""Prototype cluster assembly and trace execution.

Mirrors the paper's 100-node deployment: N node-monitor threads, K
distributed scheduler frontends, one centralized coordinator, and a
submission loop replaying a (time-scaled) trace in real time.  Results
come back as the same :class:`repro.cluster.records.RunResult` the
simulator produces, so every metric and comparison works unchanged.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass

from repro.cluster.job import JobClass
from repro.cluster.records import JobRecord, RunResult, StealingStats
from repro.core.errors import ConfigurationError
from repro.runtime.coordinator import Coordinator
from repro.runtime.entries import ProtoJob, ProtoTask
from repro.runtime.frontend import DistributedFrontend
from repro.runtime.node_monitor import NodeMonitor
from repro.workloads.spec import Trace

#: Schedulers the prototype supports.
PROTOTYPE_SCHEDULERS = ("hawk", "sparrow", "split")

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class PrototypeConfig:
    """Deployment shape (defaults mirror the paper's prototype run)."""

    scheduler: str = "hawk"
    n_monitors: int = 100
    n_frontends: int = 10
    short_partition_fraction: float = 0.17
    cutoff: float = 1.129  # seconds; the Google cutoff after /1000 scaling
    probe_ratio: int = 2
    latency: float = 0.0005
    steal_cap: int = 10
    steal_retry: float = 0.005
    seed: int = 0
    #: Hard wall-clock limit; a run exceeding it raises.
    timeout: float = 300.0
    #: Per-monitor join budget at shutdown; a monitor thread still alive
    #: past it is reported as leaked instead of blocking forever.
    join_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.scheduler not in PROTOTYPE_SCHEDULERS:
            raise ConfigurationError(
                f"prototype scheduler must be one of {PROTOTYPE_SCHEDULERS}"
            )
        if self.n_monitors < 2:
            raise ConfigurationError("need at least 2 node monitors")
        if self.n_frontends < 1:
            raise ConfigurationError("need at least 1 frontend")
        if self.join_timeout <= 0:
            raise ConfigurationError("join_timeout must be positive")


class PrototypeCluster:
    """Build the threads, replay a trace, return a :class:`RunResult`."""

    def __init__(self, config: PrototypeConfig) -> None:
        self.config = config
        n_short = int(round(config.n_monitors * config.short_partition_fraction))
        if config.scheduler == "sparrow":
            n_short = 0
        self.n_general = config.n_monitors - n_short
        self._lock = threading.Lock()
        self._remaining: dict[int, int] = {}
        self._completion: dict[int, float] = {}
        self._stolen: dict[int, int] = {}
        self._all_done = threading.Event()
        self._t0 = 0.0
        #: Monitor ids whose threads outlived the shutdown join budget in
        #: the most recent :meth:`shutdown_and_join` (empty on a clean
        #: teardown).  Leaked threads are daemons, so they cannot keep
        #: the process alive — but a nonempty tuple means their RNG/queue
        #: state may still be mutating and the run should not be trusted
        #: for reuse of this cluster object.
        self.leaked_monitors: tuple[int, ...] = ()

        self.monitors = [
            NodeMonitor(
                monitor_id=i,
                in_short_partition=(i >= self.n_general),
                latency=config.latency,
                steal_cap=config.steal_cap,
                steal_retry=config.steal_retry,
                seed=config.seed,
                on_task_done=self._on_task_done,
            )
            for i in range(config.n_monitors)
        ]
        # Stealing only exists in Hawk (the paper's Sparrow and split
        # baselines have no stealing): zero general count disables it.
        steal_scope = self.n_general if config.scheduler == "hawk" else 0
        for monitor in self.monitors:
            monitor.attach_cluster(self.monitors, steal_scope)
        self.frontends = [
            DistributedFrontend(
                frontend_id=i,
                monitors=self.monitors,
                probe_ratio=config.probe_ratio,
                seed=config.seed,
            )
            for i in range(config.n_frontends)
        ]
        if config.scheduler == "sparrow":
            self.coordinator = None
        else:
            self.coordinator = Coordinator(
                self.monitors, scope=range(self.n_general)
            )
            for monitor in self.monitors:
                monitor.coordinator = self.coordinator

    # ------------------------------------------------------------------
    def _on_task_done(self, monitor_id: int, task: ProtoTask) -> None:
        job_id = task.job.job_id
        now = time.monotonic() - self._t0
        with self._lock:
            if task.stolen:
                self._stolen[job_id] = self._stolen.get(job_id, 0) + 1
            self._remaining[job_id] -= 1
            if self._remaining[job_id] == 0:
                self._completion[job_id] = now
                if all(r == 0 for r in self._remaining.values()):
                    self._all_done.set()

    def _route(self, job: ProtoJob, frontend_index: int) -> None:
        cfg = self.config
        if cfg.scheduler == "sparrow" or not job.is_long:
            scope = None
            if cfg.scheduler == "split":
                scope = range(self.n_general, cfg.n_monitors)
            self.frontends[frontend_index % cfg.n_frontends].submit(job, scope)
        else:
            assert self.coordinator is not None
            self.coordinator.submit(job)

    # ------------------------------------------------------------------
    def shutdown_and_join(self) -> tuple[int, ...]:
        """Stop every monitor and join their threads with a bounded wait.

        Returns the ids of monitors whose threads failed to exit within
        ``config.join_timeout`` (also stored on :attr:`leaked_monitors`
        and logged as a warning).  A stuck monitor — e.g. one blocked in
        a cross-monitor steal against a wedged peer — therefore degrades
        a run's teardown into a reported leak instead of hanging the
        caller indefinitely.
        """
        for monitor in self.monitors:
            monitor.shutdown()
        leaked = []
        for monitor in self.monitors:
            monitor.join(timeout=self.config.join_timeout)
            if monitor.is_alive():
                leaked.append(monitor.monitor_id)
        self.leaked_monitors = tuple(leaked)
        if leaked:
            logger.warning(
                "%d node-monitor thread(s) did not exit within %.1fs of "
                "shutdown (ids %s); their daemon threads were abandoned",
                len(leaked),
                self.config.join_timeout,
                leaked,
            )
        return self.leaked_monitors

    def run(
        self, trace: Trace, long_job_ids: frozenset[int] | None = None
    ) -> RunResult:
        """Replay the trace in real time; blocks until all jobs finish.

        ``long_job_ids`` overrides cutoff-based classification (used with
        :func:`repro.workloads.scale_trace_for_prototype`, whose task-count
        compensation perturbs per-job means).
        """
        cfg = self.config
        jobs = [
            ProtoJob(
                job_id=spec.job_id,
                submit_time=spec.submit_time,
                durations=spec.task_durations,
                is_long=(
                    spec.job_id in long_job_ids
                    if long_job_ids is not None
                    else spec.mean_task_duration >= cfg.cutoff
                ),
                mean_duration=spec.mean_task_duration,
            )
            for spec in trace
        ]
        with self._lock:
            for job in jobs:
                self._remaining[job.job_id] = len(job.durations)
        submit_actual: dict[int, float] = {}

        for monitor in self.monitors:
            monitor.start()
        self._t0 = time.monotonic()
        short_counter = 0
        for job in jobs:
            delay = job.submit_time - (time.monotonic() - self._t0)
            if delay > 0:
                time.sleep(delay)
            submit_actual[job.job_id] = time.monotonic() - self._t0
            self._route(job, short_counter)
            if not job.is_long:
                short_counter += 1

        if not self._all_done.wait(timeout=cfg.timeout):
            self.shutdown_and_join()
            raise TimeoutError(
                f"prototype run exceeded {cfg.timeout}s wall-clock budget"
            )
        self.shutdown_and_join()

        records = []
        for job in jobs:
            job_class = JobClass.LONG if job.is_long else JobClass.SHORT
            records.append(
                JobRecord(
                    job_id=job.job_id,
                    submit_time=submit_actual[job.job_id],
                    completion_time=self._completion[job.job_id],
                    num_tasks=len(job.durations),
                    true_mean_task_duration=job.mean_duration,
                    estimated_task_duration=job.mean_duration,
                    task_seconds=sum(job.durations),
                    scheduled_class=job_class,
                    true_class=job_class,
                    stolen_tasks=self._stolen.get(job.job_id, 0),
                )
            )
        rounds = sum(m.steal_rounds for m in self.monitors)
        stolen = sum(m.items_stolen for m in self.monitors)
        return RunResult(
            scheduler_name=f"prototype-{cfg.scheduler}",
            n_workers=cfg.n_monitors,
            jobs=tuple(records),
            utilization=(),
            stealing=StealingStats(
                rounds=rounds,
                successful_rounds=0,
                victims_probed=0,
                entries_stolen=stolen,
            ),
            events_fired=0,
            end_time=time.monotonic() - self._t0,
        )
