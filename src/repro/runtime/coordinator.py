"""The centralized coordinator (prototype side).

Runs the Section 3.7 least-waiting-time algorithm behind a mutex, placing
long-job tasks on general-partition node monitors and consuming task
completion reports to keep per-node waiting times honest.
"""

from __future__ import annotations

import heapq
import threading
from typing import TYPE_CHECKING, Sequence

from repro.runtime.entries import ProtoJob, ProtoTask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.node_monitor import NodeMonitor


class Coordinator:
    """Centralized least-waiting-time placement over the general partition."""

    def __init__(
        self, monitors: Sequence["NodeMonitor"], scope: Sequence[int]
    ) -> None:
        self._monitors = monitors
        self._lock = threading.Lock()
        self._pending = {monitor_id: 0.0 for monitor_id in scope}
        self._version = {monitor_id: 0 for monitor_id in scope}
        self._heap = [(0.0, 0, monitor_id) for monitor_id in scope]
        heapq.heapify(self._heap)
        self.jobs_submitted = 0
        self.tasks_placed = 0

    def submit(self, job: ProtoJob) -> None:
        """Place every task on the node with the least estimated waiting."""
        estimate = job.mean_duration
        placements: list[tuple[int, ProtoTask]] = []
        with self._lock:
            for index, duration in enumerate(job.durations):
                monitor_id = self._pop_least_loaded()
                self._bump(monitor_id, estimate)
                placements.append(
                    (monitor_id, ProtoTask(job, index, duration, job.is_long))
                )
                self.tasks_placed += 1
            self.jobs_submitted += 1
        for monitor_id, task in placements:
            self._monitors[monitor_id].deliver(task)

    def report_finished(self, monitor_id: int, job: ProtoJob) -> None:
        """Node status report: one of the job's tasks finished there."""
        with self._lock:
            if monitor_id in self._pending:
                self._bump(monitor_id, -job.mean_duration)

    def waiting_time(self, monitor_id: int) -> float:
        with self._lock:
            return self._pending[monitor_id]

    # -- internal (lock held) -------------------------------------------
    def _bump(self, monitor_id: int, delta: float) -> None:
        pending = max(0.0, self._pending[monitor_id] + delta)
        self._pending[monitor_id] = pending
        version = self._version[monitor_id] + 1
        self._version[monitor_id] = version
        heapq.heappush(self._heap, (pending, version, monitor_id))

    def _pop_least_loaded(self) -> int:
        while True:
            pending, version, monitor_id = self._heap[0]
            if version == self._version[monitor_id]:
                return monitor_id
            heapq.heappop(self._heap)
