"""Node monitors: worker threads executing sleep tasks.

Each monitor owns a FIFO queue of probes and tasks (Section 3.1's
single-slot server).  Probes trigger real request/response exchanges with
their frontend; idle monitors steal from randomly chosen general-partition
victims exactly as the simulator does (Figure 3 via the shared
:func:`repro.cluster.worker.find_first_short_group`).
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Sequence

from repro.cluster.worker import find_first_short_group
from repro.runtime.entries import ProtoProbe, ProtoTask, QueueItem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.coordinator import Coordinator


class NodeMonitor(threading.Thread):
    """A single-slot worker node with one FIFO queue."""

    def __init__(
        self,
        monitor_id: int,
        in_short_partition: bool,
        latency: float,
        steal_cap: int,
        steal_retry: float,
        seed: int,
        on_task_done: Callable[[int, ProtoTask], None],
    ) -> None:
        super().__init__(name=f"node-monitor-{monitor_id}", daemon=True)
        self.monitor_id = monitor_id
        self.in_short_partition = in_short_partition
        self._latency = latency
        self._steal_cap = steal_cap
        self._steal_retry = steal_retry
        self._rng = random.Random((seed << 16) ^ monitor_id)
        self._on_task_done = on_task_done
        self._queue: deque[QueueItem] = deque()
        self._cv = threading.Condition()
        self._current_is_long = False
        self._has_current = False
        self._stop_event = threading.Event()
        self._peers: Sequence["NodeMonitor"] = ()
        self._general_count = 0
        self.coordinator: "Coordinator | None" = None
        # Statistics.
        self.tasks_executed = 0
        self.items_stolen = 0
        self.steal_rounds = 0

    # ------------------------------------------------------------------
    def attach_cluster(
        self, peers: Sequence["NodeMonitor"], general_count: int
    ) -> None:
        self._peers = peers
        self._general_count = general_count

    def deliver(self, item: QueueItem) -> None:
        """RPC target: enqueue a probe or task (caller pays the latency)."""
        with self._cv:
            self._queue.append(item)
            self._cv.notify()

    def release_stealable(self) -> list[QueueItem]:
        """RPC target: hand out the first short group behind a long entry."""
        with self._cv:
            if not self._queue:
                return []
            span = find_first_short_group(
                self._has_current and self._current_is_long,
                (item.is_long for item in self._queue),
            )
            if span is None:
                return []
            items = list(self._queue)
            stolen = items[span[0] : span[1]]
            self._queue = deque(items[: span[0]] + items[span[1] :])
            for item in stolen:
                item.stolen = True
            return stolen

    def shutdown(self) -> None:
        self._stop_event.set()
        with self._cv:
            self._cv.notify()

    # ------------------------------------------------------------------
    def run(self) -> None:  # pragma: no cover - exercised via engine tests
        while not self._stop_event.is_set():
            item = self._pop_or_wait()
            if item is None:
                if not self._stop_event.is_set():
                    self._attempt_steal()
                continue
            try:
                self._process(item)
            finally:
                with self._cv:
                    self._has_current = False

    def _pop_or_wait(self) -> QueueItem | None:
        with self._cv:
            if not self._queue:
                self._cv.wait(timeout=self._steal_retry)
            if not self._queue:
                return None
            item = self._queue.popleft()
            self._has_current = True
            self._current_is_long = item.is_long
            return item

    def _process(self, item: QueueItem) -> None:
        if isinstance(item, ProtoProbe):
            self._net_delay()  # task request travels to the frontend
            task = item.frontend.request_task(item.job)
            self._net_delay()  # response (task or cancel) travels back
            if task is None:
                return
            if item.stolen:
                task.stolen = True
            with self._cv:
                self._current_is_long = task.is_long
            self._execute(task)
        else:
            self._execute(item)

    def _execute(self, task: ProtoTask) -> None:
        time.sleep(task.duration)
        self.tasks_executed += 1
        if task.is_long and self.coordinator is not None:
            self._net_delay()  # status report to the coordinator
            self.coordinator.report_finished(self.monitor_id, task.job)
        self._on_task_done(self.monitor_id, task)

    def _attempt_steal(self) -> None:
        """One randomized stealing round (Section 3.6)."""
        n = self._general_count
        if n == 0 or (n == 1 and not self.in_short_partition):
            return
        self.steal_rounds += 1
        attempts = min(self._steal_cap, n - (0 if self.in_short_partition else 1))
        seen: set[int] = set()
        while len(seen) < attempts and not self._stop_event.is_set():
            victim_id = self._rng.randrange(n)
            if victim_id == self.monitor_id or victim_id in seen:
                continue
            seen.add(victim_id)
            self._net_delay()  # steal request is a real message here
            stolen = self._peers[victim_id].release_stealable()
            if stolen:
                self.items_stolen += len(stolen)
                with self._cv:
                    self._queue.extendleft(reversed(stolen))
                    self._cv.notify()
                return

    def _net_delay(self) -> None:
        if self._latency > 0:
            time.sleep(self._latency)
