"""The run engine: drives workers, the probe protocol and metrics.

All state transitions live here so the event ordering of a run is easy to
audit.  Scheduler policies (:mod:`repro.schedulers`) only decide *where*
probes and tasks go; the engine owns *when* things happen.

Protocol costs follow Section 4.1 of the paper: every message (probe
placement, task request, task response, task placement) pays one network
delay; scheduling decisions and stealing cost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.job import Job
from repro.cluster.records import (
    JobRecord,
    RunResult,
    StealingStats,
    UtilizationSample,
)
from repro.cluster.task import Task
from repro.cluster.worker import ProbeEntry, TaskEntry, Worker, WorkerState
from repro.core.errors import ConfigurationError, SimulationError
from repro.core.network import DEFAULT_NETWORK_DELAY_S, NetworkModel
from repro.core.simulation import Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.schedulers.base import SchedulerPolicy
    from repro.schedulers.frontend import ProbeFrontend
    from repro.schedulers.stealing import WorkStealing
    from repro.workloads.spec import JobSpec


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Run-wide knobs.

    ``cutoff`` is the long/short threshold in seconds (Section 3.3); it is
    engine-level because entry classes (used by stealing eligibility and
    reporting) depend on it even for baseline schedulers.
    """

    cutoff: float
    seed: int = 0
    network_delay: float = DEFAULT_NETWORK_DELAY_S
    utilization_interval: float = 100.0
    max_events: int | None = None

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ConfigurationError(f"cutoff must be positive, got {self.cutoff}")
        if self.utilization_interval <= 0:
            raise ConfigurationError("utilization_interval must be positive")


class ClusterEngine:
    """Couples a :class:`Simulation`, a :class:`Cluster` and a policy."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: "SchedulerPolicy",
        config: EngineConfig,
        stealing: "WorkStealing | None" = None,
        estimate: Callable[["JobSpec"], float] | None = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config
        self.stealing = stealing
        estimate = estimate or (lambda spec: spec.mean_task_duration)
        # Estimators exposing a ``seeded(run_seed)`` hook (e.g.
        # UniformMisestimation) are specialized to this run's seed so
        # seed replicas draw independent estimator noise.
        seeded = getattr(estimate, "seeded", None)
        self.estimate = seeded(config.seed) if callable(seeded) else estimate
        self.sim = Simulation()
        self.network = NetworkModel(config.network_delay)
        self._busy = 0
        self._jobs_total = 0
        self._jobs_done = 0
        self._done = False
        self._utilization: list[UtilizationSample] = []
        scheduler.bind(self)
        if stealing is not None:
            stealing.bind(self)

    # ------------------------------------------------------------------
    # Properties used by policies.
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def all_jobs_done(self) -> bool:
        return self._done

    # ------------------------------------------------------------------
    # Placement API (called by scheduler policies).
    # ------------------------------------------------------------------
    def place_probe(self, worker_id: int, job: Job, frontend: "ProbeFrontend") -> None:
        """Send a late-binding probe to ``worker_id`` (one network delay)."""
        entry = ProbeEntry(job, frontend)
        self.sim.schedule(self.network.sample(), self._deliver_entry, worker_id, entry)

    def place_task(self, worker_id: int, task: Task) -> None:
        """Send a concrete task to ``worker_id`` (one network delay)."""
        entry = TaskEntry(task)
        self.sim.schedule(self.network.sample(), self._deliver_entry, worker_id, entry)

    # ------------------------------------------------------------------
    # Worker state machine.
    # ------------------------------------------------------------------
    def _sync_steal_hint(self, worker: Worker) -> None:
        """Keep the cluster's steal-hint tally current for this worker.

        Called after every queue or slot mutation.  A 0 -> 1 transition of
        the cluster tally wakes parked idle workers in the stealing policy.
        """
        if worker.in_short_partition:
            return
        hint = worker.steal_hint()
        if hint == worker.counted_steal_hint:
            return
        worker.counted_steal_hint = hint
        cluster = self.cluster
        if hint:
            cluster.steal_hint_count += 1
            if cluster.steal_hint_count == 1 and self.stealing is not None:
                self.stealing.on_steal_work_appeared()
        else:
            cluster.steal_hint_count -= 1

    def _deliver_entry(self, worker_id: int, entry) -> None:
        worker = self.cluster.workers[worker_id]
        worker.enqueue(entry)
        if worker.state is WorkerState.IDLE:
            self._worker_try_start(worker)
        else:
            self._sync_steal_hint(worker)

    def _worker_try_start(self, worker: Worker) -> None:
        """Pop queue entries until the worker is busy, waiting, or drained."""
        while worker.state is WorkerState.IDLE:
            if not worker.queue:
                self._sync_steal_hint(worker)
                self._worker_went_idle(worker)
                return
            entry = worker.pop_next()
            if isinstance(entry, TaskEntry):
                self._start_task(worker, entry.task, entry)
            else:
                # Late binding: ask the job's frontend for a task.
                worker.state = WorkerState.WAITING
                worker.current_entry = entry
                self._sync_steal_hint(worker)
                self.sim.schedule(
                    self.network.sample(), self._probe_request_arrives, worker, entry
                )
                return

    def _probe_request_arrives(self, worker: Worker, entry: ProbeEntry) -> None:
        """The task request reached the scheduler; decide task-or-cancel."""
        task = entry.frontend.next_task()
        self.sim.schedule(
            self.network.sample(), self._probe_response_arrives, worker, entry, task
        )

    def _probe_response_arrives(
        self, worker: Worker, entry: ProbeEntry, task: Task | None
    ) -> None:
        if worker.state is not WorkerState.WAITING or worker.current_entry is not entry:
            raise SimulationError(
                f"worker {worker.worker_id} received a stale probe response"
            )
        worker.state = WorkerState.IDLE
        worker.current_entry = None
        if task is None:
            # Cancelled: all of the job's tasks were already handed out.
            self._worker_try_start(worker)
        else:
            if entry.stolen:
                task.was_stolen = True
                task.job.stolen_tasks += 1
            self._start_task(worker, task, entry)

    def _start_task(self, worker: Worker, task: Task, entry) -> None:
        worker.state = WorkerState.BUSY
        worker.current_entry = entry
        worker.current_task = task
        worker.steal_backoff = 0.0
        task.start(worker.worker_id, self.sim.now)
        self._busy += 1
        self._sync_steal_hint(worker)
        self.sim.schedule(task.duration, self._task_finished, worker, task)

    def _task_finished(self, worker: Worker, task: Task) -> None:
        task.finish(self.sim.now)
        worker.state = WorkerState.IDLE
        worker.current_entry = None
        worker.current_task = None
        worker.tasks_executed += 1
        self._busy -= 1
        self.scheduler.on_task_finish(task)
        if task.job.record_task_finish(self.sim.now):
            self._jobs_done += 1
            if self._jobs_done == self._jobs_total:
                self._done = True
        self._worker_try_start(worker)

    def _worker_went_idle(self, worker: Worker) -> None:
        if self.stealing is not None and not self._done:
            self.stealing.on_worker_idle(worker)

    # ------------------------------------------------------------------
    # Work-stealing support (called by the stealing policy).
    # ------------------------------------------------------------------
    def transfer_stolen_entries(
        self, victim: Worker, thief: Worker, start: int, stop: int
    ) -> int:
        """Move ``victim.queue[start:stop]`` to the (idle) thief."""
        stolen = victim.remove_range(start, stop)
        for entry in stolen:
            if isinstance(entry, ProbeEntry):
                entry.stolen = True
            else:
                entry.task.was_stolen = True
                entry.task.job.stolen_tasks += 1
        victim.tasks_stolen_from += len(stolen)
        thief.tasks_stolen_by += len(stolen)
        self._sync_steal_hint(victim)
        thief.enqueue_front(stolen)
        self._sync_steal_hint(thief)
        self._worker_try_start(thief)
        return len(stolen)

    # ------------------------------------------------------------------
    # Utilization sampling.
    # ------------------------------------------------------------------
    def _sample_utilization(self) -> None:
        self._utilization.append(
            UtilizationSample(self.sim.now, self._busy, self.cluster.n_workers)
        )
        if not self._done:
            self.sim.schedule(
                self.config.utilization_interval, self._sample_utilization
            )

    # ------------------------------------------------------------------
    # Run loop.
    # ------------------------------------------------------------------
    def run(self, trace: Sequence["JobSpec"]) -> RunResult:
        """Materialize jobs from immutable specs, run to completion."""
        if not trace:
            raise ConfigurationError("cannot run an empty trace")
        jobs: list[Job] = []
        for spec in sorted(trace, key=lambda s: (s.submit_time, s.job_id)):
            job = Job(
                job_id=spec.job_id,
                submit_time=spec.submit_time,
                task_durations=spec.task_durations,
                estimated_task_duration=self.estimate(spec),
                cutoff=self.config.cutoff,
            )
            jobs.append(job)
        self._jobs_total = len(jobs)
        for job in jobs:
            self.sim.schedule_at(job.submit_time, self.scheduler.on_job_submit, job)
        self.sim.schedule_at(
            jobs[0].submit_time + self.config.utilization_interval,
            self._sample_utilization,
        )
        self.sim.run(max_events=self.config.max_events)
        if not self._done:
            raise SimulationError(
                f"run drained its event heap with only {self._jobs_done}/"
                f"{self._jobs_total} jobs complete"
            )
        return self._build_result(jobs)

    def _build_result(self, jobs: Iterable[Job]) -> RunResult:
        records = tuple(
            JobRecord(
                job_id=j.job_id,
                submit_time=j.submit_time,
                completion_time=j.completion_time,  # type: ignore[arg-type]
                num_tasks=j.num_tasks,
                true_mean_task_duration=j.true_mean_task_duration,
                estimated_task_duration=j.estimated_task_duration,
                task_seconds=j.task_seconds,
                scheduled_class=j.scheduled_class,
                true_class=j.true_class,
                stolen_tasks=j.stolen_tasks,
            )
            for j in jobs
        )
        stealing = (
            self.stealing.stats() if self.stealing is not None else StealingStats()
        )
        return RunResult(
            scheduler_name=self.scheduler.name,
            n_workers=self.cluster.n_workers,
            jobs=records,
            utilization=tuple(self._utilization),
            stealing=stealing,
            events_fired=self.sim.events_fired,
            end_time=self.sim.now,
        )
