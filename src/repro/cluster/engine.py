"""The run engine: drives workers, the probe protocol and metrics.

All state transitions live here so the event ordering of a run is easy to
audit.  Scheduler policies (:mod:`repro.schedulers`) only decide *where*
probes and tasks go; the engine owns *when* things happen.

Protocol costs follow Section 4.1 of the paper: every message (probe
placement, task request, task response, task placement) pays one network
delay; scheduling decisions and stealing cost nothing.

Transport batching
------------------
With a constant network delay (the paper's setting), the ``2t`` probes of
one submission and the ``t`` placements of one centralized assignment all
arrive at the *same* timestamp, in scheduling order.  The engine therefore
ships each such group as one heap event and delivers the group in order on
arrival — observable behaviour (delivery order, timestamps, and the
logical ``events_fired`` count, maintained via
:meth:`~repro.core.simulation.Simulation.add_logical_events`) is identical
to per-message events, but the heap does one push/pop per group instead of
per message.  The probe request/response round trip is likewise fused into
a single event at ``now + 2 * delay`` on the constant-delay path; the
frontend's task hand-out order is preserved because every request leg
shifts by the same constant.  Setting :attr:`ClusterEngine.transport_batching`
to ``False`` (or using a jittered network model) restores per-message
events — runs must be bit-identical either way, and the test suite holds
the engine to that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultInjector, FaultPlan
from repro.cluster.job import Job
from repro.cluster.records import (
    JobRecord,
    RunResult,
    StealingStats,
    UtilizationSample,
)
from repro.cluster.task import Task
from repro.cluster.worker import ProbeEntry, QueueEntry, TaskEntry, Worker, WorkerState
from repro.core.errors import ConfigurationError, SimulationError
from repro.core.network import DEFAULT_NETWORK_DELAY_S, NetworkModel
from repro.core.simulation import Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.schedulers.base import SchedulerPolicy
    from repro.schedulers.frontend import ProbeFrontend
    from repro.schedulers.stealing import WorkStealing
    from repro.workloads.spec import JobSpec

_IDLE = WorkerState.IDLE
_BUSY = WorkerState.BUSY
_WAITING = WorkerState.WAITING
_DEAD = WorkerState.DEAD


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Run-wide knobs.

    ``cutoff`` is the long/short threshold in seconds (Section 3.3); it is
    engine-level because entry classes (used by stealing eligibility and
    reporting) depend on it even for baseline schedulers.
    """

    cutoff: float
    seed: int = 0
    network_delay: float = DEFAULT_NETWORK_DELAY_S
    utilization_interval: float = 100.0
    max_events: int | None = None

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ConfigurationError(f"cutoff must be positive, got {self.cutoff}")
        if self.utilization_interval <= 0:
            raise ConfigurationError("utilization_interval must be positive")


class ClusterEngine:
    """Couples a :class:`Simulation`, a :class:`Cluster` and a policy."""

    #: Ship same-timestamp message groups as one heap event (see module
    #: docstring).  Only effective with a zero-jitter network model; tests
    #: flip it off to check batched and unbatched runs agree bit-for-bit.
    transport_batching = True

    def __init__(
        self,
        cluster: Cluster,
        scheduler: "SchedulerPolicy",
        config: EngineConfig,
        stealing: "WorkStealing | None" = None,
        estimate: Callable[["JobSpec"], float] | None = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config
        self.stealing = stealing
        estimate = estimate or (lambda spec: spec.mean_task_duration)
        # Estimators exposing a ``seeded(run_seed)`` hook (e.g.
        # UniformMisestimation) are specialized to this run's seed so
        # seed replicas draw independent estimator noise.
        seeded = getattr(estimate, "seeded", None)
        self.estimate = seeded(config.seed) if callable(seeded) else estimate
        self.sim = Simulation()
        self.network = NetworkModel(config.network_delay)
        self._batch = self.transport_batching and self.network.jitter == 0.0
        self._busy = 0
        self._jobs_total = 0
        self._jobs_done = 0
        self._done = False
        self._utilization: list[UtilizationSample] = []
        #: Fault-injection layer; ``None`` (the default) leaves every hot
        #: path on the historical no-fault code, byte-identical to before
        #: faults existed (asserted by tests/cluster/test_faults.py).
        self._faults: FaultInjector | None = None
        #: True while an injected centralized-scheduler outage is active;
        #: policies with a centralized component consult this on submit.
        self.centralized_down = False
        scheduler.bind(self)
        if stealing is not None:
            stealing.bind(self)

    # ------------------------------------------------------------------
    # Properties used by policies.
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def all_jobs_done(self) -> bool:
        return self._done

    def _refresh_batching(self) -> None:
        self._batch = (
            self.transport_batching
            and self.network.jitter == 0.0
            and (self._faults is None or not self._faults.messages_active)
        )

    # ------------------------------------------------------------------
    # Fault injection (see repro.cluster.faults).
    # ------------------------------------------------------------------
    def attach_faults(self, plan: FaultPlan) -> None:
        """Arm a :class:`FaultPlan` on this engine (before the run starts).

        An empty plan is a no-op; a non-empty one installs the injector
        whose hooks the delivery/start/finish paths consult.  Message
        faults force per-message transport (each message carries its own
        perturbation), which :meth:`_refresh_batching` accounts for.
        """
        if plan.is_empty:
            return
        if self.sim.events_fired or self.sim.now:
            raise SimulationError("faults must be attached before the run starts")
        self._faults = FaultInjector(plan, self)
        self._refresh_batching()

    def _msg_delay(self) -> float:
        """One message's network delay, plus any injected perturbation."""
        delay = self.network.sample()
        faults = self._faults
        if faults is not None:
            delay = faults.perturb_delay(delay)
        return delay

    # ------------------------------------------------------------------
    # Placement API (called by scheduler policies).
    # ------------------------------------------------------------------
    def place_probe(self, worker_id: int, job: Job, frontend: "ProbeFrontend") -> None:
        """Send a late-binding probe to ``worker_id`` (one network delay)."""
        entry = ProbeEntry(job, frontend)
        self.sim.schedule(self._msg_delay(), self._deliver_entry, worker_id, entry)

    def place_probes(
        self, worker_ids: Sequence[int], job: Job, frontend: "ProbeFrontend"
    ) -> None:
        """Send one probe to each of ``worker_ids`` (one delay each).

        With a constant delay all probes arrive at the same timestamp in
        list order, so the group rides a single heap event.
        """
        if len(worker_ids) > 1 and self._batch:
            entries = [ProbeEntry(job, frontend) for _ in worker_ids]
            self.sim.schedule(
                self.network.delay, self._deliver_batch, worker_ids, entries
            )
        else:
            for worker_id in worker_ids:
                self.place_probe(worker_id, job, frontend)

    def place_task(self, worker_id: int, task: Task) -> None:
        """Send a concrete task to ``worker_id`` (one network delay)."""
        entry = TaskEntry(task)
        self.sim.schedule(self._msg_delay(), self._deliver_entry, worker_id, entry)

    def place_tasks(self, assignments: Sequence[tuple[int, Task]]) -> None:
        """Send ``(worker_id, task)`` pairs, one network delay each.

        The batched counterpart of :meth:`place_task` for same-timestamp
        placement groups (e.g. one centralized job assignment).
        """
        if len(assignments) > 1 and self._batch:
            worker_ids = [worker_id for worker_id, _ in assignments]
            entries = [TaskEntry(task) for _, task in assignments]
            self.sim.schedule(
                self.network.delay, self._deliver_batch, worker_ids, entries
            )
        else:
            for worker_id, task in assignments:
                self.place_task(worker_id, task)

    # ------------------------------------------------------------------
    # Worker state machine.
    # ------------------------------------------------------------------
    def _sync_steal_hint(self, worker: Worker) -> None:
        """Keep the cluster's steal-hint tally current for this worker.

        Called after every queue or slot mutation.  A 0 -> 1 transition of
        the cluster tally wakes parked idle workers in the stealing policy.
        The tally's only consumer is the stealing policy, so runs without
        one skip the bookkeeping entirely.
        """
        if self.stealing is None or worker.in_short_partition:
            return
        # Inline of Worker.steal_hint() — this runs on every queue/slot
        # mutation of every general worker, where the call overhead alone
        # is measurable.  Kept in lockstep with the method (pinned by
        # tests/test_worker.py's property-style hint checks).
        shorts = worker._short_seqs
        if not shorts:
            hint = False
        else:
            longs = worker._long_seqs
            if longs and shorts[-1] > longs[0]:
                hint = True
            else:
                entry = worker.current_entry
                hint = entry is not None and entry.is_long
        if hint == worker.counted_steal_hint:
            return
        worker.counted_steal_hint = hint
        cluster = self.cluster
        if hint:
            cluster.steal_flags[worker.worker_id] = 1
            cluster.steal_hint_count += 1
            if cluster.steal_hint_count == 1:
                self.stealing.on_steal_work_appeared()
        else:
            cluster.steal_flags[worker.worker_id] = 0
            cluster.steal_hint_count -= 1

    def _deliver_batch(
        self, worker_ids: Sequence[int], entries: list[QueueEntry]
    ) -> None:
        """Deliver a same-timestamp message group in scheduling order.

        An idle worker takes its entry straight into the slot: the
        enqueue/pop pair the general path performs is unobservable when
        both halves happen inside the same delivery (no other event can
        see the transient queue state, and worker-local seqs only order
        entries that coexist in a queue).  Probes that land on idle
        workers all start their round trip at the same ``now + 2*delay``
        timestamp in delivery order, so the whole group's round trips
        ride one further heap event (see :meth:`_round_trip_batch`).
        """
        self.sim.add_logical_events(len(entries) - 1)
        workers = self.cluster.workers
        try_start = self._worker_try_start
        sync = self._sync_steal_hint
        start_task = self._start_task
        slot_long = self.cluster.slot_long
        faults = self._faults
        dead = faults.dead if faults is not None else None
        pairs: list[tuple[Worker, ProbeEntry]] | None = None
        for worker_id, entry in zip(worker_ids, entries):
            if dead is not None and dead[worker_id]:
                self._redirect_entry(entry)
                continue
            worker = workers[worker_id]
            if worker.state is _IDLE and not worker.queue:
                if entry.is_task:
                    start_task(worker, entry.task, entry)  # type: ignore[attr-defined]
                else:
                    worker.state = _WAITING
                    worker.current_entry = entry
                    slot_long[worker_id] = 1 if entry.is_long else 0
                    if pairs is None:
                        pairs = [(worker, entry)]  # type: ignore[list-item]
                    else:
                        pairs.append((worker, entry))  # type: ignore[arg-type]
                continue
            worker.enqueue(entry)
            if worker.state is _IDLE:
                try_start(worker)
            else:
                sync(worker)
        if pairs is not None:
            if self._batch:
                delay = self.network.delay
                self.sim.schedule_at(
                    self.sim.now + delay + delay, self._round_trip_batch, pairs
                )
            else:  # pragma: no cover - batch delivery implies batching on
                for worker, probe in pairs:
                    self.sim.schedule(
                        self._msg_delay(),
                        self._probe_request_arrives,
                        worker,
                        probe,
                    )

    def _round_trip_batch(self, pairs: "list[tuple[Worker, ProbeEntry]]") -> None:
        """Fused round trips for one delivery batch's idle-worker probes.

        Each pair stands for two logical events (request leg + response
        leg) that the per-probe path would fire as separate heap events
        at this same timestamp, in this same order.
        """
        self.sim.add_logical_events(2 * len(pairs) - 1)
        respond = self._probe_response_arrives
        for worker, entry in pairs:
            respond(worker, entry, entry.frontend.next_task())

    def _redirect_entry(self, entry: QueueEntry, extra_delay: float = 0.0) -> None:
        """Re-send an entry whose target worker is dead to a live one.

        Models the sender noticing the failed node and re-routing: the
        entry pays one more (possibly perturbed) network delay.  Long
        entries stay in the general partition.
        """
        faults = self._faults
        assert faults is not None
        faults.messages_redirected += 1
        target = faults.pick_live_target(entry.is_long)
        self.sim.schedule(
            extra_delay + self._msg_delay(), self._deliver_entry, target, entry
        )

    def _deliver_entry(self, worker_id: int, entry: QueueEntry) -> None:
        faults = self._faults
        if faults is not None and faults.dead[worker_id]:
            self._redirect_entry(entry)
            return
        worker = self.cluster.workers[worker_id]
        if worker.state is _IDLE and not worker.queue:
            # Same fast path as batched delivery: straight into the slot.
            if entry.is_task:
                self._start_task(worker, entry.task, entry)  # type: ignore[attr-defined]
            else:
                self._begin_probe_wait(worker, entry)  # type: ignore[arg-type]
            return
        worker.enqueue(entry)
        if worker.state is _IDLE:
            self._worker_try_start(worker)
        else:
            self._sync_steal_hint(worker)

    def _worker_try_start(self, worker: Worker) -> None:
        """Pop queue entries until the worker is busy, waiting, or drained."""
        queue = worker.queue
        pop_next = worker.pop_next
        while worker.state is _IDLE:
            if not queue:
                self._sync_steal_hint(worker)
                self._worker_went_idle(worker)
                return
            entry = pop_next()
            if entry.is_task:
                self._start_task(worker, entry.task, entry)
            else:
                self._begin_probe_wait(worker, entry)
                return

    def _begin_probe_wait(self, worker: Worker, entry: ProbeEntry) -> None:
        """Late binding: park the probe in the slot, ask for a task."""
        worker.state = _WAITING
        worker.current_entry = entry
        self.cluster.slot_long[worker.worker_id] = 1 if entry.is_long else 0
        self._sync_steal_hint(worker)
        network = self.network
        if self._batch:
            # Fused round trip: request leg + response leg in one
            # event at (now + delay) + delay — the same two
            # sequential additions the per-leg path performs, so
            # timestamps match bit-for-bit.  The hand-out order of
            # next_task() calls is unchanged — each request leg
            # shifts by the same constant delay, and seqs are
            # allocated here either way.
            delay = network.delay
            self.sim.schedule_at(
                self.sim.now + delay + delay,
                self._probe_round_trip,
                worker,
                entry,
            )
        else:
            self.sim.schedule(
                self._msg_delay(), self._probe_request_arrives, worker, entry
            )

    def _probe_round_trip(self, worker: Worker, entry: ProbeEntry) -> None:
        """Fused request/response: both legs of the probe round trip."""
        self.sim.add_logical_events(1)
        self._probe_response_arrives(worker, entry, entry.frontend.next_task())

    def _probe_request_arrives(self, worker: Worker, entry: ProbeEntry) -> None:
        """The task request reached the scheduler; decide task-or-cancel."""
        task = entry.frontend.next_task()
        self.sim.schedule(
            self._msg_delay(), self._probe_response_arrives, worker, entry, task
        )

    def _probe_response_arrives(
        self, worker: Worker, entry: ProbeEntry, task: Task | None
    ) -> None:
        if worker.state is not _WAITING or worker.current_entry is not entry:
            faults = self._faults
            if faults is not None:
                # The worker crashed (and possibly restarted) while this
                # round trip was in flight; a handed-out task is salvaged
                # onto a live worker, a cancel is simply dropped.
                faults.salvage_probe_response(entry, task)
                return
            raise SimulationError(
                f"worker {worker.worker_id} received a stale probe response"
            )
        worker.state = _IDLE
        worker.current_entry = None
        self.cluster.slot_long[worker.worker_id] = 0
        if task is None:
            # Cancelled: all of the job's tasks were already handed out.
            self._worker_try_start(worker)
        else:
            if entry.stolen:
                task.was_stolen = True
                task.job.stolen_tasks += 1
            self._start_task(worker, task, entry)

    def _start_task(self, worker: Worker, task: Task, entry: QueueEntry) -> None:
        worker.state = _BUSY
        worker.current_entry = entry
        worker.current_task = task
        worker.steal_backoff = 0.0
        self.cluster.slot_long[worker.worker_id] = 1 if entry.is_long else 0
        task.start(worker.worker_id, self.sim.now)
        self._busy += 1
        self._sync_steal_hint(worker)
        faults = self._faults
        if faults is None:
            self.sim.schedule(task.duration, self._task_finished, worker, task)
        else:
            self.sim.schedule(
                task.duration * faults.slowdown[worker.worker_id],
                self._task_finished_checked,
                worker,
                task,
                task.attempt,
            )

    def _task_finished(self, worker: Worker, task: Task) -> None:
        task.finish(self.sim.now)
        worker.state = _IDLE
        worker.current_entry = None
        worker.current_task = None
        self.cluster.slot_long[worker.worker_id] = 0
        worker.tasks_executed += 1
        self._busy -= 1
        self.scheduler.on_task_finish(task)
        if task.job.record_task_finish(self.sim.now):
            self._jobs_done += 1
            if self._jobs_done == self._jobs_total:
                self._done = True
        self._worker_try_start(worker)

    def _task_finished_checked(self, worker: Worker, task: Task, attempt: int) -> None:
        """Fault-mode completion: drop events from a pre-crash execution.

        When the worker crashed mid-task the task was re-queued (bumping
        ``task.attempt``) and the slot was cleared, so the completion event
        of the lost execution must be ignored, not double-counted.
        """
        if worker.current_task is not task or task.attempt != attempt:
            return
        self._task_finished(worker, task)

    def _worker_went_idle(self, worker: Worker) -> None:
        if self.stealing is not None and not self._done:
            self.stealing.on_worker_idle(worker)

    # ------------------------------------------------------------------
    # Fault handlers (armed by FaultInjector.schedule()).
    # ------------------------------------------------------------------
    def _worker_crash(self, worker_id: int) -> None:
        """One worker dies: lose its slot, redistribute its queue.

        A running task is re-queued for re-execution on a live worker
        after ``detect_delay`` (plus one message delay for the dispatch);
        a waiting probe's reservation evaporates — its in-flight response
        is salvaged on arrival (:meth:`_probe_response_arrives`).  Queued
        entries are redirected to live workers, long entries staying in
        the general partition.
        """
        faults = self._faults
        assert faults is not None
        worker = self.cluster.workers[worker_id]
        faults.dead[worker_id] = 1
        faults.crashes += 1
        if self.stealing is not None:
            self.stealing.on_worker_dead(worker)
        if worker.state is _BUSY:
            task = worker.current_task
            assert task is not None
            self._busy -= 1
            faults.requeue_task(task)
            entry = TaskEntry(task)
            target = faults.pick_live_target(entry.is_long)
            self.sim.schedule(
                faults.detect_delay + self._msg_delay(),
                self._deliver_entry,
                target,
                entry,
            )
        worker.current_entry = None
        worker.current_task = None
        self.cluster.slot_long[worker_id] = 0
        if worker.queue:
            entries = worker.remove_range(0, len(worker.queue))
            faults.entries_redistributed += len(entries)
            for queued in entries:
                self._redirect_entry(queued, extra_delay=faults.detect_delay)
        worker.state = _DEAD
        self._sync_steal_hint(worker)
        if faults.restart_delay > 0.0:
            self.sim.schedule(faults.restart_delay, self._worker_restart, worker_id)

    def _worker_restart(self, worker_id: int) -> None:
        """A crashed worker rejoins, empty and idle."""
        faults = self._faults
        assert faults is not None
        faults.dead[worker_id] = 0
        faults.restarts += 1
        worker = self.cluster.workers[worker_id]
        worker.state = _IDLE
        worker.steal_backoff = 0.0
        self._worker_try_start(worker)

    def _centralized_outage_begins(self) -> None:
        self.centralized_down = True

    def _centralized_outage_ends(self) -> None:
        self.centralized_down = False
        self.scheduler.on_centralized_restored()

    # ------------------------------------------------------------------
    # Work-stealing support (called by the stealing policy).
    # ------------------------------------------------------------------
    def transfer_stolen_entries(
        self, victim: Worker, thief: Worker, start: int, stop: int
    ) -> int:
        """Move ``victim.queue[start:stop]`` to the (idle) thief."""
        stolen = victim.remove_range(start, stop)
        for entry in stolen:
            if entry.is_task:
                entry.task.was_stolen = True
                entry.task.job.stolen_tasks += 1
            else:
                entry.stolen = True
        victim.tasks_stolen_from += len(stolen)
        thief.tasks_stolen_by += len(stolen)
        self._sync_steal_hint(victim)
        thief.enqueue_front(stolen)
        self._sync_steal_hint(thief)
        self._worker_try_start(thief)
        return len(stolen)

    # ------------------------------------------------------------------
    # Utilization sampling.
    # ------------------------------------------------------------------
    def _sample_utilization(self) -> None:
        self._utilization.append(
            UtilizationSample(self.sim.now, self._busy, self.cluster.n_workers)
        )
        if not self._done:
            self.sim.schedule(
                self.config.utilization_interval, self._sample_utilization
            )

    # ------------------------------------------------------------------
    # Online submission (long-running service mode).
    # ------------------------------------------------------------------
    def submit_job(
        self, spec: "JobSpec", estimated_task_duration: float | None = None
    ) -> Job:
        """Inject one job into a live simulation (online serving mode).

        The batch entry point :meth:`run` materializes a whole trace up
        front; a long-running service instead feeds jobs one at a time as
        they arrive, with ``spec.submit_time`` already expressed on the
        simulation clock.  The job counts toward completion tracking and
        re-opens a drained run (``all_jobs_done`` drops back to ``False``),
        so stealing and retry machinery resume when traffic returns.
        ``estimated_task_duration`` overrides the engine's estimator — a
        serving client may supply its own runtime estimate (the paper's
        estimates come from prior runs of the same job).
        """
        if spec.submit_time < self.sim.now:
            raise SimulationError(
                f"cannot submit job {spec.job_id} at t={spec.submit_time} "
                f"before now={self.sim.now}"
            )
        if estimated_task_duration is None:
            estimated_task_duration = self.estimate(spec)
        job = Job(
            job_id=spec.job_id,
            submit_time=spec.submit_time,
            task_durations=spec.task_durations,
            estimated_task_duration=estimated_task_duration,
            cutoff=self.config.cutoff,
        )
        self._jobs_total += 1
        self._done = False
        self.sim.schedule_at(job.submit_time, self.scheduler.on_job_submit, job)
        return job

    # ------------------------------------------------------------------
    # Run loop.
    # ------------------------------------------------------------------
    def run(self, trace: Sequence["JobSpec"]) -> RunResult:
        """Materialize jobs from immutable specs, run to completion."""
        if not trace:
            raise ConfigurationError("cannot run an empty trace")
        jobs: list[Job] = []
        for spec in sorted(trace, key=lambda s: (s.submit_time, s.job_id)):
            job = Job(
                job_id=spec.job_id,
                submit_time=spec.submit_time,
                task_durations=spec.task_durations,
                estimated_task_duration=self.estimate(spec),
                cutoff=self.config.cutoff,
            )
            jobs.append(job)
        self._jobs_total = len(jobs)
        self._refresh_batching()
        if self._faults is not None:
            self._faults.schedule()
        for job in jobs:
            self.sim.schedule_at(job.submit_time, self.scheduler.on_job_submit, job)
        self.sim.schedule_at(
            jobs[0].submit_time + self.config.utilization_interval,
            self._sample_utilization,
        )
        self.sim.run(max_events=self.config.max_events)
        if not self._done:
            raise SimulationError(
                f"run drained its event heap with only {self._jobs_done}/"
                f"{self._jobs_total} jobs complete"
            )
        return self._build_result(jobs)

    def _build_result(self, jobs: Iterable[Job]) -> RunResult:
        records = tuple(
            JobRecord(
                job_id=j.job_id,
                submit_time=j.submit_time,
                completion_time=j.completion_time,  # type: ignore[arg-type]
                num_tasks=j.num_tasks,
                true_mean_task_duration=j.true_mean_task_duration,
                estimated_task_duration=j.estimated_task_duration,
                task_seconds=j.task_seconds,
                scheduled_class=j.scheduled_class,
                true_class=j.true_class,
                stolen_tasks=j.stolen_tasks,
                retried_tasks=j.retried_tasks,
            )
            for j in jobs
        )
        stealing = (
            self.stealing.stats() if self.stealing is not None else StealingStats()
        )
        return RunResult(
            scheduler_name=self.scheduler.name,
            n_workers=self.cluster.n_workers,
            jobs=records,
            utilization=tuple(self._utilization),
            stealing=stealing,
            events_fired=self.sim.events_fired,
            end_time=self.sim.now,
        )
