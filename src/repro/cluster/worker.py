"""Worker nodes with single-slot FIFO queues (Section 3.1).

A queue holds two kinds of entries:

* :class:`TaskEntry` — a concrete task placed by the centralized scheduler
  (or a stolen concrete task).  The task and its duration are known.
* :class:`ProbeEntry` — a late-binding reservation placed by a distributed
  scheduler (Section 3.5).  When it reaches the head of the queue the
  worker asks the job's frontend for a task and receives either a task or a
  cancel.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Iterable

from repro.cluster.job import JobClass
from repro.core.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.job import Job
    from repro.cluster.task import Task
    from repro.schedulers.frontend import ProbeFrontend


class WorkerState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"  # executing a task
    WAITING = "waiting"  # probe at head; awaiting the scheduler's response


def find_first_short_group(
    executing_long: bool, is_long_flags: Iterable[bool]
) -> tuple[int, int] | None:
    """Locate the first run of short entries queued behind a long one.

    This is the Figure 3 stealing rule, shared by the simulator's
    :class:`Worker` and the prototype runtime's node monitor: the first
    maximal run of consecutive short entries preceded by a long entry
    (counting the entry occupying the slot) is eligible.  Returns
    ``(start, stop)`` indices into the queue or ``None``.
    """
    seen_long = executing_long
    start = None
    i = -1
    for i, is_long in enumerate(is_long_flags):
        if is_long:
            if start is not None:
                return (start, i)
            seen_long = True
        elif seen_long and start is None:
            start = i
    if start is not None:
        return (start, i + 1)
    return None


class QueueEntry:
    """Base class for queue entries."""

    __slots__ = ("job_class",)

    def __init__(self, job_class: JobClass) -> None:
        self.job_class = job_class

    @property
    def is_long(self) -> bool:
        return self.job_class is JobClass.LONG

    @property
    def is_short(self) -> bool:
        return self.job_class is JobClass.SHORT


class TaskEntry(QueueEntry):
    """A concrete task sitting in a worker queue."""

    __slots__ = ("task",)

    def __init__(self, task: "Task") -> None:
        super().__init__(task.job.scheduled_class)
        self.task = task

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskEntry({self.task!r})"


class ProbeEntry(QueueEntry):
    """A late-binding reservation for one of a job's tasks."""

    __slots__ = ("job", "frontend", "stolen")

    def __init__(self, job: "Job", frontend: "ProbeFrontend") -> None:
        super().__init__(job.scheduled_class)
        self.job = job
        self.frontend = frontend
        self.stolen = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbeEntry(job={self.job.job_id}, {self.job_class.value})"


class Worker:
    """A single-slot server with one FIFO queue.

    The worker itself is passive state; the :class:`ClusterEngine` drives
    all transitions so that the event ordering lives in one place.
    """

    __slots__ = (
        "worker_id",
        "in_short_partition",
        "state",
        "queue",
        "current_entry",
        "current_task",
        "long_entries",
        "counted_steal_hint",
        "steal_backoff",
        "pending_steal_retry",
        "tasks_executed",
        "tasks_stolen_from",
        "tasks_stolen_by",
    )

    def __init__(self, worker_id: int, in_short_partition: bool) -> None:
        self.worker_id = worker_id
        self.in_short_partition = in_short_partition
        self.state = WorkerState.IDLE
        self.queue: deque[QueueEntry] = deque()
        self.current_entry: QueueEntry | None = None
        self.current_task: "Task | None" = None
        #: Long entries in the queue — an O(1) steal-eligibility pre-check.
        self.long_entries = 0
        #: Whether this worker is counted in the cluster's steal-hint
        #: tally (engine-maintained, general partition only).
        self.counted_steal_hint = False
        # Work-stealing retry bookkeeping (see stealing policy).
        self.steal_backoff = 0.0
        self.pending_steal_retry = None  # EventHandle | None
        # Statistics.
        self.tasks_executed = 0
        self.tasks_stolen_from = 0
        self.tasks_stolen_by = 0

    @property
    def is_idle(self) -> bool:
        return self.state is WorkerState.IDLE

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    def enqueue(self, entry: QueueEntry) -> None:
        self.queue.append(entry)
        if entry.is_long:
            self.long_entries += 1

    def enqueue_front(self, entries: Iterable[QueueEntry]) -> None:
        """Place stolen entries at the head (they were blocked elsewhere)."""
        for entry in reversed(list(entries)):
            self.queue.appendleft(entry)
            if entry.is_long:
                self.long_entries += 1

    def pop_next(self) -> QueueEntry:
        if not self.queue:
            raise SimulationError(f"worker {self.worker_id} popped an empty queue")
        entry = self.queue.popleft()
        if entry.is_long:
            self.long_entries -= 1
        return entry

    @property
    def current_class(self) -> JobClass | None:
        """Class of the entry currently occupying the slot, if any."""
        if self.current_entry is None:
            return None
        return self.current_entry.job_class

    def steal_hint(self) -> bool:
        """O(1) necessary condition for :meth:`eligible_steal_range`.

        True when a long entry sits ahead of at least one short entry —
        the cluster-wide tally of this hint lets idle workers park instead
        of polling when no steal can possibly succeed.
        """
        queue_len = len(self.queue)
        if queue_len == 0:
            return False
        if queue_len == self.long_entries:
            return False  # nothing short to steal
        if self.long_entries > 0:
            return True
        return self.current_class is JobClass.LONG

    def eligible_steal_range(self) -> tuple[int, int] | None:
        """Locate the group of short entries eligible for stealing.

        Implements Figure 3: the first maximal run of consecutive short
        entries that is preceded by a long entry (counting the entry
        currently occupying the slot).  Returns ``(start, stop)`` indices
        into the queue, or ``None`` when nothing is eligible.
        """
        queue = self.queue
        if not queue:
            return None
        executing_long = self.current_class is JobClass.LONG
        # O(1) pre-checks: a steal needs a long ahead of a short somewhere.
        if not executing_long and self.long_entries == 0:
            return None
        if self.long_entries == len(queue):
            return None  # nothing short to steal
        return find_first_short_group(
            executing_long, (entry.is_long for entry in queue)
        )

    def remove_range(self, start: int, stop: int) -> list[QueueEntry]:
        """Remove and return ``queue[start:stop]`` preserving order."""
        if not 0 <= start <= stop <= len(self.queue):
            raise SimulationError(
                f"invalid steal range [{start}, {stop}) for queue of "
                f"length {len(self.queue)}"
            )
        items = list(self.queue)
        stolen = items[start:stop]
        remaining = items[:start] + items[stop:]
        self.queue = deque(remaining)
        self.long_entries -= sum(1 for e in stolen if e.is_long)
        return stolen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        part = "short" if self.in_short_partition else "general"
        return (
            f"Worker(id={self.worker_id}, {part}, {self.state.value}, "
            f"qlen={len(self.queue)})"
        )
