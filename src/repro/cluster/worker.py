"""Worker nodes with single-slot FIFO queues (Section 3.1).

A queue holds two kinds of entries:

* :class:`TaskEntry` — a concrete task placed by the centralized scheduler
  (or a stolen concrete task).  The task and its duration are known.
* :class:`ProbeEntry` — a late-binding reservation placed by a distributed
  scheduler (Section 3.5).  When it reaches the head of the queue the
  worker asks the job's frontend for a task and receives either a task or a
  cancel.
"""

from __future__ import annotations

import enum
from array import array
from collections import deque
from typing import TYPE_CHECKING, Iterable, MutableSequence, Sequence

from repro.cluster.job import JobClass
from repro.core.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.job import Job
    from repro.cluster.task import Task
    from repro.schedulers.frontend import ProbeFrontend


class WorkerState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"  # executing a task
    WAITING = "waiting"  # probe at head; awaiting the scheduler's response
    DEAD = "dead"  # crashed by fault injection; ignores all traffic


def find_first_short_group(
    executing_long: bool, is_long_flags: Iterable[bool]
) -> tuple[int, int] | None:
    """Locate the first run of short entries queued behind a long one.

    This is the Figure 3 stealing rule, shared by the simulator's
    :class:`Worker` and the prototype runtime's node monitor: the first
    maximal run of consecutive short entries preceded by a long entry
    (counting the entry occupying the slot) is eligible.  Returns
    ``(start, stop)`` indices into the queue or ``None``.
    """
    seen_long = executing_long
    start = None
    i = -1
    for i, is_long in enumerate(is_long_flags):
        if is_long:
            if start is not None:
                return (start, i)
            seen_long = True
        elif seen_long and start is None:
            start = i
    if start is not None:
        return (start, i + 1)
    return None


class QueueEntry:
    """Base class for queue entries.

    ``is_task`` and ``is_long`` are plain attributes rather than
    properties/isinstance checks: the engine reads them on every queue
    transition and stealing eligibility scan, where descriptor dispatch
    is measurable.
    """

    __slots__ = ("job_class", "seq", "is_long")

    #: Type flag: ``True`` for concrete tasks, ``False`` for probes.
    is_task = False

    def __init__(self, job_class: JobClass) -> None:
        self.job_class = job_class
        self.is_long = job_class is JobClass.LONG
        #: Queue-order sequence number, assigned by the owning worker on
        #: enqueue; entries compare in queue order iff their seqs do.
        self.seq = 0

    @property
    def is_short(self) -> bool:
        return not self.is_long


class TaskEntry(QueueEntry):
    """A concrete task sitting in a worker queue."""

    __slots__ = ("task",)

    is_task = True

    def __init__(self, task: "Task") -> None:
        super().__init__(task.job.scheduled_class)
        self.task = task

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskEntry({self.task!r})"


class ProbeEntry(QueueEntry):
    """A late-binding reservation for one of a job's tasks."""

    __slots__ = ("job", "frontend", "stolen")

    def __init__(self, job: "Job", frontend: "ProbeFrontend") -> None:
        super().__init__(job.scheduled_class)
        self.job = job
        self.frontend = frontend
        self.stolen = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProbeEntry(job={self.job.job_id}, {self.job_class.value})"


class Worker:
    """A single-slot server with one FIFO queue.

    The worker itself is passive state; the :class:`ClusterEngine` drives
    all transitions so that the event ordering lives in one place.
    """

    __slots__ = (
        "worker_id",
        "in_short_partition",
        "state",
        "queue",
        "current_entry",
        "current_task",
        "_short_seqs",
        "_long_seqs",
        "_head_seq",
        "_tail_seq",
        "_col_backlog",
        "_col_long",
        "_index",
        "counted_steal_hint",
        "steal_backoff",
        "pending_steal_retry",
        "tasks_executed",
        "tasks_stolen_from",
        "tasks_stolen_by",
    )

    def __init__(self, worker_id: int, in_short_partition: bool) -> None:
        self.worker_id = worker_id
        self.in_short_partition = in_short_partition
        self.state = WorkerState.IDLE
        self.queue: deque[QueueEntry] = deque()
        self.current_entry: QueueEntry | None = None
        self.current_task: "Task | None" = None
        # Queue-metadata columns.  A cluster-attached worker writes the
        # cluster's shared struct-of-arrays columns (``attach_columns``);
        # a standalone worker (unit tests) gets private one-slot columns
        # so the write path is branch-free either way.
        self._col_backlog: MutableSequence[int] = array("l", [0])
        self._col_long: MutableSequence[int] = array("l", [0])
        self._index = 0
        # Per-class sequence numbers of queued entries, in queue order.
        # Tail enqueues count up from 0, head enqueues count down from -1,
        # so both deques stay sorted and ``_short_seqs[-1] > _long_seqs[0]``
        # is an O(1) test for "a short entry sits behind a long one".
        self._short_seqs: deque[int] = deque()
        self._long_seqs: deque[int] = deque()
        self._head_seq = -1
        self._tail_seq = 0
        #: Whether this worker is counted in the cluster's steal-hint
        #: tally (engine-maintained, general partition only).
        self.counted_steal_hint = False
        # Work-stealing retry bookkeeping (see stealing policy).
        self.steal_backoff = 0.0
        self.pending_steal_retry = None  # EventHandle | None
        # Statistics.
        self.tasks_executed = 0
        self.tasks_stolen_from = 0
        self.tasks_stolen_by = 0

    def attach_columns(
        self,
        backlog: MutableSequence[int],
        long_count: MutableSequence[int],
    ) -> None:
        """Adopt cluster-owned metadata columns (indexed by worker id)."""
        self._col_backlog = backlog
        self._col_long = long_count
        self._index = self.worker_id

    @property
    def is_idle(self) -> bool:
        return self.state is WorkerState.IDLE

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    @property
    def long_entries(self) -> int:
        """Number of long entries currently in the queue."""
        return len(self._long_seqs)

    def enqueue(self, entry: QueueEntry) -> None:
        entry.seq = self._tail_seq
        self._tail_seq += 1
        self.queue.append(entry)
        self._col_backlog[self._index] += 1
        if entry.is_long:
            self._long_seqs.append(entry.seq)
            self._col_long[self._index] += 1
        else:
            self._short_seqs.append(entry.seq)

    def enqueue_front(self, entries: Sequence[QueueEntry]) -> None:
        """Place stolen entries at the head (they were blocked elsewhere)."""
        longs = 0
        for entry in reversed(entries):
            entry.seq = self._head_seq
            self._head_seq -= 1
            self.queue.appendleft(entry)
            if entry.is_long:
                self._long_seqs.appendleft(entry.seq)
                longs += 1
            else:
                self._short_seqs.appendleft(entry.seq)
        self._col_backlog[self._index] += len(entries)
        if longs:
            self._col_long[self._index] += longs

    def pop_next(self) -> QueueEntry:
        if not self.queue:
            raise SimulationError(f"worker {self.worker_id} popped an empty queue")
        entry = self.queue.popleft()
        self._col_backlog[self._index] -= 1
        if entry.is_long:
            self._long_seqs.popleft()
            self._col_long[self._index] -= 1
        else:
            self._short_seqs.popleft()
        return entry

    @property
    def current_class(self) -> JobClass | None:
        """Class of the entry currently occupying the slot, if any."""
        if self.current_entry is None:
            return None
        return self.current_entry.job_class

    def steal_hint(self) -> bool:
        """O(1) test, exactly equivalent to ``eligible_steal_range() is
        not None``.

        The Figure 3 rule needs a short entry *behind* a long one, counting
        the entry occupying the slot: either some queued short has a queued
        long ahead of it, or the slot holds a long and anything short is
        queued.  The cluster-wide tally of this hint lets idle workers park
        instead of polling when no steal can possibly succeed.
        """
        shorts = self._short_seqs
        if not shorts:
            return False  # nothing short to steal
        longs = self._long_seqs
        if longs and shorts[-1] > longs[0]:
            return True  # last short sits behind the first queued long
        entry = self.current_entry
        return entry is not None and entry.is_long

    def eligible_steal_range(self) -> tuple[int, int] | None:
        """Locate the group of short entries eligible for stealing.

        Implements Figure 3: the first maximal run of consecutive short
        entries that is preceded by a long entry (counting the entry
        currently occupying the slot).  Returns ``(start, stop)`` indices
        into the queue, or ``None`` when nothing is eligible.
        """
        if not self.steal_hint():
            return None
        entry = self.current_entry
        return find_first_short_group(
            entry is not None and entry.is_long,
            (entry.is_long for entry in self.queue),
        )

    def remove_range(self, start: int, stop: int) -> list[QueueEntry]:
        """Remove and return ``queue[start:stop]`` preserving order.

        Rotation-based so a steal costs O(stolen + start) instead of
        rebuilding the whole queue.
        """
        queue = self.queue
        if not 0 <= start <= stop <= len(queue):
            raise SimulationError(
                f"invalid steal range [{start}, {stop}) for queue of "
                f"length {len(queue)}"
            )
        if start == stop:
            return []
        queue.rotate(-start)
        stolen = [queue.popleft() for _ in range(stop - start)]
        queue.rotate(start)
        self._drop_seqs(self._short_seqs, [e.seq for e in stolen if e.is_short])
        long_seqs = [e.seq for e in stolen if e.is_long]
        self._drop_seqs(self._long_seqs, long_seqs)
        self._col_backlog[self._index] -= len(stolen)
        if long_seqs:
            self._col_long[self._index] -= len(long_seqs)
        return stolen

    @staticmethod
    def _drop_seqs(seqs: deque[int], removed: list[int]) -> None:
        """Drop a contiguous ascending run of values from a sorted deque."""
        if not removed:
            return
        rotations = 0
        while seqs[0] != removed[0]:
            seqs.rotate(-1)
            rotations += 1
        for _ in removed:
            seqs.popleft()
        seqs.rotate(rotations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        part = "short" if self.in_short_partition else "general"
        return (
            f"Worker(id={self.worker_id}, {part}, {self.state.value}, "
            f"qlen={len(self.queue)})"
        )
