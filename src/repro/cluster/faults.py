"""Deterministic fault injection for the cluster engine.

A :class:`FaultPlan` is a schema-validated description of everything that
may go wrong in a run: worker crash/restart schedules, probe/task message
loss and extra delay, straggler slowdown factors, and centralized-scheduler
outage windows.  Plans use the shared :mod:`repro.core.params` machinery,
so they validate, canonicalize and ``repr()`` exactly like policy and
workload params — the repr is the plan's cache identity
(:func:`repro.experiments.parallel.spec_digest` folds it into the run
cache key whenever a plan is present, and skips it entirely when absent,
keeping every pre-fault cache key byte-identical).

All fault randomness derives from the engine seed through dedicated named
streams (:func:`repro.core.rng.make_rng`): the crash schedule, straggler
assignment, message perturbations and redistribution targets each consume
their own stream, so the same ``(seed, plan)`` yields the same failures in
every process, and fault draws never perturb the policy/stealing streams.

Failure semantics (implemented by :class:`FaultInjector` plus engine
hooks — see :meth:`repro.cluster.engine.ClusterEngine.attach_faults`):

* **Crashes.**  A seeded subset of workers dies at seeded times inside the
  crash window.  The running task is re-queued after ``detect_delay``
  (re-execution counted in ``Job.retried_tasks`` /
  ``JobRecord.retried_tasks``), queued entries are redistributed to live
  workers (long entries stay in the general partition), messages in flight
  to a dead worker are redirected, and stealing skips dead victims through
  the flat ``steal_flags`` column (a dead worker's flag is always 0).
  Worker 0 is exempt so the general partition always keeps one live node.
  With ``restart_delay > 0`` the worker rejoins empty after that long.
* **Message faults.**  Each probe/task message is independently lost with
  probability ``msg_loss``; a lost attempt is retransmitted after
  ``retransmit_delay`` (and may be lost again), so loss manifests as a
  geometric extra delay and progress is always guaranteed.  Independently,
  ``msg_extra_delay`` is added with probability ``msg_extra_delay_prob``.
  Message faults disable transport batching (per-message events carry
  per-message perturbations).
* **Stragglers.**  A seeded ``straggler_fraction`` of workers executes
  every task ``straggler_slowdown`` times slower.  Recorded
  ``task_seconds`` stay nominal — stragglers stretch wall time, not work.
* **Centralized outage.**  During ``[central_outage_start,
  central_outage_start + central_outage_duration)`` the engine reports
  ``centralized_down``; the centralized policy defers submissions until
  the outage ends, while Hawk degrades gracefully — long jobs fall back to
  the distributed probe path over the general partition — and recovers
  when the outage lifts (see the policy modules).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.core.params import FrozenParams, Param, validate_against
from repro.core.rng import make_rng, sample_without_replacement

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.engine import ClusterEngine
    from repro.cluster.task import Task
    from repro.cluster.worker import QueueEntry

#: The declared fault knobs.  Everything defaults to "off": a plan built
#: from the defaults is empty and normalizes to no plan at all.
FAULT_PARAMS: tuple[Param, ...] = (
    Param("crash_fraction", float, default=0.0, minimum=0.0, maximum=0.5,
          doc="fraction of workers that crash once during the crash window"),
    Param("crash_start", float, default=0.0, minimum=0.0,
          doc="start of the crash window (simulated seconds)"),
    Param("crash_window", float, default=1000.0, minimum=0.0,
          doc="length of the window crash times are drawn uniformly from"),
    Param("restart_delay", float, default=0.0, minimum=0.0,
          doc="seconds until a crashed worker rejoins (0 = never)"),
    Param("detect_delay", float, default=0.5, minimum=0.0,
          doc="seconds between a crash and the re-dispatch of its lost work"),
    Param("msg_loss", float, default=0.0, minimum=0.0, maximum=0.9,
          doc="per-message loss probability (lost messages retransmit)"),
    Param("retransmit_delay", float, default=1.0, minimum=0.001,
          doc="extra delay paid per lost transmission attempt"),
    Param("msg_extra_delay", float, default=0.0, minimum=0.0,
          doc="extra delay added to a message with msg_extra_delay_prob"),
    Param("msg_extra_delay_prob", float, default=0.0, minimum=0.0,
          maximum=1.0, doc="probability of the extra message delay"),
    Param("straggler_fraction", float, default=0.0, minimum=0.0,
          maximum=0.9, doc="fraction of workers running tasks slowed down"),
    Param("straggler_slowdown", float, default=1.0, minimum=1.0,
          doc="execution-time multiplier on straggler workers"),
    Param("central_outage_start", float, default=0.0, minimum=0.0,
          doc="start of the centralized-scheduler outage window"),
    Param("central_outage_duration", float, default=0.0, minimum=0.0,
          doc="length of the centralized outage (0 = no outage)"),
)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A validated, canonical description of one run's injected faults.

    ``params`` is validated against :data:`FAULT_PARAMS` at construction
    (unknown names, wrong types and out-of-range values fail fast) and
    stored as a :class:`~repro.core.params.FrozenParams`, so equality,
    hashing and — crucially — ``repr()`` are canonical: the repr is the
    plan's identity in the run cache key.
    """

    params: Mapping = FrozenParams()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "params", validate_against("FaultPlan", FAULT_PARAMS, self.params)
        )

    @classmethod
    def of(cls, **knobs: float) -> "FaultPlan":
        """Keyword-argument convenience constructor."""
        return cls(params=knobs)

    def param(self, name: str) -> float:
        return self.params[name]

    # -- which fault families does this plan actually switch on? --------
    @property
    def crashes_active(self) -> bool:
        return self.params["crash_fraction"] > 0.0

    @property
    def messages_active(self) -> bool:
        p = self.params
        return p["msg_loss"] > 0.0 or (
            p["msg_extra_delay_prob"] > 0.0 and p["msg_extra_delay"] > 0.0
        )

    @property
    def stragglers_active(self) -> bool:
        p = self.params
        return p["straggler_fraction"] > 0.0 and p["straggler_slowdown"] > 1.0

    @property
    def outage_active(self) -> bool:
        return self.params["central_outage_duration"] > 0.0

    @property
    def is_empty(self) -> bool:
        """True when no fault family is switched on.

        An empty plan is semantically identical to no plan; ``RunSpec``
        normalizes it to ``None`` so both hash, compare and cache alike.
        """
        return not (
            self.crashes_active
            or self.messages_active
            or self.stragglers_active
            or self.outage_active
        )

    def describe(self) -> str:
        """One canonical line per active knob (docs/report helper)."""
        lines = []
        for p in FAULT_PARAMS:
            value = self.params[p.name]
            if value != p.default:
                lines.append(f"{p.name}={value!r}")
        return ", ".join(lines) if lines else "(empty)"


class FaultInjector:
    """Engine-side executor of one :class:`FaultPlan`.

    Owns the fault RNG streams, the crash schedule, the dead-worker and
    straggler columns, and the recovery actions the engine delegates to.
    Created by :meth:`ClusterEngine.attach_faults`; one injector serves
    exactly one run.
    """

    def __init__(self, plan: FaultPlan, engine: "ClusterEngine") -> None:
        self.plan = plan
        self.engine = engine
        cluster = engine.cluster
        seed = engine.config.seed
        n = cluster.n_workers
        p = plan.params
        #: Flat liveness column, indexed by worker id (1 = dead).
        self.dead = bytearray(n)
        #: Per-worker execution-time multiplier (1.0 = healthy).
        self.slowdown = array("d", [1.0]) * n
        if plan.stragglers_active:
            rng = make_rng(seed, "faults-straggler")
            count = min(n - 1, int(round(n * p["straggler_fraction"])))
            factor = p["straggler_slowdown"]
            for wid in sorted(sample_without_replacement(rng, n, count)):
                self.slowdown[wid] = factor
        #: ``(time, worker_id)`` crash events, time-ordered.  Worker 0 is
        #: exempt so the general partition always keeps one live node.
        self.crash_schedule: tuple[tuple[float, int], ...] = ()
        if plan.crashes_active and n > 1:
            rng = make_rng(seed, "faults-crash")
            count = min(n - 1, int(round(n * p["crash_fraction"])))
            victims = [
                wid + 1 for wid in sample_without_replacement(rng, n - 1, count)
            ]
            start = p["crash_start"]
            window = p["crash_window"]
            times = [start + window * float(rng.random()) for _ in victims]
            self.crash_schedule = tuple(
                sorted(zip(times, victims))
            )
        self.outage: tuple[float, float] | None = None
        if plan.outage_active:
            start = p["central_outage_start"]
            self.outage = (start, start + p["central_outage_duration"])
        self.messages_active = plan.messages_active
        self._msg_rng = make_rng(seed, "faults-msg")
        self._redist_rng = make_rng(seed, "faults-redistribute")
        self._msg_loss = p["msg_loss"]
        self._retransmit = p["retransmit_delay"]
        self._extra_prob = p["msg_extra_delay_prob"]
        self._extra = p["msg_extra_delay"]
        self.detect_delay = p["detect_delay"]
        self.restart_delay = p["restart_delay"]
        # Observability counters (fault runs only; not part of RunResult).
        self.crashes = 0
        self.restarts = 0
        self.tasks_requeued = 0
        self.entries_redistributed = 0
        self.messages_lost = 0
        self.messages_redirected = 0
        self.probes_salvaged = 0

    # ------------------------------------------------------------------
    def schedule(self) -> None:
        """Arm every planned fault on the engine's simulation clock."""
        engine = self.engine
        sim = engine.sim
        for time, worker_id in self.crash_schedule:
            sim.schedule_at(time, engine._worker_crash, worker_id)
        if self.outage is not None:
            start, end = self.outage
            sim.schedule_at(start, engine._centralized_outage_begins)
            sim.schedule_at(end, engine._centralized_outage_ends)

    # ------------------------------------------------------------------
    def perturb_delay(self, delay: float) -> float:
        """Apply message loss/extra-delay faults to one message delay.

        Loss is modeled as retransmission: each lost attempt adds
        ``retransmit_delay`` and is re-drawn, so delivery is guaranteed
        and the perturbation is a deterministic function of the message
        stream's draw order.
        """
        rng = self._msg_rng
        loss = self._msg_loss
        if loss > 0.0:
            while float(rng.random()) < loss:
                self.messages_lost += 1
                delay += self._retransmit
        if self._extra_prob > 0.0 and float(rng.random()) < self._extra_prob:
            delay += self._extra
        return delay

    def pick_live_target(self, is_long: bool) -> int:
        """A live worker to receive redistributed work.

        Long entries stay inside the general partition (the invariant
        every policy preserves); short entries may land anywhere.  Drawn
        from the dedicated redistribution stream; rejection-samples the
        dead set with a deterministic linear-scan fallback.
        """
        from repro.cluster.cluster import Partition

        cluster = self.engine.cluster
        ids = cluster.ids(Partition.GENERAL if is_long else Partition.ALL)
        dead = self.dead
        rng = self._redist_rng
        n = len(ids)
        for _ in range(64):
            wid = ids[int(rng.integers(0, n))]
            if not dead[wid]:
                return wid
        for wid in ids:  # pragma: no cover - 64 straight dead draws
            if not dead[wid]:
                return wid
        return ids[0]  # pragma: no cover - worker 0 is never crashed

    def requeue_task(self, task: "Task") -> None:
        """Count and reset one lost task for re-execution."""
        task.reset_for_retry()
        self.tasks_requeued += 1

    def salvage_probe_response(self, entry: "QueueEntry", task: "Task | None") -> None:
        """A probe response reached a crashed (or restarted) worker.

        The reservation is gone, but a handed-out task must not be: it is
        re-dispatched to a live worker as a concrete task placement.
        """
        self.probes_salvaged += 1
        if task is None:
            return
        from repro.cluster.worker import TaskEntry

        engine = self.engine
        target = self.pick_live_target(entry.is_long)
        engine.sim.schedule(
            engine._msg_delay(), engine._deliver_entry, target, TaskEntry(task)
        )
