"""Immutable result records produced by a run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.job import JobClass


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Everything the metrics layer needs to know about one finished job."""

    job_id: int
    submit_time: float
    completion_time: float
    num_tasks: int
    true_mean_task_duration: float
    estimated_task_duration: float
    task_seconds: float
    scheduled_class: JobClass
    true_class: JobClass
    stolen_tasks: int
    #: Task re-executions forced by injected worker crashes (0 without
    #: fault injection; appended after PR 8, hence the default and the
    #: pickle shim below).
    retried_tasks: int = 0

    def __setstate__(self, state: list[object]) -> None:
        # Frozen-slots dataclasses pickle their state as the field-value
        # list.  Run-cache pickles written before ``retried_tasks`` existed
        # are one value short; missing trailing fields take their defaults
        # so cached results stay loadable and equality-comparable.
        names = self.__slots__
        for name, value in zip(names, state):
            object.__setattr__(self, name, value)
        for name in names[len(state):]:
            object.__setattr__(self, name, 0)

    @property
    def runtime(self) -> float:
        return self.completion_time - self.submit_time


@dataclass(frozen=True, slots=True)
class UtilizationSample:
    """One utilization snapshot (taken every 100 s, Section 2.3)."""

    time: float
    busy_workers: int
    total_workers: int

    @property
    def utilization(self) -> float:
        return self.busy_workers / self.total_workers


@dataclass(frozen=True, slots=True)
class StealingStats:
    """Aggregate work-stealing counters for a run."""

    rounds: int = 0
    successful_rounds: int = 0
    victims_probed: int = 0
    entries_stolen: int = 0

    @property
    def success_rate(self) -> float:
        if self.rounds == 0:
            return 0.0
        return self.successful_rounds / self.rounds


@dataclass(frozen=True, slots=True)
class RunResult:
    """Output of :meth:`ClusterEngine.run`."""

    scheduler_name: str
    n_workers: int
    jobs: tuple[JobRecord, ...]
    utilization: tuple[UtilizationSample, ...]
    stealing: StealingStats = field(default=StealingStats())
    events_fired: int = 0
    end_time: float = 0.0

    def runtimes(self, job_class: JobClass | None = None) -> list[float]:
        """Job runtimes, optionally filtered by *true* class."""
        return [
            j.runtime
            for j in self.jobs
            if job_class is None or j.true_class is job_class
        ]

    def records(self, job_class: JobClass | None = None) -> list[JobRecord]:
        return [
            j for j in self.jobs if job_class is None or j.true_class is job_class
        ]

    def median_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        values = sorted(s.utilization for s in self.utilization)
        n = len(values)
        mid = n // 2
        if n % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    def max_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return max(s.utilization for s in self.utilization)
