"""Cluster construction and partitioning (Section 3.4).

Hawk reserves a portion of the servers (the *short partition*) that runs
exclusively short tasks.  The remaining servers form the *general
partition*: long tasks are restricted to it, short tasks may run anywhere.
"""

from __future__ import annotations

import enum
from array import array

from repro.cluster.worker import Worker
from repro.core.errors import ConfigurationError


class Partition(enum.Enum):
    """Named server sets used by scheduler policies."""

    ALL = "all"
    GENERAL = "general"
    SHORT_RESERVED = "short_reserved"


class Cluster:
    """A fixed set of single-slot workers split into partitions.

    Workers ``[0, n_general)`` form the general partition and
    ``[n_general, n_workers)`` the short partition.  The contiguous layout
    makes partition membership an O(1) comparison and lets policies sample
    directly from index ranges.
    """

    def __init__(self, n_workers: int, short_partition_fraction: float = 0.0) -> None:
        if n_workers <= 0:
            raise ConfigurationError(f"n_workers must be positive, got {n_workers}")
        if not 0.0 <= short_partition_fraction < 1.0:
            raise ConfigurationError(
                "short_partition_fraction must be in [0, 1), got "
                f"{short_partition_fraction}"
            )
        self.n_workers = n_workers
        n_short = int(round(n_workers * short_partition_fraction))
        if short_partition_fraction > 0.0 and n_short == 0:
            n_short = 1  # a non-zero reservation always gets at least a node
        self.n_general = n_workers - n_short
        if self.n_general == 0:
            raise ConfigurationError(
                "short partition cannot cover the whole cluster"
            )
        self.workers = [
            Worker(i, in_short_partition=(i >= self.n_general))
            for i in range(n_workers)
        ]
        #: Engine-maintained count of general-partition workers whose
        #: queues could hold stealable work — a cheap necessary condition
        #: used by the stealing policy to park idle workers.
        self.steal_hint_count = 0
        # Struct-of-arrays columns, indexed by worker id.  Per-worker
        # *queue contents* stay on the Worker (deques); the cluster owns
        # the flat per-worker metadata so hot policies can scan or
        # pre-filter thousands of workers without touching Worker
        # objects.  ``backlog``/``long_count``/``slot_long`` are written
        # by the workers themselves on every queue/slot mutation;
        # ``steal_flags`` mirrors each general worker's steal hint
        # (written by the engine's hint sync, read as the stealing
        # policy's victim eligibility bitmap); ``parked`` is the
        # stealing policy's park-state column.
        self.backlog = array("l", [0]) * n_workers
        self.long_count = array("l", [0]) * n_workers
        self.slot_long = bytearray(n_workers)
        self.steal_flags = bytearray(n_workers)
        self.parked = bytearray(n_workers)
        for worker in self.workers:
            worker.attach_columns(self.backlog, self.long_count)

    @property
    def n_short(self) -> int:
        return self.n_workers - self.n_general

    def ids(self, partition: Partition) -> range:
        """Worker-id range for a partition (cheap, no copying)."""
        if partition is Partition.ALL:
            return range(self.n_workers)
        if partition is Partition.GENERAL:
            return range(self.n_general)
        return range(self.n_general, self.n_workers)

    def worker(self, worker_id: int) -> Worker:
        return self.workers[worker_id]

    def busy_count(self) -> int:
        """Number of workers currently executing a task (O(n); the engine
        keeps an O(1) counter for sampling — this is the ground truth used
        by tests)."""
        from repro.cluster.worker import WorkerState

        return sum(1 for w in self.workers if w.state is WorkerState.BUSY)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(n={self.n_workers}, general={self.n_general}, "
            f"short={self.n_short})"
        )
