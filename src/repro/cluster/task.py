"""Task state machine."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.core.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.job import Job


class TaskState(enum.Enum):
    """Lifecycle of a task."""

    PENDING = "pending"  # created, not yet handed to any worker
    RUNNING = "running"  # executing on a worker
    FINISHED = "finished"


class Task:
    """One unit of work belonging to a job.

    ``duration`` is the *true* execution time; schedulers only ever see the
    job-level estimate (Section 3.3).
    """

    __slots__ = (
        "job",
        "index",
        "duration",
        "state",
        "worker_id",
        "start_time",
        "finish_time",
        "was_stolen",
        "attempt",
    )

    def __init__(self, job: "Job", index: int, duration: float) -> None:
        if duration <= 0:
            raise SimulationError(f"task duration must be positive, got {duration}")
        self.job = job
        self.index = index
        self.duration = duration
        self.state = TaskState.PENDING
        self.worker_id: int | None = None
        self.start_time: float | None = None
        self.finish_time: float | None = None
        self.was_stolen = False
        #: Execution attempt counter; bumped by :meth:`reset_for_retry` when
        #: fault injection loses the running copy, so the engine can tell a
        #: stale completion event from the live execution's.
        self.attempt = 0

    def start(self, worker_id: int, now: float) -> None:
        if self.state is not TaskState.PENDING:
            raise SimulationError(
                f"task {self.job.job_id}:{self.index} started twice "
                f"(state={self.state})"
            )
        self.state = TaskState.RUNNING
        self.worker_id = worker_id
        self.start_time = now

    def finish(self, now: float) -> None:
        if self.state is not TaskState.RUNNING:
            raise SimulationError(
                f"task {self.job.job_id}:{self.index} finished while {self.state}"
            )
        self.state = TaskState.FINISHED
        self.finish_time = now

    def reset_for_retry(self) -> None:
        """Return a lost (worker-crashed) execution to the pending state.

        The re-execution runs for the full true duration again; only the
        final successful attempt records start/finish times.
        """
        if self.state is not TaskState.RUNNING:
            raise SimulationError(
                f"task {self.job.job_id}:{self.index} reset while {self.state}"
            )
        self.state = TaskState.PENDING
        self.worker_id = None
        self.start_time = None
        self.attempt += 1
        self.job.retried_tasks += 1

    @property
    def wait_time(self) -> float:
        """Time between job submission and task start (queueing + protocol)."""
        if self.start_time is None:
            raise SimulationError("task has not started")
        return self.start_time - self.job.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task(job={self.job.job_id}, idx={self.index}, "
            f"dur={self.duration:.1f}, {self.state.value})"
        )
