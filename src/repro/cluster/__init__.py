"""Cluster substrate: workers, queues, jobs, tasks and the run engine.

The model follows Section 3.1 of the paper: a cluster of single-slot worker
nodes, each with one FIFO queue.  A job is a set of tasks that may run in
parallel; a job completes when its last task finishes.
"""

from repro.cluster.cluster import Cluster, Partition
from repro.cluster.engine import ClusterEngine, EngineConfig
from repro.cluster.faults import FaultInjector, FaultPlan
from repro.cluster.job import Job, JobClass, classify
from repro.cluster.records import JobRecord, RunResult, UtilizationSample
from repro.cluster.task import Task, TaskState
from repro.cluster.worker import ProbeEntry, QueueEntry, TaskEntry, Worker, WorkerState

__all__ = [
    "Cluster",
    "ClusterEngine",
    "EngineConfig",
    "FaultInjector",
    "FaultPlan",
    "Job",
    "JobClass",
    "JobRecord",
    "Partition",
    "ProbeEntry",
    "QueueEntry",
    "RunResult",
    "Task",
    "TaskEntry",
    "TaskState",
    "UtilizationSample",
    "Worker",
    "WorkerState",
    "classify",
]
