"""Job model and long/short classification (Section 3.3)."""

from __future__ import annotations

import enum
from typing import Sequence

from repro.cluster.task import Task, TaskState
from repro.core.errors import SimulationError


class JobClass(enum.Enum):
    """Scheduling class of a job."""

    SHORT = "short"
    LONG = "long"


def classify(estimated_task_duration: float, cutoff: float) -> JobClass:
    """Classify a job by comparing its estimate to the cutoff.

    "Jobs for which the estimated task runtime is smaller than the cutoff
    are scheduled in a distributed fashion" (Section 3.3); the rest are
    long.
    """
    if estimated_task_duration < cutoff:
        return JobClass.SHORT
    return JobClass.LONG


class Job:
    """A materialized job: tasks plus per-run scheduling state.

    A ``Job`` is created from an immutable :class:`repro.workloads.JobSpec`
    at the start of every run so runs never share mutable state.

    Attributes
    ----------
    estimated_task_duration:
        What the scheduler believes the mean task runtime is.  Equal to the
        true mean under exact estimation; perturbed by the mis-estimation
        model of Section 4.8 otherwise.
    scheduled_class:
        Class derived from the *estimate* — drives routing.
    true_class:
        Class derived from the *true* mean — used for reporting, so that
        mis-estimation experiments report on the set of jobs "classified as
        long when no mis-estimations are present" (Section 4.8).
    """

    __slots__ = (
        "job_id",
        "submit_time",
        "tasks",
        "true_mean_task_duration",
        "estimated_task_duration",
        "scheduled_class",
        "true_class",
        "finished_tasks",
        "completion_time",
        "stolen_tasks",
        "retried_tasks",
    )

    def __init__(
        self,
        job_id: int,
        submit_time: float,
        task_durations: Sequence[float],
        estimated_task_duration: float,
        cutoff: float,
    ) -> None:
        if not task_durations:
            raise SimulationError(f"job {job_id} has no tasks")
        self.job_id = job_id
        self.submit_time = float(submit_time)
        self.tasks = [Task(self, i, d) for i, d in enumerate(task_durations)]
        self.true_mean_task_duration = sum(task_durations) / len(task_durations)
        self.estimated_task_duration = float(estimated_task_duration)
        self.scheduled_class = classify(self.estimated_task_duration, cutoff)
        self.true_class = classify(self.true_mean_task_duration, cutoff)
        self.finished_tasks = 0
        self.completion_time: float | None = None
        self.stolen_tasks = 0
        self.retried_tasks = 0

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def task_seconds(self) -> float:
        """Total work in the job (sum of true task durations)."""
        return sum(t.duration for t in self.tasks)

    @property
    def is_complete(self) -> bool:
        return self.finished_tasks == len(self.tasks)

    @property
    def runtime(self) -> float:
        """Job runtime: last task completion minus submission."""
        if self.completion_time is None:
            raise SimulationError(f"job {self.job_id} has not completed")
        return self.completion_time - self.submit_time

    def record_task_finish(self, now: float) -> bool:
        """Count a task completion; returns True when the job just finished."""
        self.finished_tasks += 1
        if self.finished_tasks > len(self.tasks):
            raise SimulationError(f"job {self.job_id} finished too many tasks")
        if self.finished_tasks == len(self.tasks):
            self.completion_time = now
            return True
        return False

    def unfinished_tasks(self) -> list[Task]:
        return [t for t in self.tasks if t.state is not TaskState.FINISHED]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, t={self.num_tasks}, "
            f"mean={self.true_mean_task_duration:.1f}, "
            f"{self.scheduled_class.value})"
        )
