"""Transport-agnostic service operations.

Both front ends — the asyncio HTTP server and the newline-delimited-JSON
socket (:mod:`repro.service.server`) — are thin parsers over the
:class:`ServiceState` methods here, so the two transports cannot drift:
a submission means the same thing whichever door it came through.

``ServiceState`` owns the event store and one lazily-created
:class:`~repro.service.scheduler_bridge.SchedulerBridge` per distinct
:class:`~repro.service.models.RunConfig` (keyed by its content-digest
``run_id``): two clients naming the same policy + params + cluster shape
share one virtual cluster, while different configurations are isolated
runs in the same store.

All methods raise :class:`~repro.core.errors.ConfigurationError` for
client mistakes (unknown policy, bad params, unknown run); transports
map that to a 400-class response.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

from repro.core.errors import ConfigurationError
from repro.service.event_store import EventStore
from repro.service.models import RunConfig, Submission
from repro.service.replay import replay, result_to_json
from repro.service.scheduler_bridge import SchedulerBridge


class ServiceState:
    """Shared state behind every transport: store plus live bridges."""

    def __init__(
        self,
        store: EventStore,
        max_runs: int = 32,
        time_scale: float = 1.0,
    ) -> None:
        if max_runs < 1:
            raise ConfigurationError("max_runs must be >= 1")
        self.store = store
        self.max_runs = max_runs
        self.time_scale = time_scale
        self._bridges: dict[str, SchedulerBridge] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- operations ------------------------------------------------------
    def submit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """One job submission: validate, route to its run, enqueue.

        The payload carries both the run configuration (``policy``,
        ``params``, optional cluster shape) and the job itself
        (``tasks``, ``tenant``, optional ``estimate``).
        """
        config = RunConfig.from_json(payload)
        submission = Submission.from_json(payload)
        bridge = self._bridge_for(config)
        job_id = bridge.submit(submission)
        return {"run_id": bridge.run_id, "job_id": job_id}

    def runs(self) -> dict[str, Any]:
        """Every run the store knows about, live or historical."""
        with self._lock:
            live = dict(self._bridges)
        rows = []
        for run_id, config in self.store.run_configs().items():
            row: dict[str, Any] = {
                "run_id": run_id,
                "policy": config.policy,
                "live": run_id in live,
            }
            bridge = live.get(run_id)
            if bridge is not None:
                row.update(bridge.stats())
            rows.append(row)
        return {"runs": rows}

    def run_detail(self, run_id: str) -> dict[str, Any]:
        config = self._config_for(run_id)
        detail: dict[str, Any] = {
            "run_id": run_id,
            "config": config.to_json(),
            "events": self.store.event_count(run_id),
        }
        bridge = self._live_bridge(run_id)
        if bridge is not None:
            detail["stats"] = bridge.stats()
            detail["latencies"] = list(bridge.latencies())
        return detail

    def run_result(
        self, run_id: str, drain: bool = True, timeout: float = 60.0
    ) -> dict[str, Any]:
        """The run's folded result; optionally wait for in-flight jobs.

        Blocking — transports call it off the event loop.
        """
        config = self._config_for(run_id)
        bridge = self._live_bridge(run_id)
        drained = True
        if bridge is not None:
            if drain:
                drained = bridge.drain(timeout)
            result = bridge.result()
        else:
            result = replay(self.store, run_id).result(config)
        return {
            "run_id": run_id,
            "drained": drained,
            "result": result_to_json(result),
        }

    def replay_check(self, run_id: str) -> dict[str, Any]:
        """Fold the stored log cold and compare against the live result.

        Only meaningful while the run's bridge is alive; a historical
        run has nothing but the log to compare with itself.
        """
        config = self._config_for(run_id)
        bridge = self._live_bridge(run_id)
        if bridge is None:
            raise ConfigurationError(
                f"run {run_id!r} has no live bridge to compare against"
            )
        live = bridge.result()
        cold = replay(self.store, run_id).result(config)
        return {
            "run_id": run_id,
            "match": live == cold,
            "live_jobs": len(live.jobs),
            "replayed_jobs": len(cold.jobs),
        }

    def checkpoint(self, run_id: str, compact: bool = False) -> dict[str, Any]:
        bridge = self._live_bridge(run_id)
        if bridge is None:
            raise ConfigurationError(
                f"run {run_id!r} has no live bridge to checkpoint"
            )
        compacted = bridge.checkpoint(compact=compact)
        return {"run_id": run_id, "compacted_events": compacted}

    def health(self) -> dict[str, Any]:
        with self._lock:
            live = len(self._bridges)
        return {
            "status": "ok",
            "live_runs": live,
            "events": self.store.event_count(),
        }

    def close(self, timeout: float = 60.0) -> bool:
        """Drain and stop every live bridge, then flush the store."""
        with self._lock:
            if self._closed:
                return True
            self._closed = True
            bridges = list(self._bridges.values())
            self._bridges.clear()
        clean = True
        for bridge in bridges:
            clean = bridge.stop(timeout) and clean
        self.store.flush()
        return clean

    # -- internals -------------------------------------------------------
    def _bridge_for(self, config: RunConfig) -> SchedulerBridge:
        run_id = config.run_id
        with self._lock:
            if self._closed:
                raise ConfigurationError("service is shutting down")
            bridge = self._bridges.get(run_id)
            if bridge is None:
                if len(self._bridges) >= self.max_runs:
                    raise ConfigurationError(
                        f"run limit reached ({self.max_runs} live runs); "
                        "drain one before starting another configuration"
                    )
                bridge = SchedulerBridge(
                    config, self.store, time_scale=self.time_scale
                ).start()
                self._bridges[run_id] = bridge
            return bridge

    def _live_bridge(self, run_id: str) -> SchedulerBridge | None:
        with self._lock:
            return self._bridges.get(run_id)

    def _config_for(self, run_id: str) -> RunConfig:
        bridge = self._live_bridge(run_id)
        if bridge is not None:
            return bridge.config
        configs = self.store.run_configs()
        try:
            return configs[run_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown run {run_id!r}; known runs: {sorted(configs)}"
            ) from None
