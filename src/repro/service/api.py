"""Transport-agnostic service operations.

Both front ends — the asyncio HTTP server and the newline-delimited-JSON
socket (:mod:`repro.service.server`) — are thin parsers over the
:class:`ServiceState` methods here, so the two transports cannot drift:
a submission means the same thing whichever door it came through.

``ServiceState`` owns the event store and one lazily-created
:class:`~repro.service.scheduler_bridge.SchedulerBridge` per distinct
:class:`~repro.service.models.RunConfig` (keyed by its content-digest
``run_id``): two clients naming the same policy + params + cluster shape
share one virtual cluster, while different configurations are isolated
runs in the same store.

All methods raise :class:`~repro.core.errors.ConfigurationError` for
client mistakes (unknown policy, bad params, unknown run); transports
map that to a 400-class response.  :class:`DrainTimeout` — a run whose
in-flight jobs outlasted the caller's drain budget — maps to 504, and
:class:`~repro.service.event_store.StoreUnavailable` to 503.

Crash recovery
--------------
:meth:`ServiceState.rehydrate` (the server calls it on startup) scans
the store for runs that still have jobs in flight — a previous process
died mid-run — replays each one's log to its last committed event, and
resumes it on a fresh bridge: completed jobs keep their replayed
records, interrupted jobs are re-submitted from the task durations their
``submitted`` events recorded.  Because the run id is the configuration
digest, a client re-submitting after the crash lands on the resumed
bridge rather than forking a second history.
"""

from __future__ import annotations

import logging
import threading
from typing import Any, Mapping

from repro.core.errors import ConfigurationError, ReproError
from repro.service.event_store import EventStore
from repro.service.models import RunConfig, Submission
from repro.service.replay import replay, result_to_json
from repro.service.scheduler_bridge import SchedulerBridge

logger = logging.getLogger(__name__)


class DrainTimeout(ReproError):
    """A run's in-flight jobs did not finish within the drain budget."""


class ServiceState:
    """Shared state behind every transport: store plus live bridges."""

    def __init__(
        self,
        store: EventStore,
        max_runs: int = 32,
        time_scale: float = 1.0,
    ) -> None:
        if max_runs < 1:
            raise ConfigurationError("max_runs must be >= 1")
        self.store = store
        self.max_runs = max_runs
        self.time_scale = time_scale
        self._bridges: dict[str, SchedulerBridge] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: Run ids whose bridge threads outlived the shutdown budget
        #: (set by :meth:`close`, mirroring the prototype's
        #: ``leaked_monitors``).
        self.leaked_bridges: tuple[str, ...] = ()
        #: Jobs re-submitted per resumed run (set by :meth:`rehydrate`).
        self.rehydrated: dict[str, int] = {}

    # -- crash recovery ---------------------------------------------------
    def rehydrate(self) -> dict[str, Any]:
        """Resume every stored run that still has jobs in flight.

        For each registered run the log is replayed cold; a run whose
        fold has pending jobs gets a fresh bridge seeded with that fold
        (:meth:`SchedulerBridge.resume_from`), so the interrupted jobs
        re-run under their original ids and the log simply continues.
        Runs are resumed independently — one corrupt log is reported and
        skipped, not allowed to block the rest.  Idempotent: a run with
        a live bridge is left alone.
        """
        resumed: list[dict[str, Any]] = []
        errors: list[str] = []
        for run_id, config in self.store.run_configs().items():
            try:
                fold = replay(self.store, run_id)
            except ReproError as exc:
                logger.warning("rehydrate: replay of %s failed: %s", run_id, exc)
                errors.append(run_id)
                continue
            if not fold.pending:
                continue
            with self._lock:
                if self._closed or run_id in self._bridges:
                    continue
                if len(self._bridges) >= self.max_runs:
                    logger.warning(
                        "rehydrate: run limit reached (%d); %s stays cold",
                        self.max_runs,
                        run_id,
                    )
                    errors.append(run_id)
                    continue
                bridge = SchedulerBridge(
                    config, self.store, time_scale=self.time_scale
                )
                jobs = bridge.resume_from(fold)
                unrecoverable = fold.jobs_in_flight - jobs
                bridge.start()
                self._bridges[run_id] = bridge
            self.rehydrated[run_id] = jobs
            resumed.append(
                {
                    "run_id": run_id,
                    "jobs_resumed": jobs,
                    "jobs_unrecoverable": unrecoverable,
                    "jobs_already_done": fold.jobs_completed,
                }
            )
            logger.info(
                "rehydrate: resumed %s with %d interrupted job(s) "
                "(%d already complete in the log)",
                run_id,
                jobs,
                fold.jobs_completed,
            )
        return {"resumed": resumed, "failed": errors}

    # -- operations ------------------------------------------------------
    def submit(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """One job submission: validate, route to its run, enqueue.

        The payload carries both the run configuration (``policy``,
        ``params``, optional cluster shape) and the job itself
        (``tasks``, ``tenant``, optional ``estimate``).
        """
        config = RunConfig.from_json(payload)
        submission = Submission.from_json(payload)
        bridge = self._bridge_for(config)
        job_id = bridge.submit(submission)
        return {"run_id": bridge.run_id, "job_id": job_id}

    def runs(self) -> dict[str, Any]:
        """Every run the store knows about, live or historical."""
        with self._lock:
            live = dict(self._bridges)
        rows = []
        for run_id, config in self.store.run_configs().items():
            row: dict[str, Any] = {
                "run_id": run_id,
                "policy": config.policy,
                "live": run_id in live,
            }
            bridge = live.get(run_id)
            if bridge is not None:
                row.update(bridge.stats())
            rows.append(row)
        return {"runs": rows}

    def run_detail(self, run_id: str) -> dict[str, Any]:
        config = self._config_for(run_id)
        detail: dict[str, Any] = {
            "run_id": run_id,
            "config": config.to_json(),
            "events": self.store.event_count(run_id),
        }
        bridge = self._live_bridge(run_id)
        if bridge is not None:
            detail["stats"] = bridge.stats()
            detail["latencies"] = list(bridge.latencies())
        return detail

    def run_result(
        self, run_id: str, drain: bool = True, timeout: float = 60.0
    ) -> dict[str, Any]:
        """The run's folded result; optionally wait for in-flight jobs.

        Blocking — transports call it off the event loop.  A drain that
        outlasts ``timeout`` raises :class:`DrainTimeout` (the HTTP edge
        maps it to 504) instead of quietly returning a partial result;
        callers that want the partial fold pass ``drain=False``.
        """
        config = self._config_for(run_id)
        bridge = self._live_bridge(run_id)
        drained = True
        if bridge is not None:
            if drain:
                drained = bridge.drain(timeout)
                if not drained:
                    in_flight = bridge.stats()["in_flight"]
                    logger.warning(
                        "run %s still has %d job(s) in flight after a "
                        "%.1fs drain",
                        run_id,
                        in_flight,
                        timeout,
                    )
                    raise DrainTimeout(
                        f"run {run_id!r} still has {in_flight} job(s) in "
                        f"flight after {timeout:.1f}s; retry later or pass "
                        "drain=false for a partial result"
                    )
            result = bridge.result()
        else:
            result = replay(self.store, run_id).result(config)
        return {
            "run_id": run_id,
            "drained": drained,
            "result": result_to_json(result),
        }

    def replay_check(self, run_id: str) -> dict[str, Any]:
        """Fold the stored log cold and compare against the live result.

        Only meaningful while the run's bridge is alive; a historical
        run has nothing but the log to compare with itself.
        """
        config = self._config_for(run_id)
        bridge = self._live_bridge(run_id)
        if bridge is None:
            raise ConfigurationError(
                f"run {run_id!r} has no live bridge to compare against"
            )
        live = bridge.result()
        cold = replay(self.store, run_id).result(config)
        return {
            "run_id": run_id,
            "match": live == cold,
            "live_jobs": len(live.jobs),
            "replayed_jobs": len(cold.jobs),
        }

    def checkpoint(self, run_id: str, compact: bool = False) -> dict[str, Any]:
        bridge = self._live_bridge(run_id)
        if bridge is None:
            raise ConfigurationError(
                f"run {run_id!r} has no live bridge to checkpoint"
            )
        compacted = bridge.checkpoint(compact=compact)
        return {"run_id": run_id, "compacted_events": compacted}

    def health(self) -> dict[str, Any]:
        with self._lock:
            live = len(self._bridges)
        return {
            "status": "ok",
            "live_runs": live,
            "rehydrated_runs": len(self.rehydrated),
            "events": self.store.event_count(),
        }

    def close(self, timeout: float = 60.0) -> bool:
        """Drain and stop every live bridge, then flush the store.

        A bridge whose thread outlives its join budget is recorded on
        :attr:`leaked_bridges` and logged (mirroring the prototype's
        leaked-monitor reporting) instead of hanging shutdown; its jobs
        stay recoverable — the next start rehydrates them from the log.
        """
        with self._lock:
            if self._closed:
                return not self.leaked_bridges
            self._closed = True
            bridges = list(self._bridges.values())
            self._bridges.clear()
        leaked = []
        for bridge in bridges:
            if not bridge.stop(timeout):
                leaked.append(bridge.run_id)
        self.leaked_bridges = tuple(leaked)
        if leaked:
            logger.warning(
                "%d bridge thread(s) did not drain within %.1fs of "
                "shutdown (runs %s); their daemon threads were abandoned "
                "and their jobs will be rehydrated on the next start",
                len(leaked),
                timeout,
                leaked,
            )
        self.store.flush()
        return not leaked

    # -- internals -------------------------------------------------------
    def _bridge_for(self, config: RunConfig) -> SchedulerBridge:
        run_id = config.run_id
        with self._lock:
            if self._closed:
                raise ConfigurationError("service is shutting down")
            bridge = self._bridges.get(run_id)
            if bridge is None:
                if len(self._bridges) >= self.max_runs:
                    raise ConfigurationError(
                        f"run limit reached ({self.max_runs} live runs); "
                        "drain one before starting another configuration"
                    )
                bridge = SchedulerBridge(
                    config, self.store, time_scale=self.time_scale
                ).start()
                self._bridges[run_id] = bridge
            return bridge

    def _live_bridge(self, run_id: str) -> SchedulerBridge | None:
        with self._lock:
            return self._bridges.get(run_id)

    def _config_for(self, run_id: str) -> RunConfig:
        bridge = self._live_bridge(run_id)
        if bridge is not None:
            return bridge.config
        configs = self.store.run_configs()
        try:
            return configs[run_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown run {run_id!r}; known runs: {sorted(configs)}"
            ) from None
