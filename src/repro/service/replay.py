"""Replay: fold a lifecycle-event log back into simulator records.

The event store is the source of truth, so a run's
:class:`~repro.cluster.records.RunResult` is *defined* as a fold over
its events: :class:`RunFold` consumes ``submitted``/``stolen``/
``completed`` transitions (the other kinds are audit detail) and
:meth:`RunFold.result` materializes records byte-compatible with what
:meth:`ClusterEngine.run` builds.  The live service uses the *same* fold
on the events it emits, so live results and a cold :func:`replay` of the
log agree by construction — the equality tests in ``tests/service``
hold the two paths to that.

``RunFold.to_state``/``from_state`` round-trip the fold through JSON for
the store's snapshot/compaction path, and the NDJSON helpers
(:func:`export_ndjson` / :func:`load_ndjson`) serialize whole logs to
portable files — the committed fixture behind
``fig16_17_prototype --from-events`` is one of these.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable, Mapping

from repro.cluster.job import JobClass
from repro.cluster.records import JobRecord, RunResult, StealingStats
from repro.core.errors import ConfigurationError
from repro.service.event_store import EventStore
from repro.service.models import (
    KIND_COMPLETED,
    KIND_STOLEN,
    KIND_SUBMITTED,
    LifecycleEvent,
    RunConfig,
    canonical_json,
)


def record_to_json(record: JobRecord) -> dict[str, Any]:
    """One :class:`JobRecord` as a JSON-safe dict (enums by value)."""
    return {
        "job_id": record.job_id,
        "submit_time": record.submit_time,
        "completion_time": record.completion_time,
        "num_tasks": record.num_tasks,
        "true_mean_task_duration": record.true_mean_task_duration,
        "estimated_task_duration": record.estimated_task_duration,
        "task_seconds": record.task_seconds,
        "scheduled_class": record.scheduled_class.value,
        "true_class": record.true_class.value,
        "stolen_tasks": record.stolen_tasks,
        "retried_tasks": record.retried_tasks,
    }


def record_from_json(data: Mapping[str, Any]) -> JobRecord:
    return JobRecord(
        job_id=int(data["job_id"]),
        submit_time=float(data["submit_time"]),
        completion_time=float(data["completion_time"]),
        num_tasks=int(data["num_tasks"]),
        true_mean_task_duration=float(data["true_mean_task_duration"]),
        estimated_task_duration=float(data["estimated_task_duration"]),
        task_seconds=float(data["task_seconds"]),
        scheduled_class=JobClass(data["scheduled_class"]),
        true_class=JobClass(data["true_class"]),
        stolen_tasks=int(data["stolen_tasks"]),
        # Absent in logs written before fault injection existed.
        retried_tasks=int(data.get("retried_tasks", 0)),
    )


@dataclass(slots=True)
class RunFold:
    """Folds one run's events into records — incrementally resumable.

    Feed it events in seq order (``apply``); read a point-in-time result
    any time (``result``).  The fold only keeps per-job state for jobs
    still in flight, so memory is bounded by concurrency, not log
    length.
    """

    pending: dict[int, tuple[float, dict[str, Any]]] = field(
        default_factory=dict
    )
    records: list[JobRecord] = field(default_factory=list)
    events_folded: int = 0
    last_vtime: float = 0.0
    last_seq: int = 0
    steal_transfers: int = 0
    entries_stolen: int = 0

    def apply(self, event: LifecycleEvent) -> None:
        """Fold one event (events must arrive in ascending seq order)."""
        if event.seq <= self.last_seq:
            raise ConfigurationError(
                f"event seq {event.seq} out of order (last folded "
                f"{self.last_seq})"
            )
        self.events_folded += 1
        self.last_seq = event.seq
        if event.vtime > self.last_vtime:
            self.last_vtime = event.vtime
        if event.kind == KIND_SUBMITTED:
            assert event.job_id is not None
            self.pending[event.job_id] = (event.vtime, dict(event.payload))
        elif event.kind == KIND_STOLEN:
            self.steal_transfers += 1
            self.entries_stolen += int(event.payload.get("entries", 0))
        elif event.kind == KIND_COMPLETED:
            assert event.job_id is not None
            try:
                submit_vtime, submitted = self.pending.pop(event.job_id)
            except KeyError:
                raise ConfigurationError(
                    f"job {event.job_id} completed without a submitted "
                    "event (log truncated before its submission?)"
                ) from None
            self.records.append(
                JobRecord(
                    job_id=event.job_id,
                    submit_time=submit_vtime,
                    completion_time=event.vtime,
                    num_tasks=int(submitted["num_tasks"]),
                    true_mean_task_duration=float(submitted["true_mean"]),
                    estimated_task_duration=float(submitted["estimate"]),
                    task_seconds=float(submitted["task_seconds"]),
                    scheduled_class=JobClass(submitted["scheduled_class"]),
                    true_class=JobClass(submitted["true_class"]),
                    stolen_tasks=int(event.payload.get("stolen_tasks", 0)),
                    retried_tasks=int(event.payload.get("retried_tasks", 0)),
                )
            )

    @property
    def jobs_completed(self) -> int:
        return len(self.records)

    @property
    def jobs_in_flight(self) -> int:
        return len(self.pending)

    def result(self, config: RunConfig) -> RunResult:
        """Materialize the fold as a simulator-shaped result.

        Utilization sampling has no online analogue (there is no fixed
        run horizon), so ``utilization`` is always empty; every other
        field matches what a batch run of the same schedule would carry.
        """
        records = tuple(sorted(self.records, key=lambda r: r.job_id))
        stealing = StealingStats(
            rounds=self.steal_transfers,
            successful_rounds=self.steal_transfers,
            victims_probed=self.steal_transfers,
            entries_stolen=self.entries_stolen,
        )
        return RunResult(
            scheduler_name=config.scheduler_name,
            n_workers=config.n_workers,
            jobs=records,
            utilization=(),
            stealing=stealing,
            events_fired=self.events_folded,
            end_time=self.last_vtime,
        )

    # -- snapshot round trip ---------------------------------------------
    def to_state(self) -> dict[str, Any]:
        """JSON-safe checkpoint of the fold (for store snapshots)."""
        return {
            "pending": {
                str(job_id): {"vtime": vtime, "payload": payload}
                for job_id, (vtime, payload) in self.pending.items()
            },
            "records": [record_to_json(r) for r in self.records],
            "events_folded": self.events_folded,
            "last_vtime": self.last_vtime,
            "last_seq": self.last_seq,
            "steal_transfers": self.steal_transfers,
            "entries_stolen": self.entries_stolen,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "RunFold":
        fold = cls()
        for job_id, entry in dict(state["pending"]).items():
            fold.pending[int(job_id)] = (
                float(entry["vtime"]),
                dict(entry["payload"]),
            )
        fold.records.extend(record_from_json(r) for r in state["records"])
        fold.events_folded = int(state["events_folded"])
        fold.last_vtime = float(state["last_vtime"])
        fold.last_seq = int(state["last_seq"])
        fold.steal_transfers = int(state["steal_transfers"])
        fold.entries_stolen = int(state["entries_stolen"])
        return fold


def replay(store: EventStore, run_id: str) -> RunFold:
    """Cold replay: snapshot (if any) plus the committed event tail."""
    snapshot = store.latest_snapshot(run_id)
    if snapshot is None:
        fold, after_seq = RunFold(), 0
    else:
        after_seq, state = snapshot
        fold = RunFold.from_state(state)
        if fold.last_seq > after_seq:
            raise ConfigurationError(
                f"snapshot for {run_id} claims seq {after_seq} but its "
                f"state folded up to {fold.last_seq}"
            )
    for event in store.events(run_id, after_seq=after_seq):
        fold.apply(event)
    return fold


def replay_result(store: EventStore, run_id: str) -> RunResult:
    """Cold replay straight to a :class:`RunResult`."""
    configs = store.run_configs()
    try:
        config = configs[run_id]
    except KeyError:
        raise ConfigurationError(
            f"run {run_id!r} is not registered in the store; "
            f"known runs: {sorted(configs)}"
        ) from None
    return replay(store, run_id).result(config)


def result_to_json(result: RunResult) -> dict[str, Any]:
    """A :class:`RunResult` as a JSON-safe dict (API responses)."""
    return {
        "scheduler_name": result.scheduler_name,
        "n_workers": result.n_workers,
        "jobs": [record_to_json(r) for r in result.jobs],
        "stealing": {
            "rounds": result.stealing.rounds,
            "successful_rounds": result.stealing.successful_rounds,
            "victims_probed": result.stealing.victims_probed,
            "entries_stolen": result.stealing.entries_stolen,
        },
        "events_fired": result.events_fired,
        "end_time": result.end_time,
    }


# -- portable NDJSON logs ------------------------------------------------
@dataclass(slots=True)
class NdjsonLog:
    """An event log loaded from an NDJSON file (meta, runs, events)."""

    meta: dict[str, Any]
    configs: dict[str, RunConfig]
    labels: dict[str, dict[str, Any]]
    events: list[LifecycleEvent]

    def results(self) -> dict[str, RunResult]:
        """Fold every run in the file to its result, keyed by run id."""
        folds: dict[str, RunFold] = {
            run_id: RunFold() for run_id in self.configs
        }
        for event in self.events:
            fold = folds.get(event.run_id)
            if fold is None:
                raise ConfigurationError(
                    f"event {event.seq} names unknown run {event.run_id!r}"
                )
            fold.apply(event)
        return {
            run_id: fold.result(self.configs[run_id])
            for run_id, fold in folds.items()
        }


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def export_ndjson(
    store: EventStore,
    path: Path,
    meta: Mapping[str, Any] | None = None,
    labels: Mapping[str, Mapping[str, Any]] | None = None,
) -> int:
    """Write the store's full log to ``path`` (gzipped iff ``*.gz``).

    Line 1 is a ``meta`` header, then one ``run`` line per registered
    run (config plus an optional caller-supplied label), then every
    event in seq order.  Returns the number of event lines written.
    """
    configs = store.run_configs()
    labels = labels or {}
    count = 0
    with _open_text(path, "w") as out:
        out.write(canonical_json({"type": "meta", **dict(meta or {})}) + "\n")
        for run_id, config in configs.items():
            line = {
                "type": "run",
                "run_id": run_id,
                "config": config.to_json(),
                "label": dict(labels.get(run_id, {})),
            }
            out.write(canonical_json(line) + "\n")
        for event in store.events():
            out.write(
                canonical_json({"type": "event", **event.to_json()}) + "\n"
            )
            count += 1
    return count


def load_ndjson(path: Path) -> NdjsonLog:
    """Parse an :func:`export_ndjson` file back into memory."""
    meta: dict[str, Any] = {}
    configs: dict[str, RunConfig] = {}
    labels: dict[str, dict[str, Any]] = {}
    events: list[LifecycleEvent] = []
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            kind = data.get("type")
            if kind == "meta":
                meta = {k: v for k, v in data.items() if k != "type"}
            elif kind == "run":
                run_id = data["run_id"]
                configs[run_id] = RunConfig.from_json(data["config"])
                labels[run_id] = dict(data.get("label") or {})
            elif kind == "event":
                events.append(LifecycleEvent.from_json(data))
            else:
                raise ConfigurationError(
                    f"{path}:{line_no}: unknown line type {kind!r}"
                )
    if not configs:
        raise ConfigurationError(f"{path} declares no runs")
    events.sort(key=lambda e: e.seq)
    return NdjsonLog(meta=meta, configs=configs, labels=labels, events=events)


def fold_events(events: Iterable[LifecycleEvent]) -> RunFold:
    """Fold an in-memory event sequence (test helper)."""
    fold = RunFold()
    for event in sorted(events, key=lambda e: e.seq):
        fold.apply(event)
    return fold
