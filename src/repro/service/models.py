"""Wire and storage models of the scheduler service.

Three kinds of value cross the service's boundaries and all of them live
here so the HTTP front end, the NDJSON socket, the event store and the
replay fold agree on one schema:

* :class:`Submission` — one client job: task durations, a tenant label
  and an optional runtime estimate.  Validated eagerly (positive finite
  durations, bounded task counts) so malformed input dies at the edge
  with a :class:`~repro.core.errors.ConfigurationError`, never inside
  the simulation thread.
* :class:`RunConfig` — the virtual cluster one run schedules against:
  policy name plus params (validated against the live
  ``@register_policy`` schema), worker count, cutoff, partition
  fraction, seed.  Its :attr:`~RunConfig.run_id` is a content digest, so
  two submissions naming the same configuration land in the same run.
* :class:`LifecycleEvent` — one appended event-store row.  ``vtime`` is
  the simulation clock, ``wtime`` the wall clock of the append, ``seq``
  the store-assigned monotonic sequence number that totally orders the
  log.

Event kinds (the ``KIND_*`` constants) name every lifecycle transition a
job goes through: submitted → probed → queued → started (per task,
possibly after being stolen) → task-completed → completed.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Mapping

from repro.core.errors import ConfigurationError
from repro.schedulers import registry
from repro.schedulers.registry import FrozenParams

# -- event kinds ---------------------------------------------------------
KIND_SUBMITTED = "submitted"
KIND_PROBED = "probed"
KIND_QUEUED = "queued"
KIND_STARTED = "started"
KIND_STOLEN = "stolen"
KIND_TASK_COMPLETED = "task-completed"
KIND_COMPLETED = "completed"

EVENT_KINDS: tuple[str, ...] = (
    KIND_SUBMITTED,
    KIND_PROBED,
    KIND_QUEUED,
    KIND_STARTED,
    KIND_STOLEN,
    KIND_TASK_COMPLETED,
    KIND_COMPLETED,
)

#: Per-job task-count ceiling; protects the single scheduling thread from
#: one pathological submission.
MAX_TASKS_PER_JOB = 10_000

#: Longest single task a client may submit, in (virtual) seconds.
MAX_TASK_DURATION = 1e6


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, NaN rejected."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


@dataclass(slots=True)
class LifecycleEvent:
    """One event-store row: a single lifecycle transition of one run.

    Mutable only in ``seq``, which the store assigns at append time;
    every other field is fixed by the emitter.
    """

    run_id: str
    kind: str
    vtime: float
    job_id: int | None = None
    task_index: int | None = None
    worker_id: int | None = None
    payload: Mapping[str, Any] = field(default_factory=dict)
    wtime: float = 0.0
    seq: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "run_id": self.run_id,
            "kind": self.kind,
            "vtime": self.vtime,
            "wtime": self.wtime,
            "job_id": self.job_id,
            "task_index": self.task_index,
            "worker_id": self.worker_id,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "LifecycleEvent":
        kind = data["kind"]
        if kind not in EVENT_KINDS:
            raise ConfigurationError(f"unknown event kind {kind!r}")
        return cls(
            run_id=data["run_id"],
            kind=kind,
            vtime=float(data["vtime"]),
            job_id=data.get("job_id"),
            task_index=data.get("task_index"),
            worker_id=data.get("worker_id"),
            payload=dict(data.get("payload") or {}),
            wtime=float(data.get("wtime", 0.0)),
            seq=int(data.get("seq", 0)),
        )


@dataclass(frozen=True, slots=True)
class RunConfig:
    """One run's virtual cluster: policy, params and cluster shape.

    Defaults mirror the paper's standard setting (100 workers, 1.129 s
    cutoff, 17 % short partition) so a client submitting just
    ``{"policy": "hawk"}`` gets the canonical configuration.
    """

    policy: str
    params: FrozenParams = field(default_factory=FrozenParams)
    n_workers: int = 100
    cutoff: float = 1.129
    short_partition_fraction: float = 0.17
    seed: int = 0

    def __post_init__(self) -> None:
        # Schema-validate and canonicalize params against the registry so
        # the digest (and therefore the run identity) is independent of
        # params-dict insertion order and of omitted defaults.
        entry = registry.policy_entry(self.policy)
        if not entry.serves_online:
            raise ConfigurationError(
                f"policy {self.policy!r} is registered with "
                "serves_online=False and cannot be served"
            )
        object.__setattr__(
            self, "params", registry.validate_params(self.policy, self.params)
        )
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.cutoff <= 0:
            raise ConfigurationError(
                f"cutoff must be positive, got {self.cutoff}"
            )
        if not 0.0 <= self.short_partition_fraction < 1.0:
            raise ConfigurationError(
                "short_partition_fraction must be in [0, 1), got "
                f"{self.short_partition_fraction}"
            )

    @property
    def run_id(self) -> str:
        """Stable content digest: same config ⇒ same run identity."""
        digest = blake2b(
            canonical_json(self.to_json()).encode(), digest_size=4
        ).hexdigest()
        return f"{self.policy}-{digest}"

    @property
    def scheduler_name(self) -> str:
        """``scheduler_name`` stamped on folded :class:`RunResult` records."""
        return f"service-{self.policy}"

    def to_json(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "params": dict(self.params),
            "n_workers": self.n_workers,
            "cutoff": self.cutoff,
            "short_partition_fraction": self.short_partition_fraction,
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "RunConfig":
        policy = data.get("policy")
        if not isinstance(policy, str) or not policy:
            raise ConfigurationError("submission needs a 'policy' string")
        params = data.get("params") or {}
        if not isinstance(params, Mapping):
            raise ConfigurationError("'params' must be a mapping")
        try:
            return cls(
                policy=policy,
                params=FrozenParams(params),
                n_workers=int(data.get("n_workers", 100)),
                cutoff=float(data.get("cutoff", 1.129)),
                short_partition_fraction=float(
                    data.get("short_partition_fraction", 0.17)
                ),
                seed=int(data.get("seed", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad run config: {exc}") from exc


@dataclass(frozen=True, slots=True)
class Submission:
    """One client job submission, validated at the service edge."""

    tasks: tuple[float, ...]
    tenant: str = "default"
    estimate: float | None = None

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ConfigurationError("a submission needs at least one task")
        if len(self.tasks) > MAX_TASKS_PER_JOB:
            raise ConfigurationError(
                f"too many tasks ({len(self.tasks)} > {MAX_TASKS_PER_JOB})"
            )
        for duration in self.tasks:
            if not (
                isinstance(duration, float)
                and math.isfinite(duration)
                and 0.0 < duration <= MAX_TASK_DURATION
            ):
                raise ConfigurationError(
                    f"task durations must be finite floats in "
                    f"(0, {MAX_TASK_DURATION:g}], got {duration!r}"
                )
        if self.estimate is not None and not (
            isinstance(self.estimate, float)
            and math.isfinite(self.estimate)
            and 0.0 < self.estimate <= MAX_TASK_DURATION
        ):
            raise ConfigurationError(
                f"estimate must be a finite positive float, "
                f"got {self.estimate!r}"
            )
        if not self.tenant or len(self.tenant) > 256:
            raise ConfigurationError("tenant must be 1..256 characters")

    @property
    def mean_task_duration(self) -> float:
        return sum(self.tasks) / len(self.tasks)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Submission":
        tasks = data.get("tasks")
        if not isinstance(tasks, (list, tuple)):
            raise ConfigurationError("'tasks' must be a list of durations")
        try:
            durations = tuple(float(d) for d in tasks)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"bad task duration: {exc}") from exc
        estimate = data.get("estimate")
        if estimate is not None:
            try:
                estimate = float(estimate)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(f"bad estimate: {exc}") from exc
        tenant = data.get("tenant", "default")
        if not isinstance(tenant, str):
            raise ConfigurationError("'tenant' must be a string")
        return cls(tasks=durations, tenant=tenant, estimate=estimate)


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """Process-level service settings (transport, store, limits)."""

    db_path: str = "service_events.db"
    host: str = "127.0.0.1"
    http_port: int = 0
    socket_port: int = 0
    max_runs: int = 32
    max_body_bytes: int = 4 * 1024 * 1024
    drain_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.max_runs < 1:
            raise ConfigurationError("max_runs must be >= 1")
        if self.max_body_bytes < 1024:
            raise ConfigurationError("max_body_bytes must be >= 1024")
        if self.drain_timeout <= 0:
            raise ConfigurationError("drain_timeout must be positive")
